// Scenario: nightly database snapshot backups with a retention policy.
//
// A database exports a full snapshot every "night"; SlimStore
// deduplicates it against history, the G-node reorganizes storage in
// the background, and snapshots older than the retention window are
// collected. This is the paper's primary use case ("database users
// update the latest snapshots of data every once in a while").
//
//   ./build/examples/db_backup_lifecycle

#include <cstdio>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

int main() {
  using namespace slim;

  constexpr int kNights = 14;
  constexpr int kRetainedVersions = 7;  // One week of snapshots.

  oss::MemoryObjectStore backing;
  oss::OssCostModel cost;
  cost.sleep_for_cost = false;
  oss::SimulatedOss cloud(&backing, cost);

  core::SlimStoreOptions options;
  options.backup.chunk_merging = true;
  options.backup.container_capacity = 1 << 20;
  core::SlimStore store(&cloud, options);

  // Two tables with different churn: "orders" is hot, "archive" cold.
  workload::GeneratorOptions hot;
  hot.base_size = 6 << 20;
  hot.duplication_ratio = 0.75;
  hot.seed = 101;
  workload::VersionedFileGenerator orders(hot);

  workload::GeneratorOptions cold;
  cold.base_size = 6 << 20;
  cold.duplication_ratio = 0.97;
  cold.seed = 202;
  workload::VersionedFileGenerator archive(cold);

  std::printf("night |        orders dedup |       archive dedup | "
              "space MB | live versions\n");
  for (int night = 0; night < kNights; ++night) {
    auto s1 = store.Backup("db/orders.tbl", orders.data());
    auto s2 = store.Backup("db/archive.tbl", archive.data());
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "backup failed\n");
      return 1;
    }
    // Offline space optimization after the nightly window.
    if (!store.RunGNodeCycle().ok()) return 1;

    // Retention: drop snapshots older than a week (fast precomputed
    // sweep — the Mark phase already ran during deduplication).
    if (night >= kRetainedVersions) {
      uint64_t expired = night - kRetainedVersions;
      if (!store.DeleteVersion("db/orders.tbl", expired).ok()) return 1;
      if (!store.DeleteVersion("db/archive.tbl", expired).ok()) return 1;
    }

    auto space = store.GetSpaceReport();
    if (!space.ok()) return 1;
    std::printf("%5d | %11.1f%% dedup | %11.1f%% dedup | %8.1f | %zu\n",
                night, 100 * s1.value().DedupRatio(),
                100 * s2.value().DedupRatio(),
                space.value().total() / (1024.0 * 1024.0),
                store.catalog()->LiveVersions().size());
    orders.Mutate();
    archive.Mutate();
  }

  // Disaster recovery drill: restore the newest snapshot of both tables.
  for (const char* table : {"db/orders.tbl", "db/archive.tbl"}) {
    auto versions = store.catalog()->VersionsOf(table);
    lnode::RestoreStats stats;
    auto restored = store.Restore(table, versions.back(), &stats);
    if (!restored.ok()) {
      std::fprintf(stderr, "restore failed: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %s v%llu: %.1f MB, %llu containers read, "
                "%llu redirects\n",
                table, (unsigned long long)versions.back(),
                restored.value().size() / (1024.0 * 1024.0),
                (unsigned long long)stats.containers_fetched,
                (unsigned long long)stats.redirects);
  }
  std::printf("OK\n");
  return 0;
}
