// Scenario: a backup service running a pool of stateless L-nodes.
//
// Many clients upload backups concurrently; the cluster spreads jobs
// across L-nodes (each node carries a bounded number of jobs), all
// against one shared OSS-backed storage layer. Shows the elastic
// scaling property of the separated storage/compute architecture
// (paper Fig 10).
//
//   ./build/examples/multi_tenant_cluster

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

int main() {
  using namespace slim;

  constexpr size_t kClients = 24;

  oss::MemoryObjectStore backing;
  oss::OssCostModel cost;  // Real sleeping: I/O overlap across jobs.
  cost.request_latency_nanos = 500 * 1000;
  oss::SimulatedOss cloud(&backing, cost);

  core::SlimStoreOptions options;
  options.backup.container_capacity = 512 << 10;
  core::SlimStore store(&cloud, options);

  core::Cluster::Options copts;
  copts.num_lnodes = 4;
  copts.backup_jobs_per_node = 8;
  copts.restore_jobs_per_node = 8;
  core::Cluster cluster(&store, copts);

  // Each client owns one file.
  std::vector<workload::VersionedFileGenerator> clients;
  for (size_t i = 0; i < kClients; ++i) {
    workload::GeneratorOptions gen;
    gen.base_size = 1 << 20;
    gen.duplication_ratio = 0.9;
    gen.seed = 1000 + i;
    clients.emplace_back(gen);
  }
  auto name = [](size_t i) {
    return "tenant-" + std::to_string(i) + "/home.tar";
  };

  // Two backup waves: initial fulls, then incrementals.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<core::BackupJob> jobs;
    for (size_t i = 0; i < kClients; ++i) {
      jobs.push_back({name(i), &clients[i].data()});
    }
    auto run = cluster.ParallelBackup(jobs);
    if (!run.ok()) {
      std::fprintf(stderr, "wave failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("backup wave %d: %zu jobs on %zu L-nodes, %.1f MB, "
                "aggregate %.1f MB/s\n",
                wave, run.value().jobs, run.value().lnodes_used,
                run.value().logical_bytes / (1024.0 * 1024.0),
                run.value().AggregateThroughputMBps());
    for (auto& client : clients) client.Mutate();
  }

  // The G-node cleans up after the waves.
  auto cycle = store.RunGNodeCycle();
  if (!cycle.ok()) return 1;
  std::printf("g-node: %zu backups processed, %llu duplicates removed "
              "offline\n",
              cycle.value().backups_processed,
              (unsigned long long)cycle.value()
                  .reverse_dedup.duplicates_found);

  // Mass-restore drill: every tenant's latest version concurrently.
  std::vector<index::FileVersion> restores;
  for (size_t i = 0; i < kClients; ++i) {
    restores.push_back({name(i), 1});
  }
  lnode::RestoreOptions ropts = options.restore;
  ropts.prefetch_threads = 2;
  auto run = cluster.ParallelRestore(restores, &ropts);
  if (!run.ok()) {
    std::fprintf(stderr, "restore wave failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("restore wave: %zu jobs on %zu L-nodes, aggregate %.1f "
              "MB/s\nOK\n",
              run.value().jobs, run.value().lnodes_used,
              run.value().AggregateThroughputMBps());
  return 0;
}
