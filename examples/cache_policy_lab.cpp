// Scenario: comparing restore cache policies on your own workload.
//
// Backs up a fragmenting multi-version file, then restores the newest
// version under every cache policy this repo implements — SlimStore's
// full-vision cache and the literature baselines (LRU, OPT/Belady
// container cache, forward assembly area, ALACC) — printing the read
// amplification of each. Useful for picking cache sizes and policies
// for a given fragmentation profile.
//
//   ./build/examples/cache_policy_lab

#include <cstdio>

#include "baselines/restore_baselines.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

int main() {
  using namespace slim;

  oss::MemoryObjectStore backing;
  oss::OssCostModel cost;
  cost.sleep_for_cost = false;
  oss::SimulatedOss cloud(&backing, cost);

  core::SlimStoreOptions options;
  options.backup.container_capacity = 256 << 10;
  options.enable_scc = false;  // Keep the fragmentation for the lab.
  options.enable_reverse_dedup = false;
  core::SlimStore store(&cloud, options);

  // 12 versions of a fragmenting file.
  workload::GeneratorOptions gen;
  gen.base_size = 8 << 20;
  gen.duplication_ratio = 0.85;
  gen.self_reference = 0.2;
  gen.seed = 555;
  workload::VersionedFileGenerator file(gen);
  uint64_t last_version = 0;
  for (int v = 0; v < 12; ++v) {
    auto stats = store.Backup("lab/data.bin", file.data());
    if (!stats.ok()) return 1;
    last_version = stats.value().version;
    file.Mutate();
  }

  std::printf("%-22s %12s %16s %10s\n", "policy", "cache", "containers "
              "read", "hit rate");
  for (size_t cache_mb : {1u, 4u}) {
    // SlimStore's full-vision cache.
    {
      lnode::RestoreOptions ropts = options.restore;
      ropts.cache_bytes = cache_mb << 20;
      ropts.disk_cache_bytes = (cache_mb * 4) << 20;
      lnode::RestoreStats stats;
      auto out = store.Restore("lab/data.bin", last_version, &stats,
                               &ropts);
      if (!out.ok()) return 1;
      double hits = stats.cache_hits + stats.disk_hits;
      std::printf("%-22s %10zuMB %16llu %9.1f%%\n", "full-vision (ours)",
                  cache_mb, (unsigned long long)stats.containers_fetched,
                  100.0 * hits / stats.chunks_restored);
    }
    // The baselines.
    for (auto policy : {baselines::RestorePolicy::kLruContainer,
                        baselines::RestorePolicy::kOptContainer,
                        baselines::RestorePolicy::kFaa,
                        baselines::RestorePolicy::kAlacc}) {
      baselines::BaselineRestoreOptions bopts;
      bopts.cache_bytes = cache_mb << 20;
      bopts.global_index = store.global_index();
      baselines::BaselineRestorer restorer(store.container_store(),
                                           store.recipe_store(), policy,
                                           bopts);
      lnode::RestoreStats stats;
      auto out = restorer.Restore("lab/data.bin", last_version, &stats);
      if (!out.ok()) return 1;
      std::printf("%-22s %10zuMB %16llu %9.1f%%\n",
                  baselines::RestorePolicyName(policy), cache_mb,
                  (unsigned long long)stats.containers_fetched,
                  100.0 * stats.cache_hits /
                      std::max<uint64_t>(1, stats.chunks_restored));
    }
  }
  std::printf("OK\n");
  return 0;
}
