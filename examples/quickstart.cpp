// Quickstart: back up three versions of a file to (simulated) cloud
// object storage, run the offline G-node pass, restore every version
// and verify the bytes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

int main() {
  using namespace slim;

  // 1. The storage layer: any ObjectStore works. Here: an in-memory
  //    store wrapped in the cloud cost model (latency + bandwidth).
  oss::MemoryObjectStore backing;
  oss::OssCostModel cost;
  cost.sleep_for_cost = false;  // Account I/O costs, don't sleep.
  oss::SimulatedOss cloud(&backing, cost);

  // 2. The system: default options are production-ish (4 KB FastCDC
  //    chunks, 4 MB containers, skip chunking on).
  core::SlimStoreOptions options;
  options.backup.chunk_merging = true;  // History-aware chunk merging.
  core::SlimStore store(&cloud, options);

  // 3. Three backup versions of a mutating "database file".
  workload::GeneratorOptions gen;
  gen.base_size = 8 << 20;         // 8 MiB
  gen.duplication_ratio = 0.85;    // ~15% changes per version
  workload::VersionedFileGenerator file(gen);

  std::vector<std::string> originals;
  for (int v = 0; v < 3; ++v) {
    originals.push_back(file.data());
    auto stats = store.Backup("demo/users.db", file.data());
    if (!stats.ok()) {
      std::fprintf(stderr, "backup failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "backup v%llu: %5.1f MB in, dedup ratio %4.1f%%, %llu chunks, "
        "%llu new containers\n",
        (unsigned long long)stats.value().version,
        stats.value().logical_bytes / (1024.0 * 1024.0),
        100 * stats.value().DedupRatio(),
        (unsigned long long)stats.value().total_chunks,
        (unsigned long long)stats.value().new_containers.size());
    file.Mutate();
  }

  // 4. The G-node pass: exact reverse dedup + sparse container
  //    compaction, offline.
  auto cycle = store.RunGNodeCycle();
  if (!cycle.ok()) return 1;
  std::printf("g-node: %llu missed duplicates removed, %llu chunks "
              "compacted\n",
              (unsigned long long)cycle.value().reverse_dedup
                  .duplicates_found,
              (unsigned long long)cycle.value().scc.chunks_moved);

  // 5. Restore each version byte-identically (LAW prefetching on).
  lnode::RestoreOptions ropts = options.restore;
  ropts.prefetch_threads = 4;
  for (uint64_t v = 0; v < 3; ++v) {
    lnode::RestoreStats rstats;
    auto restored = store.Restore("demo/users.db", v, &rstats, &ropts);
    if (!restored.ok()) {
      std::fprintf(stderr, "restore v%llu failed: %s\n",
                   (unsigned long long)v,
                   restored.status().ToString().c_str());
      return 1;
    }
    bool identical = restored.value() == originals[v];
    std::printf("restore v%llu: %llu chunks, %llu containers read, %s\n",
                (unsigned long long)v,
                (unsigned long long)rstats.chunks_restored,
                (unsigned long long)rstats.containers_fetched,
                identical ? "bytes identical" : "MISMATCH!");
    if (!identical) return 1;
  }

  // 6. Space accounting.
  auto space = store.GetSpaceReport();
  if (space.ok()) {
    std::printf("space: containers %.1f MB, recipes %.1f MB, index %.1f "
                "KB\n",
                space.value().container_bytes / (1024.0 * 1024.0),
                space.value().recipe_bytes / (1024.0 * 1024.0),
                space.value().index_bytes / 1024.0);
  }
  std::printf("OK\n");
  return 0;
}
