# Empty compiler generated dependencies file for db_backup_lifecycle.
# This may be replaced when dependencies are built.
