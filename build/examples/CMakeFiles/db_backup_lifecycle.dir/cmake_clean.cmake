file(REMOVE_RECURSE
  "CMakeFiles/db_backup_lifecycle.dir/db_backup_lifecycle.cpp.o"
  "CMakeFiles/db_backup_lifecycle.dir/db_backup_lifecycle.cpp.o.d"
  "db_backup_lifecycle"
  "db_backup_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_backup_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
