file(REMOVE_RECURSE
  "CMakeFiles/cache_policy_lab.dir/cache_policy_lab.cpp.o"
  "CMakeFiles/cache_policy_lab.dir/cache_policy_lab.cpp.o.d"
  "cache_policy_lab"
  "cache_policy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_policy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
