# Empty compiler generated dependencies file for cache_policy_lab.
# This may be replaced when dependencies are built.
