# Empty compiler generated dependencies file for fig9_space.
# This may be replaced when dependencies are built.
