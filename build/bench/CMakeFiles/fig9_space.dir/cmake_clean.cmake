file(REMOVE_RECURSE
  "CMakeFiles/fig9_space.dir/fig9_space.cc.o"
  "CMakeFiles/fig9_space.dir/fig9_space.cc.o.d"
  "fig9_space"
  "fig9_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
