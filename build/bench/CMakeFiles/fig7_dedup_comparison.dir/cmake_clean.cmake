file(REMOVE_RECURSE
  "CMakeFiles/fig7_dedup_comparison.dir/fig7_dedup_comparison.cc.o"
  "CMakeFiles/fig7_dedup_comparison.dir/fig7_dedup_comparison.cc.o.d"
  "fig7_dedup_comparison"
  "fig7_dedup_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dedup_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
