file(REMOVE_RECURSE
  "CMakeFiles/fig8_restore.dir/fig8_restore.cc.o"
  "CMakeFiles/fig8_restore.dir/fig8_restore.cc.o.d"
  "fig8_restore"
  "fig8_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
