# Empty dependencies file for fig8_restore.
# This may be replaced when dependencies are built.
