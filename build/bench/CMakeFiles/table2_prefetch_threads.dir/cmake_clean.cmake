file(REMOVE_RECURSE
  "CMakeFiles/table2_prefetch_threads.dir/table2_prefetch_threads.cc.o"
  "CMakeFiles/table2_prefetch_threads.dir/table2_prefetch_threads.cc.o.d"
  "table2_prefetch_threads"
  "table2_prefetch_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_prefetch_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
