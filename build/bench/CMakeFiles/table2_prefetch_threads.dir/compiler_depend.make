# Empty compiler generated dependencies file for table2_prefetch_threads.
# This may be replaced when dependencies are built.
