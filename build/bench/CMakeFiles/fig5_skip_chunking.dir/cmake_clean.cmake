file(REMOVE_RECURSE
  "CMakeFiles/fig5_skip_chunking.dir/fig5_skip_chunking.cc.o"
  "CMakeFiles/fig5_skip_chunking.dir/fig5_skip_chunking.cc.o.d"
  "fig5_skip_chunking"
  "fig5_skip_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_skip_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
