# Empty dependencies file for fig5_skip_chunking.
# This may be replaced when dependencies are built.
