# Empty dependencies file for fig6_chunk_merging.
# This may be replaced when dependencies are built.
