file(REMOVE_RECURSE
  "CMakeFiles/fig6_chunk_merging.dir/fig6_chunk_merging.cc.o"
  "CMakeFiles/fig6_chunk_merging.dir/fig6_chunk_merging.cc.o.d"
  "fig6_chunk_merging"
  "fig6_chunk_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_chunk_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
