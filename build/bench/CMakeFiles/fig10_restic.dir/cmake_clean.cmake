file(REMOVE_RECURSE
  "CMakeFiles/fig10_restic.dir/fig10_restic.cc.o"
  "CMakeFiles/fig10_restic.dir/fig10_restic.cc.o.d"
  "fig10_restic"
  "fig10_restic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_restic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
