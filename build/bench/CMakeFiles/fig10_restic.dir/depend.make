# Empty dependencies file for fig10_restic.
# This may be replaced when dependencies are built.
