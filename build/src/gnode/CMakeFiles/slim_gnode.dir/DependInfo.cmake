
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnode/reverse_dedup.cc" "src/gnode/CMakeFiles/slim_gnode.dir/reverse_dedup.cc.o" "gcc" "src/gnode/CMakeFiles/slim_gnode.dir/reverse_dedup.cc.o.d"
  "/root/repo/src/gnode/scc.cc" "src/gnode/CMakeFiles/slim_gnode.dir/scc.cc.o" "gcc" "src/gnode/CMakeFiles/slim_gnode.dir/scc.cc.o.d"
  "/root/repo/src/gnode/version_collector.cc" "src/gnode/CMakeFiles/slim_gnode.dir/version_collector.cc.o" "gcc" "src/gnode/CMakeFiles/slim_gnode.dir/version_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/slim_format.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/slim_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
