# Empty compiler generated dependencies file for slim_gnode.
# This may be replaced when dependencies are built.
