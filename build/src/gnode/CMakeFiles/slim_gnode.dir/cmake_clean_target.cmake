file(REMOVE_RECURSE
  "libslim_gnode.a"
)
