file(REMOVE_RECURSE
  "CMakeFiles/slim_gnode.dir/reverse_dedup.cc.o"
  "CMakeFiles/slim_gnode.dir/reverse_dedup.cc.o.d"
  "CMakeFiles/slim_gnode.dir/scc.cc.o"
  "CMakeFiles/slim_gnode.dir/scc.cc.o.d"
  "CMakeFiles/slim_gnode.dir/version_collector.cc.o"
  "CMakeFiles/slim_gnode.dir/version_collector.cc.o.d"
  "libslim_gnode.a"
  "libslim_gnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_gnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
