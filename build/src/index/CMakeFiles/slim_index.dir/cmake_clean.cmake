file(REMOVE_RECURSE
  "CMakeFiles/slim_index.dir/bloom.cc.o"
  "CMakeFiles/slim_index.dir/bloom.cc.o.d"
  "CMakeFiles/slim_index.dir/dedup_cache.cc.o"
  "CMakeFiles/slim_index.dir/dedup_cache.cc.o.d"
  "CMakeFiles/slim_index.dir/global_index.cc.o"
  "CMakeFiles/slim_index.dir/global_index.cc.o.d"
  "CMakeFiles/slim_index.dir/similar_file_index.cc.o"
  "CMakeFiles/slim_index.dir/similar_file_index.cc.o.d"
  "libslim_index.a"
  "libslim_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
