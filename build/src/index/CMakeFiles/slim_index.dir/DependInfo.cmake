
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bloom.cc" "src/index/CMakeFiles/slim_index.dir/bloom.cc.o" "gcc" "src/index/CMakeFiles/slim_index.dir/bloom.cc.o.d"
  "/root/repo/src/index/dedup_cache.cc" "src/index/CMakeFiles/slim_index.dir/dedup_cache.cc.o" "gcc" "src/index/CMakeFiles/slim_index.dir/dedup_cache.cc.o.d"
  "/root/repo/src/index/global_index.cc" "src/index/CMakeFiles/slim_index.dir/global_index.cc.o" "gcc" "src/index/CMakeFiles/slim_index.dir/global_index.cc.o.d"
  "/root/repo/src/index/similar_file_index.cc" "src/index/CMakeFiles/slim_index.dir/similar_file_index.cc.o" "gcc" "src/index/CMakeFiles/slim_index.dir/similar_file_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/slim_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
