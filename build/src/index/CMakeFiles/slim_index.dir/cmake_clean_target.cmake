file(REMOVE_RECURSE
  "libslim_index.a"
)
