# Empty dependencies file for slim_index.
# This may be replaced when dependencies are built.
