# Empty compiler generated dependencies file for slim_workload.
# This may be replaced when dependencies are built.
