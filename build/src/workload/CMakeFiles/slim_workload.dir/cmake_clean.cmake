file(REMOVE_RECURSE
  "CMakeFiles/slim_workload.dir/generator.cc.o"
  "CMakeFiles/slim_workload.dir/generator.cc.o.d"
  "libslim_workload.a"
  "libslim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
