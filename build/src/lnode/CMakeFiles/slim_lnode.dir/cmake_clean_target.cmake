file(REMOVE_RECURSE
  "libslim_lnode.a"
)
