# Empty compiler generated dependencies file for slim_lnode.
# This may be replaced when dependencies are built.
