
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lnode/backup_pipeline.cc" "src/lnode/CMakeFiles/slim_lnode.dir/backup_pipeline.cc.o" "gcc" "src/lnode/CMakeFiles/slim_lnode.dir/backup_pipeline.cc.o.d"
  "/root/repo/src/lnode/restore_pipeline.cc" "src/lnode/CMakeFiles/slim_lnode.dir/restore_pipeline.cc.o" "gcc" "src/lnode/CMakeFiles/slim_lnode.dir/restore_pipeline.cc.o.d"
  "/root/repo/src/lnode/stream_window.cc" "src/lnode/CMakeFiles/slim_lnode.dir/stream_window.cc.o" "gcc" "src/lnode/CMakeFiles/slim_lnode.dir/stream_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/slim_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/slim_format.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/slim_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
