file(REMOVE_RECURSE
  "CMakeFiles/slim_lnode.dir/backup_pipeline.cc.o"
  "CMakeFiles/slim_lnode.dir/backup_pipeline.cc.o.d"
  "CMakeFiles/slim_lnode.dir/restore_pipeline.cc.o"
  "CMakeFiles/slim_lnode.dir/restore_pipeline.cc.o.d"
  "CMakeFiles/slim_lnode.dir/stream_window.cc.o"
  "CMakeFiles/slim_lnode.dir/stream_window.cc.o.d"
  "libslim_lnode.a"
  "libslim_lnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_lnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
