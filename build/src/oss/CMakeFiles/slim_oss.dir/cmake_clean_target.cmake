file(REMOVE_RECURSE
  "libslim_oss.a"
)
