# Empty compiler generated dependencies file for slim_oss.
# This may be replaced when dependencies are built.
