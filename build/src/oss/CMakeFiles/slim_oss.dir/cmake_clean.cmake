file(REMOVE_RECURSE
  "CMakeFiles/slim_oss.dir/disk_object_store.cc.o"
  "CMakeFiles/slim_oss.dir/disk_object_store.cc.o.d"
  "CMakeFiles/slim_oss.dir/memory_object_store.cc.o"
  "CMakeFiles/slim_oss.dir/memory_object_store.cc.o.d"
  "CMakeFiles/slim_oss.dir/rocks_oss.cc.o"
  "CMakeFiles/slim_oss.dir/rocks_oss.cc.o.d"
  "CMakeFiles/slim_oss.dir/simulated_oss.cc.o"
  "CMakeFiles/slim_oss.dir/simulated_oss.cc.o.d"
  "libslim_oss.a"
  "libslim_oss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_oss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
