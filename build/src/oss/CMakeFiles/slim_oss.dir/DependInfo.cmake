
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oss/disk_object_store.cc" "src/oss/CMakeFiles/slim_oss.dir/disk_object_store.cc.o" "gcc" "src/oss/CMakeFiles/slim_oss.dir/disk_object_store.cc.o.d"
  "/root/repo/src/oss/memory_object_store.cc" "src/oss/CMakeFiles/slim_oss.dir/memory_object_store.cc.o" "gcc" "src/oss/CMakeFiles/slim_oss.dir/memory_object_store.cc.o.d"
  "/root/repo/src/oss/rocks_oss.cc" "src/oss/CMakeFiles/slim_oss.dir/rocks_oss.cc.o" "gcc" "src/oss/CMakeFiles/slim_oss.dir/rocks_oss.cc.o.d"
  "/root/repo/src/oss/simulated_oss.cc" "src/oss/CMakeFiles/slim_oss.dir/simulated_oss.cc.o" "gcc" "src/oss/CMakeFiles/slim_oss.dir/simulated_oss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
