# Empty dependencies file for slim_common.
# This may be replaced when dependencies are built.
