file(REMOVE_RECURSE
  "CMakeFiles/slim_common.dir/hash.cc.o"
  "CMakeFiles/slim_common.dir/hash.cc.o.d"
  "CMakeFiles/slim_common.dir/mmap_file.cc.o"
  "CMakeFiles/slim_common.dir/mmap_file.cc.o.d"
  "CMakeFiles/slim_common.dir/status.cc.o"
  "CMakeFiles/slim_common.dir/status.cc.o.d"
  "CMakeFiles/slim_common.dir/thread_pool.cc.o"
  "CMakeFiles/slim_common.dir/thread_pool.cc.o.d"
  "libslim_common.a"
  "libslim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
