file(REMOVE_RECURSE
  "libslim_common.a"
)
