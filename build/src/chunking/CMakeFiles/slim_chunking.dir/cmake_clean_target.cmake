file(REMOVE_RECURSE
  "libslim_chunking.a"
)
