# Empty dependencies file for slim_chunking.
# This may be replaced when dependencies are built.
