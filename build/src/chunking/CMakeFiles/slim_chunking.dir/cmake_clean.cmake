file(REMOVE_RECURSE
  "CMakeFiles/slim_chunking.dir/chunker.cc.o"
  "CMakeFiles/slim_chunking.dir/chunker.cc.o.d"
  "CMakeFiles/slim_chunking.dir/gear.cc.o"
  "CMakeFiles/slim_chunking.dir/gear.cc.o.d"
  "CMakeFiles/slim_chunking.dir/rabin.cc.o"
  "CMakeFiles/slim_chunking.dir/rabin.cc.o.d"
  "libslim_chunking.a"
  "libslim_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
