file(REMOVE_RECURSE
  "CMakeFiles/slim_format.dir/chunk.cc.o"
  "CMakeFiles/slim_format.dir/chunk.cc.o.d"
  "CMakeFiles/slim_format.dir/container.cc.o"
  "CMakeFiles/slim_format.dir/container.cc.o.d"
  "CMakeFiles/slim_format.dir/recipe.cc.o"
  "CMakeFiles/slim_format.dir/recipe.cc.o.d"
  "libslim_format.a"
  "libslim_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
