file(REMOVE_RECURSE
  "libslim_format.a"
)
