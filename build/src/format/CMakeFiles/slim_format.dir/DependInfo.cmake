
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/chunk.cc" "src/format/CMakeFiles/slim_format.dir/chunk.cc.o" "gcc" "src/format/CMakeFiles/slim_format.dir/chunk.cc.o.d"
  "/root/repo/src/format/container.cc" "src/format/CMakeFiles/slim_format.dir/container.cc.o" "gcc" "src/format/CMakeFiles/slim_format.dir/container.cc.o.d"
  "/root/repo/src/format/recipe.cc" "src/format/CMakeFiles/slim_format.dir/recipe.cc.o" "gcc" "src/format/CMakeFiles/slim_format.dir/recipe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
