# Empty compiler generated dependencies file for slim_format.
# This may be replaced when dependencies are built.
