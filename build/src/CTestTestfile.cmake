# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("oss")
subdirs("chunking")
subdirs("format")
subdirs("index")
subdirs("lnode")
subdirs("gnode")
subdirs("baselines")
subdirs("workload")
subdirs("core")
