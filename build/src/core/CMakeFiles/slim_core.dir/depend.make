# Empty dependencies file for slim_core.
# This may be replaced when dependencies are built.
