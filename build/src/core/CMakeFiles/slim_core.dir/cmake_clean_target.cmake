file(REMOVE_RECURSE
  "libslim_core.a"
)
