file(REMOVE_RECURSE
  "CMakeFiles/slim_core.dir/catalog.cc.o"
  "CMakeFiles/slim_core.dir/catalog.cc.o.d"
  "CMakeFiles/slim_core.dir/cluster.cc.o"
  "CMakeFiles/slim_core.dir/cluster.cc.o.d"
  "CMakeFiles/slim_core.dir/slimstore.cc.o"
  "CMakeFiles/slim_core.dir/slimstore.cc.o.d"
  "CMakeFiles/slim_core.dir/verifier.cc.o"
  "CMakeFiles/slim_core.dir/verifier.cc.o.d"
  "libslim_core.a"
  "libslim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
