file(REMOVE_RECURSE
  "CMakeFiles/slim_baselines.dir/restic_like.cc.o"
  "CMakeFiles/slim_baselines.dir/restic_like.cc.o.d"
  "CMakeFiles/slim_baselines.dir/restore_baselines.cc.o"
  "CMakeFiles/slim_baselines.dir/restore_baselines.cc.o.d"
  "CMakeFiles/slim_baselines.dir/silo.cc.o"
  "CMakeFiles/slim_baselines.dir/silo.cc.o.d"
  "CMakeFiles/slim_baselines.dir/sparse_indexing.cc.o"
  "CMakeFiles/slim_baselines.dir/sparse_indexing.cc.o.d"
  "libslim_baselines.a"
  "libslim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
