file(REMOVE_RECURSE
  "libslim_baselines.a"
)
