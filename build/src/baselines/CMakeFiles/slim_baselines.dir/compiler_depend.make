# Empty compiler generated dependencies file for slim_baselines.
# This may be replaced when dependencies are built.
