
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/restic_like.cc" "src/baselines/CMakeFiles/slim_baselines.dir/restic_like.cc.o" "gcc" "src/baselines/CMakeFiles/slim_baselines.dir/restic_like.cc.o.d"
  "/root/repo/src/baselines/restore_baselines.cc" "src/baselines/CMakeFiles/slim_baselines.dir/restore_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/slim_baselines.dir/restore_baselines.cc.o.d"
  "/root/repo/src/baselines/silo.cc" "src/baselines/CMakeFiles/slim_baselines.dir/silo.cc.o" "gcc" "src/baselines/CMakeFiles/slim_baselines.dir/silo.cc.o.d"
  "/root/repo/src/baselines/sparse_indexing.cc" "src/baselines/CMakeFiles/slim_baselines.dir/sparse_indexing.cc.o" "gcc" "src/baselines/CMakeFiles/slim_baselines.dir/sparse_indexing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/slim_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/slim_format.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/slim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/lnode/CMakeFiles/slim_lnode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
