# Empty dependencies file for chunking_test.
# This may be replaced when dependencies are built.
