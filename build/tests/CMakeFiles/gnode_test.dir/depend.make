# Empty dependencies file for gnode_test.
# This may be replaced when dependencies are built.
