file(REMOVE_RECURSE
  "CMakeFiles/gnode_test.dir/gnode_test.cc.o"
  "CMakeFiles/gnode_test.dir/gnode_test.cc.o.d"
  "gnode_test"
  "gnode_test.pdb"
  "gnode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
