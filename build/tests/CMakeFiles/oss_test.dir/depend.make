# Empty dependencies file for oss_test.
# This may be replaced when dependencies are built.
