file(REMOVE_RECURSE
  "CMakeFiles/oss_test.dir/oss_test.cc.o"
  "CMakeFiles/oss_test.dir/oss_test.cc.o.d"
  "oss_test"
  "oss_test.pdb"
  "oss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
