file(REMOVE_RECURSE
  "CMakeFiles/backup_restore_test.dir/backup_restore_test.cc.o"
  "CMakeFiles/backup_restore_test.dir/backup_restore_test.cc.o.d"
  "backup_restore_test"
  "backup_restore_test.pdb"
  "backup_restore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
