# Empty dependencies file for backup_restore_test.
# This may be replaced when dependencies are built.
