file(REMOVE_RECURSE
  "CMakeFiles/superchunk_test.dir/superchunk_test.cc.o"
  "CMakeFiles/superchunk_test.dir/superchunk_test.cc.o.d"
  "superchunk_test"
  "superchunk_test.pdb"
  "superchunk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superchunk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
