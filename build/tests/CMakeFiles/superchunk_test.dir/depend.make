# Empty dependencies file for superchunk_test.
# This may be replaced when dependencies are built.
