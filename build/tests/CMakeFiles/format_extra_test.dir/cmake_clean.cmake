file(REMOVE_RECURSE
  "CMakeFiles/format_extra_test.dir/format_extra_test.cc.o"
  "CMakeFiles/format_extra_test.dir/format_extra_test.cc.o.d"
  "format_extra_test"
  "format_extra_test.pdb"
  "format_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
