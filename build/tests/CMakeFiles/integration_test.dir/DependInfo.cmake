
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/slim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/slim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gnode/CMakeFiles/slim_gnode.dir/DependInfo.cmake"
  "/root/repo/build/src/lnode/CMakeFiles/slim_lnode.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/slim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/slim_format.dir/DependInfo.cmake"
  "/root/repo/build/src/oss/CMakeFiles/slim_oss.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/slim_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
