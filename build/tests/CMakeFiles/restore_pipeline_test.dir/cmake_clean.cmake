file(REMOVE_RECURSE
  "CMakeFiles/restore_pipeline_test.dir/restore_pipeline_test.cc.o"
  "CMakeFiles/restore_pipeline_test.dir/restore_pipeline_test.cc.o.d"
  "restore_pipeline_test"
  "restore_pipeline_test.pdb"
  "restore_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
