# Empty compiler generated dependencies file for restore_pipeline_test.
# This may be replaced when dependencies are built.
