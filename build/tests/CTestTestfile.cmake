# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/oss_test[1]_include.cmake")
include("/root/repo/build/tests/chunking_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/backup_restore_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/gnode_test[1]_include.cmake")
include("/root/repo/build/tests/restore_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/superchunk_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/format_extra_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
