file(REMOVE_RECURSE
  "CMakeFiles/slim.dir/slim.cc.o"
  "CMakeFiles/slim.dir/slim.cc.o.d"
  "slim"
  "slim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
