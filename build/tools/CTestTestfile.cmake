# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "bash" "-c" "    set -e; R=\$(mktemp -d); trap 'rm -rf \$R' EXIT;     /root/repo/build/tools/slim -r \$R/repo init;     head -c 200000 /dev/urandom > \$R/f.bin;     /root/repo/build/tools/slim -r \$R/repo backup \$R/f.bin;     cat \$R/f.bin \$R/f.bin | head -c 250000 > \$R/f2.bin; mv \$R/f2.bin \$R/f.bin;     /root/repo/build/tools/slim -r \$R/repo backup \$R/f.bin;     /root/repo/build/tools/slim -r \$R/repo gnode;     /root/repo/build/tools/slim -r \$R/repo verify;     /root/repo/build/tools/slim -r \$R/repo restore \$R/f.bin 1 \$R/out.bin;     cmp \$R/f.bin \$R/out.bin;     /root/repo/build/tools/slim -r \$R/repo forget \$R/f.bin 0;     /root/repo/build/tools/slim -r \$R/repo verify")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
