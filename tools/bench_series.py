#!/usr/bin/env python3
"""Maintain a cross-commit BENCH series: one JSONL line per bench run.

Usage:
  bench_series.py append SERIES.jsonl REPORT.json [--commit SHA]
                  [--label TEXT] [--timestamp UNIX_SECONDS]
      Distills REPORT.json (BENCH schema v1 or v2) to one line holding
      the headline number per scenario — throughput, OSS requests, and
      (v2) dollars — and appends it to SERIES.jsonl. The series is the
      repo's perf/cost trajectory over time; nightly CI appends to it
      and uploads the result as an artifact.

  bench_series.py render SERIES.jsonl [--scenario NAME]
      Prints the trajectory, one row per appended run: how throughput,
      request counts, and dollar cost moved commit over commit.

Append is resilient by construction: each line is self-contained JSON,
so a truncated final line (crashed run) never corrupts the history —
render skips and counts it, like the event journal's readers.

Stdlib only.
"""

import argparse
import json
import sys
import time


def distill(report):
    """One compact dict per scenario: the numbers worth tracking."""
    scenarios = {}
    for s in report.get("scenarios", []):
        entry = {
            "mbps": round(s["throughput_mbps"]["mean"], 3),
            "wall_s": round(s["wall_seconds"]["mean"], 6),
            "requests": s["oss"]["requests"],
            "dedup": round(s.get("dedup_ratio", 0.0), 4),
        }
        if isinstance(s.get("cost"), dict):
            entry["dollars"] = round(s["cost"]["dollars"], 8)
        scenarios[s["name"]] = entry
    return scenarios


def cmd_append(args):
    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.report}: {e}", file=sys.stderr)
        return 2
    if not isinstance(report, dict) or "scenarios" not in report:
        print(f"error: {args.report}: not a BENCH report", file=sys.stderr)
        return 2
    line = {
        "timestamp": args.timestamp if args.timestamp is not None
        else int(time.time()),
        "commit": args.commit,
        "label": args.label,
        "suite": report.get("suite"),
        "schema_version": report.get("schema_version"),
        "scenarios": distill(report),
    }
    with open(args.series, "a", encoding="utf-8") as f:
        f.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"appended {len(line['scenarios'])} scenario(s) to {args.series}")
    return 0


def cmd_render(args):
    try:
        with open(args.series, "r", encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    entries = []
    malformed = 0
    for raw in raw_lines:
        if not raw.strip():
            continue
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            malformed += 1
            continue
        if isinstance(entry, dict) and isinstance(entry.get("scenarios"),
                                                  dict):
            entries.append(entry)
        else:
            malformed += 1
    if not entries:
        print(f"no series entries in {args.series}")
        return 0

    names = sorted({name for e in entries for name in e["scenarios"]
                    if not args.scenario or args.scenario in name})
    for name in names:
        print(f"\n== {name} ==")
        print(f"{'when':<17} {'commit':<12} {'label':<16} {'MB/s':>10} "
              f"{'reqs':>10} {'cost $':>12}")
        for e in entries:
            s = e["scenarios"].get(name)
            if s is None:
                continue
            when = time.strftime("%Y-%m-%d %H:%M",
                                 time.localtime(e.get("timestamp", 0)))
            commit = (e.get("commit") or "-")[:12]
            label = (e.get("label") or "-")[:16]
            dollars = s.get("dollars")
            cost = f"{dollars:>12.6f}" if dollars is not None else f"{'-':>12}"
            print(f"{when:<17} {commit:<12} {label:<16} {s['mbps']:>10.1f} "
                  f"{s['requests']:>10} {cost}")
    if malformed:
        print(f"\n(skipped {malformed} malformed line(s))", file=sys.stderr)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="append a report to the series")
    p_append.add_argument("series", help="series JSONL path (created if "
                          "missing)")
    p_append.add_argument("report", help="BENCH report JSON to distill")
    p_append.add_argument("--commit", default=None, help="commit SHA")
    p_append.add_argument("--label", default=None, help="free-form run label")
    p_append.add_argument("--timestamp", type=int, default=None,
                          help="unix seconds (default: now)")
    p_append.set_defaults(fn=cmd_append)

    p_render = sub.add_parser("render", help="print the trajectory")
    p_render.add_argument("series", help="series JSONL path")
    p_render.add_argument("--scenario", default=None,
                          help="substring filter on scenario names")
    p_render.set_defaults(fn=cmd_render)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
