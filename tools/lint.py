#!/usr/bin/env python3
"""SlimStore repo lint: dependency-free structural invariants.

Checks (each maps to a stable rule id, printed with every finding):

  include-guard         every header under src/ and bench/ carries an
                        #ifndef/#define guard derived from its path
                        (src/common/status.h -> SLIMSTORE_COMMON_STATUS_H_).
  using-namespace       no `using namespace` at any scope in headers
                        (function-local `using namespace std::chrono` in a
                        .cc is fine; headers leak it into every includer).
  metric-once           every obs metric name literal passed to
                        MetricsRegistry counter()/gauge()/histogram() is
                        registered at exactly one source location, so two
                        subsystems cannot silently alias one time series.
  metric-labels         every labeled metric family (a name literal passed
                        to obs::LabeledName) declares its label set at
                        exactly one source site; a second site could attach
                        a different label set to the same family, and
                        exporters/fleet merges would then see inconsistent
                        series under one name. Route new label combinations
                        through the one declaring helper instead.
  raw-new               no raw `new` in src/: use std::make_unique /
                        make_shared. Private-constructor factories may wrap
                        `new` directly in a unique_ptr/shared_ptr on the
                        same line; leaky singletons carry an explicit
                        `// lint:allow-new` tag.
  std-mutex             no std::mutex / lock_guard / unique_lock /
                        shared_mutex / scoped_lock / condition_variable
                        and no raw pthread_{mutex,rwlock,cond,spin}
                        primitives in src/ outside common/mutex.h: the
                        capability-annotated slim::Mutex wrappers are
                        mandatory so clang -Wthread-safety and the
                        lockdep runtime (common/lockdep.h) can see every
                        lock. common/lockdep.cc is exempt — it sits
                        *below* slim::Mutex and must not recurse into
                        its own instrumentation.
  mutex-named           every slim::Mutex / SharedMutex declaration in
                        src/ is constructed with a lock-class name
                        literal (`Mutex mu_{"index.dedup_cache"};`); the
                        name keys the lockdep acquired-before graph, the
                        `lock.<name>.*` metrics, and the rank manifest
                        checked by tools/lockcheck.py.
  oss-put-copy          ObjectStore::Put takes its value by value; passing
                        a named lvalue as the final argument silently
                        deep-copies the whole object payload. Wrap it in
                        std::move (or tag `// lint:allow-put-copy` when the
                        copy is intentional, e.g. a retry loop that must
                        keep the value for the next attempt).
  cache-declares-rebuild
                        every mutex-guarded class declared in a header
                        under src/index/ or src/lnode/ is an L-node cache
                        over OSS-resident truth and must declare its
                        rebuild entry point `DropLocalState()` (the
                        rebuildable-state contract, src/common/
                        rebuildable.h) so SlimStore::Rebuild can
                        reconstruct it after a crash.
  oss-verified-read     raw Get/GetRange on an object-store handle (a
                        receiver named `store`/`*_store`/`oss`/...) in src/
                        returns payload bytes without checking the CRC32C
                        footer. Read through durability::GetVerified (or a
                        ReadVerified* wrapper), or tag the call
                        `// lint:allow-unverified-read` with a reason (e.g.
                        the scrubber probing replicas it will arbitrate, or
                        a range read whose object-level CRC cannot apply).
                        Pass-through decorators hold their target as
                        `inner_` and are out of scope: they sit below the
                        checksum layer. src/baselines/ is exempt (paper
                        baselines predate the durability subsystem), as is
                        durability/checksum.cc (it implements the verified
                        read itself).

Usage:
  tools/lint.py              lint the repo (exit 1 on findings)
  tools/lint.py --self-test  run against tools/lint_fixtures/ and verify
                             each bad fixture trips exactly its rule
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join("tools", "lint_fixtures")

# Directories scanned in normal mode, relative to repo root.
SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
SKIP_DIR_NAMES = {".git", "build", "lint_fixtures"}
SKIP_DIR_PREFIXES = ("build-",)

HEADER_EXTS = (".h", ".hpp")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

ALLOW_NEW_TAG = "lint:allow-new"
ALLOW_PUT_COPY_TAG = "lint:allow-put-copy"
ALLOW_UNVERIFIED_READ_TAG = "lint:allow-unverified-read"

GUARD_RE = re.compile(r"^#ifndef\s+(\S+)\s*$", re.MULTILINE)
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
METRIC_RE = re.compile(r"\.(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")
LABELED_NAME_RE = re.compile(r"\bLabeledName\(\s*\"([^\"]+)\"")
NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:<]")
SMART_PTR_WRAP_RE = re.compile(r"(?:unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*new\b")
STD_SYNC_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b"
    r"|\bpthread_(?:mutex|rwlock|cond|spin)[a-z_]*\b"
)
# A Mutex/SharedMutex *declaration*: type, identifier, then an
# initializer or `;`. References/pointers (`Mutex& mu`) and other types
# (MutexLock) do not match.
MUTEX_DECL_RE = re.compile(
    r"\b(?:slim::)?(?:Mutex|SharedMutex)\s+[A-Za-z_]\w*\s*(.*)$")
REBUILD_ENTRY_RE = re.compile(r"\bDropLocalState\s*\(")
COMMENT_RE = re.compile(r"//.*$")
PUT_CALL_RE = re.compile(r"(?:->|\.)\s*Put\s*\(")
OSS_READ_RE = re.compile(r"\b(\w*(?:store|oss)_?)\s*(?:->|\.)\s*Get(?:Range)?\s*\(")
BARE_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")
STRING_DECL_RE = re.compile(r"std::string\s+(?:&&?\s*)?([A-Za-z_]\w*)\s*[;=,(){]")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def expected_guard(rel_path):
    """src/common/status.h -> SLIMSTORE_COMMON_STATUS_H_ (src/ stripped,
    other top dirs kept: bench/bench_util.h -> SLIMSTORE_BENCH_BENCH_UTIL_H_)."""
    parts = rel_path.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "SLIMSTORE_" + stem.upper() + "_"


def strip_line_comment(line):
    return COMMENT_RE.sub("", line)


def check_include_guard(rel_path, text, findings):
    match = GUARD_RE.search(text)
    want = expected_guard(rel_path)
    if match is None:
        findings.append(
            Finding("include-guard", rel_path, 1,
                    f"missing include guard (expected {want})"))
        return
    got = match.group(1)
    line = text[: match.start()].count("\n") + 1
    if got != want:
        findings.append(
            Finding("include-guard", rel_path, line,
                    f"include guard {got} does not match path (expected {want})"))
    elif f"#define {want}" not in text:
        findings.append(
            Finding("include-guard", rel_path, line,
                    f"#ifndef {want} has no matching #define"))


def check_using_namespace(rel_path, lines, findings):
    for i, line in enumerate(lines, 1):
        if USING_NAMESPACE_RE.match(strip_line_comment(line)):
            findings.append(
                Finding("using-namespace", rel_path, i,
                        "`using namespace` in a header leaks into every includer"))


def check_raw_new(rel_path, lines, findings):
    for i, line in enumerate(lines, 1):
        # The tag may sit on the previous line when clang-format wraps
        # the allocation onto its own line.
        if ALLOW_NEW_TAG in line or (i >= 2 and ALLOW_NEW_TAG in lines[i - 2]):
            continue
        code = strip_line_comment(line)
        if NEW_RE.search(code) and not SMART_PTR_WRAP_RE.search(code):
            findings.append(
                Finding("raw-new", rel_path, i,
                        "raw `new`: use std::make_unique/make_shared "
                        f"(or tag `// {ALLOW_NEW_TAG}` with a reason)"))


def check_std_mutex(rel_path, lines, findings):
    norm = rel_path.replace(os.sep, "/")
    # mutex.h wraps the std primitives; lockdep.cc implements the
    # instrumentation those wrappers call into, so it must use a raw
    # std::mutex (an instrumented one would recurse into its own hooks).
    if norm in ("src/common/mutex.h", "src/common/thread_annotations.h",
                "src/common/lockdep.cc"):
        return
    for i, line in enumerate(lines, 1):
        m = STD_SYNC_RE.search(strip_line_comment(line))
        if m:
            findings.append(
                Finding("std-mutex", rel_path, i,
                        f"{m.group(0)} bypasses thread-safety analysis; "
                        "use slim::Mutex/MutexLock/CondVar (common/mutex.h)"))


def check_mutex_named(rel_path, lines, findings):
    norm = rel_path.replace(os.sep, "/")
    if norm == "src/common/mutex.h":
        return
    for i, line in enumerate(lines, 1):
        m = MUTEX_DECL_RE.search(strip_line_comment(line))
        if not m:
            continue
        rest = m.group(1).strip()
        # Only declarations: an initializer list/paren or a bare `;`.
        if not rest.startswith((";", "{", "(")):
            continue
        nxt = strip_line_comment(lines[i]) if i < len(lines) else ""
        # Named when a string literal opens the initializer (possibly
        # wrapped onto the next line by clang-format).
        if '"' in rest or (rest in ("{", "(") and nxt.lstrip().startswith('"')):
            continue
        findings.append(
            Finding("mutex-named", rel_path, i,
                    "Mutex/SharedMutex declared without a lock-class name "
                    'literal; write e.g. `Mutex mu_{"subsys.what"};` — the '
                    "name keys lockdep ordering, lock.<name>.* metrics, and "
                    "tools/lock_hierarchy.json"))


def check_cache_declares_rebuild(rel_path, lines, findings):
    """The rebuildable-state contract (src/common/rebuildable.h): a
    mutex-guarded class declared in an L-node cache directory header is
    process-local state over OSS-resident truth, and SlimStore::Rebuild
    must be able to reset it — so the header must declare the contract's
    entry point, DropLocalState()."""
    parts = rel_path.replace(os.sep, "/").split("/")
    if len(parts) < 3 or parts[0] != "src" or parts[1] not in ("index",
                                                               "lnode"):
        return
    first_mutex_line = None
    has_entry = False
    for i, line in enumerate(lines, 1):
        code = strip_line_comment(line)
        if REBUILD_ENTRY_RE.search(code):
            has_entry = True
        m = MUTEX_DECL_RE.search(code)
        if (m and m.group(1).strip().startswith((";", "{", "("))
                and first_mutex_line is None):
            first_mutex_line = i
    if first_mutex_line is not None and not has_entry:
        findings.append(
            Finding("cache-declares-rebuild", rel_path, first_mutex_line,
                    "mutex-guarded L-node cache class declares no "
                    "`DropLocalState()`; every local structure must be "
                    "rebuildable from OSS (src/common/rebuildable.h)"))


def split_call_args(text, open_paren):
    """Splits the balanced argument list starting at text[open_paren]
    ('(') into top-level arguments. Returns (args, end_index) or
    (None, open_paren) when the parens never balance (macro soup)."""
    depth = 0
    args = []
    start = open_paren + 1
    for i in range(open_paren, len(text)):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args, i
        elif c == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return None, open_paren


def check_oss_put_copy(rel_path, text, lines, findings):
    # Only identifiers declared as std::string in this file are
    # interesting: a bare ContainerId or int passed by value is free, a
    # bare string is a silent deep copy of an object payload.
    string_idents = set(STRING_DECL_RE.findall(text))
    for match in PUT_CALL_RE.finditer(text):
        open_paren = match.end() - 1
        args, _ = split_call_args(text, open_paren)
        if not args or len(args) < 2:
            continue
        value_arg = args[-1].strip()
        if not BARE_IDENT_RE.match(value_arg):
            continue
        if value_arg not in string_idents:
            continue
        line = text[: match.start()].count("\n") + 1
        context = lines[line - 1]
        prev = lines[line - 2] if line >= 2 else ""
        if ALLOW_PUT_COPY_TAG in context or ALLOW_PUT_COPY_TAG in prev:
            continue
        findings.append(
            Finding("oss-put-copy", rel_path, line,
                    f"Put(..., {value_arg}) copies the payload; pass "
                    f"std::move({value_arg}) (or tag "
                    f"`// {ALLOW_PUT_COPY_TAG}` with a reason)"))


def check_oss_verified_read(rel_path, lines, findings):
    norm = rel_path.replace(os.sep, "/")
    if norm == "src/durability/checksum.cc" or norm.startswith("src/baselines/"):
        return
    for i, line in enumerate(lines, 1):
        # The tag may sit on the previous line, or on the continuation
        # line when the call's argument list wraps.
        nearby = lines[max(0, i - 2): i + 1]
        if any(ALLOW_UNVERIFIED_READ_TAG in l for l in nearby):
            continue
        m = OSS_READ_RE.search(strip_line_comment(line))
        if m:
            findings.append(
                Finding("oss-verified-read", rel_path, i,
                        f"raw object-store read on `{m.group(1)}` returns "
                        "payload bytes without a CRC32C check; use "
                        "durability::GetVerified (or tag "
                        f"`// {ALLOW_UNVERIFIED_READ_TAG}` with a reason)"))


def collect_metric_sites(rel_path, lines, sites):
    for i, line in enumerate(lines, 1):
        for name in METRIC_RE.findall(strip_line_comment(line)):
            sites.setdefault(name, []).append((rel_path, i))


def collect_labeled_metric_sites(rel_path, lines, sites):
    for i, line in enumerate(lines, 1):
        for name in LABELED_NAME_RE.findall(strip_line_comment(line)):
            sites.setdefault(name, []).append((rel_path, i))


def iter_files(root, rel_dirs):
    for rel_dir in rel_dirs:
        top = os.path.join(root, rel_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES
                and not d.startswith(SKIP_DIR_PREFIXES))
            for fname in sorted(filenames):
                if fname.endswith(SOURCE_EXTS):
                    path = os.path.join(dirpath, fname)
                    yield os.path.relpath(path, root)


def lint_file(root, rel_path, metric_sites, labeled_sites, findings):
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        text = f.read()
    lines = text.splitlines()
    is_header = rel_path.endswith(HEADER_EXTS)
    top = rel_path.split(os.sep)[0]

    if is_header and top in ("src", "bench"):
        check_include_guard(rel_path, text, findings)
    if is_header:
        check_using_namespace(rel_path, lines, findings)
    if is_header and top == "src":
        check_cache_declares_rebuild(rel_path, lines, findings)
    if top == "src":
        check_raw_new(rel_path, lines, findings)
        check_std_mutex(rel_path, lines, findings)
        check_mutex_named(rel_path, lines, findings)
        check_oss_verified_read(rel_path, lines, findings)
        collect_metric_sites(rel_path, lines, metric_sites)
        collect_labeled_metric_sites(rel_path, lines, labeled_sites)
    if top in ("src", "tools"):
        check_oss_put_copy(rel_path, text, lines, findings)


def check_metric_uniqueness(metric_sites, findings):
    for name, sites in sorted(metric_sites.items()):
        if len(sites) > 1:
            for path, line in sites:
                others = ", ".join(
                    f"{p}:{l}" for p, l in sites if (p, l) != (path, line))
                findings.append(
                    Finding("metric-once", path, line,
                            f"metric \"{name}\" registered at {len(sites)} "
                            f"sites (also {others}); share the handle instead"))


def check_labeled_metric_uniqueness(labeled_sites, findings):
    for name, sites in sorted(labeled_sites.items()):
        if len(sites) > 1:
            for path, line in sites:
                others = ", ".join(
                    f"{p}:{l}" for p, l in sites if (p, l) != (path, line))
                findings.append(
                    Finding("metric-labels", path, line,
                            f"labeled metric family \"{name}\" declared at "
                            f"{len(sites)} sites (also {others}); declare "
                            "the name + label set once and route callers "
                            "through that helper"))


def run_lint(root, rel_dirs=SCAN_DIRS):
    findings = []
    metric_sites = {}
    labeled_sites = {}
    count = 0
    for rel_path in iter_files(root, rel_dirs):
        lint_file(root, rel_path, metric_sites, labeled_sites, findings)
        count += 1
    check_metric_uniqueness(metric_sites, findings)
    check_labeled_metric_uniqueness(labeled_sites, findings)
    return findings, count


def self_test():
    """Every bad_<rule>* fixture must trip exactly its rule; good_* must
    pass clean. Fixtures live in tools/lint_fixtures/ inside a fake tree
    (fixture 'src/...' paths) so path-scoped rules apply."""
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print(f"self-test: fixture dir {FIXTURE_DIR} missing", file=sys.stderr)
        return 1
    failures = []
    findings, count = run_lint(fixture_root)
    if count == 0:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    by_file = {}
    for f in findings:
        by_file.setdefault(os.path.basename(f.path), set()).add(f.rule)

    for rel_path in iter_files(fixture_root, SCAN_DIRS):
        base = os.path.basename(rel_path)
        rules = by_file.get(base, set())
        if base.startswith("bad_"):
            expect = base[len("bad_"):].rsplit(".", 1)[0]
            expect = re.sub(r"_\d+$", "", expect).replace("_", "-")
            if expect not in rules:
                failures.append(f"{rel_path}: expected [{expect}] to fire, "
                                f"got {sorted(rules) or 'nothing'}")
            if rules - {expect}:
                failures.append(f"{rel_path}: unexpected extra rules "
                                f"{sorted(rules - {expect})}")
        elif base.startswith("good_") and rules:
            failures.append(f"{rel_path}: clean fixture tripped "
                            f"{sorted(rules)}")

    if failures:
        print("lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint self-test ok ({count} fixtures)")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    findings, count = run_lint(REPO_ROOT)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s) in {count} files")
        return 1
    print(f"lint: clean ({count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
