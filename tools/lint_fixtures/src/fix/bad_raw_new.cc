// Fixture: raw `new` without a smart-pointer wrapper or allow tag.
int* FixtureRawNew() { return new int(42); }
