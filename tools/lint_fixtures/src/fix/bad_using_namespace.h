#ifndef SLIMSTORE_FIX_BAD_USING_NAMESPACE_H_
#define SLIMSTORE_FIX_BAD_USING_NAMESPACE_H_

#include <string>

// Fixture: namespace-level using-directive in a header.
using namespace std;

#endif  // SLIMSTORE_FIX_BAD_USING_NAMESPACE_H_
