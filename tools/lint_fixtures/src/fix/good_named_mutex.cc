// Fixture: Mutex/SharedMutex declarations carrying lock-class names,
// including a clang-format-wrapped initializer; must produce zero
// findings.
#include "common/mutex.h"

class GoodFixture {
  slim::Mutex mu_{"fix.good"};
  slim::SharedMutex shared_mu_{
      "fix.good_shared"};

  void Use(slim::Mutex& ref, slim::Mutex* ptr);  // Not declarations.
};
