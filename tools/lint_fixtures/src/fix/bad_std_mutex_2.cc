// Fixture: raw pthread primitives bypass lockdep and the annotated
// slim::Mutex wrappers entirely.
#include <pthread.h>

pthread_mutex_t fixture_pmu = PTHREAD_MUTEX_INITIALIZER;
