// Fixture: sanctioned `new` forms — a private-constructor factory that
// wraps `new` in a smart pointer on the same line, and a tagged leaky
// singleton — plus a metric registered exactly once.
#include <memory>

struct FixtureWidget {
  static std::unique_ptr<FixtureWidget> Make() {
    return std::unique_ptr<FixtureWidget>(new FixtureWidget());
  }
};

struct FixtureSingleton {
  static FixtureSingleton& Get() {
    static FixtureSingleton* instance = new FixtureSingleton();  // lint:allow-new (leaky singleton)
    return *instance;
  }
};

struct FixtureRegistry3 {
  int& counter(const char*);
};
void FixtureMetricUnique(FixtureRegistry3& r) {
  r.counter("fixture.unique.metric");
}
