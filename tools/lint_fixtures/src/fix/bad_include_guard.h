#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

// Fixture: guard does not match the path-derived SLIMSTORE_... form.
inline int FixtureBadGuard() { return 1; }

#endif  // WRONG_GUARD_NAME_H
