// Fixture: the metric name below is also registered in
// bad_metric_once_2.cc, so two subsystems would alias one time series.
struct FixtureRegistry1 {
  int& counter(const char*);
};
void FixtureMetricA(FixtureRegistry1& r) {
  r.counter("fixture.duplicated.metric");
}
