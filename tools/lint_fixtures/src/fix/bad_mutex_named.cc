// Fixture: a slim::Mutex declared without a lock-class name literal.
#include "common/mutex.h"

class BadFixture {
  slim::Mutex mu_;
};
