// Fixture: moved strings, literals, cheap ids and tagged intentional
// copies must all pass [oss-put-copy] clean.
#include <string>
#include <utility>

struct Store {
  int Put(const std::string& key, std::string value);
};

int WriteBlob(Store* store, unsigned long long container_id) {
  std::string payload = "big container payload";
  int rc = store->Put("moved", std::move(payload));
  rc += store->Put("literal", "inline value");
  rc += store->Put("cheap", static_cast<char>(container_id));
  std::string kept = "retry loop keeps the value";
  rc += store->Put("kept", kept);  // lint:allow-put-copy retried below
  rc += store->Put("kept-again", std::move(kept));
  return rc;
}
