// Fixture: verified reads, tagged intentional raw reads (same line and
// wrapped continuation), and pass-through decorator reads on `inner_`
// must all pass [oss-verified-read] clean.
#include <string>

struct ObjectStore {
  std::string Get(const std::string& key);
  std::string GetRange(const std::string& key, unsigned long offset,
                       unsigned long len);
};

namespace durability {
std::string GetVerified(ObjectStore& store, const std::string& key, int);
}  // namespace durability

struct Reader {
  ObjectStore* store_;
  ObjectStore* inner_;
  std::string ReadVerified(const std::string& key) {
    return durability::GetVerified(*store_, key, 0);
  }
  std::string ProbeReplica(const std::string& key) {
    return store_->Get(key);  // lint:allow-unverified-read scrub probe
  }
  std::string ReadWrapped(const std::string& long_key_name_forcing_wrap) {
    return store_->GetRange(long_key_name_forcing_wrap, 0,
                            4096);  // lint:allow-unverified-read range read
  }
  std::string PassThrough(const std::string& key) { return inner_->Get(key); }
};
