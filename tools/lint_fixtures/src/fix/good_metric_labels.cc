// Fixture: one declaring site per labeled family is fine, even when the
// same helper builds several label values from it.
namespace fixture_obs3 {
const char* LabeledName(const char*, int);
}
const char* FixtureLabeledSeries(int tenant) {
  return fixture_obs3::LabeledName("fixture.labeled.unique", tenant);
}
