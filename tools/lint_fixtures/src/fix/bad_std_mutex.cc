// Fixture: raw std::mutex instead of the annotated slim::Mutex wrapper.
#include <mutex>

std::mutex fixture_mu;
