// Fixture: raw Get/GetRange on an object-store handle returns payload
// bytes without a CRC32C check and must trip [oss-verified-read].
#include <string>

struct ObjectStore {
  std::string Get(const std::string& key);
  std::string GetRange(const std::string& key, unsigned long offset,
                       unsigned long len);
};

struct MetaReader {
  ObjectStore* store_;
  std::string ReadMeta(const std::string& key) { return store_->Get(key); }
  std::string ReadSpan(const std::string& key) {
    return store_->GetRange(key, 0, 16);
  }
};
