#ifndef SLIMSTORE_FIX_GOOD_CLEAN_H_
#define SLIMSTORE_FIX_GOOD_CLEAN_H_

// Fixture: a fully conforming header; must produce zero findings.
namespace slim::fix {

inline int GoodClean() { return 0; }

}  // namespace slim::fix

#endif  // SLIMSTORE_FIX_GOOD_CLEAN_H_
