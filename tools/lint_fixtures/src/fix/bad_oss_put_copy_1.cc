// Fixture: a named std::string passed to Put without std::move must
// trip [oss-put-copy] — the payload is silently deep-copied.
#include <string>

struct Store {
  int Put(const std::string& key, std::string value);
};

std::string MakeKey(int a, int b);

int WriteBlob(Store* store) {
  std::string payload = "big container payload";
  return store->Put(MakeKey(1, 2), payload);
}
