// Fixture: the labeled metric family below is also declared in
// bad_metric_labels_2.cc with a different label set — the exporter
// would see inconsistent series under one family name.
namespace fixture_obs1 {
const char* LabeledName(const char*, int);
}
void FixtureLabeledA() {
  fixture_obs1::LabeledName("fixture.labeled.family", 1);
}
