// Fixture: second registration site for the same metric name; see
// bad_metric_once_1.cc.
struct FixtureRegistry2 {
  int& counter(const char*);
};
void FixtureMetricB(FixtureRegistry2& r) {
  r.counter("fixture.duplicated.metric");
}
