// Fixture: second declaring site for the same labeled metric family;
// see bad_metric_labels_1.cc.
namespace fixture_obs2 {
const char* LabeledName(const char*, int);
}
void FixtureLabeledB() {
  fixture_obs2::LabeledName("fixture.labeled.family", 2);
}
