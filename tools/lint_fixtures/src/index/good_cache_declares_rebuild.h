#ifndef SLIMSTORE_INDEX_GOOD_CACHE_DECLARES_REBUILD_H_
#define SLIMSTORE_INDEX_GOOD_CACHE_DECLARES_REBUILD_H_

// Fixture: a mutex-guarded cache class that honors the
// rebuildable-state contract by declaring DropLocalState().
namespace slim::index {

class RebuildableCache {
 public:
  void Put(int key, int value);
  // Rebuildable-state contract entry point (src/common/rebuildable.h).
  void DropLocalState();

 private:
  Mutex mu_{"index.rebuildable_cache"};
};

}  // namespace slim::index

#endif  // SLIMSTORE_INDEX_GOOD_CACHE_DECLARES_REBUILD_H_
