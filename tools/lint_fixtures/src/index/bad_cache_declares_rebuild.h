#ifndef SLIMSTORE_INDEX_BAD_CACHE_DECLARES_REBUILD_H_
#define SLIMSTORE_INDEX_BAD_CACHE_DECLARES_REBUILD_H_

// Fixture: a mutex-guarded cache class in an L-node cache directory
// with no DropLocalState() — it violates the rebuildable-state
// contract, since SlimStore::Rebuild cannot reset it after a crash.
namespace slim::index {

class LeakyCache {
 public:
  void Put(int key, int value);

 private:
  Mutex mu_{"index.leaky_cache"};
};

}  // namespace slim::index

#endif  // SLIMSTORE_INDEX_BAD_CACHE_DECLARES_REBUILD_H_
