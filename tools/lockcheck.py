#!/usr/bin/env python3
"""SlimStore static lock-hierarchy checker (companion to the runtime
lockdep in src/common/lockdep.h).

Every slim::Mutex / slim::SharedMutex is declared with a lock-class name
literal (`Mutex mu_{"index.dedup_cache"};`). This tool cross-checks
those declarations, the lock-acquisition structure of the source, and
the committed rank manifest tools/lock_hierarchy.json — without running
anything:

  unnamed-mutex       a Mutex/SharedMutex declaration with no name
                      literal (the lockdep runtime, the lock.<name>.*
                      metrics, and this tool all key on the name).
  unranked-class      a declared lock class missing from the manifest.
  stale-manifest      a manifest class no declaration mentions anymore.
  duplicate-rank      two manifest classes share a rank (the hierarchy
                      must be a total order).
  static-cycle        the static acquired-before graph (nested
                      MutexLock/WriterMutexLock/ReaderMutexLock scopes,
                      direct .Lock() calls, and SLIM_ACQUIRED_BEFORE /
                      SLIM_ACQUIRED_AFTER annotations) contains a cycle
                      — the textbook ABBA deadlock, visible without
                      executing either path.
  rank-order          a static acquired-before edge runs from a
                      higher-ranked class to a lower-ranked one
                      (suppressed while a static-cycle is reported: fix
                      the cycle first, ranks are meaningless inside it).
  excludes-violated   a call to a function annotated SLIM_EXCLUDES(mu)
                      — a self-locking API whose callers must NOT hold
                      mu — from a scope that holds mu (the callee's
                      internal acquisition would self-deadlock).
  requires-reacquire  a function annotated SLIM_REQUIRES(mu) acquires
                      mu again in its own body (slim::Mutex is not
                      reentrant; this deadlocks unconditionally).

Member references resolve to lock classes conservatively: a `mu_` in
file F matches declarations in F or its same-stem header/source pair,
falling back to the member name being globally unique. Anything
ambiguous is skipped — this tool prefers missing an edge to inventing
one.

Usage:
  tools/lockcheck.py              check src/ against tools/lock_hierarchy.json
  tools/lockcheck.py --verbose    also print every static edge found
  tools/lockcheck.py --self-test  run against tools/lockcheck_fixtures/
"""

import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join("tools", "lockcheck_fixtures")
MANIFEST = os.path.join("tools", "lock_hierarchy.json")

SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

# A Mutex/SharedMutex declaration: optional attribute macros between the
# declarator and the initializer, then `{"name"}` / `("name")` / nothing.
DECL_RE = re.compile(
    r"\b(?:slim::)?(Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*"
    r"((?:SLIM_\w+\s*\([^()]*\)\s*)*)"
    r"(\{[^;{}]*\}|\([^;()]*\))?\s*;")
NAME_LITERAL_RE = re.compile(r"\"([^\"]+)\"")
ACQ_BEFORE_RE = re.compile(r"SLIM_ACQUIRED_BEFORE\s*\(([^()]*)\)")
ACQ_AFTER_RE = re.compile(r"SLIM_ACQUIRED_AFTER\s*\(([^()]*)\)")
EXCLUDES_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\([^()]*\)\s*(?:const\s*)?"
    r"SLIM_EXCLUDES\s*\(([^()]*)\)")
REQUIRES_RE = re.compile(r"SLIM_REQUIRES(?:_SHARED)?\s*\(([^()]*)\)")
# Acquisitions: RAII scopes and direct Lock()/LockShared() calls.
RAII_RE = re.compile(
    r"\b(?:Writer|Reader)?MutexLock\s+\w+\s*\(\s*([^),]+)")
LOCK_CALL_RE = re.compile(
    r"([A-Za-z_][\w.\->]*)\s*\.\s*Lock(?:Shared)?\s*\(")
UNLOCK_CALL_RE = re.compile(
    r"([A-Za-z_][\w.\->]*)\s*\.\s*Unlock(?:Shared)?\s*\(")

# The wrapper/engine itself declares no lock classes worth checking.
SKIP_FILES = {"src/common/mutex.h"}


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text):
    """Removes // and /* */ comments, preserving line structure so
    offsets still map to line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            seg = text[i: n if j < 0 else j + 2]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text[:pos].count("\n") + 1


class Decl:
    def __init__(self, kind, member, cls, path, line):
        self.kind = kind      # "Mutex" | "SharedMutex"
        self.member = member  # e.g. "mu_"
        self.cls = cls        # lock-class name, None if unnamed
        self.path = path
        self.line = line


class Edge:
    def __init__(self, frm, to, path, line, why):
        self.frm = frm
        self.to = to
        self.path = path
        self.line = line
        self.why = why

    def pair(self):
        return (self.frm, self.to)


def iter_sources(root):
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for fname in sorted(filenames):
            if fname.endswith(SOURCE_EXTS):
                path = os.path.join(dirpath, fname)
                yield os.path.relpath(path, root)


def paired_stems(rel_path):
    """restore_pipeline.cc <-> restore_pipeline.h in the same dir."""
    stem, ext = os.path.splitext(rel_path)
    if ext in (".cc", ".cpp"):
        return {rel_path, stem + ".h", stem + ".hpp"}
    return {rel_path, stem + ".cc", stem + ".cpp"}


class Model:
    """Everything parsed out of one source tree."""

    def __init__(self):
        self.decls = []                 # [Decl]
        self.by_member = {}             # member -> [Decl]
        self.edges = []                 # [Edge]
        self.excludes_funcs = {}        # func name -> set of lock classes
        self.findings = []

    def resolve(self, expr, rel_path):
        """`job.mu` / `it->second->mu_` / `mu_` -> lock-class name, or
        None when ambiguous/unknown."""
        member = re.split(r"->|\.", expr)[-1].strip(" \t&*")
        cands = self.by_member.get(member)
        if not cands:
            return None
        named = [d for d in cands if d.cls is not None]
        if not named:
            return None
        local = [d for d in named if d.path in paired_stems(rel_path)]
        pool = local if local else named
        classes = {d.cls for d in pool}
        if len(classes) == 1:
            return classes.pop()
        return None  # Ambiguous: never guess.


def parse_decls(model, rel_path, text):
    """Named/unnamed declarations plus SLIM_ACQUIRED_BEFORE/AFTER
    annotation edges (resolved in a second pass, after every file's
    declarations are known)."""
    pending = []
    for m in DECL_RE.finditer(text):
        kind, member, attrs, init = m.group(1), m.group(2), m.group(3), m.group(4)
        line = line_of(text, m.start())
        name = None
        if init:
            lit = NAME_LITERAL_RE.search(init)
            if lit:
                name = lit.group(1)
        decl = Decl(kind, member, name, rel_path, line)
        model.decls.append(decl)
        model.by_member.setdefault(member, []).append(decl)
        if name is None:
            model.findings.append(Finding(
                "unnamed-mutex", rel_path, line,
                f"{kind} `{member}` has no lock-class name literal; write "
                f'`{kind} {member}{{"subsys.what"}};`'))
        if attrs:
            for rx, before in ((ACQ_BEFORE_RE, True), (ACQ_AFTER_RE, False)):
                for am in rx.finditer(attrs):
                    for other in am.group(1).split(","):
                        other = other.strip()
                        if other:
                            pending.append((decl, other, before, line))
    return pending


def resolve_annotation_edges(model, pending):
    for decl, other, before, line in pending:
        other_cls = model.resolve(other, decl.path)
        if decl.cls is None or other_cls is None:
            continue
        frm, to = (decl.cls, other_cls) if before else (other_cls, decl.cls)
        model.edges.append(Edge(frm, to, decl.path, line,
                                "SLIM_ACQUIRED_BEFORE" if before
                                else "SLIM_ACQUIRED_AFTER"))


def scan_scopes(model, rel_path, text):
    """Walks the file, tracking brace depth and the stack of locks held
    by RAII scopes / direct Lock() calls; every acquisition under a held
    lock records a static acquired-before edge."""
    events = []  # (pos, kind, payload)
    for m in RAII_RE.finditer(text):
        events.append((m.start(), "raii", m.group(1).strip()))
    for m in LOCK_CALL_RE.finditer(text):
        events.append((m.start(), "lock", m.group(1).strip()))
    for m in UNLOCK_CALL_RE.finditer(text):
        events.append((m.start(), "unlock", m.group(1).strip()))
    if model.excludes_funcs:
        call_re = re.compile(
            r"\b(" + "|".join(map(re.escape, sorted(model.excludes_funcs)))
            + r")\s*\(")
        for m in call_re.finditer(text):
            # Unqualified (same-object) calls only: `other->Put(...)`
            # acquires a *different* instance's lock, which is ordering,
            # not self-deadlock. `this->` still counts.
            before = text[:m.start()].rstrip()
            if before.endswith(".") or (before.endswith("->") and
                                        not before.endswith("this->")):
                continue
            events.append((m.start(), "call", m.group(1)))
    events.sort()
    ei = 0

    depth = 0
    held = []  # [(entry_depth, class_name, member)]
    for pos, ch in enumerate(text):
        while ei < len(events) and events[ei][0] == pos:
            _, kind, expr = events[ei]
            ei += 1
            if kind == "call":
                # Held scopes only — at namespace/class scope nothing is
                # held, so definitions of the function don't self-match.
                if held:
                    banned = model.excludes_funcs.get(expr, set())
                    for _, held_cls, _ in held:
                        if held_cls in banned:
                            model.findings.append(Finding(
                                "excludes-violated", rel_path,
                                line_of(text, pos),
                                f"call to `{expr}()` (a self-locking API "
                                f"annotated SLIM_EXCLUDES of \"{held_cls}\") "
                                f"while holding \"{held_cls}\"; the callee's "
                                "internal acquisition self-deadlocks"))
                continue
            cls = model.resolve(expr, rel_path)
            member = re.split(r"->|\.", expr)[-1].strip(" \t&*")
            if kind in ("raii", "lock"):
                # Unresolvable (ambiguous) references are not tracked at
                # all: better to miss an edge than to invent one.
                if cls is not None:
                    line = line_of(text, pos)
                    for _, held_cls, _ in held:
                        if held_cls != cls:
                            model.edges.append(Edge(
                                held_cls, cls, rel_path, line,
                                "nested scope"))
                    held.append((depth, cls, member))
            else:  # unlock
                for i in range(len(held) - 1, -1, -1):
                    if held[i][2] == member:
                        held.pop(i)
                        break
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            held = [h for h in held if h[0] <= depth]


def extract_body(text, after):
    """Returns (body_start, body_end) of the `{...}` that begins the
    next statement after offset `after`, or None for a declaration
    (`;` comes first) or anything unparseable."""
    semi = text.find(";", after)
    brace = text.find("{", after)
    if brace < 0 or (0 <= semi < brace):
        return None
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return (brace, i)
    return None


def collect_excludes(model, rel_path, text):
    """SLIM_EXCLUDES(mu) marks a self-locking API: it acquires mu
    internally, so callers must not already hold it. Records function
    name -> excluded lock classes for the call-site check in
    scan_scopes."""
    for m in EXCLUDES_RE.finditer(text):
        func = m.group(1)
        for name in m.group(2).split(","):
            cls = model.resolve(name.strip(), rel_path)
            if cls is not None:
                model.excludes_funcs.setdefault(func, set()).add(cls)


def check_requires(model, rel_path, text):
    """A SLIM_REQUIRES(mu) function runs with mu already held;
    re-acquiring mu in its body deadlocks unconditionally."""
    for m in REQUIRES_RE.finditer(text):
        required = set()
        for name in m.group(1).split(","):
            cls = model.resolve(name.strip(), rel_path)
            if cls is not None:
                required.add(cls)
        if not required:
            continue
        span = extract_body(text, m.end())
        if span is None:
            continue
        body = text[span[0]:span[1]]
        for am in list(RAII_RE.finditer(body)) + \
                list(LOCK_CALL_RE.finditer(body)):
            cls = model.resolve(am.group(1).strip(), rel_path)
            if cls in required:
                line = line_of(text, span[0] + am.start())
                model.findings.append(Finding(
                    "requires-reacquire", rel_path, line,
                    f"function is annotated SLIM_REQUIRES of lock class "
                    f"\"{cls}\" (already held on entry) but re-acquires it "
                    "here; slim::Mutex is not reentrant"))


def build_model(root, verbose=False):
    model = Model()
    pending = []
    texts = {}
    for rel_path in iter_sources(root):
        norm = rel_path.replace(os.sep, "/")
        if norm in SKIP_FILES:
            continue
        with open(os.path.join(root, rel_path), encoding="utf-8") as f:
            texts[rel_path] = strip_comments(f.read())
    for rel_path, text in texts.items():
        pending.extend(parse_decls(model, rel_path, text))
    resolve_annotation_edges(model, pending)
    for rel_path, text in texts.items():
        collect_excludes(model, rel_path, text)
    for rel_path, text in texts.items():
        scan_scopes(model, rel_path, text)
        check_requires(model, rel_path, text)
    if verbose:
        for e in sorted(model.edges, key=lambda e: (e.frm, e.to)):
            print(f"edge {e.frm} -> {e.to}  ({e.why} at {e.path}:{e.line})")
    return model


def find_cycle(edges):
    """Returns one cycle as a list of class names, or None."""
    graph = {}
    for e in edges:
        graph.setdefault(e.frm, set()).add(e.to)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if c == WHITE:
                cyc = visit(nxt)
                if cyc:
                    return cyc
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            cyc = visit(node)
            if cyc:
                return cyc
    return None


def check_manifest(model, manifest_path):
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, ValueError) as err:
        model.findings.append(Finding(
            "stale-manifest", manifest_path, 1,
            f"cannot read manifest: {err}"))
        return
    rel_manifest = os.path.basename(manifest_path)
    ranks = {}
    seen_ranks = {}
    for entry in manifest.get("classes", []):
        name, rank = entry.get("name"), entry.get("rank")
        ranks[name] = rank
        if rank in seen_ranks:
            model.findings.append(Finding(
                "duplicate-rank", rel_manifest, 1,
                f"classes \"{seen_ranks[rank]}\" and \"{name}\" both have "
                f"rank {rank}; the hierarchy must be a total order"))
        seen_ranks[rank] = name

    declared = {}
    for d in model.decls:
        if d.cls is not None and d.cls not in declared:
            declared[d.cls] = d
    for cls, d in sorted(declared.items()):
        if cls not in ranks:
            model.findings.append(Finding(
                "unranked-class", d.path, d.line,
                f"lock class \"{cls}\" is not ranked in {rel_manifest}; "
                "add it with a rank consistent with its acquisition order"))
    for cls in sorted(ranks):
        if cls not in declared:
            model.findings.append(Finding(
                "stale-manifest", rel_manifest, 1,
                f"manifest ranks \"{cls}\" but no Mutex/SharedMutex "
                "declaration uses that name; remove the entry"))

    cycle = find_cycle(model.edges)
    if cycle:
        pretty = " -> ".join(cycle)
        sites = {}
        for e in model.edges:
            sites.setdefault(e.pair(), e)
        detail = "; ".join(
            f"{a}->{b} ({sites[(a, b)].why} at {sites[(a, b)].path}:"
            f"{sites[(a, b)].line})"
            for a, b in zip(cycle, cycle[1:]) if (a, b) in sites)
        first = sites.get((cycle[0], cycle[1]))
        model.findings.append(Finding(
            "static-cycle", first.path if first else rel_manifest,
            first.line if first else 1,
            f"static lock-order cycle (potential ABBA deadlock): {pretty}"
            + (f" [{detail}]" if detail else "")))
        return  # Ranks are meaningless inside a cycle; fix that first.

    reported = set()
    for e in model.edges:
        ra, rb = ranks.get(e.frm), ranks.get(e.to)
        if ra is None or rb is None or e.pair() in reported:
            continue
        if ra >= rb:
            reported.add(e.pair())
            model.findings.append(Finding(
                "rank-order", e.path, e.line,
                f"\"{e.frm}\" (rank {ra}) is acquired before \"{e.to}\" "
                f"(rank {rb}) here ({e.why}), but the manifest orders them "
                "the other way; re-rank or restructure the locking"))


def run_check(root, manifest_path, verbose=False):
    model = build_model(root, verbose=verbose)
    check_manifest(model, manifest_path)
    return model.findings


def self_test():
    """Each fixture dir is a miniature tree (src/ + lock_hierarchy.json).
    bad_<rule-with-underscores> must trip exactly that rule; good_* must
    come back clean."""
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print(f"self-test: fixture dir {FIXTURE_DIR} missing", file=sys.stderr)
        return 1
    failures = []
    cases = sorted(os.listdir(fixture_root))
    ran = 0
    for case in cases:
        case_dir = os.path.join(fixture_root, case)
        if not os.path.isdir(case_dir):
            continue
        ran += 1
        findings = run_check(case_dir,
                             os.path.join(case_dir, "lock_hierarchy.json"))
        rules = {f.rule for f in findings}
        if case.startswith("bad_"):
            expect = case[len("bad_"):].replace("_", "-")
            if expect not in rules:
                failures.append(f"{case}: expected [{expect}] to fire, got "
                                f"{sorted(rules) or 'nothing'}")
            if rules - {expect}:
                failures.append(f"{case}: unexpected extra rules "
                                f"{sorted(rules - {expect})}")
        elif case.startswith("good_") and rules:
            failures.append(f"{case}: clean fixture tripped {sorted(rules)}: "
                            + "; ".join(str(f) for f in findings))
    if ran == 0:
        print("self-test: no fixture cases found", file=sys.stderr)
        return 1
    if failures:
        print("lockcheck self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lockcheck self-test ok ({ran} cases)")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    verbose = "--verbose" in argv
    findings = run_check(REPO_ROOT, os.path.join(REPO_ROOT, MANIFEST),
                         verbose=verbose)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlockcheck: {len(findings)} finding(s)")
        return 1
    print("lockcheck: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
