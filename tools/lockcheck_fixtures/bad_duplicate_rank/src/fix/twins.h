// Two classes sharing one rank: the hierarchy must be a total order,
// otherwise their relative acquisition order is unchecked.
#include "common/mutex.h"

namespace fix {

class Twins {
 private:
  slim::Mutex left_mu_{"fix.left"};
  slim::Mutex right_mu_{"fix.right"};
};

}  // namespace fix
