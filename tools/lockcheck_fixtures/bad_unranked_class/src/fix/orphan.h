// Named lock class that the committed hierarchy does not rank.
#include "common/mutex.h"

namespace fix {

class Orphan {
 private:
  slim::Mutex mu_{"fix.orphan"};
};

}  // namespace fix
