#include "fix/store.h"

namespace fix {

void Store::Put(int v) {
  slim::MutexLock lock(mu_);
  TouchLocked();
  slim::MutexLock stats(stats_mu_);  // fix.store -> fix.stats: in order.
  total_ += v;
}

int Store::Total() const {
  slim::MutexLock stats(stats_mu_);
  return total_;
}

}  // namespace fix
