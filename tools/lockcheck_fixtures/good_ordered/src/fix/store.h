// Clean fixture: two ranked lock classes, nested in manifest order,
// with an annotation edge, a correctly-used SLIM_EXCLUDES self-locking
// API, and a SLIM_REQUIRES helper that does not re-acquire.
#include "common/mutex.h"

namespace fix {

class Store {
 public:
  void Put(int v) SLIM_EXCLUDES(mu_);
  int Total() const SLIM_EXCLUDES(stats_mu_);

  // Runs with mu_ held; touches guarded state without re-locking.
  void TouchLocked() SLIM_REQUIRES(mu_) { ++puts_; }

 private:
  mutable slim::Mutex mu_{"fix.store"};
  mutable slim::Mutex stats_mu_ SLIM_ACQUIRED_AFTER(mu_){"fix.stats"};
  int puts_ = 0;
  int total_ = 0;
};

}  // namespace fix
