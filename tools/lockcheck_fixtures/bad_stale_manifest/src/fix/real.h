// The manifest still ranks "fix.ghost", but no declaration uses that
// name any more (the class was renamed or deleted).
#include "common/mutex.h"

namespace fix {

class Real {
 private:
  slim::Mutex mu_{"fix.real"};
};

}  // namespace fix
