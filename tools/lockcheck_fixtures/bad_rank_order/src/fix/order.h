// The code nests fix.inner -> fix.outer, but the manifest ranks
// fix.outer (10) before fix.inner (20): acyclic, yet the committed
// hierarchy and the code disagree.
#include "common/mutex.h"

namespace fix {

struct Pipeline {
  void Flush();

  slim::Mutex outer_mu_{"fix.outer"};
  slim::Mutex inner_mu_{"fix.inner"};
};

}  // namespace fix
