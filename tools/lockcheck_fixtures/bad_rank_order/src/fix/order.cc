#include "fix/order.h"

namespace fix {

void Pipeline::Flush() {
  slim::MutexLock in(inner_mu_);
  slim::MutexLock out(outer_mu_);  // Contradicts the manifest order.
}

}  // namespace fix
