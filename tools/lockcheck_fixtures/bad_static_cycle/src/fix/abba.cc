#include "fix/abba.h"

namespace fix {

void Transfer::DebitFirst() {
  slim::MutexLock a(debit_mu_);
  slim::MutexLock b(credit_mu_);
}

void Transfer::CreditFirst() {
  slim::MutexLock b(credit_mu_);
  slim::MutexLock a(debit_mu_);
}

}  // namespace fix
