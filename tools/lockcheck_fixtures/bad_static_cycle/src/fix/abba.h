// ABBA fixture: DebitFirst() nests fix.debit -> fix.credit while
// CreditFirst() nests fix.credit -> fix.debit. The two static edges
// close a cycle: with one thread in each function, each holds the lock
// the other needs. tests/lockdep_test.cc drives the same shape at
// runtime under SLIM_LOCKDEP=ON and dies on the cycle-closing edge.
#include "common/mutex.h"

namespace fix {

struct Transfer {
  void DebitFirst();
  void CreditFirst();

  slim::Mutex debit_mu_{"fix.debit"};
  slim::Mutex credit_mu_{"fix.credit"};
};

}  // namespace fix
