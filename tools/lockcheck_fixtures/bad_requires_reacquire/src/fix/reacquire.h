// DrainLocked() runs with mu_ already held (SLIM_REQUIRES), then
// re-acquires it; slim::Mutex is not reentrant, so this deadlocks.
#include "common/mutex.h"

namespace fix {

class Queue {
 public:
  void DrainLocked() SLIM_REQUIRES(mu_) {
    slim::MutexLock again(mu_);
  }

 private:
  slim::Mutex mu_{"fix.queue"};
};

}  // namespace fix
