// A mutex with no lock-class name literal: invisible to the hierarchy,
// the runtime detector, and the lock.<class>.* metrics.
#include "common/mutex.h"

namespace fix {

class Widget {
 private:
  slim::Mutex mu_;
};

}  // namespace fix
