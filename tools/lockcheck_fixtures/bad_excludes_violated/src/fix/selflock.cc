#include "fix/selflock.h"

namespace fix {

void Cache::Refresh() {
  slim::MutexLock lock(mu_);
}

void Cache::Tick() {
  slim::MutexLock lock(mu_);
  Refresh();  // Deadlock: Refresh() re-acquires mu_ internally.
}

}  // namespace fix
