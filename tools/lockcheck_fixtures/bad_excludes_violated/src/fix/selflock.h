// Refresh() is a self-locking API (SLIM_EXCLUDES(mu_)): it acquires
// mu_ internally, so calling it while already holding mu_ deadlocks.
#include "common/mutex.h"

namespace fix {

class Cache {
 public:
  void Refresh() SLIM_EXCLUDES(mu_);
  void Tick();

 private:
  slim::Mutex mu_{"fix.cache"};
};

}  // namespace fix
