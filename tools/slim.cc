// slim — command-line interface to a SlimStore repository.
//
// The repository is a directory of objects (DiskObjectStore); swap in a
// real cloud ObjectStore binding to talk to actual OSS/S3.
//
//   slim -r REPO init [--replicas N]
//   slim -r REPO backup  FILE...           back up files (next version)
//   slim -r REPO restore FILE VERSION OUT  restore one version to OUT
//   slim -r REPO list [FILE]               list files / versions
//   slim -r REPO gnode                     run the offline G-node pass
//   slim -r REPO forget FILE VERSION       delete a version + GC
//   slim -r REPO space                     space report
//   slim -r REPO stats [--json|--prom]     metrics + job costs + trace spans
//   slim -r REPO stats --trace OUT.json    dump spans as Chrome trace JSON
//   slim -r REPO jobs [--tail N|--json]    read the job event journal
//   slim -r REPO jobs --by-tenant          per-tenant cost rollup
//   slim -r REPO rebuild                   reconstruct local state from OSS
//   slim -r REPO scrub                     detect corruption / lost replicas
//   slim -r REPO repair                    scrub + repair what redundancy allows
//   slim bench list                        list registered bench scenarios
//   slim bench run [--suite quick|full]    run scenarios, write BENCH json
//
// `slim bench` needs no repository: scenarios build their own simulated
// object stores. The global `--trace OUT.json` flag dumps the process
// trace ring on exit for any command (backup, restore, gnode, ...).
//
// Every repo command runs inside a job scope ("cli:<command>") and the
// store opens child jobs per backup/restore/G-node phase; each job's
// OSS requests, bytes, and dollars (priced by --cost-model, S3-like
// defaults) are appended to the <REPO>/journal/ event journal, which
// `slim jobs` reads back. A cost-accounting layer wraps each physical
// replica, so replication fan-out and retried attempts are billed the
// way a cloud provider would bill them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/obs_publish.h"
#include "cluster/sharded_cluster.h"
#include "cluster/tenant.h"
#include "core/slimstore.h"
#include "durability/checksum.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "obs/bench_harness.h"
#include "obs/cost_model.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/job_context.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "oss/cost_accounting_object_store.h"
#include "oss/disk_object_store.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/retrying_object_store.h"
#include "oss/simulated_oss.h"

namespace {

using namespace slim;

int Usage() {
  std::fprintf(
      stderr,
      "usage: slim -r REPO [--fault-profile SPEC] [--parity-group N] "
      "[--trace OUT.json]\n"
      "                 [--cost-model FILE] [--tenant NAME] COMMAND ...\n"
      "       slim -r REPO [--tenant NAME] [--shards N] cluster CMD ...\n"
      "       slim bench list | run [--suite quick|full] [--filter F]\n"
      "                 [--repeats N] [--warmup N] [--seed S] [--verbose]\n"
      "                 [--out FILE]\n"
      "  init [--replicas N]       create a repository; with N >= 2 the\n"
      "                            objects are replicated across N\n"
      "                            independent directories (replica-0..)\n"
      "  backup FILE...            back up files (next version each)\n"
      "  restore FILE VER OUT      restore FILE version VER into OUT\n"
      "  list [FILE]               list backed-up files / versions\n"
      "  gnode                     run reverse dedup + compaction\n"
      "  forget FILE VER           delete a version and collect garbage\n"
      "  space                     print the space report\n"
      "  verify                    check repository consistency\n"
      "  stats [--json|--prom]     print OSS/pipeline metrics, per-job "
      "costs,\n"
      "                            SLO status, and recent trace spans\n"
      "  stats --trace OUT.json    also write spans as Chrome trace_event\n"
      "                            JSON (Perfetto / about:tracing)\n"
      "  stats --watch             redraw the report every --interval-ms\n"
      "                            (default 2000); --iterations N stops\n"
      "                            after N redraws\n"
      "  top [--watch]             live per-tenant view over the fleet's\n"
      "                            published snapshots: ops/s, MB/s,\n"
      "                            $/hour, SLO burn (sorted by burn) and\n"
      "                            rebalance progress; same --interval-ms/\n"
      "                            --iterations flags as stats --watch\n"
      "  jobs [--tail N] [--json]  read the job event journal (what ran,\n"
      "                            what it cost); default last 20 records\n"
      "  jobs --by-tenant          aggregate the journal into per-tenant\n"
      "                            cost rollups (jobs, requests, dollars)\n"
      "  jobs --tenant NAME        show only records tagged with NAME\n"
      "                            (composes with --by-tenant/--json)\n"
      "  jobs --since DUR          only records that finished within the\n"
      "                            last DUR (500ms, 30s, 10m, 2h, 1d);\n"
      "                            composes with --tenant/--by-tenant\n"
      "  cluster init [--nodes A,B]     create a sharded multi-tenant\n"
      "                            cluster (--shards logical shards)\n"
      "  cluster status            map version, nodes, shards, tenants\n"
      "  cluster join NODE         stage a node join (then: rebalance)\n"
      "  cluster leave NODE        stage a node leave (then: rebalance)\n"
      "  cluster rebalance [--throttle-bps N]\n"
      "                            execute or resume the staged change,\n"
      "                            moving only the ring-delta shards\n"
      "  cluster backup FILE...    back up into the --tenant namespace\n"
      "  cluster restore FILE VER OUT\n"
      "                            restore from the --tenant namespace\n"
      "  cluster stats [--json|--prom]\n"
      "                            fetch every node's published snapshot,\n"
      "                            merge them, and print one fleet report\n"
      "                            (per-tenant p50/p99, $, SLO burn);\n"
      "                            --watch/--interval-ms/--iterations as\n"
      "                            with stats\n"
      "  rebuild                   crash recovery: discard all local state\n"
      "                            and reconstruct it from OSS objects\n"
      "                            (recipes, pending records, containers)\n"
      "  bench list                list registered bench scenarios\n"
      "  bench run [...]           run a bench suite; writes schema-\n"
      "                            versioned perf JSON (default "
      "BENCH_6.json)\n"
      "  scrub                     verify checksums + replicas (detect "
      "only)\n"
      "  repair                    scrub and repair from redundancy\n"
      "\n"
      "  --parity-group N          maintain XOR parity over groups of N\n"
      "    containers during `repair` (single-store parity protection)\n"
      "  --fault-profile SPEC      inject OSS faults under a retry layer\n"
      "    SPEC is comma-separated preset names (transient-light,\n"
      "    transient-heavy, crash, permanent) and/or key=value overrides\n"
      "    (seed, transient, deadline_frac, spike_p, spike_ns, fail_after,\n"
      "    permanent_prefix). Example: transient-heavy,seed=7\n"
      "  --cost-model FILE         override the S3-like dollar tariffs;\n"
      "    FILE holds `key = value` lines (put_request_dollars,\n"
      "    get_request_dollars, list_request_dollars, head_request_dollars,\n"
      "    delete_request_dollars, read_dollars_per_gb, write_dollars_per_gb,\n"
      "    storage_dollars_per_gb_month)\n"
      "  --tenant NAME             tag this invocation's jobs with a tenant\n"
      "    for per-tenant cost rollups in the journal; routes `cluster`\n"
      "    backups/restores into that tenant's namespace\n"
      "  --shards N                logical shard count for `cluster init`\n"
      "    (fixed for the cluster's lifetime; default 8)\n"
      "  --node NAME               this process's fleet identity; cluster\n"
      "    commands tag + publish their metric snapshot to\n"
      "    <root>/obs#/node/NAME so `cluster stats` / `top` can merge it\n");
  return 2;
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

// Persist state after every mutating command so the repo survives
// process exits; reload it (if present) on startup.
class Repo {
 public:
  /// `init_replicas` >= 2 creates a replicated layout (init only);
  /// otherwise the layout is detected from the directory structure.
  /// `load_state` false skips OpenExisting even when a state checkpoint
  /// is present (`slim rebuild` reconstructs everything from scratch, so
  /// a missing or stale checkpoint must not block opening).
  static Result<std::unique_ptr<Repo>> Open(
      const std::string& root, bool must_exist,
      const std::optional<oss::FaultProfile>& fault_profile,
      uint32_t init_replicas, uint32_t parity_group,
      const obs::CostModel& cost_model, const std::string& tenant,
      bool load_state = true) {
    namespace fs = std::filesystem;
    uint32_t replica_count = 0;
    if (fs::is_directory(fs::path(root) / "replica-0")) {
      while (fs::is_directory(fs::path(root) / ("replica-" +
                                                std::to_string(
                                                    replica_count)))) {
        ++replica_count;
      }
    } else if (init_replicas >= 2) {
      replica_count = init_replicas;
    }

    std::vector<std::unique_ptr<oss::DiskObjectStore>> disks;
    if (replica_count >= 2) {
      for (uint32_t i = 0; i < replica_count; ++i) {
        auto disk = oss::DiskObjectStore::Open(
            (fs::path(root) / ("replica-" + std::to_string(i))).string());
        if (!disk.ok()) return disk.status();
        disks.push_back(std::move(disk).value());
      }
    } else {
      auto disk = oss::DiskObjectStore::Open(root);
      if (!disk.ok()) return disk.status();
      disks.push_back(std::move(disk).value());
    }
    auto repo = std::unique_ptr<Repo>(
        new Repo(std::move(disks), fault_profile, parity_group, cost_model,
                 tenant));
    auto marker = repo->base_->Exists("slim/state/catalog");
    if (marker.ok() && marker.value()) {
      if (load_state) {
        Status s = repo->store_->OpenExisting();
        if (!s.ok()) return s;
      }
    } else if (must_exist) {
      return Status::NotFound("no repository at " + root +
                              " (run: slim -r " + root + " init)");
    }
    return repo;
  }

  core::SlimStore* store() { return store_.get(); }
  Status Save() { return store_->SaveState(); }

  /// Physical copies of every byte (1 for a plain layout, k for a
  /// k-way replicated one) — the multiplier for billed storage.
  size_t replica_count() const { return disks_.size(); }

  ~Repo() {
    if (faulty_ == nullptr) return;
    // Injection summary on every exit path, so fault runs are
    // self-describing.
    oss::RetryStatsSnapshot retry = retrying_->stats();
    std::fprintf(stderr,
                 "fault injection: %llu faults injected, %llu retries "
                 "(%llu recovered, %llu exhausted)\n",
                 (unsigned long long)faulty_->injected_error_count(),
                 (unsigned long long)retry.retries,
                 (unsigned long long)retry.successes_after_retry,
                 (unsigned long long)retry.exhausted);
  }

 private:
  Repo(std::vector<std::unique_ptr<oss::DiskObjectStore>> disks,
       const std::optional<oss::FaultProfile>& fault_profile,
       uint32_t parity_group, const obs::CostModel& cost_model,
       const std::string& tenant)
      : disks_(std::move(disks)) {
    // Billing sits at the very bottom, one accountant per physical
    // replica, so the durability tax shows up the way a provider bills
    // it: k replicas = k billed PUTs, every retry attempt bills again.
    for (const auto& d : disks_) {
      accounting_.push_back(std::make_unique<oss::CostAccountingObjectStore>(
          d.get(), cost_model));
    }
    base_ = accounting_[0].get();
    if (accounting_.size() >= 2) {
      // k-way replication across the replica directories, arbitrated by
      // the CRC32C footer every SlimStore object carries: a bit-flipped
      // replica fails validation, so reads fail over and repair it.
      std::vector<oss::ObjectStore*> replicas;
      for (const auto& a : accounting_) replicas.push_back(a.get());
      replicating_ = std::make_unique<durability::ReplicatingObjectStore>(
          std::move(replicas), durability::PlacementPolicy(),
          [](std::string_view object) {
            return durability::HasValidFooter(object);
          });
      base_ = replicating_.get();
    }
    // Zero-cost SimulatedOss layer: no latency model, no sleeping —
    // just the per-operation metrics, so `slim stats` can report OSS
    // traffic against a plain directory store.
    oss::OssCostModel model;
    model.request_latency_nanos = 0;
    model.read_nanos_per_byte = 0;
    model.write_nanos_per_byte = 0;
    model.sleep_for_cost = false;
    metered_ = std::make_unique<oss::SimulatedOss>(base_, model);
    oss::ObjectStore* top = metered_.get();
    if (fault_profile.has_value()) {
      // Retries OUTSIDE injection, so each attempt re-rolls the fault —
      // the same stack the fault sweep exercises.
      faulty_ = std::make_unique<oss::FaultInjectingObjectStore>(
          top, *fault_profile);
      retrying_ = std::make_unique<oss::RetryingObjectStore>(
          faulty_.get(), oss::RetryPolicy{});
      top = retrying_.get();
    }
    core::SlimStoreOptions options;
    options.backup.chunk_merging = true;
    options.tenant = tenant;
    options.durability.replicated = replicating_.get();
    options.durability.scrub.parity_group_size = parity_group;
    store_ = std::make_unique<core::SlimStore>(top, options);
  }

  std::vector<std::unique_ptr<oss::DiskObjectStore>> disks_;
  std::vector<std::unique_ptr<oss::CostAccountingObjectStore>> accounting_;
  std::unique_ptr<durability::ReplicatingObjectStore> replicating_;
  oss::ObjectStore* base_ = nullptr;  // Replicating store or accounting_[0].
  std::unique_ptr<oss::SimulatedOss> metered_;
  std::unique_ptr<oss::FaultInjectingObjectStore> faulty_;
  std::unique_ptr<oss::RetryingObjectStore> retrying_;
  std::unique_ptr<core::SlimStore> store_;
};

double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Set by the global --trace flag; dumped by an atexit handler so every
// command path (including early returns) produces the trace file.
std::string g_trace_path;

// Tariffs for the cost-accounting layer and the bench cost block;
// S3-like defaults unless --cost-model overrides them.
obs::CostModel g_cost_model;

void DumpTraceAtExit() {
  std::string json = obs::ChromeTraceJson(obs::TraceSink::Get().Snapshot());
  Status s = WriteFile(g_trace_path, json);
  if (!s.ok()) {
    std::fprintf(stderr, "error writing trace: %s\n", s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote Chrome trace to %s (open in Perfetto or "
               "about:tracing)\n", g_trace_path.c_str());
}

// `slim bench` — no repository involved; scenarios build their own
// simulated object stores. argv[argi] is the subcommand.
int RunBenchCommand(int argc, char** argv, int argi) {
  if (argi >= argc) return Usage();
  std::string sub = argv[argi++];

  if (sub == "list") {
    for (const auto& spec : obs::BenchRegistry::Get().Select("full", "")) {
      std::printf("%-26s %s%s\n", spec.name.c_str(),
                  spec.description.c_str(),
                  spec.in_quick ? "  [quick]" : "");
    }
    return 0;
  }
  if (sub != "run") return Usage();

  obs::BenchRunOptions options;
  options.cost_model = g_cost_model;
  std::string out_path = "BENCH_6.json";
  for (; argi < argc; ++argi) {
    std::string arg = argv[argi];
    auto next = [&]() -> const char* {
      if (argi + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++argi];
    };
    if (arg == "--suite") {
      options.suite = next();
    } else if (arg == "--filter") {
      options.filter = next();
    } else if (arg == "--repeats") {
      options.repeats = std::atoi(next());
    } else if (arg == "--warmup") {
      options.warmup = std::atoi(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      return Usage();
    }
  }
  if (options.suite != "quick" && options.suite != "full") {
    std::fprintf(stderr, "unknown suite '%s' (quick|full)\n",
                 options.suite.c_str());
    return 2;
  }
  if (options.repeats < 1) options.repeats = 1;

  obs::BenchReport report = obs::RunBenchSuite(options);
  if (report.scenarios.empty()) {
    std::fprintf(stderr, "no scenarios matched filter '%s' in suite '%s'\n",
                 options.filter.c_str(), options.suite.c_str());
    return 1;
  }
  std::printf("%s", obs::BenchReportTable(report).c_str());
  Status s = WriteFile(out_path, obs::BenchReportJson(report));
  if (!s.ok()) return Fail(s);
  std::printf("\nwrote %s (%zu scenario(s), suite '%s', schema v%d)\n",
              out_path.c_str(), report.scenarios.size(),
              report.suite.c_str(), obs::BenchReport::kSchemaVersion);
  return 0;
}

// Per-job cost table for `slim stats`: every job this process ran (or
// still has open), the process totals, and the explicit unattributed
// remainder — leaked charges are reported, never silently dropped.
std::string RenderJobCosts() {
  std::vector<obs::JobSummary> jobs = obs::JobRegistry::Get().Summaries();
  obs::JobCost totals = obs::JobRegistry::Get().totals();
  obs::JobCost unattributed = obs::JobRegistry::Get().unattributed();
  if (jobs.empty() && totals.total_requests() == 0) return "";
  std::string out = "\n-- job costs --\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-5s %-6s %-13s %-28s %8s %9s %9s %12s  %s\n", "job",
                "parent", "kind", "name", "reqs", "rd MB", "wr MB", "cost $",
                "outcome");
  out += buf;
  for (const auto& j : jobs) {
    std::snprintf(buf, sizeof(buf),
                  "%-5llu %-6llu %-13s %-28.28s %8llu %9.2f %9.2f %12.6f  "
                  "%s\n",
                  (unsigned long long)j.job_id,
                  (unsigned long long)j.parent_id, j.kind.c_str(),
                  j.name.c_str(),
                  (unsigned long long)j.cost.total_requests(),
                  Mb(j.cost.bytes_read), Mb(j.cost.bytes_written),
                  j.cost.dollars(),
                  j.outcome.empty() ? "running" : j.outcome.c_str());
    out += buf;
  }
  uint64_t total_reqs = totals.total_requests();
  uint64_t unattr_reqs = unattributed.total_requests();
  std::snprintf(buf, sizeof(buf),
                "totals: %llu request(s), %.2f MB read, %.2f MB written, "
                "$%.6f\n",
                (unsigned long long)total_reqs, Mb(totals.bytes_read),
                Mb(totals.bytes_written), totals.dollars());
  out += buf;
  double coverage =
      total_reqs == 0
          ? 100.0
          : 100.0 * (1.0 - static_cast<double>(unattr_reqs) /
                               static_cast<double>(total_reqs));
  std::snprintf(buf, sizeof(buf),
                "unattributed: %llu request(s), $%.6f (attribution "
                "%.1f%%)\n",
                (unsigned long long)unattr_reqs, unattributed.dollars(),
                coverage);
  out += buf;
  return out;
}

uint64_t UnixMsNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Watch-mode knobs shared by `stats --watch`, `cluster stats --watch`,
// and `top`: redraw every interval, optionally stopping after a fixed
// iteration count (tests drive the loop with --iterations 1).
struct WatchOptions {
  bool watch = false;
  uint64_t interval_ms = 2000;
  size_t iterations = 0;  // 0 = forever (watch mode), else a cap.

  /// Tries to consume argv[*argi] (+ value); false if it isn't ours.
  bool Parse(int argc, char** argv, int* argi) {
    const char* arg = argv[*argi];
    if (std::strcmp(arg, "--watch") == 0) {
      watch = true;
      return true;
    }
    if (std::strcmp(arg, "--interval-ms") == 0 && *argi + 1 < argc) {
      interval_ms = std::stoull(argv[++*argi]);
      if (interval_ms == 0) interval_ms = 1;
      return true;
    }
    if (std::strcmp(arg, "--iterations") == 0 && *argi + 1 < argc) {
      iterations = static_cast<size_t>(std::stoull(argv[++*argi]));
      return true;
    }
    return false;
  }

  /// One pass unless watching or an explicit iteration cap was given.
  size_t EffectiveIterations() const {
    if (iterations != 0) return iterations;
    return watch ? 0 : 1;
  }

  /// Between redraws: sleep, then clear the terminal in watch mode.
  void PrepareRedraw(size_t pass) const {
    if (pass != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    if (watch) std::printf("\x1b[2J\x1b[H");
  }
};

std::string LabelValue(const obs::MetricKeyParts& parts, const char* key) {
  for (const auto& kv : parts.labels) {
    if (kv.first == key) return kv.second;
  }
  return "";
}

// One merged fleet report (`slim cluster stats`): per-tenant latency
// percentiles and cumulative dollars from the merged snapshot, then the
// SLO burn table. All series arrive as LabeledName keys, so this is
// pure presentation — the merge itself is label-blind.
std::string RenderFleetReport(const cluster::FleetView& view) {
  std::string out;
  char buf[256];
  std::string nodes;
  for (const auto& snap : view.per_node) {
    if (!nodes.empty()) nodes += " ";
    nodes += snap.node;
  }
  std::snprintf(buf, sizeof(buf), "fleet: %zu node snapshot(s)%s%s\n",
                view.per_node.size(), nodes.empty() ? "" : ": ",
                nodes.c_str());
  out += buf;
  if (view.malformed != 0) {
    std::snprintf(buf, sizeof(buf),
                  "warning: skipped %llu malformed snapshot object(s)\n",
                  (unsigned long long)view.malformed);
    out += buf;
  }
  if (view.per_node.empty()) {
    out += "(no node has published a snapshot yet; run cluster commands "
           "with --node NAME)\n";
    return out;
  }

  struct TenantRow {
    uint64_t backups = 0;
    uint64_t restores = 0;
    double backup_p50_ms = 0, backup_p99_ms = 0;
    double restore_p50_ms = 0, restore_p99_ms = 0;
    double dollars = 0;
    double burn = 0;
  };
  std::map<std::string, TenantRow> rows;
  const obs::Snapshot& merged = view.merged;
  for (const auto& entry : merged.histograms) {
    obs::MetricKeyParts parts = obs::SplitLabeledName(entry.first);
    if (parts.base != "cluster.op.latency_us") continue;
    TenantRow& row = rows[LabelValue(parts, "tenant")];
    const obs::HistogramData& h = entry.second;
    if (LabelValue(parts, "op") == "backup") {
      row.backups = h.count;
      row.backup_p50_ms = static_cast<double>(h.ValueAtPercentile(50)) / 1e3;
      row.backup_p99_ms = static_cast<double>(h.ValueAtPercentile(99)) / 1e3;
    } else if (LabelValue(parts, "op") == "restore") {
      row.restores = h.count;
      row.restore_p50_ms = static_cast<double>(h.ValueAtPercentile(50)) / 1e3;
      row.restore_p99_ms = static_cast<double>(h.ValueAtPercentile(99)) / 1e3;
    }
  }
  for (const auto& entry : merged.counters) {
    obs::MetricKeyParts parts = obs::SplitLabeledName(entry.first);
    if (parts.base != "tenant.cost.picodollars") continue;
    rows[LabelValue(parts, "tenant")].dollars =
        static_cast<double>(entry.second) / 1e12;
  }
  std::vector<obs::SloStatus> statuses =
      obs::ComputeSloStatuses(merged.counters, obs::DefaultSlos());
  for (const auto& st : statuses) {
    auto it = rows.find(st.tenant);
    if (it == rows.end()) continue;
    if (st.burn_rate > it->second.burn) it->second.burn = st.burn_rate;
  }

  if (!rows.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "%-14s %8s %9s %9s %8s %9s %9s %12s %7s\n", "tenant",
                  "backups", "bk p50ms", "bk p99ms", "restores", "rs p50ms",
                  "rs p99ms", "cost $", "burn");
    out += buf;
    for (const auto& entry : rows) {
      const TenantRow& r = entry.second;
      std::snprintf(buf, sizeof(buf),
                    "%-14s %8llu %9.2f %9.2f %8llu %9.2f %9.2f %12.6f "
                    "%7.2f\n",
                    entry.first.empty() ? "(untagged)" : entry.first.c_str(),
                    (unsigned long long)r.backups, r.backup_p50_ms,
                    r.backup_p99_ms, (unsigned long long)r.restores,
                    r.restore_p50_ms, r.restore_p99_ms, r.dollars, r.burn);
      out += buf;
    }
  }
  out += "\n-- slo status --\n";
  out += obs::RenderSloTable(statuses);
  return out;
}

// One `slim top` frame: per-tenant rates over the trailing window of
// the local fleet-merge ring, sorted by SLO burn (worst tenant first),
// plus rebalance progress gauges when a rebalance has run.
std::string RenderTopTable(const obs::TimeSeries& series,
                           uint64_t window_ms) {
  obs::Snapshot latest = series.Latest();
  std::map<std::string, uint64_t> delta;
  double elapsed = 0;
  bool have_window = series.DeltaOverWindow(window_ms, &delta, &elapsed);

  struct TenantRow {
    uint64_t jobs = 0;
    double ops_per_sec = 0;
    double mb_per_sec = 0;
    double dollars_per_hour = 0;
    double burn = 0;
  };
  std::map<std::string, TenantRow> rows;
  for (const auto& entry : latest.counters) {
    obs::MetricKeyParts parts = obs::SplitLabeledName(entry.first);
    if (parts.base == "tenant.jobs") {
      rows[LabelValue(parts, "tenant")].jobs = entry.second;
    }
  }
  if (have_window && elapsed > 0) {
    for (const auto& entry : delta) {
      obs::MetricKeyParts parts = obs::SplitLabeledName(entry.first);
      std::string tenant = LabelValue(parts, "tenant");
      double rate = static_cast<double>(entry.second) / elapsed;
      if (parts.base.rfind("slo.", 0) == 0 &&
          parts.base.size() > 10 &&
          parts.base.compare(parts.base.size() - 6, 6, ".total") == 0) {
        rows[tenant].ops_per_sec += rate;
      } else if (parts.base == "tenant.oss.bytes_read" ||
                 parts.base == "tenant.oss.bytes_written") {
        rows[tenant].mb_per_sec += rate / (1024.0 * 1024.0);
      } else if (parts.base == "tenant.cost.picodollars") {
        rows[tenant].dollars_per_hour += rate * 3600.0 / 1e12;
      }
    }
  }
  // Burn over the window when we have one; else cumulative since start.
  std::vector<obs::SloStatus> statuses = obs::ComputeSloStatuses(
      have_window ? delta : latest.counters, obs::DefaultSlos());
  for (const auto& st : statuses) {
    auto it = rows.find(st.tenant);
    if (it != rows.end() && st.burn_rate > it->second.burn) {
      it->second.burn = st.burn_rate;
    }
  }

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "slim top — %zu sample(s), window %.0fs%s\n",
                series.size(), static_cast<double>(window_ms) / 1e3,
                have_window ? "" : " (rates need a second sample)");
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-14s %8s %9s %9s %10s %7s\n", "tenant",
                "jobs", "ops/s", "MB/s", "$/hour", "burn");
  out += buf;
  std::vector<std::pair<std::string, TenantRow>> sorted(rows.begin(),
                                                        rows.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second.burn != b.second.burn) {
                return a.second.burn > b.second.burn;
              }
              return a.first < b.first;
            });
  for (const auto& entry : sorted) {
    const TenantRow& r = entry.second;
    std::snprintf(buf, sizeof(buf), "%-14s %8llu %9.2f %9.2f %10.6f %7.2f\n",
                  entry.first.empty() ? "(untagged)" : entry.first.c_str(),
                  (unsigned long long)r.jobs, r.ops_per_sec, r.mb_per_sec,
                  r.dollars_per_hour, r.burn);
    out += buf;
  }
  if (sorted.empty()) out += "(no per-tenant series published yet)\n";

  auto gauge = [&latest](const char* name, int64_t* value) {
    auto it = latest.gauges.find(name);
    if (it == latest.gauges.end()) return false;
    *value = it->second.value;
    return true;
  };
  int64_t moves_total = 0;
  if (gauge("cluster.rebalance.moves_total", &moves_total) &&
      moves_total > 0) {
    int64_t moves_done = 0, bytes_moved = 0, throttle = 0, eta = 0;
    gauge("cluster.rebalance.moves_done", &moves_done);
    gauge("cluster.rebalance.bytes_moved", &bytes_moved);
    gauge("cluster.rebalance.throttle_util_pct", &throttle);
    gauge("cluster.rebalance.eta_ms", &eta);
    std::snprintf(buf, sizeof(buf),
                  "rebalance: %lld/%lld move(s), %.2f MB moved, throttle "
                  "%lld%%, eta %.1fs\n",
                  (long long)moves_done, (long long)moves_total,
                  Mb(static_cast<uint64_t>(bytes_moved < 0 ? 0 : bytes_moved)),
                  (long long)throttle, static_cast<double>(eta) / 1e3);
    out += buf;
  }
  return out;
}

// `slim top` — repeatedly fetch + merge the fleet's published
// snapshots into a local ring and render per-tenant rates. Reads only
// the obs# prefix; never opens the repo or the cluster map, so it works
// on a node that can't serve data.
int RunTopCommand(const std::string& repo_root, int argc, char** argv,
                  int argi) {
  WatchOptions watch;
  for (; argi < argc; ++argi) {
    if (!watch.Parse(argc, argv, &argi)) return Usage();
  }
  auto disk = oss::DiskObjectStore::Open(repo_root);
  if (!disk.ok()) return Fail(disk.status());
  cluster::ShardedClusterOptions defaults;
  obs::TimeSeries series(256);
  // Rates average over several refresh intervals (min 10s) so one slow
  // publish doesn't whipsaw the table.
  uint64_t window_ms = watch.interval_ms * 8;
  if (window_ms < 10000) window_ms = 10000;
  size_t passes = watch.EffectiveIterations();
  for (size_t i = 0; passes == 0 || i < passes; ++i) {
    watch.PrepareRedraw(i);
    auto fleet = cluster::FetchFleetSnapshot(disk.value().get(),
                                             defaults.root);
    if (!fleet.ok()) return Fail(fleet.status());
    obs::Snapshot merged = fleet.value().merged;
    // Stamp with local fetch time: nodes that didn't republish between
    // passes then contribute a zero delta (rate 0), not a stale rate.
    merged.captured_unix_ms = UnixMsNow();
    series.Push(std::move(merged));
    std::printf("%s", RenderTopTable(series, window_ms).c_str());
  }
  return 0;
}

// `slim jobs` — reads the on-disk event journal without opening the
// repository, so the cost history is available even when the repo
// itself cannot be opened.
int RunJobsCommand(const std::string& repo_root, size_t tail, bool json,
                   const std::string* tenant_filter, uint64_t since_ms) {
  std::string dir =
      (std::filesystem::path(repo_root) / "journal").string();
  obs::JournalReadResult result = obs::EventJournal::ReadAll(dir);
  if (since_ms != 0) {
    result.records = obs::EventJournal::FilterSince(result.records, since_ms);
  }
  if (tenant_filter != nullptr) {
    result.records =
        obs::EventJournal::FilterByTenant(result.records, *tenant_filter);
    if (result.records.empty()) {
      std::printf("no journal records for tenant %s at %s\n",
                  tenant_filter->c_str(), dir.c_str());
      return 0;
    }
  }
  if (result.records.empty()) {
    std::printf("no journal records at %s\n", dir.c_str());
    return 0;
  }
  size_t begin =
      result.records.size() > tail ? result.records.size() - tail : 0;
  if (json) {
    for (size_t i = begin; i < result.records.size(); ++i) {
      std::printf("%s\n", result.records[i].c_str());
    }
  } else {
    std::printf("%-5s %-6s %-13s %-32s %9s %8s %9s %12s  %s\n", "job",
                "parent", "kind", "name", "wall ms", "reqs", "MB",
                "cost $", "outcome");
    for (size_t i = begin; i < result.records.size(); ++i) {
      const std::string& r = result.records[i];
      double job = 0, parent = 0, wall = 0, reqs = 0, rb = 0, wb = 0;
      double dollars = 0;
      std::string kind, name, outcome;
      obs::EventJournal::ExtractNumber(r, "job", &job);
      obs::EventJournal::ExtractNumber(r, "parent", &parent);
      obs::EventJournal::ExtractNumber(r, "wall_ms", &wall);
      obs::EventJournal::ExtractNumber(r, "requests", &reqs);
      obs::EventJournal::ExtractNumber(r, "bytes_read", &rb);
      obs::EventJournal::ExtractNumber(r, "bytes_written", &wb);
      obs::EventJournal::ExtractNumber(r, "dollars", &dollars);
      obs::EventJournal::ExtractString(r, "kind", &kind);
      obs::EventJournal::ExtractString(r, "name", &name);
      obs::EventJournal::ExtractString(r, "outcome", &outcome);
      std::printf("%-5.0f %-6.0f %-13s %-32.32s %9.1f %8.0f %9.2f %12.6f"
                  "  %s\n",
                  job, parent, kind.c_str(), name.c_str(), wall, reqs,
                  (rb + wb) / (1024.0 * 1024.0), dollars, outcome.c_str());
    }
  }
  if (result.malformed_records != 0) {
    std::fprintf(stderr, "note: skipped %llu malformed record(s)\n",
                 (unsigned long long)result.malformed_records);
  }
  return 0;
}

// `slim jobs --by-tenant` — the whole journal folded into one cost line
// per tenant (chargeback view). Jobs opened without --tenant land on the
// "(untagged)" row.
int RunJobsByTenantCommand(const std::string& repo_root,
                           const std::string* tenant_filter,
                           uint64_t since_ms) {
  std::string dir =
      (std::filesystem::path(repo_root) / "journal").string();
  obs::JournalReadResult result = obs::EventJournal::ReadAll(dir);
  if (since_ms != 0) {
    result.records = obs::EventJournal::FilterSince(result.records, since_ms);
  }
  if (tenant_filter != nullptr) {
    result.records =
        obs::EventJournal::FilterByTenant(result.records, *tenant_filter);
  }
  if (result.records.empty()) {
    std::printf("no journal records at %s\n", dir.c_str());
    return 0;
  }
  std::vector<obs::EventJournal::TenantRollup> rollups =
      obs::EventJournal::RollupByTenant(result.records);
  std::printf("%-20s %6s %7s %9s %10s %10s %11s %12s\n", "tenant", "jobs",
              "errors", "reqs", "rd MB", "wr MB", "wall ms", "cost $");
  for (const auto& roll : rollups) {
    std::printf("%-20s %6llu %7llu %9llu %10.2f %10.2f %11.1f %12.6f\n",
                roll.tenant.empty() ? "(untagged)" : roll.tenant.c_str(),
                (unsigned long long)roll.jobs,
                (unsigned long long)roll.errors,
                (unsigned long long)roll.requests, Mb(roll.bytes_read),
                Mb(roll.bytes_written), roll.wall_ms, roll.dollars);
  }
  if (result.malformed_records != 0) {
    std::fprintf(stderr, "note: skipped %llu malformed record(s)\n",
                 (unsigned long long)result.malformed_records);
  }
  return 0;
}

// `slim cluster ...` — the tenancy + sharding subsystem over a disk
// store at the repo root. Cluster state lives under the `cluster/` key
// prefix, so a cluster never collides with a plain single-tenant repo's
// `slim/` tree or the `journal/` directory. Every invocation is billed
// through the cost-accounting layer and journaled under the --tenant
// tag, so `slim jobs --by-tenant` rolls up cluster work with no extra
// plumbing.
int RunClusterCommand(const std::string& repo_root, const std::string& tenant,
                      const std::string& node_id, uint32_t shards, int argc,
                      char** argv, int argi) {
  if (argi >= argc) return Usage();
  std::string sub = argv[argi++];

  std::string journal_dir =
      (std::filesystem::path(repo_root) / "journal").string();
  if (!obs::EventJournal::Get().Configure({journal_dir})) {
    std::fprintf(stderr, "warning: cannot open journal at %s\n",
                 journal_dir.c_str());
  }
  obs::JobScope cli_job("cli", "cli:cluster-" + sub, tenant);

  auto disk = oss::DiskObjectStore::Open(repo_root);
  if (!disk.ok()) {
    cli_job.SetError(disk.status().ToString());
    return Fail(disk.status());
  }
  oss::CostAccountingObjectStore billed(disk.value().get(), g_cost_model);

  cluster::ShardedClusterOptions options;
  if (shards > 0) options.num_shards = shards;
  options.node_id = node_id;
  // CLI invocations are short-lived: ship the snapshot on every
  // operation instead of rate-limiting, so the process's last write
  // always lands before exit.
  options.obs_publish_interval_ms = 0;

  // `cluster stats` reads only published obs# snapshots — no cluster
  // map needed, so a node that can't open the map can still observe.
  if (sub == "stats") {
    obs::ExportFormat format = obs::ExportFormat::kTable;
    WatchOptions watch;
    for (; argi < argc; ++argi) {
      if (std::strcmp(argv[argi], "--json") == 0) {
        format = obs::ExportFormat::kJson;
      } else if (std::strcmp(argv[argi], "--prom") == 0) {
        format = obs::ExportFormat::kPrometheus;
      } else if (!watch.Parse(argc, argv, &argi)) {
        return Usage();
      }
    }
    size_t passes = watch.EffectiveIterations();
    for (size_t i = 0; passes == 0 || i < passes; ++i) {
      watch.PrepareRedraw(i);
      auto fleet = cluster::FetchFleetSnapshot(&billed, options.root);
      if (!fleet.ok()) {
        cli_job.SetError(fleet.status().ToString());
        return Fail(fleet.status());
      }
      if (format == obs::ExportFormat::kTable) {
        std::printf("%s", RenderFleetReport(fleet.value()).c_str());
      } else {
        std::printf("%s",
                    obs::Render(obs::ToMetricsSnapshot(fleet.value().merged),
                                format)
                        .c_str());
      }
    }
    return 0;
  }

  if (sub == "init") {
    std::vector<std::string> nodes;
    for (; argi < argc; ++argi) {
      if (std::strcmp(argv[argi], "--nodes") == 0 && argi + 1 < argc) {
        std::string list = argv[++argi];
        size_t start = 0;
        while (start <= list.size()) {
          size_t comma = list.find(',', start);
          if (comma == std::string::npos) comma = list.size();
          if (comma > start) nodes.push_back(list.substr(start, comma - start));
          start = comma + 1;
        }
      } else {
        return Usage();
      }
    }
    if (nodes.empty()) nodes.push_back("L0");
    auto created = cluster::ShardedCluster::Create(&billed, options, nodes);
    if (!created.ok()) {
      cli_job.SetError(created.status().ToString());
      return Fail(created.status());
    }
    std::printf("initialized cluster at %s: %u shards across %zu node(s)\n",
                repo_root.c_str(), created.value()->options().num_shards,
                nodes.size());
    return 0;
  }

  // Rebalance needs its throttle before Open copies the options in.
  if (sub == "rebalance") {
    for (int i = argi; i < argc; ++i) {
      if (std::strcmp(argv[i], "--throttle-bps") == 0 && i + 1 < argc) {
        options.rebalance_bytes_per_sec = std::stoull(argv[i + 1]);
      }
    }
  }

  auto opened = cluster::ShardedCluster::Open(&billed, options);
  if (!opened.ok()) {
    cli_job.SetError(opened.status().ToString());
    return Fail(opened.status());
  }
  cluster::ShardedCluster* cl = opened.value().get();

  if (sub == "status") {
    auto status = cl->GetStatus();
    if (!status.ok()) return Fail(status.status());
    const cluster::ClusterStatus& s = status.value();
    std::printf("map version %llu, %u shards, %zu node(s)\n",
                (unsigned long long)s.map_version, s.num_shards,
                s.nodes.size());
    for (const std::string& node : s.nodes) {
      auto it = s.shards_by_node.find(node);
      size_t owned = it == s.shards_by_node.end() ? 0 : it->second.size();
      std::printf("  node %-12s %zu shard(s)\n", node.c_str(), owned);
    }
    if (s.tenants.empty()) {
      std::printf("no tenants registered\n");
    } else {
      for (const std::string& t : s.tenants) {
        std::printf("  tenant %s\n", t.c_str());
      }
    }
    if (s.rebalance_pending) {
      std::printf("rebalance pending: target map v%llu staged (run: slim -r "
                  "%s cluster rebalance)\n",
                  (unsigned long long)s.target_map_version, repo_root.c_str());
    }
    return 0;
  }

  if (sub == "join" || sub == "leave") {
    if (argi >= argc) return Usage();
    std::string node = argv[argi++];
    Status s = sub == "join" ? cl->Join(node) : cl->Leave(node);
    if (!s.ok()) {
      cli_job.SetError(s.ToString());
      return Fail(s);
    }
    std::printf("staged %s of %s; no data moved yet (run: slim -r %s "
                "cluster rebalance)\n",
                sub.c_str(), node.c_str(), repo_root.c_str());
    return 0;
  }

  if (sub == "rebalance") {
    auto stats = cl->Rebalance();
    if (!stats.ok()) {
      cli_job.SetError(stats.status().ToString());
      return Fail(stats.status());
    }
    const cluster::RebalanceStats& r = stats.value();
    if (r.moved_shards.empty() && !r.resumed) {
      std::printf("nothing to rebalance (no membership change staged)\n");
      return 0;
    }
    std::printf("rebalance%s complete: %zu shard move(s), %zu object(s), "
                "%.2f MB copied\n",
                r.resumed ? " (resumed)" : "", r.moves_completed,
                r.objects_copied, Mb(r.bytes_copied));
    if (r.throttle_sleep_ms != 0) {
      std::printf("throttle slept %llu ms\n",
                  (unsigned long long)r.throttle_sleep_ms);
    }
    return 0;
  }

  if (sub == "backup" || sub == "restore") {
    if (tenant.empty()) {
      std::fprintf(stderr,
                   "error: cluster %s requires --tenant (before the "
                   "command): slim -r %s --tenant NAME cluster %s ...\n",
                   sub.c_str(), repo_root.c_str(), sub.c_str());
      return 2;
    }
    if (sub == "backup") {
      if (argi >= argc) return Usage();
      for (; argi < argc; ++argi) {
        std::ifstream in(argv[argi], std::ios::binary);
        if (!in) {
          return Fail(Status::IoError(std::string("cannot read ") +
                                      argv[argi]));
        }
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        auto stats = cl->Backup(tenant, argv[argi], data);
        if (!stats.ok()) {
          cli_job.SetError(stats.status().ToString());
          return Fail(stats.status());
        }
        std::printf("%s: tenant %s, version %llu, %.1f MB, dedup %.1f%%\n",
                    argv[argi], tenant.c_str(),
                    (unsigned long long)stats.value().version,
                    Mb(stats.value().logical_bytes),
                    100 * stats.value().DedupRatio());
      }
      return 0;
    }
    if (argi + 2 >= argc) return Usage();
    std::string file_id = argv[argi];
    uint64_t version = std::stoull(argv[argi + 1]);
    std::string out_path = argv[argi + 2];
    auto data = cl->Restore(tenant, file_id, version);
    if (!data.ok()) {
      cli_job.SetError(data.status().ToString());
      return Fail(data.status());
    }
    Status w = WriteFile(out_path, data.value());
    if (!w.ok()) return Fail(w);
    std::printf("restored %s v%llu (tenant %s) to %s (%.1f MB)\n",
                file_id.c_str(), (unsigned long long)version, tenant.c_str(),
                out_path.c_str(), Mb(data.value().size()));
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root;
  std::optional<oss::FaultProfile> fault_profile;
  std::string tenant;
  std::string node_id;
  uint32_t parity_group = 0;
  uint32_t shards = 0;
  int argi = 1;
  while (argi + 1 < argc) {
    if (std::strcmp(argv[argi], "-r") == 0) {
      repo_root = argv[argi + 1];
      argi += 2;
    } else if (std::strcmp(argv[argi], "--fault-profile") == 0) {
      auto parsed = oss::ParseFaultProfile(argv[argi + 1]);
      if (!parsed.ok()) return Fail(parsed.status());
      fault_profile = parsed.value();
      argi += 2;
    } else if (std::strcmp(argv[argi], "--parity-group") == 0) {
      parity_group = static_cast<uint32_t>(std::stoul(argv[argi + 1]));
      argi += 2;
    } else if (std::strcmp(argv[argi], "--trace") == 0) {
      g_trace_path = argv[argi + 1];
      argi += 2;
    } else if (std::strcmp(argv[argi], "--cost-model") == 0) {
      std::ifstream in(argv[argi + 1], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read cost model file %s\n",
                     argv[argi + 1]);
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::string error;
      if (!obs::ParseCostModel(text, &g_cost_model, &error)) {
        std::fprintf(stderr, "error: %s: %s\n", argv[argi + 1],
                     error.c_str());
        return 2;
      }
      argi += 2;
    } else if (std::strcmp(argv[argi], "--tenant") == 0) {
      tenant = argv[argi + 1];
      argi += 2;
    } else if (std::strcmp(argv[argi], "--shards") == 0) {
      shards = static_cast<uint32_t>(std::stoul(argv[argi + 1]));
      argi += 2;
    } else if (std::strcmp(argv[argi], "--node") == 0) {
      node_id = argv[argi + 1];
      argi += 2;
    } else {
      break;
    }
  }
  // Node ids become one path segment of the snapshot key and must not
  // collide with the obs# marker itself.
  if (!node_id.empty() &&
      node_id.find_first_of("/#") != std::string::npos) {
    std::fprintf(stderr,
                 "error: --node: id must not contain '/' or '#': %s\n",
                 node_id.c_str());
    return 2;
  }
  // Reject bad tenant ids before any command touches the repo: a bad id
  // would either fake key-prefix components ('/') or alias the atomic-
  // write staging namespace ('#tmp') — see cluster::ValidateTenantId.
  if (!tenant.empty()) {
    Status valid = cluster::ValidateTenantId(tenant);
    if (!valid.ok()) {
      std::fprintf(stderr, "error: --tenant: %s\n",
                   valid.ToString().c_str());
      return 2;
    }
  }
  if (!g_trace_path.empty()) std::atexit(DumpTraceAtExit);
  if (argi < argc && std::strcmp(argv[argi], "bench") == 0) {
    return RunBenchCommand(argc, argv, argi + 1);
  }
  if (repo_root.empty() || argi >= argc) return Usage();
  std::string command = argv[argi++];

  if (command == "jobs") {
    size_t tail = 20;
    bool json = false;
    bool by_tenant = false;
    uint64_t since_ms = 0;  // 0 = no --since filter.
    // --tenant before the command also selects a filter, so both
    // `slim --tenant X -r R jobs` and `slim -r R jobs --tenant X` work.
    std::string filter = tenant;
    bool filtered = !tenant.empty();
    for (; argi < argc; ++argi) {
      if (std::strcmp(argv[argi], "--json") == 0) {
        json = true;
      } else if (std::strcmp(argv[argi], "--by-tenant") == 0) {
        by_tenant = true;
      } else if (std::strcmp(argv[argi], "--tenant") == 0 &&
                 argi + 1 < argc) {
        filter = argv[++argi];
        Status valid = cluster::ValidateTenantId(filter);
        if (!valid.ok()) {
          std::fprintf(stderr, "error: --tenant: %s\n",
                       valid.ToString().c_str());
          return 2;
        }
        filtered = true;
      } else if (std::strcmp(argv[argi], "--tail") == 0 &&
                 argi + 1 < argc) {
        tail = static_cast<size_t>(std::stoul(argv[++argi]));
      } else if (std::strcmp(argv[argi], "--since") == 0 &&
                 argi + 1 < argc) {
        uint64_t duration_ms = 0;
        if (!obs::ParseDurationMs(argv[argi + 1], &duration_ms)) {
          std::fprintf(stderr,
                       "error: --since: cannot parse duration '%s' "
                       "(try 30s, 10m, 2h, 1d)\n",
                       argv[argi + 1]);
          return 2;
        }
        ++argi;
        uint64_t now = UnixMsNow();
        // Clamp so huge durations mean "everything", and a zero
        // duration still counts as an active filter.
        since_ms = duration_ms >= now ? 1 : now - duration_ms;
      } else {
        return Usage();
      }
    }
    const std::string* tenant_filter = filtered ? &filter : nullptr;
    if (by_tenant) {
      return RunJobsByTenantCommand(repo_root, tenant_filter, since_ms);
    }
    return RunJobsCommand(repo_root, tail, json, tenant_filter, since_ms);
  }

  if (command == "top") {
    return RunTopCommand(repo_root, argc, argv, argi);
  }

  if (command == "cluster") {
    return RunClusterCommand(repo_root, tenant, node_id, shards, argc, argv,
                             argi);
  }

  uint32_t init_replicas = 0;
  if (command == "init" && argi + 1 < argc &&
      std::strcmp(argv[argi], "--replicas") == 0) {
    init_replicas = static_cast<uint32_t>(std::stoul(argv[argi + 1]));
    argi += 2;
  }

  // Journal + CLI-root job scope for every repo command. The journal
  // lives beside the object tree; DiskObjectStore::List only yields
  // regular files at its root, so the subdirectory is invisible to the
  // store. Journal records land when scopes close, invocation last.
  std::string journal_dir =
      (std::filesystem::path(repo_root) / "journal").string();
  if (!obs::EventJournal::Get().Configure({journal_dir})) {
    std::fprintf(stderr, "warning: cannot open journal at %s\n",
                 journal_dir.c_str());
  }
  obs::JobScope cli_job("cli", "cli:" + command, tenant);

  // `rebuild` opens without must_exist (a crash can lose the state
  // checkpoint that marks the repo) and without loading the checkpoint
  // (Rebuild discards local state anyway, so a stale or corrupt one
  // must not block recovery).
  bool must_exist = command != "init" && command != "rebuild";
  bool load_state = command != "rebuild";
  auto repo = Repo::Open(repo_root, must_exist, fault_profile,
                         init_replicas, parity_group, g_cost_model, tenant,
                         load_state);
  if (!repo.ok()) {
    cli_job.SetError(repo.status().ToString());
    return Fail(repo.status());
  }
  core::SlimStore* store = repo.value()->store();

  if (command == "init") {
    if (!repo.value()->Save().ok()) return 1;
    if (init_replicas >= 2) {
      std::printf("initialized repository at %s (%u replicas)\n",
                  repo_root.c_str(), init_replicas);
    } else {
      std::printf("initialized repository at %s\n", repo_root.c_str());
    }
    return 0;
  }

  if (command == "backup") {
    if (argi >= argc) return Usage();
    for (; argi < argc; ++argi) {
      // Memory-mapped: large files are paged, not loaded.
      auto stats = store->BackupFile(argv[argi]);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("%s: version %llu, %.1f MB, dedup %.1f%%, %llu new "
                  "containers\n",
                  argv[argi], (unsigned long long)stats.value().version,
                  Mb(stats.value().logical_bytes),
                  100 * stats.value().DedupRatio(),
                  (unsigned long long)stats.value().new_containers.size());
    }
    Status s = repo.value()->Save();
    if (!s.ok()) return Fail(s);
    return 0;
  }

  if (command == "restore") {
    if (argi + 2 >= argc) return Usage();
    std::string file = argv[argi];
    uint64_t version = std::stoull(argv[argi + 1]);
    std::string out = argv[argi + 2];
    lnode::RestoreStats stats;
    auto data = store->Restore(file, version, &stats);
    if (!data.ok()) return Fail(data.status());
    Status s = WriteFile(out, data.value());
    if (!s.ok()) return Fail(s);
    std::printf("restored %s v%llu -> %s (%.1f MB, %llu containers "
                "read)\n",
                file.c_str(), (unsigned long long)version, out.c_str(),
                Mb(data.value().size()),
                (unsigned long long)stats.containers_fetched);
    return 0;
  }

  if (command == "list") {
    std::vector<index::FileVersion> versions =
        store->catalog()->LiveVersions();
    std::string filter = argi < argc ? argv[argi] : "";
    for (const auto& fv : versions) {
      if (!filter.empty() && fv.file_id != filter) continue;
      auto info = store->catalog()->Get(fv.file_id, fv.version);
      std::printf("%-40s v%-6llu %10.1f MB%s\n", fv.file_id.c_str(),
                  (unsigned long long)fv.version,
                  info.has_value()
                      ? Mb(info->logical_bytes)
                      : 0.0,
                  info.has_value() && info->gnode_pending
                      ? "  (g-node pending)"
                      : "");
    }
    return 0;
  }

  if (command == "rebuild") {
    Status s = store->Rebuild();
    if (!s.ok()) return Fail(s);
    s = repo.value()->Save();
    if (!s.ok()) return Fail(s);
    size_t versions = store->catalog()->LiveVersions().size();
    size_t pending = store->catalog()->GnodePending().size();
    std::printf("rebuilt local state from OSS: %zu live version(s), %zu "
                "awaiting a g-node pass\n",
                versions, pending);
    if (pending != 0) {
      std::printf("run `slim -r %s gnode` to finish the recovered work\n",
                  repo_root.c_str());
    }
    return 0;
  }

  if (command == "gnode") {
    auto cycle = store->RunGNodeCycle();
    if (!cycle.ok()) return Fail(cycle.status());
    Status s = repo.value()->Save();
    if (!s.ok()) return Fail(s);
    std::printf("g-node: %zu backups processed, %llu duplicates removed, "
                "%llu chunks compacted, %llu bytes reclaimed\n",
                cycle.value().backups_processed,
                (unsigned long long)cycle.value()
                    .reverse_dedup.duplicates_found,
                (unsigned long long)cycle.value().scc.chunks_moved,
                (unsigned long long)(cycle.value()
                                         .reverse_dedup.bytes_reclaimed +
                                     cycle.value().scc.bytes_reclaimed));
    return 0;
  }

  if (command == "forget") {
    if (argi + 1 >= argc) return Usage();
    std::string file = argv[argi];
    uint64_t version = std::stoull(argv[argi + 1]);
    auto gc = store->DeleteVersion(file, version);
    if (!gc.ok()) return Fail(gc.status());
    Status s = repo.value()->Save();
    if (!s.ok()) return Fail(s);
    std::printf("forgot %s v%llu: %llu containers reclaimed (%.1f MB)\n",
                file.c_str(), (unsigned long long)version,
                (unsigned long long)gc.value().containers_deleted,
                Mb(gc.value().bytes_reclaimed));
    return 0;
  }

  if (command == "verify") {
    auto report = store->VerifyRepository();
    if (!report.ok()) return Fail(report.status());
    std::printf("checked %llu versions, %llu chunks, %llu containers "
                "(%llu redirected chunks)\n",
                (unsigned long long)report.value().versions_checked,
                (unsigned long long)report.value().chunks_checked,
                (unsigned long long)report.value().containers_checked,
                (unsigned long long)report.value().redirected_chunks);
    if (!report.value().ok()) {
      for (const auto& problem : report.value().problems) {
        std::fprintf(stderr, "PROBLEM: %s\n", problem.c_str());
      }
      return 1;
    }
    std::printf("repository OK\n");
    return 0;
  }

  if (command == "scrub" || command == "repair") {
    const bool repair = command == "repair";
    durability::ScrubReport total;
    // Drive budgeted cycles until the cursor clears (a full pass). The
    // default CLI options have no budget, so this is normally one call.
    for (;;) {
      auto cycle = store->Scrub(repair);
      if (!cycle.ok()) return Fail(cycle.status());
      durability::ScrubReport& r = cycle.value();
      total.objects_scanned += r.objects_scanned;
      total.bytes_verified += r.bytes_verified;
      total.checksum_failures += r.checksum_failures;
      total.replicas_repaired += r.replicas_repaired;
      total.metas_rebuilt += r.metas_rebuilt;
      total.recipes_rebuilt += r.recipes_rebuilt;
      total.parity_built += r.parity_built;
      total.parity_reconstructed += r.parity_reconstructed;
      total.quarantined += r.quarantined;
      for (auto& p : r.problems) total.problems.push_back(std::move(p));
      for (auto& c : r.unrecoverable_chunks) {
        total.unrecoverable_chunks.push_back(std::move(c));
      }
      for (auto& v : r.unrecoverable_versions) {
        total.unrecoverable_versions.push_back(std::move(v));
      }
      if (r.cycle_complete) break;
    }
    std::printf("scrub: %llu objects, %.1f MB verified",
                (unsigned long long)total.objects_scanned,
                Mb(total.bytes_verified));
    if (repair) {
      std::printf(
          ", repaired: %llu replicas, %llu metas, %llu recipe objects, "
          "%llu from parity (%llu parity groups, %llu quarantined)",
          (unsigned long long)total.replicas_repaired,
          (unsigned long long)total.metas_rebuilt,
          (unsigned long long)total.recipes_rebuilt,
          (unsigned long long)total.parity_reconstructed,
          (unsigned long long)total.parity_built,
          (unsigned long long)total.quarantined);
    }
    std::printf("\n");
    for (const auto& p : total.problems) {
      std::fprintf(stderr, "PROBLEM: %s\n", p.c_str());
    }
    for (const auto& v : total.unrecoverable_versions) {
      std::fprintf(stderr, "UNRECOVERABLE: %s v%llu: %s\n",
                   v.file_id.c_str(), (unsigned long long)v.version,
                   v.reason.c_str());
    }
    for (const auto& c : total.unrecoverable_chunks) {
      std::fprintf(stderr,
                   "UNRECOVERABLE: %s v%llu chunk %s (container %llu)\n",
                   c.file_id.c_str(), (unsigned long long)c.version,
                   c.fp.ToHex().c_str(),
                   (unsigned long long)c.container_id);
    }
    if (total.data_loss()) {
      std::fprintf(stderr, "scrub: DATA LOSS beyond redundancy\n");
      return 1;
    }
    if (!total.problems.empty()) {
      // Detect mode exits nonzero on findings; repair mode only when
      // something could not be fixed (problems are the findings log).
      if (!repair) return 1;
    }
    std::printf(repair ? "repository repaired\n" : "repository OK\n");
    return 0;
  }

  if (command == "stats") {
    obs::ExportFormat format = obs::ExportFormat::kTable;
    std::string trace_path;
    WatchOptions watch;
    for (; argi < argc; ++argi) {
      if (std::strcmp(argv[argi], "--json") == 0) {
        format = obs::ExportFormat::kJson;
      } else if (std::strcmp(argv[argi], "--prom") == 0) {
        format = obs::ExportFormat::kPrometheus;
      } else if (std::strcmp(argv[argi], "--trace") == 0 &&
                 argi + 1 < argc) {
        trace_path = argv[++argi];
      } else if (!watch.Parse(argc, argv, &argi)) {
        return Usage();
      }
    }
    size_t passes = watch.EffectiveIterations();
    for (size_t pass = 0; passes == 0 || pass < passes; ++pass) {
      watch.PrepareRedraw(pass);
      // Warm the counters with a cheap pass over the repo so a fresh
      // process still reports real OSS traffic.
      auto space = store->GetSpaceReport();
      if (!space.ok()) return Fail(space.status());
      std::printf("%s", core::SlimStore::GetMetricsReport(format).c_str());
      if (format == obs::ExportFormat::kTable) {
        std::printf("%s",
                    obs::RenderLockTable(
                        obs::MetricsRegistry::Get().Snapshot())
                        .c_str());
        std::printf(
            "\n-- slo status --\n%s",
            obs::RenderSloTable(
                obs::ComputeSloStatuses(
                    obs::MetricsRegistry::Get().CaptureRaw().counters,
                    obs::DefaultSlos()))
                .c_str());
        std::printf("%s", RenderJobCosts().c_str());
        std::printf("%s", obs::RenderTrace(obs::TraceSink::Get()).c_str());
        auto reports =
            obs::AnalyzeCriticalPaths(obs::TraceSink::Get().Snapshot());
        if (!reports.empty()) {
          std::printf("%s", obs::RenderCriticalPaths(reports).c_str());
        }
      }
    }
    if (!trace_path.empty()) {
      Status s = WriteFile(
          trace_path,
          obs::ChromeTraceJson(obs::TraceSink::Get().Snapshot()));
      if (!s.ok()) return Fail(s);
      std::printf("wrote Chrome trace to %s (open in Perfetto or "
                  "about:tracing)\n", trace_path.c_str());
    }
    return 0;
  }

  if (command == "space") {
    auto report = store->GetSpaceReport();
    if (!report.ok()) return Fail(report.status());
    std::printf("containers: %10.2f MB\n",
                Mb(report.value().container_bytes));
    std::printf("metadata:   %10.2f MB\n",
                Mb(report.value().meta_bytes));
    std::printf("recipes:    %10.2f MB\n",
                Mb(report.value().recipe_bytes));
    std::printf("index:      %10.2f MB\n",
                Mb(report.value().index_bytes));
    std::printf("total:      %10.2f MB\n",
                Mb(report.value().total()));
    // Storage-at-rest tariff: every logical byte is billed once per
    // physical replica, at the modeled $/GB-month rate (GB = 2^30).
    size_t replicas = repo.value()->replica_count();
    double billed_gb = static_cast<double>(report.value().total()) *
                       static_cast<double>(replicas) /
                       (1024.0 * 1024.0 * 1024.0);
    double dollars =
        billed_gb * g_cost_model.storage_dollars_per_gb_month;
    std::printf("at-rest:    %10.6f $/month (%zu replica%s x %.4f GB x "
                "$%.4f/GB-month)\n",
                dollars, replicas, replicas == 1 ? "" : "s",
                billed_gb / static_cast<double>(replicas),
                g_cost_model.storage_dollars_per_gb_month);
    return 0;
  }

  return Usage();
}
