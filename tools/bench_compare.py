#!/usr/bin/env python3
"""Validate and compare BENCH perf-trajectory JSON reports.

Usage:
  bench_compare.py --validate REPORT.json
      Schema-check one report. Exit 2 on any schema violation.

  bench_compare.py [--warn-only] BASELINE.json CURRENT.json
      Print a per-scenario delta table and gate on regressions:
        * throughput_mbps.mean drops more than 10%   -> regression
        * oss.requests grows more than 15%           -> regression
        * cost.dollars grows more than 15% (v2 only) -> regression
      Exit 1 if any regression (0 with --warn-only), 2 on schema errors.

  bench_compare.py --update-baseline BASELINE.json CURRENT.json
      Schema-check CURRENT and copy it over BASELINE (intentional
      perf/cost shifts re-baseline explicitly instead of hand-editing).

Thresholds are tuned for the deterministic quick suite: scenario seeds
are fixed, so OSS request counts — and therefore dollar costs under a
fixed tariff — are exactly reproducible; only wall-clock throughput
carries machine noise (hence the looser 10% and the
--throughput-warn-only escape hatch for noisy CI runners).

Schema v1 reports carry oss request/byte totals; v2 adds the per-op
"oss.by_op" breakdown and the "cost" dollar block. Both validate; the
cost gate engages only when baseline and current are both v2.

Some scenarios publish pass/fail invariants through their "extra"
block, and those are gated HARD (never --warn-only) whenever the
scenario appears in the current report:
  * cluster.scaleout: extra.monotonic must be 1 — aggregate backup
    throughput must strictly increase going 1 -> 2 -> 4 L-nodes, the
    core scale-out claim of the tenancy + sharding subsystem.
  * micro.metrics: extra.within_budget must be 1 — capturing,
    serializing, and publishing registry snapshots at the cluster
    cadence must cost < 5% on a metric-instrumented hot loop, the
    observability plane's overhead contract.

Stdlib only; CI runs this against the committed baseline in
bench/baselines/.
"""

import argparse
import json
import shutil
import sys

SUPPORTED_SCHEMA_VERSIONS = (1, 2)
THROUGHPUT_REGRESSION_PCT = 10.0
OSS_REQUEST_INFLATION_PCT = 15.0
COST_INFLATION_PCT = 15.0

OSS_OPS = ("put", "get", "getrange", "delete", "list", "exists", "size")

# scenario name -> (extra key, required value, human reason). Checked
# against whichever report is "current" (and under --validate); a
# violation is a hard failure even with --warn-only, because these are
# correctness claims, not perf trajectories.
SCENARIO_INVARIANTS = {
    "cluster.scaleout": (
        "monotonic", 1.0,
        "throughput must increase monotonically from 1 to 4 L-nodes"),
    "micro.metrics": (
        "within_budget", 1.0,
        "snapshot capture + publish must cost < 5% on a metric hot loop"),
}


def check_invariants(report, label):
    """Returns a list of invariant-violation strings (empty = ok)."""
    violations = []
    for s in report.get("scenarios", []):
        if not isinstance(s, dict):
            continue
        invariant = SCENARIO_INVARIANTS.get(s.get("name"))
        if invariant is None:
            continue
        key, required, reason = invariant
        extra = s.get("extra") if isinstance(s.get("extra"), dict) else {}
        actual = extra.get(key)
        if actual != required:
            violations.append(
                f"{label}: {s.get('name')}: extra.{key} is {actual!r}, "
                f"must be {required!r} ({reason})")
    return violations


def _is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _is_int(x):
    return isinstance(x, int) and not isinstance(x, bool)


def _check_stat(errors, where, stat):
    if not isinstance(stat, dict):
        errors.append(f"{where}: expected object with mean/min/max")
        return
    for key in ("mean", "min", "max"):
        if not _is_num(stat.get(key)):
            errors.append(f"{where}.{key}: missing or non-numeric")


def validate_report(report, label):
    """Returns a list of schema-error strings (empty = valid)."""
    errors = []
    if not isinstance(report, dict):
        return [f"{label}: top level is not a JSON object"]
    version = report.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            f"{label}: schema_version is {version!r}, "
            f"expected one of {SUPPORTED_SCHEMA_VERSIONS}")
        version = None
    if report.get("suite") not in ("quick", "full"):
        errors.append(f"{label}: suite is {report.get('suite')!r}, expected "
                      "'quick' or 'full'")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list):
        errors.append(f"{label}: 'scenarios' missing or not a list")
        return errors
    seen = set()
    for i, s in enumerate(scenarios):
        where = f"{label}: scenarios[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{where}: not an object")
            continue
        name = s.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing scenario name")
        elif name in seen:
            errors.append(f"{where}: duplicate scenario name '{name}'")
        else:
            seen.add(name)
            where = f"{label}: {name}"
        if not _is_int(s.get("repeats")) or s.get("repeats") < 1:
            errors.append(f"{where}: repeats must be an integer >= 1")
        _check_stat(errors, f"{where}.wall_seconds", s.get("wall_seconds"))
        _check_stat(errors, f"{where}.throughput_mbps",
                    s.get("throughput_mbps"))
        if not _is_int(s.get("logical_bytes")) or s.get("logical_bytes") < 0:
            errors.append(f"{where}: logical_bytes must be an integer >= 0")
        if not _is_num(s.get("dedup_ratio")):
            errors.append(f"{where}: dedup_ratio missing or non-numeric")
        oss = s.get("oss")
        if not isinstance(oss, dict):
            errors.append(f"{where}: 'oss' missing or not an object")
        else:
            for key in ("requests", "bytes_read", "bytes_written"):
                if not _is_int(oss.get(key)) or oss.get(key) < 0:
                    errors.append(
                        f"{where}.oss.{key}: must be an integer >= 0")
            if version == 2:
                by_op = oss.get("by_op")
                if not isinstance(by_op, dict):
                    errors.append(
                        f"{where}.oss.by_op: missing or not an object (v2)")
                else:
                    for op in OSS_OPS:
                        if not _is_int(by_op.get(op)) or by_op.get(op) < 0:
                            errors.append(f"{where}.oss.by_op.{op}: must be "
                                          "an integer >= 0")
                    unknown = set(by_op) - set(OSS_OPS)
                    if unknown:
                        errors.append(f"{where}.oss.by_op: unknown op(s) "
                                      f"{sorted(unknown)}")
                    if (_is_int(oss.get("requests")) and
                            all(_is_int(by_op.get(op)) for op in OSS_OPS) and
                            sum(by_op[op] for op in OSS_OPS)
                            != oss["requests"]):
                        errors.append(
                            f"{where}.oss.by_op: op counts sum to "
                            f"{sum(by_op[op] for op in OSS_OPS)}, but "
                            f"requests is {oss['requests']}")
        if version == 2:
            cost = s.get("cost")
            if not isinstance(cost, dict):
                errors.append(f"{where}: 'cost' missing or not an object "
                              "(v2)")
            else:
                parts_ok = True
                for key in ("dollars", "request_dollars",
                            "transfer_dollars"):
                    if not _is_num(cost.get(key)) or cost.get(key) < 0:
                        errors.append(
                            f"{where}.cost.{key}: must be a number >= 0")
                        parts_ok = False
                if parts_ok and abs(cost["dollars"] -
                                    (cost["request_dollars"] +
                                     cost["transfer_dollars"])) > 1e-6:
                    errors.append(
                        f"{where}.cost: dollars {cost['dollars']} != "
                        f"request_dollars + transfer_dollars")
        phases = s.get("phases")
        if not isinstance(phases, dict):
            errors.append(f"{where}: 'phases' missing or not an object")
        else:
            for pname, p in phases.items():
                pwhere = f"{where}.phases[{pname}]"
                if not isinstance(p, dict):
                    errors.append(f"{pwhere}: not an object")
                    continue
                fields_ok = True
                for key in ("count", "p50", "p90", "p99"):
                    if not _is_int(p.get(key)) or p.get(key) < 0:
                        errors.append(
                            f"{pwhere}.{key}: must be an integer >= 0")
                        fields_ok = False
                if fields_ok and not (p["p50"] <= p["p90"] <= p["p99"]):
                    errors.append(
                        f"{pwhere}: quantiles not monotonic "
                        f"(p50={p['p50']} p90={p['p90']} p99={p['p99']})")
        extra = s.get("extra")
        if not isinstance(extra, dict):
            errors.append(f"{where}: 'extra' missing or not an object")
        else:
            for key, value in extra.items():
                if not _is_num(value):
                    errors.append(f"{where}.extra[{key}]: non-numeric")
    return errors


def load_report(path):
    """Returns (report, errors). Parse failures count as schema errors."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: {e}"]
    return report, validate_report(report, path)


def pct_delta(base, cur):
    if base == 0:
        return 0.0
    return 100.0 * (cur - base) / base


def compare(baseline, current, throughput_warn_only=False):
    """Prints the delta table; returns (regressions, warnings) lists.

    The throughput gate moves to the warnings list under
    throughput_warn_only; the deterministic request and cost gates are
    always hard.
    """
    base_by_name = {s["name"]: s for s in baseline["scenarios"]}
    cur_by_name = {s["name"]: s for s in current["scenarios"]}
    both_v2 = (baseline.get("schema_version") == 2
               and current.get("schema_version") == 2)
    regressions = []
    warnings = []

    header = (f"{'scenario':<40} {'base MB/s':>10} {'cur MB/s':>10} "
              f"{'delta':>8} {'base reqs':>10} {'cur reqs':>10} {'delta':>8}")
    if both_v2:
        header += f" {'base $':>11} {'cur $':>11} {'delta':>8}"
    print(header)
    for name in sorted(base_by_name):
        if name not in cur_by_name:
            print(f"{name:<40} (missing from current report)")
            continue
        base, cur = base_by_name[name], cur_by_name[name]
        base_mbps = base["throughput_mbps"]["mean"]
        cur_mbps = cur["throughput_mbps"]["mean"]
        mbps_delta = pct_delta(base_mbps, cur_mbps)
        base_reqs = base["oss"]["requests"]
        cur_reqs = cur["oss"]["requests"]
        req_delta = pct_delta(base_reqs, cur_reqs)
        marks = []
        if base_mbps > 0 and mbps_delta < -THROUGHPUT_REGRESSION_PCT:
            marks.append("THROUGHPUT")
            message = (
                f"{name}: throughput {base_mbps:.1f} -> {cur_mbps:.1f} MB/s "
                f"({mbps_delta:+.1f}%, limit -{THROUGHPUT_REGRESSION_PCT}%)")
            (warnings if throughput_warn_only else regressions).append(message)
        if base_reqs > 0 and req_delta > OSS_REQUEST_INFLATION_PCT:
            marks.append("OSS-REQS")
            regressions.append(
                f"{name}: OSS requests {base_reqs} -> {cur_reqs} "
                f"({req_delta:+.1f}%, limit +{OSS_REQUEST_INFLATION_PCT}%)")
        line = (f"{name:<40} {base_mbps:>10.1f} {cur_mbps:>10.1f} "
                f"{mbps_delta:>+7.1f}% {base_reqs:>10} {cur_reqs:>10} "
                f"{req_delta:>+7.1f}%")
        if both_v2:
            base_cost = base["cost"]["dollars"]
            cur_cost = cur["cost"]["dollars"]
            cost_delta = pct_delta(base_cost, cur_cost)
            if base_cost > 0 and cost_delta > COST_INFLATION_PCT:
                marks.append("COST")
                regressions.append(
                    f"{name}: cost ${base_cost:.6f} -> ${cur_cost:.6f} "
                    f"({cost_delta:+.1f}%, limit +{COST_INFLATION_PCT}%)")
            line += (f" {base_cost:>11.6f} {cur_cost:>11.6f} "
                     f"{cost_delta:>+7.1f}%")
        print(f"{line}{'  <-- ' + ','.join(marks) if marks else ''}")
    for name in sorted(set(cur_by_name) - set(base_by_name)):
        print(f"{name:<40} (new scenario, no baseline)")
    if not both_v2:
        print("(cost gate skipped: both reports must be schema v2)")
    return regressions, warnings


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--validate", metavar="REPORT",
                        help="schema-check one report and exit")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--throughput-warn-only", action="store_true",
                        help="hard-gate requests and cost (deterministic), "
                             "only warn on throughput (machine noise)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="schema-check CURRENT and copy it over BASELINE")
    parser.add_argument("reports", nargs="*",
                        metavar="BASELINE CURRENT")
    args = parser.parse_args(argv)

    if args.validate:
        report, errors = load_report(args.validate)
        for e in errors:
            print(f"SCHEMA ERROR: {e}", file=sys.stderr)
        if errors:
            return 2
        violations = check_invariants(report, args.validate)
        for v in violations:
            print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
        if violations:
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    if len(args.reports) != 2:
        parser.error("expected BASELINE and CURRENT reports "
                     "(or --validate REPORT)")

    if args.update_baseline:
        report, errors = load_report(args.reports[1])
        for e in errors:
            print(f"SCHEMA ERROR: {e}", file=sys.stderr)
        if errors:
            print(f"not updating {args.reports[0]}: current report is "
                  "invalid", file=sys.stderr)
            return 2
        violations = check_invariants(report, args.reports[1])
        if violations:
            for v in violations:
                print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
            print(f"not updating {args.reports[0]}: current report "
                  "violates scenario invariants", file=sys.stderr)
            return 1
        shutil.copyfile(args.reports[1], args.reports[0])
        print(f"updated baseline {args.reports[0]} from {args.reports[1]}")
        return 0

    baseline, base_errors = load_report(args.reports[0])
    current, cur_errors = load_report(args.reports[1])
    errors = base_errors + cur_errors
    for e in errors:
        print(f"SCHEMA ERROR: {e}", file=sys.stderr)
    if errors:
        return 2

    regressions, warnings = compare(
        baseline, current, throughput_warn_only=args.throughput_warn_only)
    for w in warnings:
        print(f"WARNING (not gated): {w}", file=sys.stderr)
    violations = check_invariants(current, args.reports[1])
    if violations:
        for v in violations:
            print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        if args.warn_only:
            print("(--warn-only: exiting 0)", file=sys.stderr)
            return 0
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
