// Tests for the append-only event journal (src/obs/journal.*):
// round-trip, segment rotation + pruning, torn-record recovery after a
// simulated crash, and the job record JSON + field extractors.

#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/job_context.h"

namespace slim::obs {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / ("journal_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

class JournalTest : public testing::Test {
 protected:
  // The journal is a process singleton; leave it disabled between tests
  // so unrelated suites never see a stale configuration.
  void TearDown() override { EventJournal::Get().Disable(); }
};

TEST_F(JournalTest, AppendReadAllRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  ASSERT_TRUE(EventJournal::Get().Configure({dir}));
  EXPECT_TRUE(EventJournal::Get().enabled());
  EXPECT_EQ(EventJournal::Get().directory(), dir);
  EventJournal::Get().Append("{\"type\":\"a\"}");
  EventJournal::Get().Append("{\"type\":\"b\"}");
  EventJournal::Get().Disable();

  JournalReadResult result = EventJournal::ReadAll(dir);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0], "{\"type\":\"a\"}");
  EXPECT_EQ(result.records[1], "{\"type\":\"b\"}");
  EXPECT_EQ(result.malformed_records, 0u);
  ASSERT_EQ(result.files.size(), 1u);
}

TEST_F(JournalTest, AppendIsNoOpWhenDisabled) {
  EventJournal::Get().Disable();
  EXPECT_FALSE(EventJournal::Get().enabled());
  EventJournal::Get().Append("{\"dropped\":true}");  // Must not crash.
  EXPECT_EQ(EventJournal::Get().directory(), "");
}

TEST_F(JournalTest, RotatesAtSizeAndPrunesOldestSegments) {
  std::string dir = FreshDir("rotation");
  JournalOptions options;
  options.directory = dir;
  options.rotate_bytes = 256;  // Tiny segments force rotation.
  options.max_files = 3;
  ASSERT_TRUE(EventJournal::Get().Configure(options));
  std::string record = "{\"fill\":\"" + std::string(100, 'x') + "\"}";
  for (int i = 0; i < 20; ++i) EventJournal::Get().Append(record);
  EventJournal::Get().Disable();

  size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segments;
  }
  EXPECT_LE(segments, 3u);  // Pruned to max_files.
  JournalReadResult result = EventJournal::ReadAll(dir);
  EXPECT_GT(result.records.size(), 0u);
  EXPECT_LT(result.records.size(), 20u);  // Oldest records were pruned.
  EXPECT_EQ(result.malformed_records, 0u);
  for (const std::string& r : result.records) EXPECT_EQ(r, record);
}

TEST_F(JournalTest, ReaderSkipsAndCountsTornTrailingRecord) {
  std::string dir = FreshDir("torn_read");
  ASSERT_TRUE(EventJournal::Get().Configure({dir}));
  EventJournal::Get().Append("{\"seq\":1}");
  EventJournal::Get().Append("{\"seq\":2}");
  EventJournal::Get().Disable();

  // Simulate a crash mid-append: a trailing record with no newline and
  // a truncated JSON object.
  JournalReadResult before = EventJournal::ReadAll(dir);
  ASSERT_EQ(before.files.size(), 1u);
  {
    std::ofstream out(before.files[0],
                      std::ios::binary | std::ios::app);
    out << "{\"seq\":3,\"trunc";
  }
  JournalReadResult after = EventJournal::ReadAll(dir);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1], "{\"seq\":2}");
  EXPECT_EQ(after.malformed_records, 1u);
}

TEST_F(JournalTest, ReopenSealsTornRecordAndAppendsContinueClean) {
  std::string dir = FreshDir("torn_reopen");
  ASSERT_TRUE(EventJournal::Get().Configure({dir}));
  EventJournal::Get().Append("{\"seq\":1}");
  EventJournal::Get().Disable();
  JournalReadResult before = EventJournal::ReadAll(dir);
  ASSERT_EQ(before.files.size(), 1u);
  {
    std::ofstream out(before.files[0],
                      std::ios::binary | std::ios::app);
    out << "{\"seq\":2,\"trunc";  // Crash mid-append.
  }

  // Reopening seals the torn record; the next append starts on a fresh
  // line instead of gluing onto the partial one.
  ASSERT_TRUE(EventJournal::Get().Configure({dir}));
  EventJournal::Get().Append("{\"seq\":3}");
  EventJournal::Get().Disable();

  JournalReadResult after = EventJournal::ReadAll(dir);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[0], "{\"seq\":1}");
  EXPECT_EQ(after.records[1], "{\"seq\":3}");
  EXPECT_EQ(after.malformed_records, 1u);  // The sealed torn record.
}

TEST_F(JournalTest, ConfigureContinuesNumberingAcrossReopen) {
  std::string dir = FreshDir("renumber");
  JournalOptions options;
  options.directory = dir;
  options.rotate_bytes = 64;
  options.max_files = 8;
  ASSERT_TRUE(EventJournal::Get().Configure(options));
  for (int i = 0; i < 5; ++i) {
    EventJournal::Get().Append("{\"fill\":\"aaaaaaaaaaaaaaaaaaaaaaaa\"}");
  }
  EventJournal::Get().Disable();
  JournalReadResult before = EventJournal::ReadAll(dir);
  ASSERT_GE(before.files.size(), 2u);

  // A second process lifetime must append after the highest existing
  // segment, not overwrite segment 0.
  ASSERT_TRUE(EventJournal::Get().Configure(options));
  EventJournal::Get().Append("{\"fill\":\"bbbbbbbbbbbbbbbbbbbbbbbb\"}");
  EventJournal::Get().Disable();
  JournalReadResult after = EventJournal::ReadAll(dir);
  EXPECT_EQ(after.records.size(), before.records.size() + 1);
  EXPECT_EQ(after.records.back(),
            "{\"fill\":\"bbbbbbbbbbbbbbbbbbbbbbbb\"}");
}

TEST_F(JournalTest, JobRecordJsonCarriesIdentityCostAndCausality) {
  JobSummary summary;
  summary.job_id = 7;
  summary.parent_id = 3;
  summary.kind = "backup";
  summary.name = "backup:home.tar";
  summary.tenant = "acme";
  summary.outcome = "ok";
  summary.start_unix_ms = 1000;
  summary.end_unix_ms = 1250;
  summary.cost.requests[static_cast<size_t>(OssOp::kPut)] = 4;
  summary.cost.requests[static_cast<size_t>(OssOp::kGet)] = 2;
  summary.cost.bytes_read = 100;
  summary.cost.bytes_written = 5000;
  summary.cost.picodollars = 20800000;  // 4 PUTs + 2 GETs.
  summary.extra["versions"] = 3.0;

  std::string json = EventJournal::JobRecordJson(summary);
  EXPECT_NE(json.find("\"type\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"job\":7"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":250"), std::string::npos);
  EXPECT_NE(json.find("\"put\":4"), std::string::npos);
  EXPECT_NE(json.find("\"requests\":6"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_written\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"versions\":3"), std::string::npos);

  // The `slim jobs` reader parses records with the extractors.
  std::string value;
  double number = 0;
  ASSERT_TRUE(EventJournal::ExtractString(json, "kind", &value));
  EXPECT_EQ(value, "backup");
  ASSERT_TRUE(EventJournal::ExtractString(json, "outcome", &value));
  EXPECT_EQ(value, "ok");
  ASSERT_TRUE(EventJournal::ExtractNumber(json, "job", &number));
  EXPECT_DOUBLE_EQ(number, 7.0);
  ASSERT_TRUE(EventJournal::ExtractNumber(json, "dollars", &number));
  EXPECT_NEAR(number, 0.0000208, 1e-9);
  EXPECT_FALSE(EventJournal::ExtractString(json, "no_such_key", &value));
  EXPECT_FALSE(EventJournal::ExtractNumber(json, "no_such_key", &number));
}

TEST_F(JournalTest, FinishedJobScopesAppendRecords) {
  std::string dir = FreshDir("scopes");
  ASSERT_TRUE(EventJournal::Get().Configure({dir}));
  {
    JobScope parent("test", "test:journal_parent", "tenant-x");
    JobScope child("test", "test:journal_child");
    child.Annotate("widgets", 2.0);
  }
  EventJournal::Get().Disable();

  JournalReadResult result = EventJournal::ReadAll(dir);
  ASSERT_EQ(result.records.size(), 2u);
  // Scopes unwind innermost-first, so the child record lands first and
  // carries the parent's id as its causality link.
  double child_parent = 0, parent_id = 0;
  ASSERT_TRUE(EventJournal::ExtractNumber(result.records[0], "parent",
                                          &child_parent));
  ASSERT_TRUE(EventJournal::ExtractNumber(result.records[1], "job",
                                          &parent_id));
  EXPECT_EQ(child_parent, parent_id);
  EXPECT_NE(result.records[0].find("\"widgets\":2"), std::string::npos);
  EXPECT_NE(result.records[1].find("\"tenant\":\"tenant-x\""),
            std::string::npos);
}

TEST_F(JournalTest, RollupByTenantAggregatesMultiTenantJournal) {
  // A journal mixing two tagged tenants, untagged jobs, a failed job,
  // and a non-job record — the exact shape `slim jobs --by-tenant`
  // reads back.
  auto job = [](uint64_t id, const std::string& tenant,
                const std::string& outcome, uint64_t puts,
                uint64_t bytes_written, int64_t wall_ms,
                int64_t picodollars) {
    JobSummary summary;
    summary.job_id = id;
    summary.kind = "backup";
    summary.name = "backup:file-" + std::to_string(id);
    summary.tenant = tenant;
    summary.outcome = outcome;
    summary.start_unix_ms = 1000;
    summary.end_unix_ms = 1000 + wall_ms;
    summary.cost.requests[static_cast<size_t>(OssOp::kPut)] = puts;
    summary.cost.bytes_written = bytes_written;
    summary.cost.picodollars = picodollars;
    return EventJournal::JobRecordJson(summary);
  };
  std::vector<std::string> records = {
      job(1, "acme", "ok", 4, 1000, 10, 5'000'000'000),  // 0.005 $
      job(2, "acme", "error: oss down", 1, 0, 5, 1'000'000'000),
      job(3, "globex", "ok", 2, 500, 7, 9'000'000'000),  // 0.009 $
      job(4, "", "ok", 1, 100, 3, 2'000'000'000),        // untagged
      "{\"type\":\"note\",\"tenant\":\"acme\",\"dollars\":99}",  // ignored
  };

  auto rollups = EventJournal::RollupByTenant(records);
  ASSERT_EQ(rollups.size(), 3u);

  // Sorted by dollars descending: globex (0.009), acme (0.006), "".
  EXPECT_EQ(rollups[0].tenant, "globex");
  EXPECT_EQ(rollups[0].jobs, 1u);
  EXPECT_EQ(rollups[0].errors, 0u);
  EXPECT_EQ(rollups[0].requests, 2u);
  EXPECT_EQ(rollups[0].bytes_written, 500u);
  EXPECT_DOUBLE_EQ(rollups[0].wall_ms, 7.0);
  EXPECT_NEAR(rollups[0].dollars, 0.009, 1e-12);

  EXPECT_EQ(rollups[1].tenant, "acme");
  EXPECT_EQ(rollups[1].jobs, 2u);
  EXPECT_EQ(rollups[1].errors, 1u);  // The "error: oss down" job.
  EXPECT_EQ(rollups[1].requests, 5u);
  EXPECT_EQ(rollups[1].bytes_written, 1000u);
  EXPECT_DOUBLE_EQ(rollups[1].wall_ms, 15.0);
  EXPECT_NEAR(rollups[1].dollars, 0.006, 1e-12);

  EXPECT_EQ(rollups[2].tenant, "");
  EXPECT_EQ(rollups[2].jobs, 1u);
  EXPECT_NEAR(rollups[2].dollars, 0.002, 1e-12);
}

TEST_F(JournalTest, FilterByTenantSelectsOnlyMatchingRecords) {
  auto job = [](uint64_t id, const std::string& tenant) {
    JobSummary summary;
    summary.job_id = id;
    summary.kind = "backup";
    summary.name = "backup:file-" + std::to_string(id);
    summary.tenant = tenant;
    summary.outcome = "ok";
    return EventJournal::JobRecordJson(summary);
  };
  std::vector<std::string> records = {
      job(1, "acme"), job(2, "globex"), job(3, "acme"), job(4, ""),
      "{\"type\":\"note\",\"tenant\":\"acme\"}",
  };

  auto acme = EventJournal::FilterByTenant(records, "acme");
  ASSERT_EQ(acme.size(), 3u);  // Two jobs + the tagged note, input order.
  EXPECT_EQ(acme[0], records[0]);
  EXPECT_EQ(acme[1], records[2]);
  EXPECT_EQ(acme[2], records[4]);

  // A tenant that never ran anything filters to nothing; the empty
  // tenant selects exactly the untagged records.
  EXPECT_TRUE(EventJournal::FilterByTenant(records, "initech").empty());
  auto untagged = EventJournal::FilterByTenant(records, "");
  ASSERT_EQ(untagged.size(), 1u);
  EXPECT_EQ(untagged[0], records[3]);
}

TEST_F(JournalTest, FilterByTenantDoesNotMatchPrefixOrSubstring) {
  auto job = [](const std::string& tenant) {
    JobSummary summary;
    summary.job_id = 1;
    summary.kind = "backup";
    summary.tenant = tenant;
    summary.outcome = "ok";
    return EventJournal::JobRecordJson(summary);
  };
  std::vector<std::string> records = {job("acme"), job("acme-prod"),
                                      job("pre-acme")};
  auto matched = EventJournal::FilterByTenant(records, "acme");
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], records[0]);
}

TEST_F(JournalTest, RollupByTenantTiesBreakByTenantName) {
  auto job = [](const std::string& tenant) {
    JobSummary summary;
    summary.job_id = 1;
    summary.kind = "restore";
    summary.tenant = tenant;
    summary.outcome = "ok";
    return EventJournal::JobRecordJson(summary);
  };
  // Identical (zero) dollars: order must fall back to tenant ascending.
  auto rollups = EventJournal::RollupByTenant(
      {job("zeta"), job("alpha"), job("mid")});
  ASSERT_EQ(rollups.size(), 3u);
  EXPECT_EQ(rollups[0].tenant, "alpha");
  EXPECT_EQ(rollups[1].tenant, "mid");
  EXPECT_EQ(rollups[2].tenant, "zeta");
}

}  // namespace
}  // namespace slim::obs
