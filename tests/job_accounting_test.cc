// End-to-end job attribution: a replicated SlimStore whose physical
// replicas are wrapped in cost-accounting decorators, driven through
// backup -> G-node cycle -> restore. The acceptance bar is that >= 99%
// of OSS requests AND payload bytes are attributed to named jobs (the
// unattributed account is reported explicitly, never silently
// dropped), and that the journal records the causality chain.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/slimstore.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "obs/job_context.h"
#include "obs/journal.h"
#include "oss/cost_accounting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"

namespace slim {
namespace {

namespace fs = std::filesystem;

using obs::EventJournal;
using obs::JobCost;
using obs::JobRegistry;
using obs::JobScope;
using obs::JobSummary;

TEST(JobAccountingTest, ThreadPoolPropagatesTheSubmittersJob) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  oss::CostAccountingObjectStore billed(&memory, obs::CostModel());
  ThreadPool pool(2);
  uint64_t job_id = 0;
  {
    JobScope job("test", "test:pool_propagation");
    job_id = job.job_id();
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&billed, i] {
        ASSERT_TRUE(
            billed.Put("k" + std::to_string(i), std::string(10, 'x')).ok());
      });
    }
    pool.WaitIdle();
  }
  pool.Shutdown();
  // Every worker-thread charge landed on the submitting job.
  EXPECT_EQ(JobRegistry::Get().unattributed().total_requests(), 0u);
  bool found = false;
  for (const JobSummary& s : JobRegistry::Get().Summaries()) {
    if (s.job_id != job_id) continue;
    found = true;
    EXPECT_EQ(s.cost.requests[static_cast<size_t>(obs::OssOp::kPut)], 8u);
    EXPECT_EQ(s.outcome, "ok");
  }
  EXPECT_TRUE(found);
}

TEST(JobAccountingTest, TasksSubmittedOutsideAnyJobStayUnattributed) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  oss::CostAccountingObjectStore billed(&memory, obs::CostModel());
  ThreadPool pool(1);
  pool.Submit([&billed] {
    ASSERT_TRUE(billed.Put("orphan", std::string("x")).ok());
  });
  pool.WaitIdle();
  pool.Shutdown();
  EXPECT_EQ(JobRegistry::Get().unattributed().total_requests(), 1u);
}

TEST(JobAccountingTest, EndToEndAttributionCoversAlmostAllTraffic) {
  JobRegistry::Get().ResetForTest();
  std::string journal_dir =
      (fs::path(testing::TempDir()) / "job_accounting_journal").string();
  fs::remove_all(journal_dir);
  ASSERT_TRUE(EventJournal::Get().Configure({journal_dir}));

  // The CLI's replicated stack: billing wraps each physical replica, so
  // the durability fan-out is part of the attributed bill.
  std::vector<std::unique_ptr<oss::MemoryObjectStore>> disks;
  std::vector<std::unique_ptr<oss::CostAccountingObjectStore>> accountants;
  std::vector<oss::ObjectStore*> replicas;
  for (int i = 0; i < 2; ++i) {
    disks.push_back(std::make_unique<oss::MemoryObjectStore>());
    accountants.push_back(std::make_unique<oss::CostAccountingObjectStore>(
        disks.back().get(), obs::CostModel()));
    replicas.push_back(accountants.back().get());
  }
  durability::ReplicatingObjectStore replicated(
      replicas, durability::PlacementPolicy(),
      [](std::string_view) { return true; });
  oss::OssCostModel sim;
  sim.sleep_for_cost = false;
  oss::SimulatedOss metered(&replicated, sim);

  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.chunk_merging = true;
  options.tenant = "tenant-e2e";
  core::SlimStore store(&metered, options);

  // Three versions of a mutating file, a G-node pass, then a restore.
  std::string v0(96 << 10, 'a');
  std::string v1 = v0;
  v1.replace(1000, 5000, std::string(5000, 'b'));
  std::string v2 = v1 + std::string(8 << 10, 'c');
  for (const std::string* data : {&v0, &v1, &v2}) {
    auto stats = store.Backup("file.bin", *data);
    ASSERT_TRUE(stats.ok()) << stats.status();
  }
  ASSERT_TRUE(store.RunGNodeCycle().ok());
  auto restored = store.Restore("file.bin", 2);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), v2);
  ASSERT_TRUE(store.SaveState().ok());
  EventJournal::Get().Disable();

  // >= 99% of requests AND bytes must be attributed to named jobs; the
  // remainder is visible in the unattributed account.
  JobCost totals = JobRegistry::Get().totals();
  JobCost unattributed = JobRegistry::Get().unattributed();
  ASSERT_GT(totals.total_requests(), 0u);
  ASSERT_GT(totals.bytes_written, 0u);
  double request_coverage =
      1.0 - static_cast<double>(unattributed.total_requests()) /
                static_cast<double>(totals.total_requests());
  uint64_t total_bytes = totals.bytes_read + totals.bytes_written;
  uint64_t unattributed_bytes =
      unattributed.bytes_read + unattributed.bytes_written;
  double byte_coverage = 1.0 - static_cast<double>(unattributed_bytes) /
                                   static_cast<double>(total_bytes);
  EXPECT_GE(request_coverage, 0.99)
      << unattributed.total_requests() << " of " << totals.total_requests()
      << " requests unattributed";
  EXPECT_GE(byte_coverage, 0.99)
      << unattributed_bytes << " of " << total_bytes
      << " bytes unattributed";

  // Replication fan-out is visible in the bill: two physical PUTs per
  // logical container/recipe/meta write.
  EXPECT_EQ(totals.requests[static_cast<size_t>(obs::OssOp::kPut)] % 2, 0u);

  // The journal recorded the whole run with causality links intact.
  obs::JournalReadResult journal = EventJournal::ReadAll(journal_dir);
  ASSERT_GT(journal.records.size(), 0u);
  EXPECT_EQ(journal.malformed_records, 0u);
  uint64_t gnode_job = 0;
  bool saw_backup = false, saw_restore = false, saw_tenant = false;
  for (const std::string& r : journal.records) {
    std::string kind;
    ASSERT_TRUE(EventJournal::ExtractString(r, "kind", &kind)) << r;
    if (kind == "backup") saw_backup = true;
    if (kind == "restore") saw_restore = true;
    if (kind == "gnode_cycle") {
      double id = 0;
      ASSERT_TRUE(EventJournal::ExtractNumber(r, "job", &id));
      gnode_job = static_cast<uint64_t>(id);
    }
    std::string tenant;
    if (EventJournal::ExtractString(r, "tenant", &tenant) &&
        tenant == "tenant-e2e") {
      saw_tenant = true;
    }
  }
  EXPECT_TRUE(saw_backup);
  EXPECT_TRUE(saw_restore);
  EXPECT_TRUE(saw_tenant);
  ASSERT_NE(gnode_job, 0u);
  // G-node phase children (reverse dedup per backup) link to the cycle.
  bool saw_gnode_child = false;
  for (const std::string& r : journal.records) {
    std::string kind;
    double parent = 0;
    if (EventJournal::ExtractString(r, "kind", &kind) &&
        (kind == "reverse_dedup" || kind == "scc") &&
        EventJournal::ExtractNumber(r, "parent", &parent) &&
        static_cast<uint64_t>(parent) == gnode_job) {
      saw_gnode_child = true;
    }
  }
  EXPECT_TRUE(saw_gnode_child);

  // Dollars reconcile: the sum of per-job picodollar rollups equals the
  // process totals (no charge is double-counted or lost).
  uint64_t summed = unattributed.picodollars;
  for (const JobSummary& s : JobRegistry::Get().Summaries()) {
    summed += s.cost.picodollars;
  }
  EXPECT_EQ(summed, totals.picodollars);
}

}  // namespace
}  // namespace slim
