// Additional format-layer coverage: batched segment range reads (the
// skip-chain prefetch primitive), container chunk-count cache and id
// recovery.

#include <gtest/gtest.h>

#include <string>

#include "format/container.h"
#include "format/recipe.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"

namespace slim::format {
namespace {

Fingerprint FpOf(const std::string& s) { return Sha1::Hash(s); }

Recipe MakeRecipe(size_t num_segments, size_t records_per_segment) {
  Recipe recipe;
  recipe.file_id = "f";
  recipe.version = 0;
  for (size_t s = 0; s < num_segments; ++s) {
    SegmentRecipe seg;
    for (size_t r = 0; r < records_per_segment; ++r) {
      ChunkRecord rec;
      rec.fp = FpOf("c-" + std::to_string(s) + "-" + std::to_string(r));
      rec.container_id = s;
      rec.size = 10;
      seg.records.push_back(rec);
    }
    recipe.segments.push_back(std::move(seg));
  }
  return recipe;
}

TEST(ReadSegmentRangeTest, FetchesConsecutiveSegmentsInOneRead) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);
  RecipeStore store(&oss, "r");
  Recipe recipe = MakeRecipe(8, 5);
  ASSERT_TRUE(store.WriteRecipe(recipe, 4).ok());

  auto before = oss.metrics();
  auto segments = store.ReadSegmentRange("f", 0, 2, 4);
  ASSERT_TRUE(segments.ok());
  auto delta = oss.metrics() - before;
  ASSERT_EQ(segments.value().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(segments.value()[i].records, recipe.segments[2 + i].records);
  }
  // One GET for the toc (first use) + one range GET for the 4 segments.
  EXPECT_LE(delta.get_requests, 2u);
}

TEST(ReadSegmentRangeTest, ClampsAtRecipeEnd) {
  oss::MemoryObjectStore store;
  RecipeStore recipes(&store, "r");
  Recipe recipe = MakeRecipe(3, 2);
  ASSERT_TRUE(recipes.WriteRecipe(recipe, 4).ok());
  auto segments = recipes.ReadSegmentRange("f", 0, 2, 10);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments.value().size(), 1u);
  EXPECT_FALSE(recipes.ReadSegmentRange("f", 0, 3, 1).ok());
}

TEST(ChunkCountCacheTest, ServedFromMemoryAfterWrite) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);
  ContainerStore store(&oss, "c");
  ContainerBuilder builder(store.AllocateId(), 1 << 20);
  ASSERT_TRUE(builder.Add(FpOf("a"), "aaa"));
  ASSERT_TRUE(builder.Add(FpOf("b"), "bbb"));
  ContainerId id = builder.id();
  ASSERT_TRUE(store.Write(std::move(builder)).ok());

  auto before = oss.metrics();
  for (int i = 0; i < 10; ++i) {
    auto count = store.ChunkCount(id);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value(), 2u);
  }
  auto delta = oss.metrics() - before;
  EXPECT_EQ(delta.get_requests, 0u);  // All served from the cache.
}

TEST(ChunkCountCacheTest, ColdCacheReadsMetaOnce) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);
  ContainerId id;
  {
    ContainerStore writer(&oss, "c");
    ContainerBuilder builder(writer.AllocateId(), 1 << 20);
    ASSERT_TRUE(builder.Add(FpOf("x"), "xx"));
    id = builder.id();
    ASSERT_TRUE(writer.Write(std::move(builder)).ok());
  }
  ContainerStore reader(&oss, "c");  // Fresh cache.
  auto before = oss.metrics();
  ASSERT_TRUE(reader.ChunkCount(id).ok());
  ASSERT_TRUE(reader.ChunkCount(id).ok());
  auto delta = oss.metrics() - before;
  EXPECT_EQ(delta.get_requests, 1u);
}

TEST(RecoverNextIdTest, SkipsPastExistingContainers) {
  oss::MemoryObjectStore oss;
  {
    ContainerStore store(&oss, "c");
    for (int i = 0; i < 5; ++i) {
      ContainerBuilder builder(store.AllocateId(), 1 << 20);
      ASSERT_TRUE(builder.Add(FpOf("k" + std::to_string(i)), "v"));
      ASSERT_TRUE(store.Write(std::move(builder)).ok());
    }
  }
  ContainerStore reopened(&oss, "c");
  ASSERT_TRUE(reopened.RecoverNextId().ok());
  EXPECT_GE(reopened.AllocateId(), 5u);
}

TEST(RecoverNextIdTest, EmptyStoreStartsAtZero) {
  oss::MemoryObjectStore oss;
  ContainerStore store(&oss, "c");
  ASSERT_TRUE(store.RecoverNextId().ok());
  EXPECT_EQ(store.AllocateId(), 0u);
}

}  // namespace
}  // namespace slim::format
