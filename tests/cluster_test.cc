// Unit and end-to-end tests for the tenancy + sharding subsystem
// (DESIGN.md §8): tenant-id validation, the versioned consistent-hash
// ShardMap and its ring-delta property, the tenant-fair scheduler, and
// multi-tenant backup/restore through a ShardedCluster — including the
// kill-one-L-node / Rebuild() convergence contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "cluster/scheduler.h"
#include "cluster/sharded_cluster.h"
#include "cluster/tenant.h"
#include <mutex>
#include "common/thread_pool.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

using cluster::ShardedCluster;
using cluster::ShardedClusterOptions;
using cluster::ShardMap;
using cluster::TenantFairScheduler;
using cluster::WaveJob;
using workload::GeneratorOptions;
using workload::VersionedFileGenerator;

// --- tenant validation ------------------------------------------------------

TEST(TenantValidation, AcceptsPlainIds) {
  EXPECT_TRUE(cluster::ValidateTenantId("acme").ok());
  EXPECT_TRUE(cluster::ValidateTenantId("acme-1.prod_east").ok());
  EXPECT_TRUE(cluster::ValidateTenantId("whale-0").ok());
}

TEST(TenantValidation, RejectsEmpty) {
  auto status = cluster::ValidateTenantId("");
  EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument) << status;
}

TEST(TenantValidation, RejectsSlash) {
  auto status = cluster::ValidateTenantId("a/b");
  EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument) << status;
}

TEST(TenantValidation, RejectsTmpStagingAlias) {
  auto status = cluster::ValidateTenantId("evil#tmp");
  EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument) << status;
  EXPECT_TRUE(cluster::ValidateTenantId("x#tmpy").code() == StatusCode::kInvalidArgument);
}

TEST(TenantValidation, RejectsControlCharacters) {
  EXPECT_TRUE(cluster::ValidateTenantId("a\nb").code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      cluster::ValidateTenantId(std::string("a\x01b")).code() == StatusCode::kInvalidArgument);
}

TEST(TenantValidation, PrefixShape) {
  EXPECT_EQ(cluster::TenantPrefix("acme"), "t/acme");
}

// --- shard map --------------------------------------------------------------

TEST(ShardMapTest, PlacementIsDeterministic) {
  ShardMap a(64, 16, {"L0", "L1", "L2"});
  ShardMap b(64, 16, {"L2", "L0", "L1"});  // Order-insensitive.
  for (uint32_t shard = 0; shard < 64; ++shard) {
    EXPECT_EQ(a.OwnerOfShard(shard).value(), b.OwnerOfShard(shard).value());
  }
  EXPECT_EQ(a.ShardOfFile("acme", "file-1"), b.ShardOfFile("acme", "file-1"));
}

TEST(ShardMapTest, ShardOfFileIgnoresMembership) {
  // A file's logical shard depends only on (tenant, file, num_shards) —
  // membership churn can never re-shard a file.
  ShardMap a(64, 16, {"L0"});
  ShardMap b(64, 16, {"L0", "L1", "L2", "L3"});
  for (int f = 0; f < 32; ++f) {
    std::string file = "file-" + std::to_string(f);
    EXPECT_EQ(a.ShardOfFile("acme", file), b.ShardOfFile("acme", file));
  }
  // ...and tenants with the same file ids land independently.
  bool any_differs = false;
  for (int f = 0; f < 32; ++f) {
    std::string file = "file-" + std::to_string(f);
    if (a.ShardOfFile("acme", file) != a.ShardOfFile("zeta", file)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(ShardMapTest, OwnerFailsWithNoNodes) {
  ShardMap map(8, 16, {});
  auto owner = map.OwnerOfShard(0);
  EXPECT_TRUE(owner.status().code() == StatusCode::kFailedPrecondition) << owner.status();
}

TEST(ShardMapTest, MembershipEditErrors) {
  ShardMap map(8, 16, {"L0"});
  EXPECT_TRUE(map.AddNode("L0").code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(map.RemoveNode("ghost").IsNotFound());
  EXPECT_TRUE(map.RemoveNode("L0").code() == StatusCode::kFailedPrecondition);  // Last node.
  EXPECT_TRUE(map.AddNode("bad/node").code() == StatusCode::kInvalidArgument);
}

TEST(ShardMapTest, EditsBumpVersion) {
  ShardMap map(8, 16, {"L0"});
  EXPECT_EQ(map.version(), 1u);
  ASSERT_TRUE(map.AddNode("L1").ok());
  EXPECT_EQ(map.version(), 2u);
  ASSERT_TRUE(map.RemoveNode("L0").ok());
  EXPECT_EQ(map.version(), 3u);
}

TEST(ShardMapTest, JsonRoundTripPreservesPlacement) {
  ShardMap map(32, 8, {"L0", "L1"});
  ASSERT_TRUE(map.AddNode("L2").ok());  // version 2: not a fresh map.
  auto parsed = ShardMap::FromJson(map.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().version(), map.version());
  EXPECT_EQ(parsed.value().num_shards(), map.num_shards());
  EXPECT_EQ(parsed.value().vnodes_per_node(), map.vnodes_per_node());
  EXPECT_EQ(parsed.value().nodes(), map.nodes());
  for (uint32_t shard = 0; shard < 32; ++shard) {
    EXPECT_EQ(parsed.value().OwnerOfShard(shard).value(),
              map.OwnerOfShard(shard).value());
  }
}

TEST(ShardMapTest, SaveLoadThroughObjectStore) {
  oss::MemoryObjectStore store;
  ShardMap map(16, 8, {"L0", "L1"});
  ASSERT_TRUE(map.Save(&store, "cluster/map/current").ok());
  auto loaded = ShardMap::Load(&store, "cluster/map/current");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().version(), map.version());
  EXPECT_EQ(loaded.value().nodes(), map.nodes());
  EXPECT_TRUE(
      ShardMap::Load(&store, "cluster/map/target").status().IsNotFound());
}

TEST(ShardMapTest, JoinMovesOnlyRingDelta) {
  // THE consistent-hashing property: adding a node moves shards ONLY
  // toward the new node; every other shard keeps its owner.
  ShardMap before(64, 16, {"L0", "L1", "L2"});
  ShardMap after = before;
  ASSERT_TRUE(after.AddNode("L3").ok());
  auto delta = ShardMap::Delta(before, after);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_FALSE(delta.value().empty());
  EXPECT_LT(delta.value().size(), 64u);  // A join never moves everything.
  std::set<uint32_t> moved;
  for (const auto& move : delta.value()) {
    EXPECT_EQ(move.to_node, "L3");
    EXPECT_EQ(move.from_node, before.OwnerOfShard(move.shard).value());
    moved.insert(move.shard);
  }
  for (uint32_t shard = 0; shard < 64; ++shard) {
    if (moved.count(shard)) continue;
    EXPECT_EQ(before.OwnerOfShard(shard).value(),
              after.OwnerOfShard(shard).value())
        << "shard " << shard << " moved outside the ring delta";
  }
}

TEST(ShardMapTest, LeaveMovesOnlyDepartingNodesShards) {
  ShardMap before(64, 16, {"L0", "L1", "L2", "L3"});
  ShardMap after = before;
  ASSERT_TRUE(after.RemoveNode("L1").ok());
  auto delta = ShardMap::Delta(before, after);
  ASSERT_TRUE(delta.ok()) << delta.status();
  size_t owned_by_l1 = 0;
  for (uint32_t shard = 0; shard < 64; ++shard) {
    if (before.OwnerOfShard(shard).value() == "L1") ++owned_by_l1;
  }
  EXPECT_EQ(delta.value().size(), owned_by_l1);
  for (const auto& move : delta.value()) {
    EXPECT_EQ(move.from_node, "L1");
    EXPECT_NE(move.to_node, "L1");
    EXPECT_EQ(move.to_node, after.OwnerOfShard(move.shard).value());
  }
}

TEST(ShardMapTest, DeltaRejectsMismatchedShardCounts) {
  ShardMap a(8, 16, {"L0"});
  ShardMap b(16, 16, {"L0"});
  EXPECT_TRUE(ShardMap::Delta(a, b).status().code() == StatusCode::kInvalidArgument);
}

// --- tenant-fair scheduler --------------------------------------------------

TEST(SchedulerTest, SingleSlotRoundRobinsTenants) {
  // With one slot, dispatch is fully sequential, so the round-robin
  // interleave is deterministic: A B A B A B, not A A A B B B.
  TenantFairScheduler scheduler({/*total_slots=*/1, /*per_tenant_quota=*/0});
  for (int i = 0; i < 3; ++i) {
    scheduler.Enqueue("A", [] {});
    scheduler.Enqueue("B", [] {});
  }
  ThreadPool pool(2);
  auto stats = scheduler.RunAll(&pool);
  pool.Shutdown();
  EXPECT_EQ(stats.jobs_dispatched, 6u);
  EXPECT_EQ(stats.dispatch_order,
            (std::vector<std::string>{"A", "B", "A", "B", "A", "B"}));
  EXPECT_EQ(stats.max_total_in_flight, 1u);
}

TEST(SchedulerTest, PerTenantQuotaCapsWhales) {
  // A whale with 12 queued jobs against quota 2 must never hold more
  // than 2 slots, and the small tenant still gets dispatched.
  TenantFairScheduler scheduler({/*total_slots=*/8, /*per_tenant_quota=*/2});
  std::atomic<int> whale_done{0};
  for (int i = 0; i < 12; ++i) {
    scheduler.Enqueue("whale", [&whale_done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      whale_done.fetch_add(1);
    });
  }
  for (int i = 0; i < 4; ++i) {
    scheduler.Enqueue("small", [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }
  ThreadPool pool(8);
  auto stats = scheduler.RunAll(&pool);
  pool.Shutdown();
  EXPECT_EQ(whale_done.load(), 12);
  EXPECT_EQ(stats.dispatched_by_tenant["whale"], 12u);
  EXPECT_EQ(stats.dispatched_by_tenant["small"], 4u);
  EXPECT_LE(stats.max_in_flight_by_tenant["whale"], 2u);
  EXPECT_LE(stats.max_in_flight_by_tenant["small"], 2u);
  EXPECT_LE(stats.max_total_in_flight, 4u);  // 2 tenants x quota 2.
}

TEST(SchedulerTest, SequenceKeySerializesInEnqueueOrder) {
  // Jobs sharing a sequence key must run one at a time, in enqueue
  // order, even with plenty of free slots; an independent key overlaps
  // freely.
  TenantFairScheduler scheduler({/*total_slots=*/6, /*per_tenant_quota=*/0});
  std::atomic<int> chain_active{0};
  std::atomic<bool> chain_overlapped{false};
  std::vector<int> chain_order;
  std::mutex order_mu;
  for (int i = 0; i < 6; ++i) {
    scheduler.Enqueue(
        "A",
        [i, &chain_active, &chain_overlapped, &chain_order, &order_mu] {
          if (chain_active.fetch_add(1) != 0) chain_overlapped = true;
          {
            std::lock_guard<std::mutex> lock(order_mu);
            chain_order.push_back(i);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          chain_active.fetch_sub(1);
        },
        /*sequence_key=*/"file-7");
  }
  for (int i = 0; i < 4; ++i) {
    scheduler.Enqueue("A", [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  ThreadPool pool(6);
  auto stats = scheduler.RunAll(&pool);
  pool.Shutdown();
  EXPECT_FALSE(chain_overlapped.load());
  EXPECT_EQ(chain_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(stats.jobs_dispatched, 10u);
  // The unkeyed jobs could overlap the chain: in-flight may exceed 1.
  EXPECT_GE(stats.max_in_flight_by_tenant["A"], 1u);
}

TEST(SchedulerTest, ReusableAcrossWaves) {
  TenantFairScheduler scheduler({/*total_slots=*/2, /*per_tenant_quota=*/0});
  ThreadPool pool(2);
  scheduler.Enqueue("A", [] {});
  auto first = scheduler.RunAll(&pool);
  EXPECT_EQ(first.jobs_dispatched, 1u);
  scheduler.Enqueue("B", [] {});
  scheduler.Enqueue("B", [] {});
  auto second = scheduler.RunAll(&pool);
  pool.Shutdown();
  EXPECT_EQ(second.jobs_dispatched, 2u);  // Reset, not cumulative.
  EXPECT_EQ(second.dispatched_by_tenant.count("A"), 0u);
}

// --- sharded cluster end-to-end ---------------------------------------------

core::SlimStoreOptions SmallStoreOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_type = chunking::ChunkerType::kFastCdc;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.segment_max_chunks = 64;
  options.restore.cache_bytes = 1 << 20;
  options.restore.prefetch_threads = 0;
  return options;
}

ShardedClusterOptions SmallClusterOptions() {
  ShardedClusterOptions options;
  options.root = "cluster";
  options.num_shards = 4;
  options.vnodes_per_node = 8;
  options.backup_jobs_per_node = 3;
  options.per_tenant_quota = 2;
  options.store = SmallStoreOptions();
  return options;
}

GeneratorOptions SmallGenerator(uint64_t seed) {
  GeneratorOptions gen;
  gen.base_size = 64 << 10;
  gen.duplication_ratio = 0.8;
  gen.block_size = 1024;
  gen.seed = seed;
  return gen;
}

TEST(ShardedClusterTest, CreateRejectsDoubleInit) {
  oss::MemoryObjectStore store;
  auto first =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  ASSERT_TRUE(first.ok()) << first.status();
  auto second =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  EXPECT_TRUE(second.status().code() == StatusCode::kAlreadyExists) << second.status();
}

TEST(ShardedClusterTest, OpenRequiresInit) {
  oss::MemoryObjectStore store;
  auto opened = ShardedCluster::Open(&store, SmallClusterOptions());
  EXPECT_TRUE(opened.status().IsNotFound()) << opened.status();
}

TEST(ShardedClusterTest, BackupRejectsInvalidTenant) {
  oss::MemoryObjectStore store;
  auto cluster =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  ASSERT_TRUE(cluster.ok());
  auto backup = cluster.value()->Backup("bad/tenant", "f", "data");
  EXPECT_TRUE(backup.status().code() == StatusCode::kInvalidArgument) << backup.status();
  EXPECT_TRUE(cluster.value()
                  ->RegisterTenant("oops#tmp")
                  .code() == StatusCode::kInvalidArgument);
}

TEST(ShardedClusterTest, MultiTenantBackupRestoreByteIdentity) {
  oss::MemoryObjectStore store;
  auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                        {"L0", "L1"});
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  // Two tenants, two files each, three versions per file.
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      truth;
  uint64_t seed = 1;
  for (const std::string tenant : {"alpha", "beta"}) {
    for (const std::string file : {"db.sdb", "logs.bin"}) {
      VersionedFileGenerator generator(SmallGenerator(seed++));
      for (int v = 0; v < 3; ++v) {
        if (v > 0) generator.Mutate();
        const std::string& data = generator.data();
        auto stats = cluster.value()->Backup(tenant, file, data);
        ASSERT_TRUE(stats.ok()) << stats.status();
        EXPECT_EQ(stats.value().version, static_cast<uint64_t>(v));
        truth[tenant][file].push_back(data);
      }
    }
  }
  for (const auto& [tenant, files] : truth) {
    for (const auto& [file, versions] : files) {
      for (size_t v = 0; v < versions.size(); ++v) {
        auto restored = cluster.value()->Restore(tenant, file, v);
        ASSERT_TRUE(restored.ok()) << restored.status();
        EXPECT_EQ(restored.value(), versions[v])
            << tenant << "/" << file << " v" << v;
      }
    }
  }

  // Isolation is structural: every data key lives under exactly one
  // tenant's prefix.
  auto keys = store.List("cluster/n/");
  ASSERT_TRUE(keys.ok());
  ASSERT_FALSE(keys.value().empty());
  for (const auto& key : keys.value()) {
    EXPECT_TRUE(key.find("/t/alpha/") != std::string::npos ||
                key.find("/t/beta/") != std::string::npos)
        << key;
  }

  auto status = cluster.value()->GetStatus();
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(status.value().map_version, 1u);
  EXPECT_EQ(status.value().num_shards, 4u);
  EXPECT_EQ(status.value().nodes,
            (std::vector<std::string>{"L0", "L1"}));
  EXPECT_EQ(status.value().tenants,
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_FALSE(status.value().rebalance_pending);
  size_t placed = 0;
  for (const auto& [node, shards] : status.value().shards_by_node) {
    placed += shards.size();
  }
  EXPECT_EQ(placed, 4u);  // Every shard owned exactly once.
}

TEST(ShardedClusterTest, KillOneLNodeMidWaveThenRebuildConverges) {
  // The acceptance scenario: wave 1 backs up version 0 everywhere, the
  // L-node fleet dies (all node-local state dropped), wave 2 mixes
  // version-1 backups with version-0 restores — every store Rebuild()s
  // from OSS and restores converge to byte-identical data per tenant.
  oss::MemoryObjectStore store;
  auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                        {"L0", "L1"});
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      truth;
  std::map<std::string, std::map<std::string, VersionedFileGenerator>>
      generators;
  uint64_t seed = 100;
  std::vector<WaveJob> wave1;
  for (const std::string tenant : {"alpha", "beta", "gamma"}) {
    for (const std::string file : {"f0", "f1"}) {
      generators[tenant].emplace(file,
                                 VersionedFileGenerator(SmallGenerator(seed++)));
      truth[tenant][file].push_back(generators[tenant].at(file).data());
      WaveJob job;
      job.tenant = tenant;
      job.file_id = file;
      job.data = &truth[tenant][file].back();
      wave1.push_back(job);
    }
  }
  auto stats1 = cluster.value()->RunWave(wave1);
  ASSERT_TRUE(stats1.ok()) << stats1.status();
  EXPECT_EQ(stats1.value().failures, 0u);

  // kill -9 the fleet: every cached SlimStore (indexes, manifests,
  // recipe caches) is gone; OSS is the only truth left.
  cluster.value()->DropNodeLocalState();

  std::vector<WaveJob> wave2;
  for (auto& [tenant, files] : generators) {
    for (auto& [file, generator] : files) {
      generator.Mutate();
      truth[tenant][file].push_back(generator.data());
      WaveJob backup;
      backup.tenant = tenant;
      backup.file_id = file;
      backup.data = &truth[tenant][file].back();
      wave2.push_back(backup);
      WaveJob restore;  // Enqueued after the backup: sees version 0.
      restore.tenant = tenant;
      restore.file_id = file;
      restore.version = 0;
      wave2.push_back(restore);
    }
  }
  auto stats2 = cluster.value()->RunWave(wave2);
  ASSERT_TRUE(stats2.ok()) << stats2.status();
  EXPECT_EQ(stats2.value().failures, 0u);

  // Converged: every version of every tenant's files is byte-identical,
  // both through the surviving handle and through a cold re-Open.
  auto reopened = ShardedCluster::Open(&store, SmallClusterOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (const auto& [tenant, files] : truth) {
    for (const auto& [file, versions] : files) {
      for (size_t v = 0; v < versions.size(); ++v) {
        auto warm = cluster.value()->Restore(tenant, file, v);
        ASSERT_TRUE(warm.ok()) << warm.status();
        EXPECT_EQ(warm.value(), versions[v]);
        auto cold = reopened.value()->Restore(tenant, file, v);
        ASSERT_TRUE(cold.ok()) << cold.status();
        EXPECT_EQ(cold.value(), versions[v]);
      }
    }
  }
}

TEST(ShardedClusterTest, GNodeCyclesCoverEveryTenantShardStore) {
  oss::MemoryObjectStore store;
  ShardedClusterOptions options = SmallClusterOptions();
  auto cluster = ShardedCluster::Create(&store, options, {"L0"});
  ASSERT_TRUE(cluster.ok());
  for (const std::string tenant : {"alpha", "beta"}) {
    VersionedFileGenerator generator(SmallGenerator(7));
    ASSERT_TRUE(
        cluster.value()->Backup(tenant, "f", generator.data()).ok());
  }
  auto cycles = cluster.value()->RunGNodeCycles();
  ASSERT_TRUE(cycles.ok()) << cycles.status();
  // Shard-major sweep touches every (tenant, shard) pair.
  EXPECT_EQ(cycles.value().stores_processed,
            static_cast<size_t>(2 * options.num_shards));
}

}  // namespace
}  // namespace slim
