#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/slimstore.h"
#include "obs/metrics.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

namespace slim::lnode {
namespace {

core::SlimStoreOptions SmallOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  options.restore.cache_bytes = 256 << 10;
  options.restore.disk_cache_bytes = 1 << 20;
  options.restore.law_chunks = 64;
  return options;
}

/// Fixture: a store with a few versions backed up, plus OSS metrics.
class RestorePipelineTest : public ::testing::Test {
 protected:
  RestorePipelineTest() {
    oss::OssCostModel model;
    model.sleep_for_cost = false;
    oss_ = std::make_unique<oss::SimulatedOss>(&backing_, model);
    store_ = std::make_unique<core::SlimStore>(oss_.get(), SmallOptions());

    workload::GeneratorOptions gen;
    gen.base_size = 128 << 10;
    gen.duplication_ratio = 0.85;
    gen.self_reference = 0.2;
    gen.block_size = 1024;
    gen.seed = 99;
    workload::VersionedFileGenerator file(gen);
    for (int v = 0; v < 4; ++v) {
      versions_.push_back(file.data());
      EXPECT_TRUE(store_->Backup("f", file.data()).ok());
      file.Mutate();
    }
  }

  RestoreOptions Opts() { return SmallOptions().restore; }

  oss::MemoryObjectStore backing_;
  std::unique_ptr<oss::SimulatedOss> oss_;
  std::unique_ptr<core::SlimStore> store_;
  std::vector<std::string> versions_;
};

TEST_F(RestorePipelineTest, LawSizeSweepAllCorrect) {
  for (size_t law : {1u, 4u, 32u, 256u, 100000u}) {
    RestoreOptions opts = Opts();
    opts.law_chunks = law;
    RestoreStats stats;
    auto out = store_->Restore("f", 3, &stats, &opts);
    ASSERT_TRUE(out.ok()) << "law " << law;
    EXPECT_EQ(out.value(), versions_[3]) << "law " << law;
  }
}

TEST_F(RestorePipelineTest, PrefetchThreadSweepAllCorrect) {
  for (size_t threads : {0u, 1u, 3u, 8u}) {
    RestoreOptions opts = Opts();
    opts.prefetch_threads = threads;
    RestoreStats stats;
    auto out = store_->Restore("f", 2, &stats, &opts);
    ASSERT_TRUE(out.ok()) << "threads " << threads;
    EXPECT_EQ(out.value(), versions_[2]);
  }
}

TEST_F(RestorePipelineTest, PrefetchDoesNotIncreaseContainerReads) {
  RestoreOptions opts = Opts();
  opts.cache_bytes = 8 << 20;  // Ample.
  RestoreStats no_prefetch;
  ASSERT_TRUE(store_->Restore("f", 3, &no_prefetch, &opts).ok());
  opts.prefetch_threads = 4;
  RestoreStats with_prefetch;
  ASSERT_TRUE(store_->Restore("f", 3, &with_prefetch, &opts).ok());
  // Prefetching must not cause duplicate fetches (the in-flight set
  // deduplicates reads).
  EXPECT_LE(with_prefetch.containers_fetched,
            no_prefetch.containers_fetched + 2);
}

TEST_F(RestorePipelineTest, DiskCacheAbsorbsMemoryPressure) {
  RestoreOptions opts = Opts();
  opts.cache_bytes = 8 << 10;        // ~half a container.
  opts.disk_cache_bytes = 8 << 20;   // Plenty of spill room.
  RestoreStats with_disk;
  ASSERT_TRUE(store_->Restore("f", 3, &with_disk, &opts).ok());

  opts.disk_cache_bytes = 0;  // No spill: evictions become re-reads.
  RestoreStats without_disk;
  ASSERT_TRUE(store_->Restore("f", 3, &without_disk, &opts).ok());

  EXPECT_GT(with_disk.disk_spills, 0u);
  EXPECT_LE(with_disk.containers_fetched, without_disk.containers_fetched);
}

TEST_F(RestorePipelineTest, RedirectsAfterGnodeReorganization) {
  ASSERT_TRUE(store_->RunGNodeCycle().ok());
  // Old versions may need global-index redirects now; all must restore.
  for (int v = 0; v < 4; ++v) {
    RestoreStats stats;
    auto out = store_->Restore("f", v, &stats, nullptr);
    ASSERT_TRUE(out.ok()) << "version " << v << ": " << out.status();
    EXPECT_EQ(out.value(), versions_[v]);
  }
}

TEST_F(RestorePipelineTest, KnownAbsentChunksDoNotRereadContainers) {
  ASSERT_TRUE(store_->RunGNodeCycle().ok());
  RestoreStats stats;
  auto out = store_->Restore("f", 0, &stats, nullptr);
  ASSERT_TRUE(out.ok());
  if (stats.redirects > 0) {
    // With the directory cache, fetches stay bounded by (distinct
    // recipe containers + distinct redirect targets); far below
    // one fetch per redirected chunk.
    EXPECT_LT(stats.containers_fetched,
              stats.chunks_restored);
  }
}

TEST_F(RestorePipelineTest, StatsAccounting) {
  RestoreStats stats;
  auto out = store_->Restore("f", 1, &stats, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.logical_bytes, versions_[1].size());
  EXPECT_EQ(stats.chunks_restored,
            store_->recipe_store()->ReadRecipe("f", 1).value().Flatten()
                .size());
  EXPECT_GT(stats.bytes_fetched, 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
}

TEST_F(RestorePipelineTest, PrefetchSurfacesInjectedErrors) {
  oss_->set_failure_injector(
      [](const std::string& op, const std::string& key) {
        if (op == "get" &&
            key.find("/containers/data-") != std::string::npos) {
          return Status::IoError("injected");
        }
        return Status::Ok();
      });
  RestoreOptions opts = Opts();
  opts.prefetch_threads = 4;
  auto out = store_->Restore("f", 3, nullptr, &opts);
  EXPECT_FALSE(out.ok());
  oss_->set_failure_injector(nullptr);
}

TEST_F(RestorePipelineTest, CorruptContainerDetected) {
  // Flip a byte in one container payload; restore must fail with
  // Corruption, not return wrong bytes.
  auto keys = backing_.List("slim/containers/data-");
  ASSERT_TRUE(keys.ok());
  ASSERT_FALSE(keys.value().empty());
  const std::string& victim = keys.value()[keys.value().size() / 2];
  auto object = backing_.Get(victim);
  ASSERT_TRUE(object.ok());
  std::string mutated = object.value();
  mutated[mutated.size() / 2] ^= 0x1;
  ASSERT_TRUE(backing_.Put(victim, mutated).ok());

  bool any_failed = false;
  for (int v = 0; v < 4; ++v) {
    auto out = store_->Restore("f", v);
    if (!out.ok()) {
      any_failed = true;
      EXPECT_TRUE(out.status().IsCorruption()) << out.status();
    } else {
      EXPECT_EQ(out.value(), versions_[v]);
    }
  }
  EXPECT_TRUE(any_failed);
}

TEST_F(RestorePipelineTest, RegistryReconcilesWithRestoreStats) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter& oss_gets = reg.counter("oss.get.requests");
  obs::Counter& fetched = reg.counter("restore.containers_fetched");

  // Calibrate what reading this version's recipe costs in full-object
  // Gets (the only non-container reads a redirect-free restore does).
  uint64_t before_recipe = oss_gets.value();
  ASSERT_TRUE(store_->recipe_store()->ReadRecipe("f", 2).ok());
  uint64_t recipe_gets = oss_gets.value() - before_recipe;

  uint64_t gets_before = oss_gets.value();
  uint64_t fetched_before = fetched.value();
  RestoreStats stats;
  auto out = store_->Restore("f", 2, &stats, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), versions_[2]);
  ASSERT_EQ(stats.redirects, 0u);  // No G-node cycle ran.

  // Registry and per-job stats must agree: every OSS Get of the restore
  // is either the recipe read or one container fetch.
  EXPECT_EQ(fetched.value() - fetched_before, stats.containers_fetched);
  EXPECT_EQ(oss_gets.value() - gets_before,
            recipe_gets + stats.containers_fetched);
}

TEST_F(RestorePipelineTest, ZeroCacheCapacityStillCorrect) {
  RestoreOptions opts = Opts();
  opts.cache_bytes = 0;
  opts.disk_cache_bytes = 0;
  auto out = store_->Restore("f", 3, nullptr, &opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), versions_[3]);
}

}  // namespace
}  // namespace slim::lnode
