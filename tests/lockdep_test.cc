// Negative tests for the runtime lockdep (common/lockdep.h). Compiled
// only under -DSLIM_LOCKDEP=ON (see tests/CMakeLists.txt); every
// violation is driven deterministically on one thread, because lockdep
// learns acquired-before edges per lock *class* and flags the edge that
// closes a cycle — no actual two-thread deadlock has to be staged.
//
// Each death test uses lock classes of its own ("test.<case>_*") so the
// learned edges of one scenario can never satisfy or poison another.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/lockdep.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"

namespace slim {
namespace {

class LockdepDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Re-exec the binary for each death child: the parent may have live
    // metric/logging state, and plain fork()-style children would
    // inherit it mid-flight.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_TRUE(lockdep::Enabled());
  }
};

// Learns test.abba_a -> test.abba_b, then acquires in the opposite
// order. The second acquisition of `a` closes the cycle and must abort
// before blocking.
void LearnThenInvert() {
  Mutex a("test.abba_a");
  Mutex b("test.abba_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  MutexLock lb(b);
  MutexLock la(a);  // Dies here.
}

TEST_F(LockdepDeathTest, AbbaAbortsWithCycleReport) {
  EXPECT_DEATH(LearnThenInvert(),
               "lock-order cycle \\(potential ABBA deadlock\\)");
}

TEST_F(LockdepDeathTest, AbbaReportsAcquiringChainWithSite) {
  // Chain 1: what this thread is doing now, with the real call site.
  EXPECT_DEATH(LearnThenInvert(),
               "this thread acquires: test\\.abba_a \\(exclusive\\) at "
               ".*lockdep_test\\.cc:[0-9]+");
}

TEST_F(LockdepDeathTest, AbbaReportsHeldChain) {
  EXPECT_DEATH(LearnThenInvert(),
               "while holding:.*#0 test\\.abba_b \\(exclusive\\) acquired at "
               ".*lockdep_test\\.cc:[0-9]+");
}

TEST_F(LockdepDeathTest, AbbaReportsRecordedOrderChain) {
  // Chain 2: the previously learned order, with both historical sites.
  EXPECT_DEATH(LearnThenInvert(),
               "test\\.abba_a -> test\\.abba_b \\(test\\.abba_a held at "
               ".*lockdep_test\\.cc:[0-9]+, test\\.abba_b acquired at "
               ".*lockdep_test\\.cc:[0-9]+\\)");
}

TEST_F(LockdepDeathTest, RecursiveAcquireAborts) {
  Mutex m("test.recursive");
  EXPECT_DEATH(
      {
        MutexLock outer(m);
        MutexLock inner(m);
      },
      "recursive acquisition of \"test\\.recursive\"");
}

TEST_F(LockdepDeathTest, SameClassNestingAborts) {
  // Two *instances* of one class: their relative order is unknowable to
  // a per-class detector, so nesting them is flagged as an ABBA hazard.
  Mutex first("test.same_class");
  Mutex second("test.same_class");
  EXPECT_DEATH(
      {
        MutexLock a(first);
        MutexLock b(second);
      },
      "another lock of the same class");
}

TEST_F(LockdepDeathTest, SharedToExclusiveUpgradeAborts) {
  SharedMutex sm("test.upgrade");
  EXPECT_DEATH(
      {
        ReaderMutexLock reader(sm);
        sm.Lock();
      },
      "shared->exclusive upgrade of \"test\\.upgrade\"");
}

TEST_F(LockdepDeathTest, CondVarWaitHoldingSecondLockAborts) {
  Mutex held("test.cv_extra");
  Mutex waited("test.cv_mu");
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock extra(held);
        MutexLock lock(waited);
        cv.Wait(waited);
      },
      "CondVar::Wait while holding additional locks");
}

TEST_F(LockdepDeathTest, CondVarWaitWithoutTheMutexAborts) {
  Mutex waited("test.cv_unheld");
  CondVar cv;
  EXPECT_DEATH(cv.Wait(waited),
               "CondVar::Wait on a mutex the thread does not hold");
}

// --- Positive paths: consistent usage must stay silent. --------------

TEST(LockdepTest, ConsistentOrderIsQuiet) {
  Mutex a("test.quiet_a");
  Mutex b("test.quiet_b");
  for (int i = 0; i < 100; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  // Same order via TryLock: tracked for ordering, never a violation.
  ASSERT_TRUE(a.TryLock());
  ASSERT_TRUE(b.TryLock());
  EXPECT_EQ(lockdep::HeldLockCount(), 2u);
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(lockdep::HeldLockCount(), 0u);
}

TEST(LockdepTest, OutOfOrderReleaseIsFine) {
  // Hand-over-hand: release order != acquisition order is legal.
  Mutex a("test.hand_a");
  Mutex b("test.hand_b");
  a.Lock();
  b.Lock();
  a.Unlock();
  b.Unlock();
  EXPECT_EQ(lockdep::HeldLockCount(), 0u);
}

TEST(LockdepTest, ResetGraphForgetsLearnedEdges) {
  Mutex a("test.reset_a");
  Mutex b("test.reset_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  lockdep::ResetGraphForTest();
  // The opposite order is only a cycle if the old edge survived.
  MutexLock lb(b);
  MutexLock la(a);
}

TEST(LockdepTest, WaitAndHoldHistogramsPopulate) {
  Mutex m("test.metrics_probe");
  for (int i = 0; i < 5; ++i) {
    MutexLock lock(m);
  }
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  auto wait = snap.histograms.find("lock.test.metrics_probe.wait_us");
  auto hold = snap.histograms.find("lock.test.metrics_probe.hold_us");
  ASSERT_NE(wait, snap.histograms.end());
  ASSERT_NE(hold, snap.histograms.end());
  EXPECT_GE(wait->second.count, 5u);
  EXPECT_GE(hold->second.count, 5u);
}

TEST(LockdepTest, ContentionBumpsCounter) {
  Mutex m("test.contended");
  std::atomic<bool> holder_has_lock{false};
  std::thread holder([&] {
    MutexLock lock(m);
    holder_has_lock.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!holder_has_lock.load()) std::this_thread::yield();
  {
    MutexLock lock(m);  // Blocks until the holder's sleep ends.
  }
  holder.join();
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  auto it = snap.counters.find("lock.test.contended.contentions");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_GE(it->second, 1u);
}

TEST(LockdepTest, BlockingOssCallUnderLockWarnsOnce) {
  oss::MemoryObjectStore mem;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&mem, model);

  auto counter_value = [] {
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
    auto it = snap.counters.find("lockdep.blocking_while_locked");
    return it == snap.counters.end() ? uint64_t{0} : it->second;
  };
  uint64_t before = counter_value();

  Mutex m("test.blocking");
  MutexLock lock(m);
  ASSERT_TRUE(oss.Put("lockdep/probe", "payload").ok());
  ASSERT_TRUE(oss.Put("lockdep/probe2", "payload").ok());
  // Every under-lock call bumps the counter; the log line itself is
  // deduplicated per (class, op) pair.
  EXPECT_GE(counter_value(), before + 2);
}

}  // namespace
}  // namespace slim
