// Tests for the cluster observability plane: mergeable snapshots (the
// merge laws and the JSON codec), per-tenant SLO tracking, the
// rate-over-window time series, labeled Prometheus export, obs#-key
// hiding, journal --since filtering, and the 3-node "merged fleet ==
// sum of nodes" end-to-end contract behind `slim cluster stats`.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/obs_publish.h"
#include "cluster/sharded_cluster.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "oss/disk_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/object_store.h"

namespace slim {
namespace {

using obs::GaugeEntry;
using obs::HistogramData;
using obs::Snapshot;

// ---------------------------------------------------------------------------
// Snapshot building blocks.

Snapshot MakeSnapshot(const std::string& node, uint64_t stamp) {
  Snapshot s;
  s.node = node;
  s.captured_unix_ms = stamp;
  return s;
}

HistogramData MakeHistogram(const std::vector<uint64_t>& samples) {
  obs::Histogram h;
  for (uint64_t v : samples) h.Record(v);
  return h.Data();
}

// Deterministic pseudo-random snapshot for the property tests.
Snapshot RandomSnapshot(Rng* rng, const std::string& node) {
  Snapshot s = MakeSnapshot(node, rng->Uniform(1000) + 1);
  const char* counter_names[] = {"a.total", "b.total", "c.bytes"};
  for (const char* name : counter_names) {
    if (rng->Uniform(4) != 0) s.counters[name] = rng->Uniform(1 << 20);
  }
  const char* gauge_names[] = {"g.level", "g.depth"};
  for (const char* name : gauge_names) {
    if (rng->Uniform(4) != 0) {
      GaugeEntry e;
      e.value = static_cast<int64_t>(rng->Uniform(1000)) - 500;
      e.stamp_ms = rng->Uniform(100);
      e.source = node;
      s.gauges[name] = e;
    }
  }
  std::vector<uint64_t> samples;
  size_t n = rng->Uniform(20);
  for (size_t i = 0; i < n; ++i) {
    samples.push_back(rng->Uniform(1 << 16) + 1);
  }
  if (!samples.empty()) s.histograms["h.lat"] = MakeHistogram(samples);
  return s;
}

bool SnapshotsEqual(const Snapshot& a, const Snapshot& b) {
  if (a.node != b.node || a.captured_unix_ms != b.captured_unix_ms ||
      a.counters != b.counters) {
    return false;
  }
  if (a.gauges.size() != b.gauges.size() ||
      a.histograms.size() != b.histograms.size()) {
    return false;
  }
  for (const auto& kv : a.gauges) {
    auto it = b.gauges.find(kv.first);
    if (it == b.gauges.end() || !(it->second == kv.second)) return false;
  }
  for (const auto& kv : a.histograms) {
    auto it = b.histograms.find(kv.first);
    if (it == b.histograms.end()) return false;
    const HistogramData& x = kv.second;
    const HistogramData& y = it->second;
    if (x.buckets != y.buckets || x.count != y.count || x.sum != y.sum ||
        x.min != y.min || x.max != y.max) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merge laws.

TEST(SnapshotMerge, CountersSumGaugesLastWriterHistogramsAdd) {
  Snapshot a = MakeSnapshot("n1", 100);
  a.counters["ops"] = 3;
  a.counters["only_a"] = 7;
  a.gauges["level"] = GaugeEntry{10, 50, "n1"};
  a.histograms["lat"] = MakeHistogram({1, 2, 3});

  Snapshot b = MakeSnapshot("n2", 200);
  b.counters["ops"] = 5;
  b.gauges["level"] = GaugeEntry{20, 60, "n2"};
  b.histograms["lat"] = MakeHistogram({100, 200});

  Snapshot m = obs::Merge(a, b);
  EXPECT_EQ(m.counters["ops"], 8u);
  EXPECT_EQ(m.counters["only_a"], 7u);
  // b's gauge has the newer stamp: it wins regardless of merge order.
  EXPECT_EQ(m.gauges["level"].value, 20);
  EXPECT_EQ(m.gauges["level"].source, "n2");
  EXPECT_EQ(m.histograms["lat"].count, 5u);
  EXPECT_EQ(m.histograms["lat"].sum, 306u);
  EXPECT_EQ(m.histograms["lat"].min, 1u);
  EXPECT_EQ(m.histograms["lat"].max, 200u);
  EXPECT_EQ(m.captured_unix_ms, 200u);
}

TEST(SnapshotMerge, EmptySnapshotIsIdentity) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Snapshot s = RandomSnapshot(&rng, "node-" + std::to_string(i));
    Snapshot empty;
    EXPECT_TRUE(SnapshotsEqual(obs::Merge(s, empty), s)) << "right identity";
    EXPECT_TRUE(SnapshotsEqual(obs::Merge(empty, s), s)) << "left identity";
  }
}

TEST(SnapshotMerge, Commutative) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    Snapshot a = RandomSnapshot(&rng, "na");
    Snapshot b = RandomSnapshot(&rng, "nb");
    EXPECT_TRUE(SnapshotsEqual(obs::Merge(a, b), obs::Merge(b, a)))
        << "iteration " << i;
  }
}

TEST(SnapshotMerge, Associative) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    Snapshot a = RandomSnapshot(&rng, "na");
    Snapshot b = RandomSnapshot(&rng, "nb");
    Snapshot c = RandomSnapshot(&rng, "nc");
    Snapshot left = obs::Merge(obs::Merge(a, b), c);
    Snapshot right = obs::Merge(a, obs::Merge(b, c));
    EXPECT_TRUE(SnapshotsEqual(left, right)) << "iteration " << i;
  }
}

TEST(SnapshotMerge, GaugeTieBreaksAreDeterministic) {
  // Same stamp: the lexicographically larger (stamp, source, value) key
  // wins, so any merge order picks the same writer.
  Snapshot a = MakeSnapshot("n1", 1);
  a.gauges["g"] = GaugeEntry{1, 50, "alpha"};
  Snapshot b = MakeSnapshot("n2", 1);
  b.gauges["g"] = GaugeEntry{2, 50, "beta"};
  Snapshot ab = obs::Merge(a, b);
  Snapshot ba = obs::Merge(b, a);
  EXPECT_EQ(ab.gauges["g"].source, "beta");
  EXPECT_TRUE(ab.gauges["g"] == ba.gauges["g"]);
}

TEST(SnapshotMerge, QuantilesStableUnderMerge) {
  // Recording one sample stream into a single histogram must give
  // bit-identical buckets — and therefore identical quantiles — to
  // splitting the stream across nodes and merging their snapshots.
  Rng rng(17);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.Uniform(1 << 20) + 1);

  HistogramData whole = MakeHistogram(samples);
  std::vector<uint64_t> part1(samples.begin(), samples.begin() + 137);
  std::vector<uint64_t> part2(samples.begin() + 137, samples.begin() + 360);
  std::vector<uint64_t> part3(samples.begin() + 360, samples.end());
  HistogramData merged = MakeHistogram(part1);
  merged.MergeFrom(MakeHistogram(part2));
  merged.MergeFrom(MakeHistogram(part3));

  EXPECT_EQ(whole.buckets, merged.buckets);
  EXPECT_EQ(whole.count, merged.count);
  EXPECT_EQ(whole.sum, merged.sum);
  EXPECT_EQ(whole.min, merged.min);
  EXPECT_EQ(whole.max, merged.max);
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(whole.ValueAtPercentile(p), merged.ValueAtPercentile(p))
        << "p" << p;
  }
}

// ---------------------------------------------------------------------------
// JSON codec.

TEST(SnapshotJson, RoundTripsExactly) {
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    Snapshot s = RandomSnapshot(&rng, "node-" + std::to_string(i));
    auto back = obs::SnapshotFromJson(obs::SnapshotToJson(s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(SnapshotsEqual(s, back.value())) << "iteration " << i;
  }
}

TEST(SnapshotJson, RoundTripsU64Extremes) {
  Snapshot s = MakeSnapshot("n", 18446744073709551615ull);
  s.counters["max"] = 18446744073709551615ull;
  s.gauges["neg"] = GaugeEntry{-9223372036854775807ll - 1, 1, "n"};
  auto back = obs::SnapshotFromJson(obs::SnapshotToJson(s));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().counters["max"], 18446744073709551615ull);
  EXPECT_EQ(back.value().gauges["neg"].value, -9223372036854775807ll - 1);
  EXPECT_EQ(back.value().captured_unix_ms, 18446744073709551615ull);
}

TEST(SnapshotJson, EscapesHostileNames) {
  Snapshot s = MakeSnapshot("n", 1);
  s.counters["weird\"name\\with\nnewline\tand\x01ctl"] = 5;
  auto back = obs::SnapshotFromJson(obs::SnapshotToJson(s));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().counters.count("weird\"name\\with\nnewline\tand\x01ctl"),
            1u);
}

TEST(SnapshotJson, RejectsGarbageAndFutureVersions) {
  EXPECT_FALSE(obs::SnapshotFromJson("").ok());
  EXPECT_FALSE(obs::SnapshotFromJson("{").ok());
  EXPECT_FALSE(obs::SnapshotFromJson("nonsense").ok());
  EXPECT_FALSE(obs::SnapshotFromJson("{\"version\":999}").ok());
  // Trailing garbage after a valid document is a parse error, not data.
  std::string json = obs::SnapshotToJson(MakeSnapshot("n", 1));
  EXPECT_FALSE(obs::SnapshotFromJson(json + "x").ok());
}

TEST(SnapshotJson, CaptureRoundTripsThroughRegistry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  reg.counter("cap.ops").Inc(42);
  reg.gauge("cap.level").Set(-7);
  reg.histogram("cap.lat").Record(1000);
  Snapshot snap = obs::CaptureSnapshot("node-x", 777);
  EXPECT_EQ(snap.node, "node-x");
  EXPECT_EQ(snap.counters["cap.ops"], 42u);
  EXPECT_EQ(snap.gauges["cap.level"].value, -7);
  EXPECT_EQ(snap.gauges["cap.level"].stamp_ms, 777u);
  EXPECT_EQ(snap.gauges["cap.level"].source, "node-x");
  EXPECT_EQ(snap.histograms["cap.lat"].count, 1u);
  auto back = obs::SnapshotFromJson(obs::SnapshotToJson(snap));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(SnapshotsEqual(snap, back.value()));
}

// ---------------------------------------------------------------------------
// Labeled metric names.

TEST(LabeledName, BuildsSortedAndSplitsBack) {
  std::string key = obs::LabeledName(
      "cluster.op.latency_us", {{"tenant", "alice"}, {"op", "backup"}});
  EXPECT_EQ(key, "cluster.op.latency_us{op=backup,tenant=alice}");
  obs::MetricKeyParts parts = obs::SplitLabeledName(key);
  EXPECT_EQ(parts.base, "cluster.op.latency_us");
  ASSERT_EQ(parts.labels.size(), 2u);
  EXPECT_EQ(parts.labels[0].first, "op");
  EXPECT_EQ(parts.labels[0].second, "backup");
  EXPECT_EQ(parts.labels[1].first, "tenant");
  EXPECT_EQ(parts.labels[1].second, "alice");
}

TEST(LabeledName, UnlabeledKeysSplitClean) {
  obs::MetricKeyParts parts = obs::SplitLabeledName("oss.get.requests");
  EXPECT_EQ(parts.base, "oss.get.requests");
  EXPECT_TRUE(parts.labels.empty());
}

TEST(PrometheusExport, EmitsAndEscapesLabels) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  reg.counter(obs::LabeledName("prom.ops", {{"tenant", "t-\"quote\\slash"}}))
      .Inc(3);
  reg.counter(obs::LabeledName("prom.ops", {{"tenant", "plain"}})).Inc(4);
  reg.histogram(obs::LabeledName("prom.lat", {{"tenant", "plain"}}))
      .Record(100);
  std::string prom = obs::RenderRegistry(obs::ExportFormat::kPrometheus);
  EXPECT_NE(prom.find("slim_prom_ops_total{tenant=\"plain\"} 4"),
            std::string::npos)
      << prom;
  // The hostile label value arrives escaped per the exposition format.
  EXPECT_NE(prom.find("slim_prom_ops_total{tenant=\"t-\\\"quote\\\\slash\"} 3"),
            std::string::npos)
      << prom;
  // Histogram quantile label merges after the user labels.
  EXPECT_NE(prom.find("slim_prom_lat{tenant=\"plain\",quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("slim_prom_lat_count{tenant=\"plain\"} 1"),
            std::string::npos)
      << prom;
  // One TYPE line per family, not per labeled series.
  size_t first = prom.find("# TYPE slim_prom_ops counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find("# TYPE slim_prom_ops counter", first + 1),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO objectives and burn rates.

TEST(Slo, ParsesSpecsAndRejectsGarbage) {
  auto slo = obs::ParseSloSpec("backup.p99<250ms");
  ASSERT_TRUE(slo.ok());
  EXPECT_EQ(slo.value().op_class, "backup");
  EXPECT_DOUBLE_EQ(slo.value().percentile, 99.0);
  EXPECT_DOUBLE_EQ(slo.value().threshold_ms, 250.0);
  EXPECT_NEAR(slo.value().AllowedViolationFraction(), 0.01, 1e-12);
  EXPECT_EQ(slo.value().Spec(), "backup.p99<250ms");

  auto frac = obs::ParseSloSpec("restore.p99.9<1500.5ms");
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(frac.value().percentile, 99.9);
  EXPECT_DOUBLE_EQ(frac.value().threshold_ms, 1500.5);

  EXPECT_FALSE(obs::ParseSloSpec("").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup.p99").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup<250ms").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup.p0<250ms").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup.p101<250ms").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup.p99<0ms").ok());
  EXPECT_FALSE(obs::ParseSloSpec("backup.p99<250s").ok());
}

TEST(Slo, RecordAndComputeBurn) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  const obs::SloObjective* backup = obs::FindDefaultSlo("backup");
  ASSERT_NE(backup, nullptr);
  // 100 samples, 2 violations, allowed fraction 1% -> burn 2.0.
  for (int i = 0; i < 98; ++i) obs::RecordSloSample(*backup, "acme", 1.0);
  obs::RecordSloSample(*backup, "acme", backup->threshold_ms + 1);
  obs::RecordSloSample(*backup, "acme", backup->threshold_ms + 2);
  // A clean tenant for comparison.
  for (int i = 0; i < 50; ++i) obs::RecordSloSample(*backup, "zen", 1.0);

  auto statuses = obs::ComputeSloStatuses(
      obs::MetricsRegistry::Get().CaptureRaw().counters, obs::DefaultSlos());
  ASSERT_EQ(statuses.size(), 2u);
  // Sorted by burn rate, worst first.
  EXPECT_EQ(statuses[0].tenant, "acme");
  EXPECT_EQ(statuses[0].total, 100u);
  EXPECT_EQ(statuses[0].violations, 2u);
  EXPECT_NEAR(statuses[0].burn_rate, 2.0, 1e-9);
  EXPECT_LT(statuses[0].budget_remaining, 0.0);
  EXPECT_EQ(statuses[1].tenant, "zen");
  EXPECT_NEAR(statuses[1].burn_rate, 0.0, 1e-12);
  EXPECT_NEAR(statuses[1].budget_remaining, 1.0, 1e-12);

  std::string table = obs::RenderSloTable(statuses);
  EXPECT_NE(table.find("acme"), std::string::npos);
  EXPECT_NE(table.find("backup.p99"), std::string::npos);
}

TEST(Slo, ExactThresholdIsNotAViolation) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  const obs::SloObjective* backup = obs::FindDefaultSlo("backup");
  ASSERT_NE(backup, nullptr);
  obs::RecordSloSample(*backup, "edge", backup->threshold_ms);
  auto statuses = obs::ComputeSloStatuses(
      obs::MetricsRegistry::Get().CaptureRaw().counters, obs::DefaultSlos());
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].violations, 0u);
}

// ---------------------------------------------------------------------------
// Time series: deltas and rates.

TEST(TimeSeries, DeltaAndRateOverWindow) {
  obs::TimeSeries series(8);
  Snapshot s1 = MakeSnapshot("n", 1000);
  s1.counters["ops"] = 100;
  Snapshot s2 = MakeSnapshot("n", 3000);
  s2.counters["ops"] = 300;
  s2.counters["fresh"] = 50;
  series.Push(s1);
  series.Push(s2);

  std::map<std::string, uint64_t> delta;
  double elapsed = 0;
  ASSERT_TRUE(series.DeltaOverWindow(60000, &delta, &elapsed));
  EXPECT_DOUBLE_EQ(elapsed, 2.0);
  EXPECT_EQ(delta["ops"], 200u);
  EXPECT_EQ(delta["fresh"], 50u);  // Absent on the old side counts from 0.
  EXPECT_DOUBLE_EQ(series.RatePerSec("ops", 60000), 100.0);
}

TEST(TimeSeries, SingleSampleHasNoRate) {
  obs::TimeSeries series(8);
  std::map<std::string, uint64_t> delta;
  double elapsed = 1;
  EXPECT_FALSE(series.DeltaOverWindow(1000, &delta, &elapsed));
  Snapshot s = MakeSnapshot("n", 1000);
  s.counters["ops"] = 5;
  series.Push(s);
  EXPECT_FALSE(series.DeltaOverWindow(1000, &delta, &elapsed));
  EXPECT_DOUBLE_EQ(series.RatePerSec("ops", 1000), 0.0);
}

TEST(TimeSeries, CounterResetClampsToZero) {
  obs::TimeSeries series(8);
  Snapshot s1 = MakeSnapshot("n", 1000);
  s1.counters["ops"] = 500;
  Snapshot s2 = MakeSnapshot("n", 2000);
  s2.counters["ops"] = 20;  // Process restarted; counter went backwards.
  series.Push(s1);
  series.Push(s2);
  std::map<std::string, uint64_t> delta;
  double elapsed = 0;
  ASSERT_TRUE(series.DeltaOverWindow(60000, &delta, &elapsed));
  EXPECT_EQ(delta["ops"], 0u);
}

TEST(TimeSeries, BoundedAndSortedUnderOutOfOrderPushes) {
  obs::TimeSeries series(3);
  for (uint64_t stamp : {5000u, 1000u, 3000u, 7000u}) {
    Snapshot s = MakeSnapshot("n", stamp);
    s.counters["ops"] = stamp;
    series.Push(s);
  }
  EXPECT_EQ(series.size(), 3u);  // Capacity evicted the oldest.
  EXPECT_EQ(series.Latest().captured_unix_ms, 7000u);
  // Window of 4s reaches back to the 3000-stamp entry: delta 4000.
  std::map<std::string, uint64_t> delta;
  double elapsed = 0;
  ASSERT_TRUE(series.DeltaOverWindow(4000, &delta, &elapsed));
  EXPECT_EQ(delta["ops"], 4000u);
}

// ---------------------------------------------------------------------------
// obs# keys are journal-style: invisible to shallow List.

TEST(ObsKeys, HiddenFromListUnlessPrefixReaches) {
  EXPECT_TRUE(oss::ObsKeyHiddenFromList("cluster/obs#/node/L0", "cluster/"));
  EXPECT_TRUE(oss::ObsKeyHiddenFromList("cluster/obs#/node/L0", ""));
  EXPECT_TRUE(oss::ObsKeyHiddenFromList("obs#/x", ""));
  // A prefix that reaches INTO the obs# segment opts into seeing it.
  EXPECT_FALSE(
      oss::ObsKeyHiddenFromList("cluster/obs#/node/L0", "cluster/obs#/"));
  EXPECT_FALSE(
      oss::ObsKeyHiddenFromList("cluster/obs#/node/L0", "cluster/obs#/node/"));
  // "obs#" must be a path-segment start, not a substring.
  EXPECT_FALSE(oss::ObsKeyHiddenFromList("cluster/blobs#/x", "cluster/"));
  EXPECT_FALSE(oss::ObsKeyHiddenFromList("cluster/xobs#/x", ""));
}

TEST(ObsKeys, MemoryAndDiskStoresHideThem) {
  oss::MemoryObjectStore mem;
  ASSERT_TRUE(mem.Put("c/data/a", "1").ok());
  ASSERT_TRUE(mem.Put("c/obs#/node/L0", "snap").ok());
  auto listed = mem.List("c/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().size(), 1u);
  EXPECT_EQ(listed.value()[0], "c/data/a");
  // Deep listing still finds the snapshot (how FetchFleetSnapshot works).
  auto deep = mem.List("c/obs#/node/");
  ASSERT_TRUE(deep.ok());
  ASSERT_EQ(deep.value().size(), 1u);
  // The object itself stays directly addressable.
  EXPECT_TRUE(mem.Get("c/obs#/node/L0").ok());

  std::string dir = ::testing::TempDir() + "obs_hide_disk";
  std::filesystem::remove_all(dir);
  auto disk = oss::DiskObjectStore::Open(dir);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk.value()->Put("c/data/a", "1").ok());
  ASSERT_TRUE(disk.value()->Put("c/obs#/node/L0", "snap").ok());
  auto dlisted = disk.value()->List("c/");
  ASSERT_TRUE(dlisted.ok());
  EXPECT_EQ(dlisted.value().size(), 1u);
  auto ddeep = disk.value()->List("c/obs#/node/");
  ASSERT_TRUE(ddeep.ok());
  EXPECT_EQ(ddeep.value().size(), 1u);
}

// ---------------------------------------------------------------------------
// Publish / fetch / merge.

TEST(ObsPublish, RejectsBadNodeIds) {
  oss::MemoryObjectStore store;
  Snapshot s = MakeSnapshot("", 1);
  EXPECT_FALSE(cluster::PublishSnapshot(&store, "cluster", s).ok());
  s.node = "a/b";
  EXPECT_FALSE(cluster::PublishSnapshot(&store, "cluster", s).ok());
  s.node = "a#b";
  EXPECT_FALSE(cluster::PublishSnapshot(&store, "cluster", s).ok());
}

TEST(ObsPublish, SkipsMalformedSnapshots) {
  oss::MemoryObjectStore store;
  Snapshot good = MakeSnapshot("L0", 10);
  good.counters["ops"] = 5;
  ASSERT_TRUE(cluster::PublishSnapshot(&store, "cluster", good).ok());
  ASSERT_TRUE(store.Put("cluster/obs#/node/broken", "not json").ok());
  auto fleet = cluster::FetchFleetSnapshot(&store, "cluster");
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet.value().per_node.size(), 1u);
  EXPECT_EQ(fleet.value().malformed, 1u);
  EXPECT_EQ(fleet.value().merged.counters.at("ops"), 5u);
}

// The 3-node end-to-end contract behind `slim cluster stats`: three
// nodes run real work phases against ONE shared store, each publishes
// its own registry capture, and the fetched + merged fleet view's
// counters must equal the per-node sums EXACTLY.
TEST(ObsPublish, ThreeNodeFleetMergeEqualsSumOfNodes) {
  oss::MemoryObjectStore store;
  cluster::ShardedClusterOptions options;
  options.num_shards = 4;
  auto created =
      cluster::ShardedCluster::Create(&store, options, {"L0", "L1", "L2"});
  ASSERT_TRUE(created.ok());

  Rng rng(31);
  std::string data_a = rng.RandomBytes(96 * 1024);
  std::string data_b = rng.RandomBytes(64 * 1024);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  std::vector<Snapshot> per_node;
  for (int n = 0; n < 3; ++n) {
    std::string node = "L" + std::to_string(n);
    // Each "node" is a fresh process in this simulation: zero the
    // registry, do that node's work, capture, publish.
    reg.ResetAll();
    auto opened = cluster::ShardedCluster::Open(&store, options);
    ASSERT_TRUE(opened.ok());
    cluster::ShardedCluster* cl = opened.value().get();
    std::string tenant = n == 2 ? "bob" : "alice";
    auto stats = cl->Backup(tenant, "f" + std::to_string(n), data_a);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (n == 0) {
      auto more = cl->Backup("bob", "g0", data_b);
      ASSERT_TRUE(more.ok());
      auto restored = cl->Restore("bob", "g0", more.value().version);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(restored.value(), data_b);
    }
    Snapshot snap =
        obs::CaptureSnapshot(node, 1000 + static_cast<uint64_t>(n));
    ASSERT_TRUE(cluster::PublishSnapshot(&store, options.root, snap).ok());
    per_node.push_back(std::move(snap));
  }

  auto fleet = cluster::FetchFleetSnapshot(&store, options.root);
  ASSERT_TRUE(fleet.ok());
  const cluster::FleetView& view = fleet.value();
  ASSERT_EQ(view.per_node.size(), 3u);
  EXPECT_EQ(view.malformed, 0u);

  // Every merged counter equals the exact sum over the node snapshots.
  std::map<std::string, uint64_t> expected;
  for (const Snapshot& s : per_node) {
    for (const auto& kv : s.counters) expected[kv.first] += kv.second;
  }
  EXPECT_EQ(view.merged.counters, expected);
  ASSERT_FALSE(expected.empty());

  // Histogram counts sum too (latency series exist for both op classes).
  std::map<std::string, uint64_t> hist_counts;
  for (const Snapshot& s : per_node) {
    for (const auto& kv : s.histograms) {
      hist_counts[kv.first] += kv.second.count;
    }
  }
  for (const auto& kv : hist_counts) {
    ASSERT_EQ(view.merged.histograms.count(kv.first), 1u) << kv.first;
    EXPECT_EQ(view.merged.histograms.at(kv.first).count, kv.second)
        << kv.first;
  }
  std::string backup_key = obs::LabeledName(
      "cluster.op.latency_us", {{"op", "backup"}, {"tenant", "alice"}});
  ASSERT_EQ(view.merged.histograms.count(backup_key), 1u);
  EXPECT_EQ(view.merged.histograms.at(backup_key).count, 2u);

  // SLO counters flowed through the same pipeline: alice made 2
  // backups (L0, L1), bob 1 backup + 1 restore on L0 and 1 backup L2.
  std::vector<obs::SloStatus> statuses =
      obs::ComputeSloStatuses(view.merged.counters, obs::DefaultSlos());
  uint64_t backup_total = 0;
  for (const auto& st : statuses) {
    if (st.objective.op_class == "backup") backup_total += st.total;
  }
  EXPECT_EQ(backup_total, 4u);

  // Publishing never leaks obs# keys into the data plane's view.
  auto shallow = store.List(options.root + "/");
  ASSERT_TRUE(shallow.ok());
  for (const std::string& key : shallow.value()) {
    EXPECT_EQ(key.find("obs#"), std::string::npos) << key;
  }
  reg.ResetAll();
}

TEST(ObsPublish, ClusterPublishesOwnSnapshotAndFillsSeries) {
  oss::MemoryObjectStore store;
  cluster::ShardedClusterOptions options;
  options.num_shards = 2;
  options.node_id = "self";
  options.obs_publish_interval_ms = 0;  // Publish on every operation.
  auto created = cluster::ShardedCluster::Create(&store, options, {"self"});
  ASSERT_TRUE(created.ok());
  obs::MetricsRegistry::Get().ResetAll();
  Rng rng(37);
  std::string data = rng.RandomBytes(32 * 1024);
  auto stats = created.value()->Backup("acme", "file", data);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(created.value()->obs_series().size(), 1u);
  auto fleet = cluster::FetchFleetSnapshot(&store, options.root);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(fleet.value().per_node.size(), 1u);
  EXPECT_EQ(fleet.value().per_node[0].node, "self");
  // An explicit publish also succeeds and overwrites the same key.
  EXPECT_TRUE(created.value()->PublishObsSnapshot().ok());
  obs::MetricsRegistry::Get().ResetAll();
}

// ---------------------------------------------------------------------------
// Journal --since filtering.

TEST(JournalSince, ParsesDurations) {
  uint64_t ms = 0;
  EXPECT_TRUE(obs::ParseDurationMs("500ms", &ms));
  EXPECT_EQ(ms, 500u);
  EXPECT_TRUE(obs::ParseDurationMs("30s", &ms));
  EXPECT_EQ(ms, 30000u);
  EXPECT_TRUE(obs::ParseDurationMs("10m", &ms));
  EXPECT_EQ(ms, 600000u);
  EXPECT_TRUE(obs::ParseDurationMs("2h", &ms));
  EXPECT_EQ(ms, 7200000u);
  EXPECT_TRUE(obs::ParseDurationMs("1d", &ms));
  EXPECT_EQ(ms, 86400000u);
  EXPECT_TRUE(obs::ParseDurationMs("45", &ms));  // Bare number = seconds.
  EXPECT_EQ(ms, 45000u);

  uint64_t untouched = 123;
  EXPECT_FALSE(obs::ParseDurationMs("", &untouched));
  EXPECT_FALSE(obs::ParseDurationMs("ms", &untouched));
  EXPECT_FALSE(obs::ParseDurationMs("-5s", &untouched));
  EXPECT_FALSE(obs::ParseDurationMs("5x", &untouched));
  EXPECT_FALSE(obs::ParseDurationMs("99999999999999999999d", &untouched));
  EXPECT_EQ(untouched, 123u);
}

TEST(JournalSince, FiltersByEndStamp) {
  std::vector<std::string> records = {
      R"({"job":1,"end_ms":1000})",
      R"({"job":2,"end_ms":5000})",
      R"({"job":3,"start_ms":8000})",   // end_ms missing: start_ms rules.
      R"({"job":4,"name":"stampless"})",  // No stamp at all: dropped.
  };
  std::vector<std::string> kept = obs::EventJournal::FilterSince(records, 5000);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_NE(kept[0].find("\"job\":2"), std::string::npos);
  EXPECT_NE(kept[1].find("\"job\":3"), std::string::npos);
  EXPECT_EQ(obs::EventJournal::FilterSince(records, 0).size(), 3u);
  EXPECT_TRUE(obs::EventJournal::FilterSince(records, 9000).empty());
}

}  // namespace
}  // namespace slim
