#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baselines/restic_like.h"
#include "baselines/restore_baselines.h"
#include "baselines/silo.h"
#include "baselines/sparse_indexing.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim::baselines {
namespace {

using workload::GeneratorOptions;
using workload::VersionedFileGenerator;

GeneratorOptions TestGenerator(uint64_t seed = 1, size_t size = 256 << 10) {
  GeneratorOptions gen;
  gen.base_size = size;
  gen.duplication_ratio = 0.85;
  gen.self_reference = 0.2;
  gen.block_size = 1024;
  gen.seed = seed;
  return gen;
}

SiloOptions SmallSilo() {
  SiloOptions options;
  options.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.segment_bytes = 16 << 10;
  options.block_segments = 8;
  options.container_capacity = 32 << 10;
  return options;
}

SparseIndexingOptions SmallSparse() {
  SparseIndexingOptions options;
  options.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.segment_bytes = 16 << 10;
  options.sample_ratio = 4;
  options.container_capacity = 32 << 10;
  return options;
}

// ---------------------------------------------------------------------------
// SiLO
// ---------------------------------------------------------------------------

TEST(SiloTest, DeduplicatesAcrossVersions) {
  oss::MemoryObjectStore oss;
  SiloDedup silo(&oss, "silo", SmallSilo());
  VersionedFileGenerator gen(TestGenerator(3));
  auto v0 = silo.Backup("f", gen.data());
  ASSERT_TRUE(v0.ok()) << v0.status();
  EXPECT_LT(v0.value().DedupRatio(), 0.35);
  gen.Mutate();
  auto v1 = silo.Backup("f", gen.data());
  ASSERT_TRUE(v1.ok());
  EXPECT_GT(v1.value().DedupRatio(), 0.5);
}

TEST(SiloTest, RecipesAreRestorable) {
  oss::MemoryObjectStore oss;
  SiloDedup silo(&oss, "silo", SmallSilo());
  VersionedFileGenerator gen(TestGenerator(5));
  std::vector<std::string> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(silo.Backup("f", gen.data()).ok());
    gen.Mutate();
  }
  BaselineRestoreOptions ropts;
  BaselineRestorer restorer(silo.container_store(), silo.recipe_store(),
                            RestorePolicy::kLruContainer, ropts);
  for (int v = 0; v < 3; ++v) {
    lnode::RestoreStats stats;
    auto restored = restorer.Restore("f", v, &stats);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(SiloTest, IdenticalBackupNearFullDedup) {
  oss::MemoryObjectStore oss;
  SiloDedup silo(&oss, "silo", SmallSilo());
  VersionedFileGenerator gen(TestGenerator(7));
  ASSERT_TRUE(silo.Backup("f", gen.data()).ok());
  auto again = silo.Backup("f", gen.data());
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again.value().DedupRatio(), 0.95);
}

// ---------------------------------------------------------------------------
// Sparse Indexing
// ---------------------------------------------------------------------------

TEST(SparseIndexingTest, DeduplicatesAcrossVersions) {
  oss::MemoryObjectStore oss;
  SparseIndexingDedup sparse(&oss, "sparse", SmallSparse());
  VersionedFileGenerator gen(TestGenerator(9));
  ASSERT_TRUE(sparse.Backup("f", gen.data()).ok());
  gen.Mutate();
  auto v1 = sparse.Backup("f", gen.data());
  ASSERT_TRUE(v1.ok());
  EXPECT_GT(v1.value().DedupRatio(), 0.5);
}

TEST(SparseIndexingTest, RecipesAreRestorable) {
  oss::MemoryObjectStore oss;
  SparseIndexingDedup sparse(&oss, "sparse", SmallSparse());
  VersionedFileGenerator gen(TestGenerator(11));
  std::vector<std::string> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(sparse.Backup("f", gen.data()).ok());
    gen.Mutate();
  }
  BaselineRestoreOptions ropts;
  BaselineRestorer restorer(sparse.container_store(), sparse.recipe_store(),
                            RestorePolicy::kFaa, ropts);
  for (int v = 0; v < 3; ++v) {
    auto restored = restorer.Restore("f", v, nullptr);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(SparseIndexingTest, ChampionCapBoundsWork) {
  oss::MemoryObjectStore oss;
  SparseIndexingOptions options = SmallSparse();
  options.max_champions = 1;
  SparseIndexingDedup sparse(&oss, "sparse", options);
  VersionedFileGenerator gen(TestGenerator(13));
  ASSERT_TRUE(sparse.Backup("f", gen.data()).ok());
  gen.Mutate();
  auto v1 = sparse.Backup("f", gen.data());
  ASSERT_TRUE(v1.ok());
  // Still finds duplicates, though fewer than with more champions.
  EXPECT_GT(v1.value().DedupRatio(), 0.3);
}

// ---------------------------------------------------------------------------
// Baseline restore caches (against SlimStore-written data)
// ---------------------------------------------------------------------------

class RestorePolicyTest : public ::testing::TestWithParam<RestorePolicy> {};

TEST_P(RestorePolicyTest, RestoresByteIdentical) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  core::SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(15));
  std::vector<std::string> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    gen.Mutate();
  }

  BaselineRestoreOptions ropts;
  ropts.cache_bytes = 256 << 10;
  ropts.law_chunks = 128;
  ropts.global_index = store.global_index();
  BaselineRestorer restorer(store.container_store(), store.recipe_store(),
                            GetParam(), ropts);
  for (int v = 0; v < 4; ++v) {
    lnode::RestoreStats stats;
    auto restored = restorer.Restore("f", v, &stats);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]) << "version " << v;
    EXPECT_GT(stats.containers_fetched, 0u);
    EXPECT_EQ(stats.logical_bytes, versions[v].size());
  }
}

TEST_P(RestorePolicyTest, TinyCacheStillCorrect) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  core::SlimStore store(&oss, options);
  VersionedFileGenerator gen(TestGenerator(17, 128 << 10));
  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    if (v < 2) gen.Mutate();
  }
  BaselineRestoreOptions ropts;
  ropts.cache_bytes = 32 << 10;  // Roughly two containers.
  ropts.law_chunks = 32;
  ropts.global_index = store.global_index();
  BaselineRestorer restorer(store.container_store(), store.recipe_store(),
                            GetParam(), ropts);
  auto restored = restorer.Restore("f", 2, nullptr);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), gen.data());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RestorePolicyTest,
                         ::testing::Values(RestorePolicy::kLruContainer,
                                           RestorePolicy::kOptContainer,
                                           RestorePolicy::kFaa,
                                           RestorePolicy::kAlacc),
                         [](const auto& param_info) {
                           return std::string(
                               RestorePolicyName(param_info.param));
                         });

TEST(RestorePolicyComparisonTest, OptBeatsLruOnFragmentedStream) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  core::SlimStore store(&oss, options);
  VersionedFileGenerator gen(TestGenerator(19));
  for (int v = 0; v < 8; ++v) {
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    if (v < 7) gen.Mutate();
  }
  auto fetches = [&](RestorePolicy policy) {
    BaselineRestoreOptions ropts;
    ropts.cache_bytes = 64 << 10;
    ropts.law_chunks = 256;
    ropts.global_index = store.global_index();
    BaselineRestorer restorer(store.container_store(), store.recipe_store(),
                              policy, ropts);
    lnode::RestoreStats stats;
    auto restored = restorer.Restore("f", 7, &stats);
    EXPECT_TRUE(restored.ok());
    return stats.containers_fetched;
  };
  EXPECT_LE(fetches(RestorePolicy::kOptContainer),
            fetches(RestorePolicy::kLruContainer));
}

// ---------------------------------------------------------------------------
// HAR rewriting (pipeline option)
// ---------------------------------------------------------------------------

TEST(HarTest, RewritesDuplicatesInSparseContainers) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.sparse_utilization_threshold = 0.9;  // Most are "sparse".
  options.enable_scc = false;
  options.enable_reverse_dedup = false;
  core::SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(21));
  ASSERT_TRUE(store.Backup("f", gen.data()).ok());
  gen.Mutate();
  auto v1 = store.Backup("f", gen.data());
  ASSERT_TRUE(v1.ok());
  ASSERT_FALSE(v1.value().sparse_containers.empty());

  // Third backup in HAR mode: rewrite duplicates living in the sparse
  // containers v1 identified.
  gen.Mutate();
  auto rewrite_set =
      std::make_shared<std::unordered_set<format::ContainerId>>(
          v1.value().sparse_containers.begin(),
          v1.value().sparse_containers.end());
  lnode::BackupOptions har_options = options.backup;
  har_options.har_rewrite_containers = rewrite_set;
  lnode::BackupPipeline har(store.container_store(), store.recipe_store(),
                            store.similar_file_index(), har_options);
  auto v2 = har.Backup("f", gen.data(), 2);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_GT(v2.value().rewritten_chunks, 0u);

  // The rewritten version restores byte-identically.
  auto restored = store.Restore("f", 2);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), gen.data());
}

// ---------------------------------------------------------------------------
// ResticLike
// ---------------------------------------------------------------------------

TEST(ResticLikeTest, BackupRestoreRoundTrip) {
  oss::MemoryObjectStore oss;
  ResticLikeOptions options;
  options.chunker_params = chunking::ChunkerParams::FromAverage(8 << 10);
  options.pack_capacity = 64 << 10;
  ResticLike restic(&oss, "restic", options);

  VersionedFileGenerator gen(TestGenerator(23));
  std::vector<std::string> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(gen.data());
    auto stats = restic.Backup("f", gen.data());
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats.value().version, static_cast<uint64_t>(v));
    gen.Mutate();
  }
  for (int v = 0; v < 3; ++v) {
    lnode::RestoreStats stats;
    auto restored = restic.Restore("f", v, &stats);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(ResticLikeTest, ExactDedupAcrossFiles) {
  oss::MemoryObjectStore oss;
  ResticLikeOptions options;
  options.chunker_params = chunking::ChunkerParams::FromAverage(8 << 10);
  ResticLike restic(&oss, "restic", options);
  VersionedFileGenerator gen(TestGenerator(29));
  ASSERT_TRUE(restic.Backup("a", gen.data()).ok());
  // Same bytes under a different name: the global index catches all of
  // it (content addressing).
  auto stats = restic.Backup("b", gen.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().DedupRatio(), 0.99);
}

TEST(ResticLikeTest, ConcurrentBackupsSerializeButSucceed) {
  oss::MemoryObjectStore oss;
  ResticLikeOptions options;
  options.chunker_params = chunking::ChunkerParams::FromAverage(8 << 10);
  ResticLike restic(&oss, "restic", options);

  std::vector<std::string> contents;
  for (int i = 0; i < 4; ++i) {
    VersionedFileGenerator gen(TestGenerator(31 + i, 64 << 10));
    contents.push_back(gen.data());
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      auto stats = restic.Backup("file-" + std::to_string(i), contents[i]);
      if (!stats.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < 4; ++i) {
    auto restored = restic.Restore("file-" + std::to_string(i), 0);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), contents[i]);
  }
}

TEST(ResticLikeTest, OccupiedBytesTracksPacks) {
  oss::MemoryObjectStore oss;
  ResticLike restic(&oss, "restic");
  VersionedFileGenerator gen(TestGenerator(37, 64 << 10));
  ASSERT_TRUE(restic.Backup("f", gen.data()).ok());
  auto bytes = restic.OccupiedBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(bytes.value(), 32u << 10);
}

}  // namespace
}  // namespace slim::baselines
