// Property test for the rebuildable-state contract: over randomized
// multi-version workloads, an L-node whose local structures were
// reconstructed by SlimStore::Rebuild() is SEMANTICALLY IDENTICAL to
// the L-node that maintained them incrementally — same catalog, same
// similar-file index answers, and (the behavioral clincher) the next
// backup driven through both produces byte-identical recipes and
// identical statistics. The rebuilt store runs against a byte-copy of
// the original's OSS, so any divergence is a pure local-state bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

constexpr size_t kFiles = 2;
constexpr size_t kVersions = 3;
constexpr uint64_t kSeeds = 10;

std::string FileId(size_t f) { return "file-" + std::to_string(f); }

core::SlimStoreOptions MakeOptions() {
  core::SlimStoreOptions options;
  options.backup.container_capacity = 16 << 10;
  options.backup.sparse_utilization_threshold = 0.9;
  return options;
}

// Deterministic per-seed workload, with seed-varied duplication so the
// sweep covers dedup-heavy and dedup-light repositories alike.
std::vector<std::vector<std::string>> MakeVersions(uint64_t seed) {
  std::vector<std::vector<std::string>> expected(kFiles);
  for (size_t f = 0; f < kFiles; ++f) {
    workload::GeneratorOptions gopts;
    gopts.base_size = 48 << 10;
    gopts.duplication_ratio = 0.60 + 0.05 * static_cast<double>(seed % 7);
    gopts.seed = seed * 1000 + f;
    workload::VersionedFileGenerator gen(gopts);
    expected[f].push_back(gen.data());
    for (size_t v = 1; v < kVersions; ++v) {
      gen.Mutate();
      expected[f].push_back(gen.data());
    }
  }
  return expected;
}

// Byte-copies every object, so the rebuilt store sees exactly the OSS
// the incrementally-maintained store produced.
void CloneStore(oss::MemoryObjectStore* from, oss::MemoryObjectStore* to) {
  auto keys = from->List("");
  ASSERT_TRUE(keys.ok()) << keys.status();
  for (const std::string& key : keys.value()) {
    auto object = from->Get(key);
    ASSERT_TRUE(object.ok()) << key << ": " << object.status();
    ASSERT_TRUE(to->Put(key, object.value()).ok());
  }
}

std::vector<format::ContainerId> Sorted(std::vector<format::ContainerId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Asserts the rebuilt store's catalog and similar-file index answer
// exactly like the incrementally maintained ones.
void ExpectSameLocalState(core::SlimStore* a, core::SlimStore* b,
                          const std::string& label, bool compare_garbage) {
  // Similar-file index: same latest-version map, same sample volume.
  EXPECT_EQ(a->similar_file_index()->sample_count(),
            b->similar_file_index()->sample_count())
      << label;
  for (size_t f = 0; f < kFiles; ++f) {
    EXPECT_EQ(a->similar_file_index()->LatestVersion(FileId(f)),
              b->similar_file_index()->LatestVersion(FileId(f)))
        << label << ": " << FileId(f);
  }

  // Catalog: identical live set and per-version bookkeeping.
  auto live_a = a->catalog()->LiveVersions();
  auto live_b = b->catalog()->LiveVersions();
  ASSERT_EQ(live_a.size(), live_b.size()) << label;
  for (const auto& fv : live_a) {
    auto ia = a->catalog()->Get(fv.file_id, fv.version);
    auto ib = b->catalog()->Get(fv.file_id, fv.version);
    ASSERT_TRUE(ia.has_value()) << label;
    ASSERT_TRUE(ib.has_value())
        << label << ": " << fv.file_id << "@v" << fv.version
        << " missing from the rebuilt catalog";
    EXPECT_EQ(ia->logical_bytes, ib->logical_bytes) << label;
    EXPECT_EQ(Sorted(ia->referenced_containers),
              Sorted(ib->referenced_containers))
        << label << ": " << fv.file_id << "@v" << fv.version;
    EXPECT_EQ(ia->gnode_pending, ib->gnode_pending)
        << label << ": " << fv.file_id << "@v" << fv.version;
    if (ia->gnode_pending) {
      // The durable pending record must have restored the worklist.
      EXPECT_EQ(Sorted(ia->new_containers), Sorted(ib->new_containers))
          << label;
      EXPECT_EQ(Sorted(ia->sparse_containers), Sorted(ib->sparse_containers))
          << label;
    }
    if (compare_garbage) {
      // Between-version garbage is recomputed from recipe diffs; when
      // no G-node pass rewrote any recipe this must match the
      // incrementally accumulated lists exactly.
      EXPECT_EQ(Sorted(ia->garbage_containers),
                Sorted(ib->garbage_containers))
          << label << ": " << fv.file_id << "@v" << fv.version;
    }
  }
}

// The behavioral probe: drive the NEXT backup of every file through
// both stores and require identical decisions all the way down to the
// committed recipe bytes. This exercises FindSimilar, the dedup pass
// against historical segment recipes, and version allocation — any
// semantic gap between rebuilt and incremental state shows up here.
void ExpectSameNextBackup(core::SlimStore* a, core::SlimStore* b,
                          const std::vector<std::string>& next_data,
                          const std::string& label) {
  for (size_t f = 0; f < kFiles; ++f) {
    auto sa = a->Backup(FileId(f), next_data[f]);
    auto sb = b->Backup(FileId(f), next_data[f]);
    ASSERT_TRUE(sa.ok()) << label << ": " << sa.status();
    ASSERT_TRUE(sb.ok()) << label << ": " << sb.status();
    EXPECT_EQ(sa.value().version, sb.value().version) << label;
    EXPECT_EQ(sa.value().detection, sb.value().detection) << label;
    EXPECT_EQ(sa.value().dup_bytes, sb.value().dup_bytes) << label;
    EXPECT_EQ(sa.value().new_bytes, sb.value().new_bytes) << label;
    EXPECT_EQ(sa.value().total_chunks, sb.value().total_chunks) << label;
    EXPECT_EQ(sa.value().dup_chunks, sb.value().dup_chunks) << label;
    EXPECT_EQ(Sorted(sa.value().new_containers),
              Sorted(sb.value().new_containers))
        << label;
    EXPECT_EQ(Sorted(sa.value().referenced_containers),
              Sorted(sb.value().referenced_containers))
        << label;
    EXPECT_EQ(Sorted(sa.value().sparse_containers),
              Sorted(sb.value().sparse_containers))
        << label;

    // Recipe bytes, not just stats: the durable artifact is identical.
    std::string key_a = a->recipe_store()->RecipeObjectKey(
        FileId(f), sa.value().version);
    auto ra = a->object_store()->Get(key_a);
    auto rb = b->object_store()->Get(key_a);
    ASSERT_TRUE(ra.ok()) << label << ": " << ra.status();
    ASSERT_TRUE(rb.ok()) << label << ": " << rb.status();
    EXPECT_EQ(ra.value(), rb.value())
        << label << ": recipe bytes diverge for " << FileId(f);
  }
}

class RebuildPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RebuildPropertyTest, RebuiltStateIsSemanticallyIdentical) {
  const uint64_t seed = GetParam();
  // Odd seeds interleave G-node cycles with the backups, so the rebuilt
  // state must also capture post-SCC reference sets and processed
  // (pending-free) versions; even seeds leave every version pending.
  const bool run_gnode = (seed % 2) == 1;
  const auto expected = MakeVersions(seed);
  const std::string label = "seed " + std::to_string(seed);

  oss::MemoryObjectStore mem_a;
  core::SlimStore a(&mem_a, MakeOptions());
  for (size_t v = 0; v < kVersions; ++v) {
    for (size_t f = 0; f < kFiles; ++f) {
      auto stats = a.Backup(FileId(f), expected[f][v]);
      ASSERT_TRUE(stats.ok()) << label << ": " << stats.status();
    }
    if (run_gnode && v + 1 < kVersions) {
      ASSERT_TRUE(a.RunGNodeCycle().ok()) << label;
    }
  }

  // The rebuilt twin: same OSS bytes, zero inherited local state.
  oss::MemoryObjectStore mem_b;
  CloneStore(&mem_a, &mem_b);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  core::SlimStore b(&mem_b, MakeOptions());
  ASSERT_TRUE(b.Rebuild().ok()) << label;

  // G-node recipe rewrites legitimately change which version the
  // incremental store charged SCC garbage to; recomputed lists must
  // only match exactly when no pass ever rewrote a recipe.
  ExpectSameLocalState(&a, &b, label, /*compare_garbage=*/!run_gnode);
  if (::testing::Test::HasFatalFailure()) return;

  // Next version through both stores: identical behavior end-to-end.
  std::vector<std::string> next_data;
  for (size_t f = 0; f < kFiles; ++f) {
    workload::GeneratorOptions gopts;
    gopts.base_size = 48 << 10;
    gopts.duplication_ratio = 0.75;
    gopts.seed = seed * 7777 + f;
    workload::VersionedFileGenerator gen(gopts);
    next_data.push_back(gen.data());
  }
  ExpectSameNextBackup(&a, &b, next_data, label);
  if (::testing::Test::HasFatalFailure()) return;

  // Both repositories remain verified and fully restorable.
  for (core::SlimStore* s : {&a, &b}) {
    auto report = s->VerifyRepository();
    ASSERT_TRUE(report.ok()) << label << ": " << report.status();
    EXPECT_TRUE(report.value().ok())
        << label << ": "
        << (report.value().problems.empty()
                ? ""
                : report.value().problems.front());
    for (size_t f = 0; f < kFiles; ++f) {
      for (size_t v = 0; v < kVersions; ++v) {
        auto data = s->Restore(FileId(f), v);
        ASSERT_TRUE(data.ok()) << label << ": " << data.status();
        EXPECT_EQ(data.value(), expected[f][v]) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildPropertyTest,
                         ::testing::Range<uint64_t>(1, kSeeds + 1),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace slim
