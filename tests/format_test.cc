#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "format/chunk.h"
#include "format/container.h"
#include "format/recipe.h"
#include "oss/memory_object_store.h"

namespace slim::format {
namespace {

Fingerprint FpOf(const std::string& s) { return Sha1::Hash(s); }

ChunkRecord MakeRecord(const std::string& content, ContainerId cid,
                       uint32_t dup_times = 0) {
  ChunkRecord r;
  r.fp = FpOf(content);
  r.container_id = cid;
  r.size = static_cast<uint32_t>(content.size());
  r.duplicate_times = dup_times;
  return r;
}

// ---------------------------------------------------------------------------
// ChunkRecord / SegmentRecipe encoding
// ---------------------------------------------------------------------------

TEST(ChunkRecordTest, RoundTrip) {
  ChunkRecord in = MakeRecord("hello", 7, 3);
  std::string buf;
  EncodeChunkRecord(&buf, in);
  Decoder dec(buf);
  ChunkRecord out;
  ASSERT_TRUE(DecodeChunkRecord(&dec, &out).ok());
  EXPECT_EQ(in, out);
}

TEST(ChunkRecordTest, SuperchunkRoundTrip) {
  ChunkRecord in = MakeRecord("super", 9, 5);
  in.is_superchunk = true;
  in.first_chunk_fp = FpOf("first");
  std::string buf;
  EncodeChunkRecord(&buf, in);
  Decoder dec(buf);
  ChunkRecord out;
  ASSERT_TRUE(DecodeChunkRecord(&dec, &out).ok());
  EXPECT_EQ(in, out);
  EXPECT_TRUE(out.is_superchunk);
  EXPECT_EQ(out.first_chunk_fp, FpOf("first"));
}

TEST(SegmentRecipeTest, RoundTripAndLogicalBytes) {
  SegmentRecipe seg;
  seg.records.push_back(MakeRecord("aaa", 1));
  seg.records.push_back(MakeRecord("bbbbb", 2));
  std::string buf;
  seg.Encode(&buf);
  SegmentRecipe out;
  ASSERT_TRUE(SegmentRecipe::Decode(buf, &out).ok());
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0], seg.records[0]);
  EXPECT_EQ(out.LogicalBytes(), 8u);
}

TEST(SegmentRecipeTest, DecodeRejectsTruncation) {
  SegmentRecipe seg;
  seg.records.push_back(MakeRecord("data", 1));
  std::string buf;
  seg.Encode(&buf);
  SegmentRecipe out;
  EXPECT_TRUE(
      SegmentRecipe::Decode(buf.substr(0, buf.size() - 3), &out)
          .IsCorruption());
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

TEST(ContainerBuilderTest, AddAndFinish) {
  ContainerBuilder builder(5, 1024);
  EXPECT_TRUE(builder.empty());
  ASSERT_TRUE(builder.Add(FpOf("x"), "xxxx"));
  ASSERT_TRUE(builder.Add(FpOf("y"), "yyyyyy"));
  EXPECT_EQ(builder.chunk_count(), 2u);
  EXPECT_EQ(builder.payload_size(), 10u);

  std::string payload;
  ContainerMeta meta;
  builder.Finish(&payload, &meta);
  EXPECT_EQ(meta.id, 5u);
  EXPECT_EQ(meta.data_size, 10u);
  ASSERT_EQ(meta.chunks.size(), 2u);
  EXPECT_EQ(meta.chunks[0].offset, 0u);
  EXPECT_EQ(meta.chunks[1].offset, 4u);
  EXPECT_EQ(payload, "xxxxyyyyyy");
}

TEST(ContainerBuilderTest, CapacityRejectsWhenFull) {
  ContainerBuilder builder(1, 10);
  ASSERT_TRUE(builder.Add(FpOf("a"), "123456"));
  EXPECT_FALSE(builder.Add(FpOf("b"), "123456"));  // Would exceed 10.
  // First chunk is always accepted even if larger than capacity.
  ContainerBuilder big(2, 4);
  EXPECT_TRUE(big.Add(FpOf("c"), "12345678"));
}

TEST(ContainerMetaTest, RoundTripWithDeletedFlags) {
  ContainerMeta meta;
  meta.id = 42;
  meta.data_size = 100;
  meta.payload_checksum = 0xabc;
  meta.chunks.push_back({FpOf("a"), 0, 50, false});
  meta.chunks.push_back({FpOf("b"), 50, 50, true});
  ContainerMeta out;
  ASSERT_TRUE(ContainerMeta::Decode(meta.Encode(), &out).ok());
  EXPECT_EQ(out.id, 42u);
  ASSERT_EQ(out.chunks.size(), 2u);
  EXPECT_FALSE(out.chunks[0].deleted);
  EXPECT_TRUE(out.chunks[1].deleted);
  EXPECT_DOUBLE_EQ(out.DeletedFraction(), 0.5);
}

TEST(ContainerMetaTest, FindByFingerprint) {
  ContainerMeta meta;
  meta.chunks.push_back({FpOf("a"), 0, 3, false});
  EXPECT_NE(meta.Find(FpOf("a")), nullptr);
  EXPECT_EQ(meta.Find(FpOf("zz")), nullptr);
}

class ContainerStoreTest : public ::testing::Test {
 protected:
  ContainerStoreTest() : store_(&oss_, "c") {}

  ContainerId WriteContainer(const std::vector<std::string>& chunks) {
    ContainerBuilder builder(store_.AllocateId(), 1 << 20);
    for (const auto& c : chunks) {
      EXPECT_TRUE(builder.Add(FpOf(c), c));
    }
    ContainerId id = builder.id();
    EXPECT_TRUE(store_.Write(std::move(builder)).ok());
    return id;
  }

  oss::MemoryObjectStore oss_;
  ContainerStore store_;
};

TEST_F(ContainerStoreTest, WriteReadRoundTrip) {
  ContainerId id = WriteContainer({"alpha", "beta", "gamma"});
  auto loaded = store_.ReadContainer(id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().directory.chunks.size(), 3u);
  auto chunk = loaded.value().GetChunk(FpOf("beta"));
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(*chunk, "beta");
  EXPECT_FALSE(loaded.value().GetChunk(FpOf("nope")).has_value());
}

TEST_F(ContainerStoreTest, MetaReadWrite) {
  ContainerId id = WriteContainer({"one", "two"});
  auto meta = store_.ReadMeta(id);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().chunks.size(), 2u);
  meta.value().chunks[0].deleted = true;
  ASSERT_TRUE(store_.WriteMeta(meta.value()).ok());
  auto reread = store_.ReadMeta(id);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread.value().chunks[0].deleted);
}

TEST_F(ContainerStoreTest, CompactDropsDeletedChunks) {
  ContainerId id = WriteContainer({"keepme", "dropme", "keeptoo"});
  auto meta = store_.ReadMeta(id);
  ASSERT_TRUE(meta.ok());
  for (auto& c : meta.value().chunks) {
    if (c.fp == FpOf("dropme")) c.deleted = true;
  }
  ASSERT_TRUE(store_.WriteMeta(meta.value()).ok());
  auto reclaimed = store_.CompactContainer(id);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 6u);  // strlen("dropme")

  auto loaded = store_.ReadContainer(id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().directory.chunks.size(), 2u);
  EXPECT_FALSE(loaded.value().GetChunk(FpOf("dropme")).has_value());
  EXPECT_EQ(*loaded.value().GetChunk(FpOf("keepme")), "keepme");
  EXPECT_EQ(*loaded.value().GetChunk(FpOf("keeptoo")), "keeptoo");
}

TEST_F(ContainerStoreTest, DeleteRemovesBothObjects) {
  ContainerId id = WriteContainer({"gone"});
  ASSERT_TRUE(store_.Delete(id).ok());
  EXPECT_FALSE(store_.Exists(id).value());
  EXPECT_TRUE(store_.ReadMeta(id).status().IsNotFound());
}

TEST_F(ContainerStoreTest, ListAndTotalBytes) {
  WriteContainer({"aa"});
  WriteContainer({"bbbb"});
  auto ids = store_.ListContainerIds();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 2u);
  auto total = store_.TotalStoredBytes();
  ASSERT_TRUE(total.ok());
  EXPECT_GT(total.value(), 6u);  // Payload plus directory headers.
}

TEST_F(ContainerStoreTest, CorruptPayloadDetected) {
  ContainerId id = WriteContainer({"payload-bytes"});
  // Flip a byte in the stored object.
  std::string key = "c/data-00000000000000000000";
  auto object = oss_.Get(key);
  ASSERT_TRUE(object.ok());
  std::string mutated = object.value();
  mutated[mutated.size() - 2] =
      static_cast<char>(mutated[mutated.size() - 2] ^ 0xff);
  ASSERT_TRUE(oss_.Put(key, mutated).ok());
  EXPECT_TRUE(store_.ReadContainer(id).status().IsCorruption());
}

TEST_F(ContainerStoreTest, AllocateIdsAreUnique) {
  std::set<ContainerId> ids;
  for (int i = 0; i < 100; ++i) ids.insert(store_.AllocateId());
  EXPECT_EQ(ids.size(), 100u);
}

// ---------------------------------------------------------------------------
// Recipe store
// ---------------------------------------------------------------------------

Recipe MakeRecipe(const std::string& file_id, uint64_t version,
                  size_t num_segments, size_t records_per_segment) {
  Recipe recipe;
  recipe.file_id = file_id;
  recipe.version = version;
  for (size_t s = 0; s < num_segments; ++s) {
    SegmentRecipe seg;
    for (size_t r = 0; r < records_per_segment; ++r) {
      seg.records.push_back(MakeRecord(
          "chunk-" + std::to_string(s) + "-" + std::to_string(r), s, 0));
    }
    recipe.segments.push_back(std::move(seg));
  }
  return recipe;
}

class RecipeStoreTest : public ::testing::Test {
 protected:
  RecipeStoreTest() : store_(&oss_, "r") {}
  oss::MemoryObjectStore oss_;
  RecipeStore store_;
};

TEST_F(RecipeStoreTest, WriteReadRoundTrip) {
  Recipe recipe = MakeRecipe("db/users.db", 3, 4, 10);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 4).ok());
  auto out = store_.ReadRecipe("db/users.db", 3);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().file_id, "db/users.db");
  EXPECT_EQ(out.value().version, 3u);
  ASSERT_EQ(out.value().segments.size(), 4u);
  EXPECT_EQ(out.value().segments[2].records, recipe.segments[2].records);
}

TEST_F(RecipeStoreTest, ReadSegmentFetchesExactSegment) {
  Recipe recipe = MakeRecipe("f", 0, 5, 7);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 4).ok());
  for (uint32_t s = 0; s < 5; ++s) {
    auto seg = store_.ReadSegment("f", 0, s);
    ASSERT_TRUE(seg.ok());
    EXPECT_EQ(seg.value().records, recipe.segments[s].records);
  }
  EXPECT_FALSE(store_.ReadSegment("f", 0, 5).ok());
}

TEST_F(RecipeStoreTest, IndexContainsSamplesAndAllSegments) {
  Recipe recipe = MakeRecipe("f", 0, 6, 20);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 4).ok());
  auto index = store_.ReadIndex("f", 0);
  ASSERT_TRUE(index.ok());
  // Every segment must be discoverable through at least one sample.
  std::set<uint32_t> segments;
  for (const auto& [fp, ordinal] : index.value().sample_to_segment) {
    segments.insert(ordinal);
  }
  EXPECT_EQ(segments.size(), 6u);
}

TEST_F(RecipeStoreTest, SuperchunkFirstFingerprintIndexed) {
  Recipe recipe;
  recipe.file_id = "f";
  recipe.version = 0;
  SegmentRecipe seg;
  ChunkRecord sc = MakeRecord("superchunk-data", 0);
  sc.is_superchunk = true;
  sc.first_chunk_fp = FpOf("the-first-chunk");
  seg.records.push_back(sc);
  recipe.segments.push_back(seg);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 1u << 30).ok());
  auto index = store_.ReadIndex("f", 0);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value().sample_to_segment.count(FpOf("the-first-chunk")) >
              0);
}

TEST_F(RecipeStoreTest, ListVersionsSorted) {
  for (uint64_t v : {2u, 0u, 1u}) {
    ASSERT_TRUE(store_.WriteRecipe(MakeRecipe("f", v, 1, 1), 4).ok());
  }
  auto versions = store_.ListVersions("f");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions.value(), (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(RecipeStoreTest, DeleteVersionRemovesAllObjects) {
  ASSERT_TRUE(store_.WriteRecipe(MakeRecipe("f", 0, 2, 2), 4).ok());
  ASSERT_TRUE(store_.DeleteVersion("f", 0).ok());
  EXPECT_TRUE(store_.ReadRecipe("f", 0).status().IsNotFound());
  EXPECT_TRUE(store_.ReadIndex("f", 0).status().IsNotFound());
  EXPECT_TRUE(store_.ListVersions("f").value().empty());
}

TEST_F(RecipeStoreTest, FileIdsWithSlashesAreEscaped) {
  Recipe recipe = MakeRecipe("dir/sub/file%.db", 1, 1, 1);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 4).ok());
  auto out = store_.ReadRecipe("dir/sub/file%.db", 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().file_id, "dir/sub/file%.db");
  // A different file with a name that would collide unescaped stays
  // separate.
  EXPECT_TRUE(store_.ReadRecipe("dir/sub/file%", 1).status().IsNotFound());
}

TEST_F(RecipeStoreTest, RecipeRewriteInvalidatesTocCache) {
  Recipe recipe = MakeRecipe("f", 0, 2, 3);
  ASSERT_TRUE(store_.WriteRecipe(recipe, 4).ok());
  ASSERT_TRUE(store_.ReadSegment("f", 0, 0).ok());  // Populates toc cache.
  // Rewrite with different segmentation (SCC-style recipe update).
  Recipe updated = MakeRecipe("f", 0, 3, 5);
  ASSERT_TRUE(store_.WriteRecipe(updated, 4).ok());
  auto seg = store_.ReadSegment("f", 0, 2);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg.value().records, updated.segments[2].records);
}

TEST(RecipeTest, FlattenPreservesOrder) {
  Recipe recipe = MakeRecipe("f", 0, 3, 2);
  auto flat = recipe.Flatten();
  ASSERT_EQ(flat.size(), 6u);
  EXPECT_EQ(flat[0], recipe.segments[0].records[0]);
  EXPECT_EQ(flat[5], recipe.segments[2].records[1]);
  EXPECT_EQ(recipe.TotalChunks(), 6u);
}

TEST(EscapeFileIdTest, EscapesSlashAndPercent) {
  EXPECT_EQ(EscapeFileId("a/b"), "a%2fb");
  EXPECT_EQ(EscapeFileId("a%b"), "a%25b");
  EXPECT_EQ(EscapeFileId("plain"), "plain");
}

}  // namespace
}  // namespace slim::format
