// Exercises the Status/Result error-handling contract the whole tree is
// built on: the [[nodiscard]] discipline (IgnoreError as the only
// sanctioned discard), the propagation macros, and the StatusOr alias.
// The negative side — that a *discarded* Status fails to compile — is
// covered by the negative_compile/ ctest targets.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/status.h"

namespace slim {
namespace {

Status FailIf(bool fail) {
  if (fail) return Status::IoError("disk on fire");
  return Status::Ok();
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

// --------------------------------------------------------------------------
// IgnoreError: the sanctioned, greppable way to drop a Status.
// --------------------------------------------------------------------------

TEST(StatusDisciplineTest, IgnoreErrorCompilesForStatusAndResult) {
  FailIf(true).IgnoreError();
  FailIf(false).IgnoreError();
  ParsePositive(-1).IgnoreError();
  ParsePositive(7).IgnoreError();
}

TEST(StatusDisciplineTest, IgnoreErrorDoesNotAlterStatus) {
  Status s = Status::Corruption("torn page");
  s.IgnoreError();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "torn page");
}

// --------------------------------------------------------------------------
// SLIM_RETURN_IF_ERROR
// --------------------------------------------------------------------------

Status ChainTwo(bool first_fails, bool second_fails, int* steps) {
  SLIM_RETURN_IF_ERROR(FailIf(first_fails));
  ++*steps;
  SLIM_RETURN_IF_ERROR(FailIf(second_fails));
  ++*steps;
  return Status::Ok();
}

TEST(ReturnIfErrorTest, PropagatesFirstFailure) {
  int steps = 0;
  Status s = ChainTwo(true, false, &steps);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(steps, 0);
}

TEST(ReturnIfErrorTest, PropagatesSecondFailure) {
  int steps = 0;
  Status s = ChainTwo(false, true, &steps);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(steps, 1);
}

TEST(ReturnIfErrorTest, FallsThroughOnOk) {
  int steps = 0;
  EXPECT_TRUE(ChainTwo(false, false, &steps).ok());
  EXPECT_EQ(steps, 2);
}

// --------------------------------------------------------------------------
// SLIM_ASSIGN_OR_RETURN
// --------------------------------------------------------------------------

Result<int> DoubleIfPositive(int v) {
  SLIM_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(AssignOrReturnTest, AssignsOnOk) {
  auto r = DoubleIfPositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(AssignOrReturnTest, PropagatesErrorStatus) {
  auto r = DoubleIfPositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "not positive");
}

Result<std::string> MoveOnlyChain() {
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<int> boxed,
                        Result<std::unique_ptr<int>>(std::make_unique<int>(9)));
  return std::to_string(*boxed);
}

TEST(AssignOrReturnTest, MovesMoveOnlyValues) {
  auto r = MoveOnlyChain();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "9");
}

// --------------------------------------------------------------------------
// Result / StatusOr surface
// --------------------------------------------------------------------------

TEST(StatusOrTest, AliasIsSameType) {
  static_assert(std::is_same_v<StatusOr<int>, Result<int>>,
                "StatusOr must alias Result");
  StatusOr<int> r = 5;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(StatusOrTest, ValueOrFallsBackOnError) {
  StatusOr<int> bad = Status::NotFound("gone");
  EXPECT_EQ(bad.value_or(-1), -1);
  StatusOr<int> good = 11;
  EXPECT_EQ(good.value_or(-1), 11);
}

TEST(StatusOrTest, ArrowAndDerefReachValue) {
  StatusOr<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(*r, "abc");
}

TEST(StatusOrTest, StatusOfOkResultIsOk) {
  StatusOr<int> r = 1;
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, MoveOutLeavesNoCopy) {
  StatusOr<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --------------------------------------------------------------------------
// Transient codes and retryability
// --------------------------------------------------------------------------

TEST(StatusTest, TransientFactoriesCarryCodeAndMessage) {
  Status unavailable = Status::Unavailable("oss flaking");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(unavailable.IsUnavailable());
  EXPECT_EQ(unavailable.ToString(), "Unavailable: oss flaking");

  Status deadline = Status::DeadlineExceeded("took too long");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: took too long");
}

TEST(StatusTest, RetryableIsExactlyTheTransientTriple) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kResourceExhausted));

  // Everything else is permanent: retrying a NotFound or a Corruption
  // only hides bugs.
  EXPECT_FALSE(Status::Ok().IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("x").IsRetryable());
}

}  // namespace
}  // namespace slim
