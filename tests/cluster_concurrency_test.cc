// TSan-targeted concurrency tests for the sharded cluster: racing
// waves, direct Backup/Restore calls, status polls, and tenant
// registration all share the map/store caches, and the dedicated
// `cluster` CI job runs this suite under ThreadSanitizer to prove the
// locking (cluster.shard_map, cluster.stores, cluster.scheduler) is
// sound, not just deadlock-free.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/sharded_cluster.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

using cluster::ShardedCluster;
using cluster::ShardedClusterOptions;
using cluster::WaveJob;
using workload::GeneratorOptions;
using workload::VersionedFileGenerator;

core::SlimStoreOptions SmallStoreOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_type = chunking::ChunkerType::kFastCdc;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.segment_max_chunks = 64;
  options.restore.cache_bytes = 1 << 20;
  options.restore.prefetch_threads = 0;
  return options;
}

ShardedClusterOptions SmallClusterOptions() {
  ShardedClusterOptions options;
  options.root = "cluster";
  options.num_shards = 4;
  options.vnodes_per_node = 8;
  options.backup_jobs_per_node = 4;
  options.per_tenant_quota = 2;
  options.store = SmallStoreOptions();
  return options;
}

std::string Payload(uint64_t seed) {
  GeneratorOptions gen;
  gen.base_size = 24 << 10;
  gen.block_size = 1024;
  gen.seed = seed;
  return VersionedFileGenerator(gen).data();
}

TEST(ClusterConcurrencyTest, ConcurrentBackupsAcrossTenantsAndFiles) {
  // Distinct (tenant, file) pairs from many threads: the racy surfaces
  // are the lazy store-cache double-checked insert and the shared
  // tenant registry, not the data paths.
  oss::MemoryObjectStore store;
  auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                        {"L0", "L1"});
  ASSERT_TRUE(cluster.ok());

  constexpr int kThreads = 6;
  constexpr int kFilesPerThread = 3;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    for (int f = 0; f < kFilesPerThread; ++f) {
      payloads.push_back(Payload(static_cast<uint64_t>(t * 100 + f)));
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cluster, &payloads, &failures] {
      std::string tenant = "tenant-" + std::to_string(t % 3);
      for (int f = 0; f < kFilesPerThread; ++f) {
        std::string file =
            "file-" + std::to_string(t) + "-" + std::to_string(f);
        auto stats = cluster.value()->Backup(
            tenant, file,
            payloads[static_cast<size_t>(t * kFilesPerThread + f)]);
        if (!stats.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Everything written while racing restores byte-identical.
  for (int t = 0; t < kThreads; ++t) {
    std::string tenant = "tenant-" + std::to_string(t % 3);
    for (int f = 0; f < kFilesPerThread; ++f) {
      std::string file =
          "file-" + std::to_string(t) + "-" + std::to_string(f);
      auto restored = cluster.value()->Restore(tenant, file, 0);
      ASSERT_TRUE(restored.ok()) << restored.status();
      EXPECT_EQ(restored.value(),
                payloads[static_cast<size_t>(t * kFilesPerThread + f)]);
    }
  }
}

TEST(ClusterConcurrencyTest, StatusAndTenantListingRaceAWave) {
  oss::MemoryObjectStore store;
  auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                        {"L0", "L1"});
  ASSERT_TRUE(cluster.ok());

  std::vector<std::string> payloads;
  std::vector<WaveJob> jobs;
  for (int t = 0; t < 4; ++t) {
    for (int f = 0; f < 3; ++f) {
      payloads.push_back(Payload(static_cast<uint64_t>(t * 10 + f)));
    }
  }
  size_t p = 0;
  for (int t = 0; t < 4; ++t) {
    for (int f = 0; f < 3; ++f) {
      WaveJob job;
      job.tenant = "tenant-" + std::to_string(t);
      job.file_id = "file-" + std::to_string(f);
      job.data = &payloads[p++];
      jobs.push_back(job);
    }
  }

  std::atomic<bool> stop{false};
  std::thread poller([&cluster, &stop] {
    while (!stop.load()) {
      auto status = cluster.value()->GetStatus();
      EXPECT_TRUE(status.ok());
      auto tenants = cluster.value()->ListTenants();
      EXPECT_TRUE(tenants.ok());
      std::this_thread::yield();
    }
  });
  auto wave = cluster.value()->RunWave(jobs);
  stop.store(true);
  poller.join();
  ASSERT_TRUE(wave.ok()) << wave.status();
  EXPECT_EQ(wave.value().failures, 0u);
}

TEST(ClusterConcurrencyTest, RegisterTenantRaceIsIdempotent) {
  oss::MemoryObjectStore store;
  auto cluster =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  ASSERT_TRUE(cluster.ok());

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cluster, &failures] {
      for (int i = 0; i < 16; ++i) {
        if (!cluster.value()->RegisterTenant("shared-tenant").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  auto tenants = cluster.value()->ListTenants();
  ASSERT_TRUE(tenants.ok());
  EXPECT_EQ(tenants.value(),
            (std::vector<std::string>{"shared-tenant"}));
}

}  // namespace
}  // namespace slim
