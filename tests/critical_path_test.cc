// Tests for the critical-path analyzer and the Chrome trace_event
// exporter (src/obs/critical_path.*).

#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/job_context.h"
#include "obs/trace.h"

namespace slim::obs {
namespace {

SpanRecord Make(uint64_t id, uint64_t parent, const std::string& name,
                uint64_t start, uint64_t dur, uint32_t tid = 1) {
  SpanRecord s;
  s.id = id;
  s.parent_id = parent;
  s.name = name;
  s.start_nanos = start;
  s.duration_nanos = dur;
  s.tid = tid;
  return s;
}

TEST(ClassifySpanTest, NameHeuristics) {
  EXPECT_EQ(ClassifySpan("backup.persist"), SpanCategory::kIo);
  EXPECT_EQ(ClassifySpan("restore.fetch_container"), SpanCategory::kIo);
  EXPECT_EQ(ClassifySpan("restore.read_recipe"), SpanCategory::kIo);
  EXPECT_EQ(ClassifySpan("durability.scrub.cycle"), SpanCategory::kIo);
  EXPECT_EQ(ClassifySpan("backup.detect_base"), SpanCategory::kCompute);
  EXPECT_EQ(ClassifySpan("gnode.scc.compact"), SpanCategory::kCompute);
  EXPECT_EQ(ClassifySpan("gnode.rd.process"), SpanCategory::kCompute);
  EXPECT_EQ(ClassifySpan("banana"), SpanCategory::kOther);
  EXPECT_STREQ(SpanCategoryName(SpanCategory::kIo), "io");
  EXPECT_STREQ(SpanCategoryName(SpanCategory::kCompute), "compute");
  EXPECT_STREQ(SpanCategoryName(SpanCategory::kOther), "other");
}

TEST(CriticalPathTest, LeafAttributionAndIdle) {
  // root [0, 100); leaf io child [0, 40); leaf compute child [50, 80).
  std::vector<SpanRecord> spans = {
      Make(1, 0, "backup", 0, 100),
      Make(2, 1, "backup.persist", 0, 40),
      Make(3, 1, "backup.detect_base", 50, 30),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  const CriticalPathReport& r = reports[0];
  EXPECT_EQ(r.root_name, "backup");
  EXPECT_EQ(r.total_nanos, 100u);
  EXPECT_EQ(r.io_nanos, 40u);
  EXPECT_EQ(r.compute_nanos, 30u);
  EXPECT_EQ(r.other_nanos, 0u);
  EXPECT_EQ(r.idle_nanos, 30u);  // [40,50) + [80,100).
  // Dominant chain: root -> heaviest child (the 40ns persist).
  ASSERT_EQ(r.chain.size(), 2u);
  EXPECT_EQ(r.chain[0].name, "backup");
  EXPECT_EQ(r.chain[1].name, "backup.persist");
  EXPECT_EQ(r.chain[1].category, SpanCategory::kIo);
}

TEST(CriticalPathTest, ParallelLeavesDoNotDoubleCount) {
  // Two overlapping prefetch fetches: [0, 60) and [30, 90) on a 100ns
  // restore. Union is 90, not 120.
  std::vector<SpanRecord> spans = {
      Make(1, 0, "restore", 0, 100),
      Make(2, 1, "restore.fetch_container", 0, 60, 2),
      Make(3, 1, "restore.fetch_container", 30, 60, 3),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].io_nanos, 90u);
  EXPECT_EQ(reports[0].idle_nanos, 10u);
}

TEST(CriticalPathTest, OnlyLeavesAttributeTime) {
  // A middle span wrapping a leaf must not double the leaf's time.
  std::vector<SpanRecord> spans = {
      Make(1, 0, "restore", 0, 100),
      Make(2, 1, "restore.fetch_container", 10, 80),
      Make(3, 2, "oss.get", 20, 50),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  // Only the oss.get leaf counts: 50ns io, rest idle.
  EXPECT_EQ(reports[0].io_nanos, 50u);
  EXPECT_EQ(reports[0].idle_nanos, 50u);
  ASSERT_EQ(reports[0].chain.size(), 3u);
  EXPECT_EQ(reports[0].chain[2].name, "oss.get");
}

TEST(CriticalPathTest, ChildIntervalsClampToRootWindow) {
  // A child recorded past its root's end (clock skew / late close)
  // cannot push attribution beyond the root's wall time.
  std::vector<SpanRecord> spans = {
      Make(1, 0, "backup", 100, 50),
      Make(2, 1, "backup.persist", 120, 100),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].io_nanos, 30u);  // [120, 150) only.
  EXPECT_EQ(reports[0].idle_nanos, 20u);
}

TEST(CriticalPathTest, EvictedParentBecomesRoot) {
  // Parent id 99 is not in the snapshot (overwritten in the ring);
  // the orphan is analyzed as its own root rather than dropped.
  std::vector<SpanRecord> spans = {
      Make(2, 99, "restore.fetch_container", 0, 40),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].root_name, "restore.fetch_container");
  EXPECT_EQ(reports[0].total_nanos, 40u);
  EXPECT_EQ(reports[0].idle_nanos, 40u);  // Leaf root: nothing below it.
}

TEST(CriticalPathTest, MultipleRootsReportedOldestFirst) {
  std::vector<SpanRecord> spans = {
      Make(1, 0, "backup", 0, 100),
      Make(2, 0, "restore", 200, 50),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].root_name, "backup");
  EXPECT_EQ(reports[1].root_name, "restore");
}

TEST(CriticalPathTest, ThreadLanesSplitLeafWorkPerThread) {
  // Restore [0, 100): thread 2 busy [0, 60), thread 3 busy [30, 90) as
  // two overlapping leaves whose union is 60 (not 70).
  std::vector<SpanRecord> spans = {
      Make(1, 0, "restore", 0, 100),
      Make(2, 1, "restore.fetch_container", 0, 60, 2),
      Make(3, 1, "restore.fetch_container", 30, 60, 3),
      Make(4, 1, "restore.fetch_container", 50, 40, 3),
  };
  auto reports = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(reports.size(), 1u);
  const CriticalPathReport& r = reports[0];
  ASSERT_EQ(r.lanes.size(), 2u);  // Ascending tid; root's lane has no leaf.
  EXPECT_EQ(r.lanes[0].tid, 2u);
  EXPECT_EQ(r.lanes[0].busy_nanos, 60u);
  EXPECT_EQ(r.lanes[0].leaf_spans, 1u);
  EXPECT_EQ(r.lanes[1].tid, 3u);
  EXPECT_EQ(r.lanes[1].busy_nanos, 60u);  // [30,90) union, no double count.
  EXPECT_EQ(r.lanes[1].leaf_spans, 2u);
}

TEST(CriticalPathTest, RenderReportsLaneUtilization) {
  std::vector<SpanRecord> spans = {
      Make(1, 0, "restore", 0, 1000000),
      Make(2, 1, "restore.fetch_container", 0, 600000, 2),
      Make(3, 1, "restore.fetch_container", 0, 400000, 3),
  };
  std::string text = RenderCriticalPaths(AnalyzeCriticalPaths(spans));
  EXPECT_NE(text.find("threads: 2 lane(s)"), std::string::npos);
  EXPECT_NE(text.find("lane t2: busy 0.600 ms (60.0% util, 1 leaf "
                      "span(s))"),
            std::string::npos);
  EXPECT_NE(text.find("lane t3: busy 0.400 ms (40.0% util, 1 leaf "
                      "span(s))"),
            std::string::npos);
  // Aggregate busy = 1.0 ms across 2 lanes of a 1.0 ms root = 50% avg.
  EXPECT_NE(text.find("aggregate busy 1.000 ms, avg utilization 50.0%"),
            std::string::npos);
}

TEST(CriticalPathTest, RenderMentionsSplitAndChain) {
  std::vector<SpanRecord> spans = {
      Make(1, 0, "backup", 0, 1000000),
      Make(2, 1, "backup.persist", 0, 600000),
  };
  std::string text = RenderCriticalPaths(AnalyzeCriticalPaths(spans));
  EXPECT_NE(text.find("backup (span 1)"), std::string::npos);
  EXPECT_NE(text.find("io 0.600 ms"), std::string::npos);
  EXPECT_NE(text.find("critical path:"), std::string::npos);
  EXPECT_NE(text.find("-> backup.persist"), std::string::npos);
  EXPECT_EQ(RenderCriticalPaths({}), "(no spans recorded)\n");
}

TEST(ChromeTraceTest, EmitsCompleteEventsWithMicrosecondTimes) {
  std::vector<SpanRecord> spans = {
      Make(7, 0, "backup", 2000, 5000, 3),
  };
  std::string json = ChromeTraceJson(spans);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"backup\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Nanoseconds become microseconds: 2000ns -> ts 2.000.
  EXPECT_NE(json.find("\"ts\": 2.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5.000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ChromeTraceTest, EscapesNamesAndHandlesEmpty) {
  std::vector<SpanRecord> spans = {
      Make(1, 0, "we\"ird\nname", 0, 10),
  };
  std::string json = ChromeTraceJson(spans);
  EXPECT_NE(json.find("we\\\"ird\\nname"), std::string::npos);
  std::string empty = ChromeTraceJson({});
  EXPECT_NE(empty.find("\"traceEvents\": []"), std::string::npos);
}

TEST(ChromeTraceTest, RealSpansNestAndCarryThreadIds) {
  TraceSink::Get().Clear();
  {
    Span outer("cp_test.backup");
    Span inner("cp_test.backup.persist");
  }
  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Same thread, child window contained in the parent's.
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[0].start_nanos, spans[1].start_nanos);
  EXPECT_LE(spans[0].start_nanos + spans[0].duration_nanos,
            spans[1].start_nanos + spans[1].duration_nanos);
  std::string json = ChromeTraceJson(spans);
  EXPECT_NE(json.find("cp_test.backup.persist"), std::string::npos);
  TraceSink::Get().Clear();
}

TEST(ChromeTraceTest, SpansCaptureTheOpenJobForLogTraceJoins) {
  TraceSink::Get().Clear();
  uint64_t job_id = 0;
  {
    JobScope job("test", "test:trace_join");
    job_id = job.job_id();
    Span span("cp_test.in_job");
  }
  {
    Span span("cp_test.outside_job");
  }
  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].job_id, job_id);
  EXPECT_EQ(spans[1].job_id, 0u);
  // The exported trace carries the job id, so Perfetto rows can be
  // joined against journal records.
  std::string json = ChromeTraceJson(spans);
  EXPECT_NE(json.find("\"job_id\": " + std::to_string(job_id)),
            std::string::npos);
  TraceSink::Get().Clear();
}

}  // namespace
}  // namespace slim::obs
