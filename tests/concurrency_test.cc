// Concurrency stress: the storage layer and stateless L-node services
// must stay correct under parallel backups, restores and interleaved
// G-node activity (this is the architecture's whole point).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/mmap_file.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

core::SlimStoreOptions SmallOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  return options;
}

std::string Content(uint64_t seed, size_t size = 64 << 10) {
  workload::GeneratorOptions gen;
  gen.base_size = size;
  gen.block_size = 1024;
  gen.seed = seed;
  return workload::VersionedFileGenerator(gen).data();
}

TEST(ConcurrencyTest, ParallelBackupsOfDistinctFiles) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  constexpr int kThreads = 8;
  std::vector<std::string> contents;
  for (int i = 0; i < kThreads; ++i) contents.push_back(Content(100 + i));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto stats = store.Backup("file-" + std::to_string(i), contents[i]);
      if (!stats.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads; ++i) {
    auto restored = store.Restore("file-" + std::to_string(i), 0);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), contents[i]);
  }
}

TEST(ConcurrencyTest, ParallelRestoresShareContainers) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  std::string content = Content(7, 128 << 10);
  ASSERT_TRUE(store.Backup("f", content).ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      lnode::RestoreOptions opts = SmallOptions().restore;
      opts.prefetch_threads = 2;
      lnode::RestoreStats stats;
      auto out = store.Restore("f", 0, &stats, &opts);
      if (!out.ok() || out.value() != content) mismatches.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, BackupsWhileRestoring) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  workload::GeneratorOptions gen;
  gen.base_size = 64 << 10;
  gen.block_size = 1024;
  gen.seed = 42;
  workload::VersionedFileGenerator file(gen);
  std::string v0 = file.data();
  ASSERT_TRUE(store.Backup("f", v0).ok());

  std::atomic<int> failures{0};
  std::thread restorer([&] {
    for (int i = 0; i < 10; ++i) {
      auto out = store.Restore("f", 0);
      if (!out.ok() || out.value() != v0) failures.fetch_add(1);
    }
  });
  std::thread backer([&] {
    for (int i = 0; i < 5; ++i) {
      file.Mutate();
      if (!store.Backup("g" + std::to_string(i), file.data()).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  restorer.join();
  backer.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, GnodeCycleConcurrentWithRestores) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  workload::GeneratorOptions gen;
  gen.base_size = 96 << 10;
  gen.duplication_ratio = 0.85;
  gen.block_size = 1024;
  gen.seed = 21;
  workload::VersionedFileGenerator file(gen);
  std::vector<std::string> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(file.data());
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    file.Mutate();
  }

  // Restores of the NEWEST version race with the G-node pass. (The
  // paper's invariant: G-node never touches the newest version's
  // layout, and redirects cover everything it moves.)
  std::atomic<int> failures{0};
  std::thread restorer([&] {
    for (int i = 0; i < 8; ++i) {
      auto out = store.Restore("f", 3);
      if (!out.ok() || out.value() != versions[3]) failures.fetch_add(1);
    }
  });
  std::thread gnode([&] {
    if (!store.RunGNodeCycle().ok()) failures.fetch_add(1);
  });
  restorer.join();
  gnode.join();
  EXPECT_EQ(failures.load(), 0);
  // Everything still consistent afterwards.
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << report.value().problems.front();
}

// ---------------------------------------------------------------------------
// MmapFile / BackupFile
// ---------------------------------------------------------------------------

TEST(MmapFileTest, MapsAndBacksUpFromDisk) {
  auto path = std::filesystem::temp_directory_path() /
              ("slim-mmap-" + std::to_string(::getpid()) + ".bin");
  std::string content = Content(77, 200 << 10);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }

  auto mapped = MmapFile::Open(path.string());
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped.value()->size(), content.size());
  EXPECT_EQ(mapped.value()->data(), content);

  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  auto stats = store.BackupFile(path.string(), "mapped-file");
  ASSERT_TRUE(stats.ok());
  auto restored = store.Restore("mapped-file", 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), content);
  std::filesystem::remove(path);
}

TEST(MmapFileTest, EmptyFile) {
  auto path = std::filesystem::temp_directory_path() /
              ("slim-mmap-empty-" + std::to_string(::getpid()));
  { std::ofstream out(path, std::ios::binary); }
  auto mapped = MmapFile::Open(path.string());
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value()->size(), 0u);
  std::filesystem::remove(path);
}

TEST(MmapFileTest, MissingFileFails) {
  EXPECT_FALSE(MmapFile::Open("/nonexistent/never/file").ok());
}

}  // namespace
}  // namespace slim
