#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/disk_object_store.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// DiskObjectStore
// ---------------------------------------------------------------------------

class DiskStoreTest : public ::testing::Test {
 protected:
  DiskStoreTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("slimstore-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    auto store = oss::DiskObjectStore::Open(root_.string());
    EXPECT_TRUE(store.ok());
    store_ = std::move(store).value();
  }
  ~DiskStoreTest() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
  std::unique_ptr<oss::DiskObjectStore> store_;
};

TEST_F(DiskStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("a/b/c", "disk bytes").ok());
  auto got = store_->Get("a/b/c");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "disk bytes");
}

TEST_F(DiskStoreTest, MissingIsNotFound) {
  EXPECT_TRUE(store_->Get("ghost").status().IsNotFound());
  EXPECT_TRUE(store_->Size("ghost").status().IsNotFound());
  EXPECT_FALSE(store_->Exists("ghost").value());
}

TEST_F(DiskStoreTest, BinaryContentSurvives) {
  std::string blob;
  for (int i = 0; i < 512; ++i) blob.push_back(static_cast<char>(i % 256));
  ASSERT_TRUE(store_->Put("bin", blob).ok());
  EXPECT_EQ(store_->Get("bin").value(), blob);
  EXPECT_EQ(store_->Size("bin").value(), blob.size());
}

TEST_F(DiskStoreTest, RangeReads) {
  ASSERT_TRUE(store_->Put("r", "0123456789").ok());
  EXPECT_EQ(store_->GetRange("r", 3, 4).value(), "3456");
  EXPECT_EQ(store_->GetRange("r", 8, 100).value(), "89");
  EXPECT_FALSE(store_->GetRange("r", 11, 1).ok());
}

TEST_F(DiskStoreTest, KeysWithSpecialCharacters) {
  std::vector<std::string> keys = {"slash/key", "percent%key",
                                   "spaces and stuff", "dots..dots",
                                   "unicode-\xc3\xa9"};
  for (const auto& key : keys) {
    ASSERT_TRUE(store_->Put(key, "v-" + key).ok());
  }
  for (const auto& key : keys) {
    auto got = store_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), "v-" + key);
  }
}

TEST_F(DiskStoreTest, ListByPrefixDecodesKeys) {
  ASSERT_TRUE(store_->Put("pre/x", "").ok());
  ASSERT_TRUE(store_->Put("pre/y", "").ok());
  ASSERT_TRUE(store_->Put("other/z", "").ok());
  auto keys = store_->List("pre/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"pre/x", "pre/y"}));
}

TEST_F(DiskStoreTest, DeleteIsIdempotent) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(store_->Exists("k").value());
}

TEST_F(DiskStoreTest, OverwriteIsAtomicallyVisible) {
  ASSERT_TRUE(store_->Put("k", "old").ok());
  ASSERT_TRUE(store_->Put("k", "new").ok());
  EXPECT_EQ(store_->Get("k").value(), "new");
  // No .tmp leftovers appear in listings.
  EXPECT_EQ(store_->List("k").value().size(), 1u);
}

TEST_F(DiskStoreTest, FullSlimStoreLifecycleOnDisk) {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  core::SlimStore store(store_.get(), options);

  workload::GeneratorOptions gen;
  gen.base_size = 64 << 10;
  gen.block_size = 1024;
  gen.seed = 5;
  workload::VersionedFileGenerator file(gen);
  std::string v0 = file.data();
  ASSERT_TRUE(store.Backup("disk/file", v0).ok());
  ASSERT_TRUE(store.RunGNodeCycle().ok());
  auto restored = store.Restore("disk/file", 0);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), v0);
}

// ---------------------------------------------------------------------------
// SlimStore state persistence (SaveState / OpenExisting)
// ---------------------------------------------------------------------------

core::SlimStoreOptions SmallOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  return options;
}

TEST(PersistenceTest, ReopenedStoreStillDeduplicatesAndRestores) {
  oss::MemoryObjectStore oss;
  workload::GeneratorOptions gen;
  gen.base_size = 96 << 10;
  gen.duplication_ratio = 0.85;
  gen.block_size = 1024;
  gen.seed = 71;
  workload::VersionedFileGenerator file(gen);

  std::vector<std::string> versions;
  {
    core::SlimStore store(&oss, SmallOptions());
    for (int v = 0; v < 2; ++v) {
      versions.push_back(file.data());
      ASSERT_TRUE(store.Backup("f", file.data()).ok());
      file.Mutate();
    }
    ASSERT_TRUE(store.RunGNodeCycle().ok());
    ASSERT_TRUE(store.SaveState().ok());
  }

  // A fresh process: same OSS, new SlimStore.
  core::SlimStore reopened(&oss, SmallOptions());
  ASSERT_TRUE(reopened.OpenExisting().ok());

  // The catalog knows the history.
  EXPECT_EQ(reopened.catalog()->VersionsOf("f"),
            (std::vector<uint64_t>{0, 1}));

  // Old versions restore.
  for (int v = 0; v < 2; ++v) {
    auto restored = reopened.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }

  // A new backup continues the version chain AND deduplicates against
  // the pre-reopen history (name detection via the reloaded index).
  versions.push_back(file.data());
  auto stats = reopened.Backup("f", file.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().version, 2u);
  EXPECT_GT(stats.value().DedupRatio(), 0.5);
  auto restored = reopened.Restore("f", 2);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), versions[2]);
}

TEST(PersistenceTest, ContainerIdsDoNotCollideAfterReopen) {
  oss::MemoryObjectStore oss;
  workload::GeneratorOptions gen;
  gen.base_size = 32 << 10;
  gen.block_size = 1024;
  gen.seed = 73;
  {
    core::SlimStore store(&oss, SmallOptions());
    workload::VersionedFileGenerator file(gen);
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    ASSERT_TRUE(store.SaveState().ok());
  }
  core::SlimStore reopened(&oss, SmallOptions());
  ASSERT_TRUE(reopened.OpenExisting().ok());
  size_t containers_before =
      reopened.container_store()->ListContainerIds().value().size();
  workload::GeneratorOptions gen2 = gen;
  gen2.seed = 74;  // Different content: no dedup.
  workload::VersionedFileGenerator other(gen2);
  ASSERT_TRUE(reopened.Backup("g", other.data()).ok());
  // New containers were appended, none overwritten.
  EXPECT_GT(reopened.container_store()->ListContainerIds().value().size(),
            containers_before);
  auto f = reopened.Restore("f", 0);
  ASSERT_TRUE(f.ok());
  auto g = reopened.Restore("g", 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value(), other.data());
}

TEST(PersistenceTest, OpenExistingOnEmptyRootFails) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  EXPECT_FALSE(store.OpenExisting().ok());
}

TEST(PersistenceTest, CatalogSaveLoadRoundTrip) {
  oss::MemoryObjectStore oss;
  core::Catalog catalog;
  core::VersionInfo info;
  info.file_id = "f";
  info.version = 3;
  info.logical_bytes = 12345;
  info.new_containers = {1, 2};
  info.referenced_containers = {1, 2, 3};
  info.garbage_containers = {0};
  info.sparse_containers = {3};
  info.gnode_pending = false;
  catalog.RecordBackup(info);
  ASSERT_TRUE(catalog.Save(&oss, "cat").ok());

  core::Catalog loaded;
  ASSERT_TRUE(loaded.Load(&oss, "cat").ok());
  auto got = loaded.Get("f", 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->logical_bytes, 12345u);
  EXPECT_EQ(got->referenced_containers,
            (std::vector<format::ContainerId>{1, 2, 3}));
  EXPECT_EQ(got->garbage_containers,
            (std::vector<format::ContainerId>{0}));
  EXPECT_FALSE(got->gnode_pending);
  EXPECT_TRUE(loaded.GnodePending().empty());
}

}  // namespace
}  // namespace slim
