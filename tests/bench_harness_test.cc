// Tests for the unified bench harness (src/obs/bench_harness.*):
// registry selection, warmup/repeat folding, OSS totals extraction, and
// the schema-versioned BENCH json.

#include "obs/bench_harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace slim::obs {
namespace {

// Invocation log shared by the test scenarios. Each element is the
// repeat index the scenario saw (-1 = warmup).
std::vector<int>& Calls() {
  static std::vector<int> calls;
  return calls;
}

void AlphaScenario(ScenarioContext& ctx) {
  Calls().push_back(ctx.repeat());
  // Different throughput per repeat exercises the min/mean/max fold.
  ctx.ReportThroughputMBps(100.0 + 10.0 * ctx.repeat());
  ctx.ReportLogicalBytes(1 << 20);
  ctx.ReportDedupRatio(0.84);
  ctx.ReportExtra("versions", 3.0);
  auto& reg = MetricsRegistry::Get();
  reg.counter("oss.get.requests").Inc(7);
  reg.counter("oss.put.requests").Inc(5);
  reg.counter("oss.getrange.requests").Inc(2);
  reg.counter("oss.get.bytes").Inc(4096);
  reg.counter("oss.getrange.bytes").Inc(512);
  reg.counter("oss.put.bytes").Inc(2048);
  reg.histogram("testbench.phase_ns").Record(1000);
  reg.histogram("testbench.phase_ns").Record(3000);
}

void BetaScenario(ScenarioContext& ctx) {
  ctx.ReportThroughputMBps(ctx.quick() ? 1.0 : 2.0);
}

const BenchRegistration kAlpha{
    {"testbench.alpha", "fold and oss extraction", /*in_quick=*/true,
     AlphaScenario}};
const BenchRegistration kBeta{
    {"testbench.beta_full_only", "full-suite-only scenario",
     /*in_quick=*/false, BetaScenario}};

TEST(BenchRegistryTest, SelectFiltersSuiteAndSubstringSorted) {
  auto all = BenchRegistry::Get().Select("full", "testbench.");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "testbench.alpha");  // Sorted by name.
  EXPECT_EQ(all[1].name, "testbench.beta_full_only");

  auto quick = BenchRegistry::Get().Select("quick", "testbench.");
  ASSERT_EQ(quick.size(), 1u);
  EXPECT_EQ(quick[0].name, "testbench.alpha");

  EXPECT_TRUE(BenchRegistry::Get().Select("quick", "no.such.name").empty());
}

TEST(BenchRunnerTest, WarmupRunsAreDiscardedAndRepeatsFold) {
  Calls().clear();
  BenchRunOptions options;
  options.suite = "quick";
  options.filter = "testbench.alpha";
  options.warmup = 2;
  options.repeats = 3;
  BenchReport report = RunBenchSuite(options);

  // 2 warmups (repeat -1) then repeats 0, 1, 2.
  ASSERT_EQ(Calls().size(), 5u);
  EXPECT_EQ(Calls()[0], -1);
  EXPECT_EQ(Calls()[1], -1);
  EXPECT_EQ(Calls()[2], 0);
  EXPECT_EQ(Calls()[4], 2);

  ASSERT_EQ(report.scenarios.size(), 1u);
  const ScenarioOutcome& s = report.scenarios[0];
  EXPECT_EQ(s.name, "testbench.alpha");
  EXPECT_EQ(s.repeats, 3);
  // Throughputs were 100, 110, 120.
  EXPECT_DOUBLE_EQ(s.throughput_mbps.min, 100.0);
  EXPECT_DOUBLE_EQ(s.throughput_mbps.max, 120.0);
  EXPECT_NEAR(s.throughput_mbps.mean, 110.0, 1e-9);
  EXPECT_GT(s.wall_seconds.mean, 0.0);
  EXPECT_EQ(s.logical_bytes, 1u << 20);
  EXPECT_DOUBLE_EQ(s.dedup_ratio, 0.84);
  EXPECT_DOUBLE_EQ(s.extra.at("versions"), 3.0);
}

TEST(BenchRunnerTest, OssTotalsComeFromFinalRepeatOnly) {
  BenchRunOptions options;
  options.suite = "quick";
  options.filter = "testbench.alpha";
  options.repeats = 4;  // Registry resets per repeat: totals stay flat.
  BenchReport report = RunBenchSuite(options);
  ASSERT_EQ(report.scenarios.size(), 1u);
  const ScenarioOutcome& s = report.scenarios[0];
  EXPECT_EQ(s.oss_requests, 14u);  // 7 gets + 5 puts + 2 ranged gets.
  // v2: ranged-read payload counts toward bytes_read.
  EXPECT_EQ(s.oss_bytes_read, 4096u + 512u);
  EXPECT_EQ(s.oss_bytes_written, 2048u);
  // v2 adds the per-op breakdown and the cost rollup.
  EXPECT_EQ(s.oss_requests_by_op.at("get"), 7u);
  EXPECT_EQ(s.oss_requests_by_op.at("put"), 5u);
  EXPECT_EQ(s.oss_requests_by_op.at("getrange"), 2u);
  EXPECT_EQ(s.oss_requests_by_op.at("delete"), 0u);
  // 5 PUTs at $0.005/1k, 9 GET-class requests at $0.0004/1k.
  EXPECT_NEAR(s.cost_request_dollars, 5 * 0.005 / 1000 + 9 * 0.0004 / 1000,
              1e-12);
  // 4608 read bytes at $0.09/GB egress; ingress free.
  EXPECT_NEAR(s.cost_transfer_dollars,
              4608.0 * 0.09 / (1024.0 * 1024.0 * 1024.0), 1e-12);
  EXPECT_NEAR(s.cost_dollars,
              s.cost_request_dollars + s.cost_transfer_dollars, 1e-15);
  // Histogram phases with samples surface with quantiles.
  ASSERT_EQ(s.phases.count("testbench.phase_ns"), 1u);
  EXPECT_EQ(s.phases.at("testbench.phase_ns").count, 2u);
  EXPECT_LE(s.phases.at("testbench.phase_ns").p50,
            s.phases.at("testbench.phase_ns").p99);
}

TEST(BenchRunnerTest, QuickFlagReachesScenario) {
  BenchRunOptions options;
  options.suite = "full";
  options.filter = "testbench.beta_full_only";
  BenchReport report = RunBenchSuite(options);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(report.scenarios[0].throughput_mbps.mean, 2.0);
  EXPECT_EQ(report.suite, "full");
}

TEST(BenchJsonTest, SchemaFieldsPresent) {
  BenchRunOptions options;
  options.suite = "quick";
  options.filter = "testbench.alpha";
  BenchReport report = RunBenchSuite(options);
  std::string json = BenchReportJson(report);

  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"suite\": \"quick\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"testbench.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": {\"mean\": "), std::string::npos);
  EXPECT_NE(json.find("\"throughput_mbps\": {\"mean\": 100.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"logical_bytes\": 1048576"), std::string::npos);
  EXPECT_NE(json.find("\"dedup_ratio\": 0.8400"), std::string::npos);
  EXPECT_NE(json.find("\"oss\": {\"requests\": 14, \"bytes_read\": 4608, "
                      "\"bytes_written\": 2048, \"by_op\": {\"put\": 5, "
                      "\"get\": 7, \"getrange\": 2, \"delete\": 0, "
                      "\"list\": 0, \"exists\": 0, \"size\": 0}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"cost\": {\"dollars\": 0.00002899, "
                      "\"request_dollars\": 0.00002860, "
                      "\"transfer_dollars\": 0.00000039}"),
            std::string::npos);
  EXPECT_NE(json.find("\"testbench.phase_ns\": {\"count\": 2, \"p50\": "),
            std::string::npos);
  EXPECT_NE(json.find("\"versions\": 3"), std::string::npos);
}

TEST(BenchJsonTest, CostModelOverrideChangesTheCostBlock) {
  BenchRunOptions options;
  options.suite = "quick";
  options.filter = "testbench.alpha";
  std::string error;
  ASSERT_TRUE(ParseCostModel(
      "put_request_dollars = 0\nget_request_dollars = 0\n"
      "read_dollars_per_gb = 0\n",
      &options.cost_model, &error))
      << error;
  BenchReport report = RunBenchSuite(options);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(report.scenarios[0].cost_dollars, 0.0);
  EXPECT_EQ(report.scenarios[0].oss_requests, 14u);  // Counting unchanged.
}

TEST(BenchJsonTest, EmptyReportStillValidShape) {
  BenchReport report;
  report.suite = "quick";
  std::string json = BenchReportJson(report);
  EXPECT_NE(json.find("\"scenarios\": []"), std::string::npos);
}

TEST(BenchTableTest, OneLinePerScenario) {
  BenchRunOptions options;
  options.suite = "quick";
  options.filter = "testbench.alpha";
  BenchReport report = RunBenchSuite(options);
  std::string table = BenchReportTable(report);
  EXPECT_NE(table.find("scenario"), std::string::npos);
  EXPECT_NE(table.find("testbench.alpha"), std::string::npos);
}

}  // namespace
}  // namespace slim::obs
