// Tests for the OSS cost model (src/obs/cost_model.*) and the
// cost-accounting decorator (src/oss/cost_accounting_object_store.*):
// tariff arithmetic, config parsing, and the billing semantics that
// matter for honest cloud bills — replication fan-out and per-attempt
// retry charges.

#include "obs/cost_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "obs/job_context.h"
#include "oss/cost_accounting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/retrying_object_store.h"

namespace slim::obs {
namespace {

constexpr uint64_t kGiB = 1ull << 30;

TEST(CostModelTest, DefaultTariffsMatchS3LikePricing) {
  CostModel model;
  // $0.005 per 1000 PUT/LIST, $0.0004 per 1000 GET/HEAD, free DELETE.
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kPut), 0.005 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kList), 0.005 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kGet), 0.0004 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kGetRange), 0.0004 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kExists), 0.0004 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kSize), 0.0004 / 1000.0);
  EXPECT_DOUBLE_EQ(model.RequestDollars(OssOp::kDelete), 0.0);
}

TEST(CostModelTest, TransferBillsReadsNotWrites) {
  CostModel model;
  // Egress $0.09/GB; ingress free.
  EXPECT_DOUBLE_EQ(model.TransferDollars(OssOp::kGet, kGiB), 0.09);
  EXPECT_DOUBLE_EQ(model.TransferDollars(OssOp::kGetRange, kGiB / 2), 0.045);
  EXPECT_DOUBLE_EQ(model.TransferDollars(OssOp::kPut, kGiB), 0.0);
  EXPECT_DOUBLE_EQ(model.TransferDollars(OssOp::kDelete, kGiB), 0.0);
}

TEST(CostModelTest, OperationDollarsIsRequestPlusTransfer) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.OperationDollars(OssOp::kGet, kGiB),
                   0.0004 / 1000.0 + 0.09);
  EXPECT_DOUBLE_EQ(model.OperationDollars(OssOp::kPut, kGiB),
                   0.005 / 1000.0);
}

TEST(CostModelTest, PicodollarConversionRoundTrips) {
  CostModel model;
  // One GET request = 4e-7 dollars = 400,000 picodollars exactly.
  EXPECT_EQ(DollarsToPicodollars(model.RequestDollars(OssOp::kGet)),
            400000u);
  EXPECT_EQ(DollarsToPicodollars(model.RequestDollars(OssOp::kPut)),
            5000000u);
  EXPECT_EQ(DollarsToPicodollars(0.0), 0u);
  EXPECT_DOUBLE_EQ(PicodollarsToDollars(5000000u), 5e-6);
  // A thousand round trips of the per-request tariff stay exact.
  uint64_t pd = 1000 * DollarsToPicodollars(model.RequestDollars(OssOp::kGet));
  EXPECT_DOUBLE_EQ(PicodollarsToDollars(pd), 0.0004);
}

TEST(CostModelTest, ParseAcceptsKeyValueLinesAndComments) {
  CostModel model;
  std::string error;
  ASSERT_TRUE(ParseCostModel(
      "# custom provider\n"
      "put_request_dollars = 0.01\n"
      "\n"
      "read_dollars_per_gb = 0.05  # egress discount\n",
      &model, &error))
      << error;
  EXPECT_DOUBLE_EQ(model.put_request_dollars, 0.01);
  EXPECT_DOUBLE_EQ(model.read_dollars_per_gb, 0.05);
  // Unmentioned tariffs keep their defaults.
  EXPECT_DOUBLE_EQ(model.get_request_dollars, 0.0004 / 1000.0);
}

TEST(CostModelTest, ParseRejectsUnknownKeysAndBadNumbers) {
  CostModel model;
  std::string error;
  EXPECT_FALSE(ParseCostModel("no_such_tariff = 1.0\n", &model, &error));
  EXPECT_NE(error.find("no_such_tariff"), std::string::npos);
  EXPECT_FALSE(ParseCostModel("put_request_dollars = banana\n", &model,
                              &error));
  EXPECT_FALSE(ParseCostModel("put_request_dollars = -1\n", &model, &error));
  EXPECT_FALSE(ParseCostModel("put_request_dollars\n", &model, &error));
}

TEST(CostAccountingTest, ZeroCostModelStillCountsRequests) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  CostModel free_tier;
  std::string ignored;
  ASSERT_TRUE(ParseCostModel(
      "put_request_dollars = 0\nget_request_dollars = 0\n"
      "list_request_dollars = 0\nhead_request_dollars = 0\n"
      "read_dollars_per_gb = 0\nwrite_dollars_per_gb = 0\n",
      &free_tier, &ignored));
  oss::CostAccountingObjectStore billed(&memory, free_tier);
  {
    JobScope job("test", "test:free_tier");
    ASSERT_TRUE(billed.Put("k", std::string(1024, 'x')).ok());
    ASSERT_TRUE(billed.Get("k").ok());
  }
  JobCost totals = JobRegistry::Get().totals();
  EXPECT_EQ(totals.requests[static_cast<size_t>(OssOp::kPut)], 1u);
  EXPECT_EQ(totals.requests[static_cast<size_t>(OssOp::kGet)], 1u);
  EXPECT_EQ(totals.bytes_read, 1024u);
  EXPECT_EQ(totals.picodollars, 0u);
}

TEST(CostAccountingTest, FailedReadBillsRequestButNoBytes) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  oss::CostAccountingObjectStore billed(&memory, CostModel());
  {
    JobScope job("test", "test:missing_get");
    EXPECT_FALSE(billed.Get("absent").ok());  // S3 bills the 404 GET.
  }
  JobCost totals = JobRegistry::Get().totals();
  EXPECT_EQ(totals.requests[static_cast<size_t>(OssOp::kGet)], 1u);
  EXPECT_EQ(totals.bytes_read, 0u);
  EXPECT_EQ(totals.picodollars, 400000u);  // Request tariff only.
}

TEST(CostAccountingTest, ReplicationFanOutBillsEveryReplica) {
  JobRegistry::Get().ResetForTest();
  // One accountant per physical replica, the CLI's stack shape.
  std::vector<std::unique_ptr<oss::MemoryObjectStore>> disks;
  std::vector<std::unique_ptr<oss::CostAccountingObjectStore>> accountants;
  std::vector<oss::ObjectStore*> replicas;
  for (int i = 0; i < 3; ++i) {
    disks.push_back(std::make_unique<oss::MemoryObjectStore>());
    accountants.push_back(std::make_unique<oss::CostAccountingObjectStore>(
        disks.back().get(), CostModel()));
    replicas.push_back(accountants.back().get());
  }
  durability::ReplicatingObjectStore replicated(
      replicas, durability::PlacementPolicy::Uniform(3),
      [](std::string_view) { return true; });
  {
    JobScope job("test", "test:fan_out");
    ASSERT_TRUE(replicated.Put("obj", std::string(100, 'x')).ok());
  }
  JobCost totals = JobRegistry::Get().totals();
  // One logical PUT = three billed physical PUTs.
  EXPECT_EQ(totals.requests[static_cast<size_t>(OssOp::kPut)], 3u);
  EXPECT_EQ(totals.bytes_written, 300u);
  EXPECT_EQ(totals.picodollars, 3u * 5000000u);
}

/// Fails the first N Puts with a retryable error; payload still never
/// reached durable storage, but the provider metered each attempt.
class FlakyPutStore : public oss::MemoryObjectStore {
 public:
  explicit FlakyPutStore(int failures) : failures_left_(failures) {}
  Status Put(const std::string& key, std::string value) override {
    if (failures_left_ > 0) {
      --failures_left_;
      return Status::Unavailable("induced transient failure");
    }
    return oss::MemoryObjectStore::Put(key, std::move(value));
  }

 private:
  int failures_left_;
};

TEST(CostAccountingTest, RetriesBillEveryAttemptThatReachesTheStore) {
  JobRegistry::Get().ResetForTest();
  FlakyPutStore flaky(2);  // Attempts 1 and 2 fail, attempt 3 lands.
  oss::CostAccountingObjectStore billed(&flaky, CostModel());
  oss::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep_on_backoff = false;
  oss::RetryingObjectStore retrying(&billed, policy);
  {
    JobScope job("test", "test:retry_billing");
    ASSERT_TRUE(retrying.Put("obj", std::string(10, 'x')).ok());
  }
  JobCost totals = JobRegistry::Get().totals();
  EXPECT_EQ(totals.requests[static_cast<size_t>(OssOp::kPut)], 3u);
  EXPECT_EQ(totals.picodollars, 3u * 5000000u);
  // Payload bytes are charged per attempt too: PUTs bill upfront (the
  // provider meters the upload whether or not it commits).
  EXPECT_EQ(totals.bytes_written, 30u);
}

TEST(CostAccountingTest, ChargesLandOnTheInnermostOpenJob) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  oss::CostAccountingObjectStore billed(&memory, CostModel());
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    JobScope outer("test", "test:outer");
    outer_id = outer.job_id();
    ASSERT_TRUE(billed.Put("a", std::string("1")).ok());
    {
      JobScope inner("test", "test:inner");
      inner_id = inner.job_id();
      ASSERT_TRUE(billed.Put("b", std::string("2")).ok());
    }
    ASSERT_TRUE(billed.Put("c", std::string("3")).ok());
  }
  uint64_t outer_puts = 0;
  uint64_t inner_puts = 0;
  uint64_t inner_parent = 0;
  for (const JobSummary& s : JobRegistry::Get().Summaries()) {
    if (s.job_id == outer_id) {
      outer_puts = s.cost.requests[static_cast<size_t>(OssOp::kPut)];
    }
    if (s.job_id == inner_id) {
      inner_puts = s.cost.requests[static_cast<size_t>(OssOp::kPut)];
      inner_parent = s.parent_id;
    }
  }
  EXPECT_EQ(outer_puts, 2u);
  EXPECT_EQ(inner_puts, 1u);
  EXPECT_EQ(inner_parent, outer_id);  // Causality link.
  EXPECT_EQ(JobRegistry::Get().unattributed().total_requests(), 0u);
}

TEST(CostAccountingTest, ChargesWithoutAScopeAreUnattributedNotLost) {
  JobRegistry::Get().ResetForTest();
  oss::MemoryObjectStore memory;
  oss::CostAccountingObjectStore billed(&memory, CostModel());
  ASSERT_TRUE(billed.Put("orphan", std::string("x")).ok());
  EXPECT_EQ(JobRegistry::Get().unattributed().total_requests(), 1u);
  EXPECT_EQ(JobRegistry::Get().totals().total_requests(), 1u);
  EXPECT_EQ(JobRegistry::Get().unattributed().picodollars, 5000000u);
}

}  // namespace
}  // namespace slim::obs
