// Focused tests for history-aware chunk merging (paper §IV-C,
// Algorithm 1) and its interaction with the rest of the system.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/slimstore.h"
#include "format/recipe.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

core::SlimStoreOptions MergingOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.chunk_merging = true;
  options.backup.merge_threshold = 2;
  options.backup.min_merge_chunks = 2;
  return options;
}

workload::GeneratorOptions Gen(uint64_t seed, double dup = 0.9) {
  workload::GeneratorOptions gen;
  gen.base_size = 128 << 10;
  gen.duplication_ratio = dup;
  gen.block_size = 1024;
  gen.seed = seed;
  return gen;
}

/// Backs up `n` versions; returns the store (moves ownership pattern:
/// caller owns oss).
std::vector<std::string> BackupVersions(core::SlimStore* store,
                                        workload::VersionedFileGenerator* f,
                                        int n) {
  std::vector<std::string> versions;
  for (int v = 0; v < n; ++v) {
    versions.push_back(f->data());
    EXPECT_TRUE(store->Backup("f", f->data()).ok());
    f->Mutate();
  }
  return versions;
}

TEST(SuperchunkTest, RecordsAreLogicalNotStored) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, MergingOptions());
  workload::VersionedFileGenerator file(Gen(1));
  BackupVersions(&store, &file, 5);

  auto recipe = store.recipe_store()->ReadRecipe("f", 4);
  ASSERT_TRUE(recipe.ok());
  size_t superchunks = 0;
  for (const auto& seg : recipe.value().segments) {
    for (const auto& rec : seg.records) {
      if (!rec.is_superchunk) continue;
      ++superchunks;
      // Logical: no container of its own, constituents present, sizes
      // add up, first_chunk matches.
      EXPECT_EQ(rec.container_id, format::kInvalidContainerId);
      ASSERT_NE(rec.constituents, nullptr);
      ASSERT_FALSE(rec.constituents->empty());
      uint64_t sum = 0;
      for (const auto& c : *rec.constituents) {
        sum += c.size;
        EXPECT_NE(c.container_id, format::kInvalidContainerId);
        EXPECT_FALSE(c.is_superchunk);
      }
      EXPECT_EQ(sum, rec.size);
      EXPECT_EQ(rec.first_chunk_fp, rec.constituents->front().fp);
    }
  }
  EXPECT_GT(superchunks, 0u);
}

TEST(SuperchunkTest, FlattenExpandsToPhysicalChunks) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, MergingOptions());
  workload::VersionedFileGenerator file(Gen(2));
  BackupVersions(&store, &file, 5);

  auto recipe = store.recipe_store()->ReadRecipe("f", 4);
  ASSERT_TRUE(recipe.ok());
  uint64_t flat_bytes = 0;
  for (const auto& rec : recipe.value().Flatten()) {
    EXPECT_FALSE(rec.is_superchunk);
    EXPECT_NE(rec.container_id, format::kInvalidContainerId);
    flat_bytes += rec.size;
  }
  EXPECT_EQ(flat_bytes, recipe.value().LogicalBytes());
}

TEST(SuperchunkTest, StableContentConvergesToFewRecords) {
  // A file that never changes: after the threshold, each segment
  // becomes a handful of superchunk records.
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, MergingOptions());
  workload::VersionedFileGenerator file(Gen(3));
  const std::string frozen = file.data();
  uint64_t first_chunks = 0, last_chunks = 0;
  for (int v = 0; v < 5; ++v) {
    auto stats = store.Backup("f", frozen);
    ASSERT_TRUE(stats.ok());
    if (v == 0) first_chunks = stats.value().total_chunks;
    last_chunks = stats.value().total_chunks;
  }
  EXPECT_LT(last_chunks, first_chunks / 3);
  auto restored = store.Restore("f", 4);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), frozen);
}

TEST(SuperchunkTest, BrokenSuperchunkFallsBackToConstituents) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, MergingOptions());
  workload::VersionedFileGenerator file(Gen(4, 0.97));
  // Stabilize: superchunks form.
  std::string stable = file.data();
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(store.Backup("f", stable).ok());
  }
  // Now mutate a small region in the middle: most constituents of the
  // broken superchunk must still deduplicate.
  std::string mutated = stable;
  for (size_t i = 60 << 10; i < (62 << 10); ++i) {
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
  }
  auto stats = store.Backup("f", mutated);
  ASSERT_TRUE(stats.ok());
  // ~2 KB of 128 KB changed: dedup should stay very high thanks to the
  // constituent fallback.
  EXPECT_GT(stats.value().DedupRatio(), 0.9);
  auto restored = store.Restore("f", 4);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), mutated);
}

TEST(SuperchunkTest, MaxSuperchunkBytesIsHonored) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options = MergingOptions();
  options.backup.max_superchunk_bytes = 8 << 10;
  core::SlimStore store(&oss, options);
  workload::VersionedFileGenerator file(Gen(5));
  const std::string frozen = file.data();
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(store.Backup("f", frozen).ok());
  }
  auto recipe = store.recipe_store()->ReadRecipe("f", 3);
  ASSERT_TRUE(recipe.ok());
  for (const auto& seg : recipe.value().segments) {
    for (const auto& rec : seg.records) {
      if (rec.is_superchunk) {
        EXPECT_LE(rec.size, (8u << 10) + options.backup.chunker_params
                                             .max_size);
      }
    }
  }
}

TEST(SuperchunkTest, MergeThresholdDelaysMerging) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options = MergingOptions();
  options.backup.merge_threshold = 4;
  core::SlimStore store(&oss, options);
  workload::VersionedFileGenerator file(Gen(6));
  const std::string frozen = file.data();
  // duplicateTimes reaches 4 at the 5th backup (v4): no superchunks
  // before that.
  for (int v = 0; v < 4; ++v) {
    auto stats = store.Backup("f", frozen);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().superchunks_formed, 0u) << "version " << v;
  }
  auto stats = store.Backup("f", frozen);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().superchunks_formed, 0u);
}

TEST(SuperchunkTest, RecipeIndexSamplesConstituents) {
  format::Recipe recipe;
  recipe.file_id = "f";
  recipe.version = 0;
  format::SegmentRecipe seg;
  format::ChunkRecord sc;
  sc.fp = Sha1::Hash("span");
  sc.is_superchunk = true;
  sc.size = 30;
  sc.first_chunk_fp = Sha1::Hash("first");
  auto constituents =
      std::make_shared<std::vector<format::ChunkRecord>>();
  for (int i = 0; i < 10; ++i) {
    format::ChunkRecord c;
    c.fp = Sha1::Hash("c" + std::to_string(i));
    c.size = 3;
    c.container_id = 1;
    constituents->push_back(c);
  }
  sc.constituents = constituents;
  seg.records.push_back(sc);
  recipe.segments.push_back(seg);

  auto index = format::RecipeIndex::Build(recipe, /*sample_ratio=*/1);
  // With R=1 every constituent fp is a sample, plus the first-chunk fp.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(index.sample_to_segment.count(
                    Sha1::Hash("c" + std::to_string(i))) > 0)
        << i;
  }
  EXPECT_TRUE(index.sample_to_segment.count(Sha1::Hash("first")) > 0);
}

TEST(SuperchunkTest, GnodePassesPreserveMergedRecipes) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options = MergingOptions();
  options.backup.sparse_utilization_threshold = 0.5;
  core::SlimStore store(&oss, options);
  workload::VersionedFileGenerator file(Gen(7, 0.85));
  std::vector<std::string> versions;
  for (int v = 0; v < 6; ++v) {
    versions.push_back(file.data());
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    ASSERT_TRUE(store.RunGNodeCycle().ok());
    file.Mutate();
  }
  for (int v = 0; v < 6; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << "v" << v << ": " << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(SuperchunkTest, MergingOffMeansNoSuperchunks) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options = MergingOptions();
  options.backup.chunk_merging = false;
  core::SlimStore store(&oss, options);
  workload::VersionedFileGenerator file(Gen(8));
  const std::string frozen = file.data();
  for (int v = 0; v < 5; ++v) {
    auto stats = store.Backup("f", frozen);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().superchunks_formed, 0u);
    EXPECT_EQ(stats.value().superchunks_matched, 0u);
  }
}

}  // namespace
}  // namespace slim
