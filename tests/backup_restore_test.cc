#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

namespace slim {
namespace {

using core::SlimStore;
using core::SlimStoreOptions;
using lnode::BackupOptions;
using lnode::RestoreOptions;
using lnode::RestoreStats;
using workload::GeneratorOptions;
using workload::VersionedFileGenerator;

/// Small-scale options so tests run in milliseconds.
SlimStoreOptions TestOptions() {
  SlimStoreOptions options;
  options.backup.chunker_type = chunking::ChunkerType::kFastCdc;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.segment_max_chunks = 64;
  options.backup.sample_ratio = 4;
  options.restore.cache_bytes = 1 << 20;
  options.restore.disk_cache_bytes = 4 << 20;
  options.restore.law_chunks = 128;
  options.restore.prefetch_threads = 0;
  return options;
}

GeneratorOptions TestGenerator(uint64_t seed = 1, size_t size = 256 << 10) {
  GeneratorOptions gen;
  gen.base_size = size;
  gen.duplication_ratio = 0.85;
  gen.self_reference = 0.2;
  gen.block_size = 1024;
  gen.seed = seed;
  return gen;
}

class BackupRestoreTest : public ::testing::Test {
 protected:
  BackupRestoreTest() : store_(&oss_, TestOptions()) {}

  std::string MustRestore(const std::string& file, uint64_t version,
                          RestoreStats* stats = nullptr) {
    auto result = store_.Restore(file, version, stats);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result.value() : std::string();
  }

  oss::MemoryObjectStore oss_;
  SlimStore store_;
};

TEST_F(BackupRestoreTest, SingleVersionRoundTrip) {
  VersionedFileGenerator gen(TestGenerator());
  auto stats = store_.Backup("f.db", gen.data());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().version, 0u);
  EXPECT_EQ(stats.value().logical_bytes, gen.data().size());
  EXPECT_GT(stats.value().total_chunks, 10u);
  EXPECT_EQ(MustRestore("f.db", 0), gen.data());
}

TEST_F(BackupRestoreTest, EmptyFile) {
  auto stats = store_.Backup("empty", "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(MustRestore("empty", 0), "");
}

TEST_F(BackupRestoreTest, TinyFile) {
  auto stats = store_.Backup("tiny", "hello world");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().total_chunks, 1u);
  EXPECT_EQ(MustRestore("tiny", 0), "hello world");
}

TEST_F(BackupRestoreTest, MultiVersionRoundTrip) {
  VersionedFileGenerator gen(TestGenerator());
  std::vector<std::string> versions;
  for (int v = 0; v < 5; ++v) {
    versions.push_back(gen.data());
    auto stats = store_.Backup("f.db", gen.data());
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats.value().version, static_cast<uint64_t>(v));
    gen.Mutate();
  }
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(MustRestore("f.db", v), versions[v]) << "version " << v;
  }
}

TEST_F(BackupRestoreTest, SecondVersionDeduplicates) {
  VersionedFileGenerator gen(TestGenerator());
  ASSERT_TRUE(store_.Backup("f.db", gen.data()).ok());
  gen.Mutate();
  auto stats = store_.Backup("f.db", gen.data());
  ASSERT_TRUE(stats.ok());
  // ~85% duplication: the online path must find most of it.
  EXPECT_GT(stats.value().DedupRatio(), 0.5);
  EXPECT_EQ(stats.value().detection, lnode::BaseDetection::kByName);
}

TEST_F(BackupRestoreTest, IdenticalVersionDeduplicatesAlmostEverything) {
  VersionedFileGenerator gen(TestGenerator());
  ASSERT_TRUE(store_.Backup("f.db", gen.data()).ok());
  auto stats = store_.Backup("f.db", gen.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().DedupRatio(), 0.99);
  EXPECT_EQ(MustRestore("f.db", 1), gen.data());
}

TEST_F(BackupRestoreTest, RenamedFileDetectedBySimilarity) {
  VersionedFileGenerator gen(TestGenerator());
  ASSERT_TRUE(store_.Backup("old-name.db", gen.data()).ok());
  gen.Mutate();
  auto stats = store_.Backup("new-name.db", gen.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().detection, lnode::BaseDetection::kBySimilarity);
  EXPECT_GT(stats.value().DedupRatio(), 0.5);
  EXPECT_EQ(MustRestore("new-name.db", 0), gen.data());
}

TEST_F(BackupRestoreTest, UnrelatedFileHasNoDuplicates) {
  VersionedFileGenerator a(TestGenerator(1));
  VersionedFileGenerator b(TestGenerator(999));
  ASSERT_TRUE(store_.Backup("a", a.data()).ok());
  auto stats = store_.Backup("b", b.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().DedupRatio(), 0.35);  // Only self-references.
  EXPECT_EQ(MustRestore("b", 0), b.data());
}

TEST_F(BackupRestoreTest, RestoreStatsArePopulated) {
  VersionedFileGenerator gen(TestGenerator());
  ASSERT_TRUE(store_.Backup("f", gen.data()).ok());
  RestoreStats stats;
  MustRestore("f", 0, &stats);
  EXPECT_EQ(stats.logical_bytes, gen.data().size());
  EXPECT_GT(stats.chunks_restored, 0u);
  EXPECT_GT(stats.containers_fetched, 0u);
  EXPECT_GT(stats.ThroughputMBps(), 0.0);
  EXPECT_GT(stats.ContainersPer100MB(), 0.0);
}

TEST_F(BackupRestoreTest, RestoreUnknownVersionFails) {
  EXPECT_FALSE(store_.Restore("ghost", 0).ok());
}

// --- Skip chunking -----------------------------------------------------

class SkipChunkingTest : public ::testing::TestWithParam<bool> {};

TEST_P(SkipChunkingTest, SameBytesWithAndWithoutSkip) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = TestOptions();
  options.backup.skip_chunking = GetParam();
  options.backup.chunker_type = chunking::ChunkerType::kRabin;
  SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(3));
  std::vector<std::string> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(gen.data());
    auto stats = store.Backup("f", gen.data());
    ASSERT_TRUE(stats.ok());
    if (GetParam() && v > 0) {
      EXPECT_GT(stats.value().skip_successes, 0u) << "version " << v;
    }
    gen.Mutate();
  }
  for (int v = 0; v < 4; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(OnOff, SkipChunkingTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "SkipOn" : "SkipOff";
                         });

TEST(SkipChunkingEffectTest, SkipDoesNotHurtDedupRatio) {
  auto run = [](bool skip) {
    oss::MemoryObjectStore oss;
    SlimStoreOptions options = TestOptions();
    options.backup.skip_chunking = skip;
    SlimStore store(&oss, options);
    VersionedFileGenerator gen(TestGenerator(5));
    double last_ratio = 0;
    for (int v = 0; v < 4; ++v) {
      auto stats = store.Backup("f", gen.data());
      EXPECT_TRUE(stats.ok());
      last_ratio = stats.value().DedupRatio();
      gen.Mutate();
    }
    return last_ratio;
  };
  double with = run(true);
  double without = run(false);
  EXPECT_NEAR(with, without, 0.02);
}

// --- Chunk merging (superchunks) ---------------------------------------

TEST(ChunkMergingTest, SuperchunksFormAfterThresholdAndRestoreIntact) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = TestOptions();
  options.backup.chunk_merging = true;
  options.backup.merge_threshold = 3;
  options.backup.min_merge_chunks = 2;
  SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(7));
  std::vector<std::string> versions;
  uint64_t total_superchunks = 0;
  uint64_t matched_superchunks = 0;
  for (int v = 0; v < 8; ++v) {
    versions.push_back(gen.data());
    auto stats = store.Backup("f", gen.data());
    ASSERT_TRUE(stats.ok()) << stats.status();
    total_superchunks += stats.value().superchunks_formed;
    matched_superchunks += stats.value().superchunks_matched;
    gen.Mutate();
  }
  EXPECT_GT(total_superchunks, 0u);
  EXPECT_GT(matched_superchunks, 0u);
  for (int v = 0; v < 8; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << "version " << v << ": "
                               << restored.status();
    EXPECT_EQ(restored.value(), versions[v]) << "version " << v;
  }
}

TEST(ChunkMergingTest, MeanChunkSizeGrows) {
  auto run = [](bool merging) {
    oss::MemoryObjectStore oss;
    SlimStoreOptions options = TestOptions();
    options.backup.chunk_merging = merging;
    options.backup.merge_threshold = 2;
    options.backup.min_merge_chunks = 2;
    SlimStore store(&oss, options);
    // High-duplication file: the case merging targets (paper Fig 6).
    GeneratorOptions gopts = TestGenerator(11);
    gopts.duplication_ratio = 0.95;
    VersionedFileGenerator gen(gopts);
    double mean = 0;
    for (int v = 0; v < 6; ++v) {
      auto stats = store.Backup("f", gen.data());
      EXPECT_TRUE(stats.ok());
      mean = stats.value().MeanChunkBytes();
      gen.Mutate();
    }
    return mean;
  };
  EXPECT_GT(run(true), run(false) * 1.3);
}

// --- G-node ------------------------------------------------------------

TEST(GNodeTest, CycleKeepsAllVersionsRestorable) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = TestOptions();
  SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(13));
  std::vector<std::string> versions;
  for (int v = 0; v < 6; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    auto cycle = store.RunGNodeCycle();
    ASSERT_TRUE(cycle.ok()) << cycle.status();
    gen.Mutate();
  }
  for (int v = 0; v < 6; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << "version " << v << ": "
                               << restored.status();
    EXPECT_EQ(restored.value(), versions[v]) << "version " << v;
  }
}

TEST(GNodeTest, ReverseDedupRemovesMissedDuplicates) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = TestOptions();
  // Cripple the online dedup so the offline pass has work to do: no
  // similarity detection means version 1 re-stores everything.
  options.backup.sample_ratio = 1u << 30;
  options.enable_scc = false;
  SlimStore store(&oss, options);

  VersionedFileGenerator gen(TestGenerator(17, 128 << 10));
  std::string v0 = gen.data();
  ASSERT_TRUE(store.Backup("f", v0).ok());
  ASSERT_TRUE(store.RunGNodeCycle().ok());

  // Same content again: the online path misses the duplicates (no
  // samples), the global pass must find them.
  ASSERT_TRUE(store.Backup("g", v0).ok());
  auto space_before = store.GetSpaceReport();
  ASSERT_TRUE(space_before.ok());
  auto cycle = store.RunGNodeCycle();
  ASSERT_TRUE(cycle.ok());
  EXPECT_GT(cycle.value().reverse_dedup.duplicates_found, 0u);
  EXPECT_GT(cycle.value().reverse_dedup.bytes_reclaimed, 0u);
  auto space_after = store.GetSpaceReport();
  ASSERT_TRUE(space_after.ok());
  EXPECT_LT(space_after.value().container_bytes,
            space_before.value().container_bytes);

  // Both files still restore correctly (old version needs redirects).
  auto f = store.Restore("f", 0);
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f.value(), v0);
  auto g = store.Restore("g", 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value(), v0);
}

TEST(GNodeTest, SccReducesContainerReadsForNewVersion) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions base = TestOptions();
  base.backup.sparse_utilization_threshold = 0.5;
  base.enable_reverse_dedup = false;

  auto run = [&](bool scc) {
    oss::MemoryObjectStore inner;
    SlimStoreOptions options = base;
    options.enable_scc = scc;
    SlimStore store(&inner, options);
    VersionedFileGenerator gen(TestGenerator(19));
    for (int v = 0; v < 10; ++v) {
      EXPECT_TRUE(store.Backup("f", gen.data()).ok());
      EXPECT_TRUE(store.RunGNodeCycle().ok());
      gen.Mutate();
    }
    RestoreStats stats;
    RestoreOptions ropts = options.restore;
    auto restored = store.Restore("f", 9, &stats, &ropts);
    EXPECT_TRUE(restored.ok());
    return stats.containers_fetched;
  };
  uint64_t with_scc = run(true);
  uint64_t without_scc = run(false);
  EXPECT_LT(with_scc, without_scc);
}

TEST(GNodeTest, VersionCollectionReclaimsSpace) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = TestOptions();
  // Small containers + a fast-changing file so containers actually fall
  // out of the newer versions' reference sets.
  options.backup.container_capacity = 8 << 10;
  SlimStore store(&oss, options);

  GeneratorOptions gopts = TestGenerator(23);
  gopts.duplication_ratio = 0.45;
  VersionedFileGenerator gen(gopts);
  std::vector<std::string> versions;
  for (int v = 0; v < 6; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    gen.Mutate();
  }
  auto before = store.GetSpaceReport();
  ASSERT_TRUE(before.ok());

  // Delete the three oldest versions.
  for (uint64_t v = 0; v < 3; ++v) {
    auto gc = store.DeleteVersion("f", v, /*use_precomputed=*/true);
    ASSERT_TRUE(gc.ok()) << gc.status();
  }
  auto after = store.GetSpaceReport();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().container_bytes, before.value().container_bytes);

  // Remaining versions still restore byte-identically.
  for (uint64_t v = 3; v < 6; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << "version " << v;
    EXPECT_EQ(restored.value(), versions[v]);
  }
  // Deleted versions are gone.
  EXPECT_FALSE(store.Restore("f", 0).ok());
}

TEST(GNodeTest, MarkSweepMatchesPrecomputed) {
  auto run = [](bool precomputed) {
    oss::MemoryObjectStore oss;
    SlimStore store(&oss, TestOptions());
    VersionedFileGenerator gen(TestGenerator(29));
    std::vector<std::string> versions;
    for (int v = 0; v < 5; ++v) {
      versions.push_back(gen.data());
      EXPECT_TRUE(store.Backup("f", gen.data()).ok());
      gen.Mutate();
    }
    EXPECT_TRUE(store.DeleteVersion("f", 0, precomputed).ok());
    EXPECT_TRUE(store.DeleteVersion("f", 1, precomputed).ok());
    for (int v = 2; v < 5; ++v) {
      auto restored = store.Restore("f", v);
      EXPECT_TRUE(restored.ok());
      if (restored.ok()) {
        EXPECT_EQ(restored.value(), versions[v]);
      }
    }
    auto report = store.GetSpaceReport();
    EXPECT_TRUE(report.ok());
    return report.value().container_bytes;
  };
  uint64_t fast = run(true);
  uint64_t safe = run(false);
  // Mark-and-sweep reclaims at least as much as the precomputed sweep
  // never less... both should land in the same ballpark.
  EXPECT_NEAR(static_cast<double>(fast), static_cast<double>(safe),
              static_cast<double>(safe) * 0.2);
}

// --- Prefetching / FV cache --------------------------------------------

TEST(RestoreCacheTest, PrefetchingProducesSameBytes) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, TestOptions());
  VersionedFileGenerator gen(TestGenerator(31));
  std::vector<std::string> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(gen.data());
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    gen.Mutate();
  }
  RestoreOptions opts = TestOptions().restore;
  opts.prefetch_threads = 4;
  for (int v = 0; v < 3; ++v) {
    RestoreStats stats;
    auto restored = store.Restore("f", v, &stats, &opts);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(RestoreCacheTest, FullVisionReadsEachContainerOnceWithAmpleCache) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, TestOptions());
  VersionedFileGenerator gen(TestGenerator(37));
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    gen.Mutate();
  }
  RestoreOptions opts = TestOptions().restore;
  opts.cache_bytes = 64 << 20;  // Ample: no capacity evictions.
  RestoreStats stats;
  auto restored = store.Restore("f", 3, &stats, &opts);
  ASSERT_TRUE(restored.ok());

  // Count distinct containers in the recipe.
  auto recipe = store.recipe_store()->ReadRecipe("f", 3);
  ASSERT_TRUE(recipe.ok());
  std::set<format::ContainerId> distinct;
  for (const auto& seg : recipe.value().segments) {
    for (const auto& rec : seg.records) distinct.insert(rec.container_id);
  }
  EXPECT_EQ(stats.containers_fetched, distinct.size());
}

TEST(RestoreCacheTest, TinyCacheStillCorrect) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, TestOptions());
  VersionedFileGenerator gen(TestGenerator(41));
  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(store.Backup("f", gen.data()).ok());
    if (v < 2) gen.Mutate();
  }
  RestoreOptions opts = TestOptions().restore;
  opts.cache_bytes = 4 << 10;       // Pathologically small.
  opts.disk_cache_bytes = 8 << 10;  // Tiny disk spill too.
  opts.law_chunks = 16;
  RestoreStats stats;
  auto restored = store.Restore("f", 2, &stats, &opts);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), gen.data());
}

// --- Cluster ------------------------------------------------------------

TEST(ClusterTest, ParallelBackupAndRestore) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, TestOptions());
  core::Cluster::Options copts;
  copts.num_lnodes = 2;
  copts.backup_jobs_per_node = 4;
  core::Cluster cluster(&store, copts);

  std::vector<std::string> contents;
  std::vector<core::BackupJob> jobs;
  for (int i = 0; i < 6; ++i) {
    VersionedFileGenerator gen(TestGenerator(100 + i, 64 << 10));
    contents.push_back(gen.data());
  }
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({"file-" + std::to_string(i), &contents[i]});
  }
  auto run = cluster.ParallelBackup(jobs);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run.value().jobs, 6u);
  EXPECT_EQ(run.value().lnodes_used, 2u);
  EXPECT_GT(run.value().AggregateThroughputMBps(), 0.0);

  std::vector<index::FileVersion> restores;
  for (int i = 0; i < 6; ++i) {
    restores.push_back({"file-" + std::to_string(i), 0});
  }
  auto rrun = cluster.ParallelRestore(restores);
  ASSERT_TRUE(rrun.ok()) << rrun.status();
  EXPECT_EQ(rrun.value().logical_bytes, 6u * (64 << 10));

  for (int i = 0; i < 6; ++i) {
    auto restored = store.Restore("file-" + std::to_string(i), 0);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), contents[i]);
  }
}

// --- Failure injection ---------------------------------------------------

TEST(FailureTest, BackupSurfacesOssWriteErrors) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);
  SlimStore store(&oss, TestOptions());
  oss.set_failure_injector([](const std::string& op, const std::string&) {
    if (op == "put") return Status::IoError("injected write failure");
    return Status::Ok();
  });
  VersionedFileGenerator gen(TestGenerator(43, 64 << 10));
  auto stats = store.Backup("f", gen.data());
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIoError());
}

TEST(FailureTest, RestoreSurfacesOssReadErrors) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);
  SlimStore store(&oss, TestOptions());
  VersionedFileGenerator gen(TestGenerator(47, 64 << 10));
  ASSERT_TRUE(store.Backup("f", gen.data()).ok());
  oss.set_failure_injector([](const std::string& op, const std::string& key) {
    if (op == "get" && key.find("/containers/data-") != std::string::npos) {
      return Status::IoError("injected read failure");
    }
    return Status::Ok();
  });
  EXPECT_FALSE(store.Restore("f", 0).ok());
}

}  // namespace
}  // namespace slim
