#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  SLIM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(7, &out).ok());
}

// ---------------------------------------------------------------------------
// SHA-1 / SHA-256 known-answer tests (FIPS vectors)
// ---------------------------------------------------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1::Hash("", 0).ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1::Hash("abc").ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, LongerVector) {
  EXPECT_EQ(
      Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(Sha1::Hash(a).ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string data(100000, 0);
  Rng rng(3);
  rng.FillBytes(&data, 100000);
  Sha1 h;
  size_t pos = 0;
  size_t step = 1;
  while (pos < data.size()) {
    size_t n = std::min(step, data.size() - pos);
    h.Update(data.data() + pos, n);
    pos += n;
    step = step * 3 + 1;
  }
  EXPECT_EQ(h.Finish(), Sha1::Hash(data));
}

std::string ToHex32(const std::array<uint8_t, 32>& d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (uint8_t b : d) {
    out += k[b >> 4];
    out += k[b & 0xf];
  }
  return out;
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      ToHex32(Sha256::Hash("", 0)),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      ToHex32(Sha256::Hash("abc", 3)),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(FingerprintTest, HexRoundTrip) {
  Fingerprint fp = Sha1::Hash("roundtrip");
  EXPECT_EQ(Fingerprint::FromHex(fp.ToHex()), fp);
}

TEST(FingerprintTest, FromHexRejectsMalformed) {
  EXPECT_TRUE(Fingerprint::FromHex("xyz").IsZero());
  EXPECT_TRUE(Fingerprint::FromHex(std::string(40, 'g')).IsZero());
}

TEST(FingerprintTest, ZeroDetection) {
  Fingerprint fp;
  EXPECT_TRUE(fp.IsZero());
  fp = Sha1::Hash("x");
  EXPECT_FALSE(fp.IsZero());
}

TEST(FingerprintTest, OrderingAndEquality) {
  Fingerprint a = Sha1::Hash("a");
  Fingerprint b = Sha1::Hash("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_EQ(a, Sha1::Hash("a"));
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(dec.ReadFixed32(&v32).ok());
  ASSERT_TRUE(dec.ReadFixed64(&v64).ok());
  EXPECT_EQ(v32, 0xdeadbeef);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,    1,    127,  128,   16383, 16384,
                                  1u << 30, ~0ull, 42};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.ReadVarint64(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string_view s;
  ASSERT_TRUE(dec.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(CodingTest, UnderflowIsCorruptionAndSticky) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  uint64_t v64 = 0;
  EXPECT_TRUE(dec.ReadFixed64(&v64).IsCorruption());
  uint32_t v32 = 0;
  // After a decode failure the decoder stays failed.
  EXPECT_FALSE(dec.ReadFixed32(&v32).ok());
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf = "\xff";  // Continuation bit set, no next byte.
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_TRUE(dec.ReadVarint64(&v).IsCorruption());
}

TEST(CodingTest, FingerprintRoundTrip) {
  Fingerprint fp = Sha1::Hash("fp");
  std::string buf;
  PutFingerprint(&buf, fp);
  Decoder dec(buf);
  Fingerprint out;
  ASSERT_TRUE(dec.ReadFingerprint(&out).ok());
  EXPECT_EQ(out, fp);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, RandomBytesLengthAndVariety) {
  Rng rng(5);
  std::string s = rng.RandomBytes(1000);
  EXPECT_EQ(s.size(), 1000u);
  std::set<char> distinct(s.begin(), s.end());
  EXPECT_GT(distinct.size(), 100u);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 20);
}

// ---------------------------------------------------------------------------
// Hash mixers
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, Mix64Bijectivityish) {
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.ElapsedNanos(), 5 * 1000 * 1000ull);
}

TEST(PhaseTimerTest, Accumulates) {
  PhaseTimer t;
  {
    ScopedPhase p(&t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    ScopedPhase p(&t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(t.total_nanos(), 2 * 1000 * 1000ull);
}

}  // namespace
}  // namespace slim
