// Contract suite for the ObjectStore interface (see object_store.h):
// every implementation — in-memory, on-disk, cost-model decorator, and
// the fault-injection/retry decorators with transient faults fully
// hidden by retries — must agree on Put-overwrite, GetRange
// suffix/past-end/InvalidArgument semantics, idempotent Delete and
// sorted List, or backups written through one store would not restore
// through another.

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/namespace_store.h"
#include "durability/checksum.h"
#include "durability/checksumming_object_store.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "oss/disk_object_store.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/object_store.h"
#include "oss/retrying_object_store.h"
#include "oss/simulated_oss.h"

namespace slim::oss {
namespace {

// Owns whatever stack of objects backs the store under test.
struct StoreFixture {
  ObjectStore* store = nullptr;
  std::function<void()> cleanup;

  ~StoreFixture() {
    if (cleanup) cleanup();
  }
};

struct StoreParam {
  const char* name;
  std::function<std::unique_ptr<StoreFixture>()> make;
};

std::filesystem::path FreshDiskRoot() {
  static int counter = 0;
  auto root = std::filesystem::temp_directory_path() /
              ("slimstore-conformance-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter++));
  std::filesystem::remove_all(root);
  return root;
}

OssCostModel ZeroCostModel() {
  OssCostModel model;
  model.sleep_for_cost = false;
  return model;
}

std::vector<StoreParam> AllStores() {
  std::vector<StoreParam> params;
  params.push_back({"memory", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      fixture->store = mem.get();
                      fixture->cleanup = [mem] {};
                      return fixture;
                    }});
  params.push_back({"disk", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto root = FreshDiskRoot();
                      auto disk = DiskObjectStore::Open(root.string());
                      EXPECT_TRUE(disk.ok());
                      auto owned =
                          std::shared_ptr<DiskObjectStore>(std::move(disk).value());
                      fixture->store = owned.get();
                      fixture->cleanup = [owned, root] {
                        std::filesystem::remove_all(root);
                      };
                      return fixture;
                    }});
  params.push_back({"simulated", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      auto sim =
                          std::make_shared<SimulatedOss>(mem.get(), ZeroCostModel());
                      fixture->store = sim.get();
                      fixture->cleanup = [mem, sim] {};
                      return fixture;
                    }});
  // Transient faults below a retry layer with enough attempts: the
  // contract must be indistinguishable from a clean store.
  params.push_back({"faulty_retried", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      FaultProfile profile;
                      profile.seed = 7;
                      profile.transient_error_prob = 0.2;
                      auto faulty = std::make_shared<FaultInjectingObjectStore>(
                          mem.get(), profile);
                      RetryPolicy policy;
                      policy.max_attempts = 12;
                      auto retrying = std::make_shared<RetryingObjectStore>(
                          faulty.get(), policy);
                      fixture->store = retrying.get();
                      fixture->cleanup = [mem, faulty, retrying] {};
                      return fixture;
                    }});
  // Durability layers must be contract-transparent: a CRC32C footer on
  // every stored object and k-way replication across independent
  // backing stores may not change what callers observe.
  params.push_back({"checksummed", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      auto sum = std::make_shared<
                          durability::ChecksummingObjectStore>(mem.get());
                      fixture->store = sum.get();
                      fixture->cleanup = [mem, sum] {};
                      return fixture;
                    }});
  params.push_back({"replicated", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto backing = std::make_shared<
                          std::vector<std::unique_ptr<MemoryObjectStore>>>();
                      std::vector<ObjectStore*> replicas;
                      for (int i = 0; i < 3; ++i) {
                        backing->push_back(
                            std::make_unique<MemoryObjectStore>());
                        replicas.push_back(backing->back().get());
                      }
                      auto repl = std::make_shared<
                          durability::ReplicatingObjectStore>(
                          std::move(replicas),
                          durability::PlacementPolicy());
                      fixture->store = repl.get();
                      fixture->cleanup = [backing, repl] {};
                      return fixture;
                    }});
  // A tenant's prefix-scoped view of a SHARED store must itself be a
  // complete conformant ObjectStore — and the foreign-tenant objects
  // pre-seeded into the base here must stay invisible to every test
  // (ListEmptyPrefixReturnsEverything in particular would fail if any
  // leaked through).
  params.push_back({"tenant_namespaced", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto base = std::make_shared<MemoryObjectStore>();
                      // Another tenant's data, a sibling tenant whose id
                      // extends ours, and staging-suffixed junk: none of
                      // it may surface inside the "t/acme" view.
                      EXPECT_TRUE(base->Put("t/other/secret", "x").ok());
                      EXPECT_TRUE(base->Put("t/other/a/1", "x").ok());
                      EXPECT_TRUE(base->Put("t/acme2/file", "x").ok());
                      EXPECT_TRUE(
                          base->Put("t/other/stage#tmp42", "x").ok());
                      auto ns = std::make_shared<
                          slim::cluster::NamespacedObjectStore>(base.get(),
                                                                "t/acme");
                      fixture->store = ns.get();
                      fixture->cleanup = [base, ns] {};
                      return fixture;
                    }});
  params.push_back({"replicated_checksummed", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto backing = std::make_shared<
                          std::vector<std::unique_ptr<MemoryObjectStore>>>();
                      std::vector<ObjectStore*> replicas;
                      for (int i = 0; i < 3; ++i) {
                        backing->push_back(
                            std::make_unique<MemoryObjectStore>());
                        replicas.push_back(backing->back().get());
                      }
                      auto repl = std::make_shared<
                          durability::ReplicatingObjectStore>(
                          std::move(replicas),
                          durability::PlacementPolicy(),
                          [](std::string_view object) {
                            return durability::HasValidFooter(object);
                          });
                      auto sum = std::make_shared<
                          durability::ChecksummingObjectStore>(repl.get());
                      fixture->store = sum.get();
                      fixture->cleanup = [backing, repl, sum] {};
                      return fixture;
                    }});
  return params;
}

class ObjectStoreConformanceTest
    : public ::testing::TestWithParam<StoreParam> {
 protected:
  void SetUp() override {
    fixture_ = GetParam().make();
    ASSERT_NE(fixture_->store, nullptr);
  }

  ObjectStore& store() { return *fixture_->store; }

  std::unique_ptr<StoreFixture> fixture_;
};

TEST_P(ObjectStoreConformanceTest, PutGetRoundTrip) {
  ASSERT_TRUE(store().Put("k", "hello world").ok());
  auto got = store().Get("k");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), "hello world");
}

TEST_P(ObjectStoreConformanceTest, PutOverwritesExistingObject) {
  ASSERT_TRUE(store().Put("k", "first").ok());
  ASSERT_TRUE(store().Put("k", "second, longer value").ok());
  EXPECT_EQ(store().Get("k").value(), "second, longer value");
  ASSERT_TRUE(store().Put("k", "3rd").ok());
  EXPECT_EQ(store().Get("k").value(), "3rd");
  EXPECT_EQ(store().Size("k").value(), 3u);
}

TEST_P(ObjectStoreConformanceTest, EmptyValueRoundTrips) {
  ASSERT_TRUE(store().Put("empty", "").ok());
  auto got = store().Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "");
  EXPECT_EQ(store().Size("empty").value(), 0u);
  EXPECT_TRUE(store().Exists("empty").value());
}

TEST_P(ObjectStoreConformanceTest, GetMissingIsNotFound) {
  EXPECT_TRUE(store().Get("ghost").status().IsNotFound());
  EXPECT_TRUE(store().Size("ghost").status().IsNotFound());
  EXPECT_FALSE(store().Exists("ghost").value());
}

TEST_P(ObjectStoreConformanceTest, GetRangeInterior) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 2, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "23456");
}

TEST_P(ObjectStoreConformanceTest, GetRangePastEndReturnsSuffix) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 7, 100);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "789");
}

TEST_P(ObjectStoreConformanceTest, GetRangeAtExactEndIsEmpty) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 10, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "");
}

TEST_P(ObjectStoreConformanceTest, GetRangeBeyondEndIsInvalidArgument) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 11, 1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(ObjectStoreConformanceTest, GetRangeMissingIsNotFound) {
  EXPECT_TRUE(store().GetRange("ghost", 0, 4).status().IsNotFound());
}

TEST_P(ObjectStoreConformanceTest, DeleteIsIdempotent) {
  ASSERT_TRUE(store().Put("k", "v").ok());
  ASSERT_TRUE(store().Delete("k").ok());
  EXPECT_TRUE(store().Get("k").status().IsNotFound());
  // Deleting again (and deleting a never-existing key) is still OK.
  EXPECT_TRUE(store().Delete("k").ok());
  EXPECT_TRUE(store().Delete("never-existed").ok());
}

TEST_P(ObjectStoreConformanceTest, ListReturnsSortedPrefixMatches) {
  ASSERT_TRUE(store().Put("a/2", "v").ok());
  ASSERT_TRUE(store().Put("a/1", "v").ok());
  ASSERT_TRUE(store().Put("a/3", "v").ok());
  ASSERT_TRUE(store().Put("b/1", "v").ok());
  auto keys = store().List("a/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"a/1", "a/2", "a/3"}));
}

TEST_P(ObjectStoreConformanceTest, ListEmptyPrefixReturnsEverything) {
  ASSERT_TRUE(store().Put("x", "v").ok());
  ASSERT_TRUE(store().Put("y", "v").ok());
  auto keys = store().List("");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"x", "y"}));
}

TEST_P(ObjectStoreConformanceTest, ListExcludesDeleted) {
  ASSERT_TRUE(store().Put("p/keep", "v").ok());
  ASSERT_TRUE(store().Put("p/drop", "v").ok());
  ASSERT_TRUE(store().Delete("p/drop").ok());
  auto keys = store().List("p/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"p/keep"}));
}

TEST_P(ObjectStoreConformanceTest, KeysNeedingEncodingRoundTrip) {
  // Slashes, percent signs, spaces, high bytes — everything a container
  // or recipe key might legally contain.
  const std::vector<std::string> keys = {
      "containers/data-00000042", "odd %25 key", "spaces and\ttabs",
      std::string("nul\0byte", 8), "high\xff\xfe bytes"};
  for (const auto& key : keys) {
    ASSERT_TRUE(store().Put(key, "payload:" + key).ok()) << key;
  }
  for (const auto& key : keys) {
    auto got = store().Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), "payload:" + key);
  }
  auto listed = store().List("");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().size(), keys.size());
}

TEST_P(ObjectStoreConformanceTest, KeyEndingInTmpSuffixIsListed) {
  // Regression: DiskObjectStore used a ".tmp" suffix for its atomic
  // write staging files and skipped that suffix in List, silently
  // hiding any user key that itself ends in ".tmp".
  ASSERT_TRUE(store().Put("snapshot.tmp", "v").ok());
  auto keys = store().List("");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"snapshot.tmp"}));
  EXPECT_TRUE(store().Exists("snapshot.tmp").value());
}

TEST_P(ObjectStoreConformanceTest, ObsSegmentKeysHiddenFromShallowList) {
  // Metric snapshots live under an "obs#" path segment (see
  // cluster/obs_publish.h). Like "#tmp" staging files they are real
  // objects — Get/Exists/Delete work — but shallow List must not
  // surface them, or backups and space accounting would sweep metric
  // state as data. Pointing the prefix into the segment opts back in.
  ASSERT_TRUE(store().Put("c/data/a", "payload").ok());
  ASSERT_TRUE(store().Put("c/obs#/node/L0", "snapshot").ok());
  auto shallow = store().List("c/");
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(shallow.value(), (std::vector<std::string>{"c/data/a"}));
  auto everything = store().List("");
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything.value(), (std::vector<std::string>{"c/data/a"}));
  auto deep = store().List("c/obs#/");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(deep.value(), (std::vector<std::string>{"c/obs#/node/L0"}));
  EXPECT_TRUE(store().Exists("c/obs#/node/L0").value());
  EXPECT_EQ(store().Get("c/obs#/node/L0").value(), "snapshot");
  ASSERT_TRUE(store().Delete("c/obs#/node/L0").ok());
  EXPECT_FALSE(store().Exists("c/obs#/node/L0").value());
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, ObjectStoreConformanceTest, ::testing::ValuesIn(AllStores()),
    [](const ::testing::TestParamInfo<StoreParam>& param_info) {
      return param_info.param.name;
    });

// --- tenant namespace isolation --------------------------------------------
// Beyond the parameterized conformance above (which proves a namespaced
// view IS a complete ObjectStore), these cases pin the isolation
// guarantee itself: two tenant views over ONE shared base can never
// observe each other, under recursive and prefix-scoped listing, on
// memory- and disk-backed bases, including the '#tmp' atomic-write
// staging namespace.

void ExerciseTwoTenantViews(ObjectStore* base) {
  slim::cluster::NamespacedObjectStore alice(base, "t/alice");
  slim::cluster::NamespacedObjectStore bob(base, "t/bob");

  // Identical keys, different values: reads must never cross views.
  ASSERT_TRUE(alice.Put("meta/manifest", "alice-manifest").ok());
  ASSERT_TRUE(bob.Put("meta/manifest", "bob-manifest").ok());
  ASSERT_TRUE(alice.Put("containers/c0", "alice-c0").ok());
  ASSERT_TRUE(bob.Put("containers/c1", "bob-c1").ok());
  EXPECT_EQ(alice.Get("meta/manifest").value(), "alice-manifest");
  EXPECT_EQ(bob.Get("meta/manifest").value(), "bob-manifest");
  EXPECT_FALSE(alice.Exists("containers/c1").value());
  EXPECT_FALSE(bob.Exists("containers/c0").value());

  // Recursive listing (empty prefix = everything in the view) shows
  // exactly the view's own keys; prefix-scoped listing stays scoped.
  EXPECT_EQ(alice.List("").value(),
            (std::vector<std::string>{"containers/c0", "meta/manifest"}));
  EXPECT_EQ(bob.List("").value(),
            (std::vector<std::string>{"containers/c1", "meta/manifest"}));
  EXPECT_EQ(alice.List("containers/").value(),
            (std::vector<std::string>{"containers/c0"}));
  EXPECT_EQ(bob.List("meta/").value(),
            (std::vector<std::string>{"meta/manifest"}));

  // Deleting through one view leaves the other's same-named key intact.
  ASSERT_TRUE(alice.Delete("meta/manifest").ok());
  EXPECT_FALSE(alice.Exists("meta/manifest").value());
  EXPECT_EQ(bob.Get("meta/manifest").value(), "bob-manifest");

  // The base sees both subtrees, fully disjoint by prefix.
  auto base_keys = base->List("t/").value();
  for (const auto& key : base_keys) {
    EXPECT_TRUE(key.rfind("t/alice/", 0) == 0 ||
                key.rfind("t/bob/", 0) == 0)
        << key;
  }
}

TEST(TenantNamespaceIsolation, MemoryBackedViewsNeverInterleave) {
  MemoryObjectStore base;
  ExerciseTwoTenantViews(&base);
}

TEST(TenantNamespaceIsolation, DiskBackedViewsNeverInterleave) {
  auto root = FreshDiskRoot();
  auto disk = DiskObjectStore::Open(root.string());
  ASSERT_TRUE(disk.ok()) << disk.status();
  ExerciseTwoTenantViews(disk.value().get());
  std::filesystem::remove_all(root);
}

TEST(TenantNamespaceIsolation, DiskAtomicStagingStaysInvisible) {
  // DiskObjectStore stages atomic writes under a '#tmp' suffix. A
  // tenant view over disk must neither leak staging files into List nor
  // let one tenant's staging alias another tenant's keys. (Tenant ids
  // embedding "#tmp" are rejected at validation, so the only '#tmp'
  // keys a view can see are its OWN user keys with that spelling.)
  auto root = FreshDiskRoot();
  auto disk = DiskObjectStore::Open(root.string());
  ASSERT_TRUE(disk.ok()) << disk.status();
  slim::cluster::NamespacedObjectStore alice(disk.value().get(), "t/alice");
  slim::cluster::NamespacedObjectStore bob(disk.value().get(), "t/bob");

  ASSERT_TRUE(alice.Put("data", "v1").ok());
  ASSERT_TRUE(alice.Put("data", "v2").ok());  // Overwrite re-stages.
  ASSERT_TRUE(bob.Put("data#tmp7", "bob-user-key").ok());

  // No staging residue is listed anywhere, but bob's user key that
  // merely LOOKS like a staging file survives in bob's view only.
  EXPECT_EQ(alice.List("").value(), (std::vector<std::string>{"data"}));
  EXPECT_EQ(bob.List("").value(),
            (std::vector<std::string>{"data#tmp7"}));
  EXPECT_EQ(alice.Get("data").value(), "v2");
  EXPECT_EQ(bob.Get("data#tmp7").value(), "bob-user-key");
  EXPECT_FALSE(alice.Exists("data#tmp7").value());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace slim::oss
