// Contract suite for the ObjectStore interface (see object_store.h):
// every implementation — in-memory, on-disk, cost-model decorator, and
// the fault-injection/retry decorators with transient faults fully
// hidden by retries — must agree on Put-overwrite, GetRange
// suffix/past-end/InvalidArgument semantics, idempotent Delete and
// sorted List, or backups written through one store would not restore
// through another.

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "durability/checksum.h"
#include "durability/checksumming_object_store.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "oss/disk_object_store.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/object_store.h"
#include "oss/retrying_object_store.h"
#include "oss/simulated_oss.h"

namespace slim::oss {
namespace {

// Owns whatever stack of objects backs the store under test.
struct StoreFixture {
  ObjectStore* store = nullptr;
  std::function<void()> cleanup;

  ~StoreFixture() {
    if (cleanup) cleanup();
  }
};

struct StoreParam {
  const char* name;
  std::function<std::unique_ptr<StoreFixture>()> make;
};

std::filesystem::path FreshDiskRoot() {
  static int counter = 0;
  auto root = std::filesystem::temp_directory_path() /
              ("slimstore-conformance-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter++));
  std::filesystem::remove_all(root);
  return root;
}

OssCostModel ZeroCostModel() {
  OssCostModel model;
  model.sleep_for_cost = false;
  return model;
}

std::vector<StoreParam> AllStores() {
  std::vector<StoreParam> params;
  params.push_back({"memory", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      fixture->store = mem.get();
                      fixture->cleanup = [mem] {};
                      return fixture;
                    }});
  params.push_back({"disk", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto root = FreshDiskRoot();
                      auto disk = DiskObjectStore::Open(root.string());
                      EXPECT_TRUE(disk.ok());
                      auto owned =
                          std::shared_ptr<DiskObjectStore>(std::move(disk).value());
                      fixture->store = owned.get();
                      fixture->cleanup = [owned, root] {
                        std::filesystem::remove_all(root);
                      };
                      return fixture;
                    }});
  params.push_back({"simulated", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      auto sim =
                          std::make_shared<SimulatedOss>(mem.get(), ZeroCostModel());
                      fixture->store = sim.get();
                      fixture->cleanup = [mem, sim] {};
                      return fixture;
                    }});
  // Transient faults below a retry layer with enough attempts: the
  // contract must be indistinguishable from a clean store.
  params.push_back({"faulty_retried", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      FaultProfile profile;
                      profile.seed = 7;
                      profile.transient_error_prob = 0.2;
                      auto faulty = std::make_shared<FaultInjectingObjectStore>(
                          mem.get(), profile);
                      RetryPolicy policy;
                      policy.max_attempts = 12;
                      auto retrying = std::make_shared<RetryingObjectStore>(
                          faulty.get(), policy);
                      fixture->store = retrying.get();
                      fixture->cleanup = [mem, faulty, retrying] {};
                      return fixture;
                    }});
  // Durability layers must be contract-transparent: a CRC32C footer on
  // every stored object and k-way replication across independent
  // backing stores may not change what callers observe.
  params.push_back({"checksummed", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto mem = std::make_shared<MemoryObjectStore>();
                      auto sum = std::make_shared<
                          durability::ChecksummingObjectStore>(mem.get());
                      fixture->store = sum.get();
                      fixture->cleanup = [mem, sum] {};
                      return fixture;
                    }});
  params.push_back({"replicated", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto backing = std::make_shared<
                          std::vector<std::unique_ptr<MemoryObjectStore>>>();
                      std::vector<ObjectStore*> replicas;
                      for (int i = 0; i < 3; ++i) {
                        backing->push_back(
                            std::make_unique<MemoryObjectStore>());
                        replicas.push_back(backing->back().get());
                      }
                      auto repl = std::make_shared<
                          durability::ReplicatingObjectStore>(
                          std::move(replicas),
                          durability::PlacementPolicy());
                      fixture->store = repl.get();
                      fixture->cleanup = [backing, repl] {};
                      return fixture;
                    }});
  params.push_back({"replicated_checksummed", [] {
                      auto fixture = std::make_unique<StoreFixture>();
                      auto backing = std::make_shared<
                          std::vector<std::unique_ptr<MemoryObjectStore>>>();
                      std::vector<ObjectStore*> replicas;
                      for (int i = 0; i < 3; ++i) {
                        backing->push_back(
                            std::make_unique<MemoryObjectStore>());
                        replicas.push_back(backing->back().get());
                      }
                      auto repl = std::make_shared<
                          durability::ReplicatingObjectStore>(
                          std::move(replicas),
                          durability::PlacementPolicy(),
                          [](std::string_view object) {
                            return durability::HasValidFooter(object);
                          });
                      auto sum = std::make_shared<
                          durability::ChecksummingObjectStore>(repl.get());
                      fixture->store = sum.get();
                      fixture->cleanup = [backing, repl, sum] {};
                      return fixture;
                    }});
  return params;
}

class ObjectStoreConformanceTest
    : public ::testing::TestWithParam<StoreParam> {
 protected:
  void SetUp() override {
    fixture_ = GetParam().make();
    ASSERT_NE(fixture_->store, nullptr);
  }

  ObjectStore& store() { return *fixture_->store; }

  std::unique_ptr<StoreFixture> fixture_;
};

TEST_P(ObjectStoreConformanceTest, PutGetRoundTrip) {
  ASSERT_TRUE(store().Put("k", "hello world").ok());
  auto got = store().Get("k");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), "hello world");
}

TEST_P(ObjectStoreConformanceTest, PutOverwritesExistingObject) {
  ASSERT_TRUE(store().Put("k", "first").ok());
  ASSERT_TRUE(store().Put("k", "second, longer value").ok());
  EXPECT_EQ(store().Get("k").value(), "second, longer value");
  ASSERT_TRUE(store().Put("k", "3rd").ok());
  EXPECT_EQ(store().Get("k").value(), "3rd");
  EXPECT_EQ(store().Size("k").value(), 3u);
}

TEST_P(ObjectStoreConformanceTest, EmptyValueRoundTrips) {
  ASSERT_TRUE(store().Put("empty", "").ok());
  auto got = store().Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "");
  EXPECT_EQ(store().Size("empty").value(), 0u);
  EXPECT_TRUE(store().Exists("empty").value());
}

TEST_P(ObjectStoreConformanceTest, GetMissingIsNotFound) {
  EXPECT_TRUE(store().Get("ghost").status().IsNotFound());
  EXPECT_TRUE(store().Size("ghost").status().IsNotFound());
  EXPECT_FALSE(store().Exists("ghost").value());
}

TEST_P(ObjectStoreConformanceTest, GetRangeInterior) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 2, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "23456");
}

TEST_P(ObjectStoreConformanceTest, GetRangePastEndReturnsSuffix) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 7, 100);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "789");
}

TEST_P(ObjectStoreConformanceTest, GetRangeAtExactEndIsEmpty) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 10, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "");
}

TEST_P(ObjectStoreConformanceTest, GetRangeBeyondEndIsInvalidArgument) {
  ASSERT_TRUE(store().Put("k", "0123456789").ok());
  auto got = store().GetRange("k", 11, 1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(ObjectStoreConformanceTest, GetRangeMissingIsNotFound) {
  EXPECT_TRUE(store().GetRange("ghost", 0, 4).status().IsNotFound());
}

TEST_P(ObjectStoreConformanceTest, DeleteIsIdempotent) {
  ASSERT_TRUE(store().Put("k", "v").ok());
  ASSERT_TRUE(store().Delete("k").ok());
  EXPECT_TRUE(store().Get("k").status().IsNotFound());
  // Deleting again (and deleting a never-existing key) is still OK.
  EXPECT_TRUE(store().Delete("k").ok());
  EXPECT_TRUE(store().Delete("never-existed").ok());
}

TEST_P(ObjectStoreConformanceTest, ListReturnsSortedPrefixMatches) {
  ASSERT_TRUE(store().Put("a/2", "v").ok());
  ASSERT_TRUE(store().Put("a/1", "v").ok());
  ASSERT_TRUE(store().Put("a/3", "v").ok());
  ASSERT_TRUE(store().Put("b/1", "v").ok());
  auto keys = store().List("a/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"a/1", "a/2", "a/3"}));
}

TEST_P(ObjectStoreConformanceTest, ListEmptyPrefixReturnsEverything) {
  ASSERT_TRUE(store().Put("x", "v").ok());
  ASSERT_TRUE(store().Put("y", "v").ok());
  auto keys = store().List("");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"x", "y"}));
}

TEST_P(ObjectStoreConformanceTest, ListExcludesDeleted) {
  ASSERT_TRUE(store().Put("p/keep", "v").ok());
  ASSERT_TRUE(store().Put("p/drop", "v").ok());
  ASSERT_TRUE(store().Delete("p/drop").ok());
  auto keys = store().List("p/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"p/keep"}));
}

TEST_P(ObjectStoreConformanceTest, KeysNeedingEncodingRoundTrip) {
  // Slashes, percent signs, spaces, high bytes — everything a container
  // or recipe key might legally contain.
  const std::vector<std::string> keys = {
      "containers/data-00000042", "odd %25 key", "spaces and\ttabs",
      std::string("nul\0byte", 8), "high\xff\xfe bytes"};
  for (const auto& key : keys) {
    ASSERT_TRUE(store().Put(key, "payload:" + key).ok()) << key;
  }
  for (const auto& key : keys) {
    auto got = store().Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), "payload:" + key);
  }
  auto listed = store().List("");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().size(), keys.size());
}

TEST_P(ObjectStoreConformanceTest, KeyEndingInTmpSuffixIsListed) {
  // Regression: DiskObjectStore used a ".tmp" suffix for its atomic
  // write staging files and skipped that suffix in List, silently
  // hiding any user key that itself ends in ".tmp".
  ASSERT_TRUE(store().Put("snapshot.tmp", "v").ok());
  auto keys = store().List("");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"snapshot.tmp"}));
  EXPECT_TRUE(store().Exists("snapshot.tmp").value());
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, ObjectStoreConformanceTest, ::testing::ValuesIn(AllStores()),
    [](const ::testing::TestParamInfo<StoreParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace slim::oss
