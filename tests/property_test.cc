// Property-style sweeps: the system-level invariants hold for every
// combination of features, chunkers and seeds.
//
//   * Restore == original bytes for every version, under any
//     combination of {chunker, skip chunking, chunk merging, G-node
//     passes, version collection (for retained versions)}.
//   * Dedup never stores more than the input (plus container framing).
//   * Recipes account exactly for the logical bytes.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

struct Config {
  chunking::ChunkerType chunker;
  bool skip;
  bool merging;
  bool gnode;
};

std::string ConfigName(const Config& c) {
  std::string name = chunking::ChunkerTypeName(c.chunker);
  name += c.skip ? "_skip" : "_noskip";
  name += c.merging ? "_merge" : "_nomerge";
  name += c.gnode ? "_gnode" : "_nognode";
  return name;
}

class LifecyclePropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(LifecyclePropertyTest, EveryVersionRestoresByteIdentical) {
  const Config& config = GetParam();
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_type = config.chunker;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.skip_chunking = config.skip;
  options.backup.chunk_merging = config.merging;
  options.backup.merge_threshold = 2;
  options.backup.min_merge_chunks = 2;
  core::SlimStore store(&oss, options);

  workload::GeneratorOptions gen;
  gen.base_size = 128 << 10;
  gen.duplication_ratio = 0.85;
  gen.self_reference = 0.2;
  gen.block_size = 1024;
  gen.seed = 4242;
  workload::VersionedFileGenerator file(gen);

  std::vector<std::string> versions;
  uint64_t total_logical = 0;
  for (int v = 0; v < 5; ++v) {
    versions.push_back(file.data());
    auto stats = store.Backup("f", file.data());
    ASSERT_TRUE(stats.ok()) << stats.status();
    total_logical += stats.value().logical_bytes;
    // Conservation: dup + new == logical.
    EXPECT_EQ(stats.value().dup_bytes + stats.value().new_bytes,
              stats.value().logical_bytes);
    // The recipe accounts for every byte.
    auto recipe = store.recipe_store()->ReadRecipe("f", v);
    ASSERT_TRUE(recipe.ok());
    EXPECT_EQ(recipe.value().LogicalBytes(), file.data().size());
    if (config.gnode) {
      ASSERT_TRUE(store.RunGNodeCycle().ok());
    }
    file.Mutate();
  }

  // Stored bytes never exceed logical bytes (dedup can only help).
  auto report = store.GetSpaceReport();
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report.value().container_bytes, total_logical);

  for (int v = 0; v < 5; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok())
        << ConfigName(config) << " v" << v << ": " << restored.status();
    EXPECT_EQ(restored.value(), versions[v])
        << ConfigName(config) << " v" << v;
  }

  // Delete the two oldest versions; the rest must stay intact.
  ASSERT_TRUE(store.DeleteVersion("f", 0).ok());
  ASSERT_TRUE(store.DeleteVersion("f", 1).ok());
  for (int v = 2; v < 5; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok())
        << ConfigName(config) << " post-GC v" << v << ": "
        << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (auto chunker : {chunking::ChunkerType::kRabin,
                       chunking::ChunkerType::kGear,
                       chunking::ChunkerType::kFastCdc}) {
    for (bool skip : {false, true}) {
      for (bool merging : {false, true}) {
        for (bool gnode : {false, true}) {
          configs.push_back({chunker, skip, merging, gnode});
        }
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllFeatureCombos, LifecyclePropertyTest,
                         ::testing::ValuesIn(AllConfigs()),
                         [](const auto& param_info) {
                           return ConfigName(param_info.param);
                         });

// Seed sweep with the full feature set on: different content shapes.
class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, FullFeatureLifecycle) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.chunk_merging = true;
  options.backup.merge_threshold = 2;
  options.backup.min_merge_chunks = 2;
  options.auto_gnode = true;
  core::SlimStore store(&oss, options);

  workload::GeneratorOptions gen;
  gen.base_size = 96 << 10;
  gen.duplication_ratio =
      0.7 + static_cast<double>(GetParam() % 3) * 0.1;
  gen.self_reference = static_cast<double>(GetParam() % 2) * 0.25;
  gen.block_size = 1024;
  gen.seed = GetParam();
  workload::VersionedFileGenerator file(gen);

  std::vector<std::string> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(file.data());
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    file.Mutate();
  }
  for (int v = 0; v < 4; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << "seed " << GetParam() << " v" << v
                               << ": " << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Chunk-size sweep: the pipeline works across the paper's Fig 5 range.
class ChunkSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeSweepTest, BackupRestoreAtEveryChunkSize) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params =
      chunking::ChunkerParams::FromAverage(GetParam());
  options.backup.container_capacity = 8 * GetParam();
  options.backup.sample_ratio = 2;
  core::SlimStore store(&oss, options);

  workload::GeneratorOptions gen;
  gen.base_size = 64 * GetParam();
  gen.duplication_ratio = 0.8;
  gen.block_size = GetParam();
  gen.seed = 777;
  workload::VersionedFileGenerator file(gen);

  std::string v0 = file.data();
  ASSERT_TRUE(store.Backup("f", v0).ok());
  file.Mutate();
  auto stats = store.Backup("f", file.data());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().DedupRatio(), 0.3);
  auto restored = store.Restore("f", 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), v0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeSweepTest,
                         ::testing::Values(1024, 4096, 16384, 65536));

}  // namespace
}  // namespace slim
