// Deterministic crash-restart sweep: the rebuildable-state contract
// (common/rebuildable.h) promises that everything an L-node keeps in
// process memory is a cache over OSS-resident objects. This test PROVES
// it by enumerating every OSS commit point of a backup + G-node cycle,
// simulating process death at each one (SlimStore destroyed, every
// local structure discarded — only the memory object store survives,
// playing the role of OSS), restarting over the surviving objects with
// SlimStore::Rebuild(), and asserting full convergence:
//   - Rebuild itself succeeds from any crash point;
//   - re-driving the interrupted workload brings back every version
//     byte-identically, with the repository fully verified;
//   - the converged repository occupies exactly the same container /
//     meta / recipe bytes as a universe that never crashed.
// Everything is deterministic given the seed: the crash point is an
// exact operation index, not a timer.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

constexpr size_t kFiles = 2;
constexpr size_t kVersions = 2;
constexpr size_t kBaseSize = 24 << 10;
constexpr uint64_t kSweepSeeds = 20;

std::string FileId(size_t f) { return "file-" + std::to_string(f); }

// expected[f][v] = bytes of version v of file f. Deterministic in seed.
std::vector<std::vector<std::string>> MakeVersions(uint64_t seed) {
  std::vector<std::vector<std::string>> expected(kFiles);
  for (size_t f = 0; f < kFiles; ++f) {
    workload::GeneratorOptions gopts;
    gopts.base_size = kBaseSize;
    gopts.duplication_ratio = 0.80;
    gopts.seed = seed * 1000 + f;
    workload::VersionedFileGenerator gen(gopts);
    expected[f].push_back(gen.data());
    for (size_t v = 1; v < kVersions; ++v) {
      gen.Mutate();
      expected[f].push_back(gen.data());
    }
  }
  return expected;
}

// Small containers + aggressive sparseness threshold so the tiny
// workload still spans several containers and the G-node phases do real
// work (compaction, reverse dedup, redirects) whose commit points the
// sweep then slices through.
core::SlimStoreOptions MakeOptions() {
  core::SlimStoreOptions options;
  options.backup.container_capacity = 8 << 10;
  options.backup.sparse_utilization_threshold = 0.9;
  return options;
}

// One simulated deployment: SlimStore -> FaultInjecting -> Memory. No
// retry layer: a crash cut is process death, not a retryable blip, and
// its absence keeps the op numbering = the commit-point numbering.
struct Universe {
  std::unique_ptr<oss::MemoryObjectStore> mem;
  std::unique_ptr<oss::FaultInjectingObjectStore> faulty;
  std::unique_ptr<core::SlimStore> slim;
};

Universe MakeUniverse(const oss::FaultProfile& profile) {
  Universe u;
  u.mem = std::make_unique<oss::MemoryObjectStore>();
  u.faulty =
      std::make_unique<oss::FaultInjectingObjectStore>(u.mem.get(), profile);
  u.slim = std::make_unique<core::SlimStore>(u.faulty.get(), MakeOptions());
  return u;
}

// Drives the canonical workload — every version of every file, then one
// G-node cycle — skipping versions already in the catalog (so the same
// driver both runs the golden universe and re-drives a rebuilt one).
// With `swallow_errors` the first failure stops the drive silently: the
// crashed process "died" at that operation.
void DriveWorkload(core::SlimStore* slim,
                   const std::vector<std::vector<std::string>>& expected,
                   bool swallow_errors) {
  for (size_t v = 0; v < kVersions; ++v) {
    for (size_t f = 0; f < kFiles; ++f) {
      if (slim->catalog()->Get(FileId(f), v).has_value()) continue;
      auto stats = slim->Backup(FileId(f), expected[f][v]);
      if (!stats.ok()) {
        if (swallow_errors) return;
        FAIL() << "backup " << FileId(f) << "@v" << v << ": "
               << stats.status();
      }
      ASSERT_EQ(stats.value().version, v);
    }
  }
  auto cycle = slim->RunGNodeCycle();
  if (!cycle.ok() && !swallow_errors) {
    FAIL() << "gnode cycle: " << cycle.status();
  }
}

struct GnodeSpace {
  uint64_t container_bytes = 0;
  uint64_t meta_bytes = 0;
  uint64_t recipe_bytes = 0;

  bool operator==(const GnodeSpace& rhs) const {
    return container_bytes == rhs.container_bytes &&
           meta_bytes == rhs.meta_bytes && recipe_bytes == rhs.recipe_bytes;
  }
};

// Space the convergence invariant covers. The global index is excluded:
// its run *packaging* legitimately depends on where flushes fell, only
// its mappings must converge (VerifyRepository checks those via chunk
// resolution).
GnodeSpace SpaceOf(core::SlimStore* slim) {
  auto report = slim->GetSpaceReport();
  EXPECT_TRUE(report.ok()) << report.status();
  if (!report.ok()) return {};
  return {report.value().container_bytes, report.value().meta_bytes,
          report.value().recipe_bytes};
}

// Asserts the post-rebuild universe converged: verified repository,
// byte-identical restores, same G-node space as the never-crashed run.
void ExpectConverged(core::SlimStore* slim,
                     const std::vector<std::vector<std::string>>& expected,
                     const GnodeSpace& golden, const std::string& label) {
  auto report = slim->VerifyRepository();
  ASSERT_TRUE(report.ok()) << label << ": " << report.status();
  EXPECT_TRUE(report.value().ok())
      << label << ": "
      << (report.value().problems.empty() ? ""
                                          : report.value().problems.front());
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = slim->Restore(FileId(f), v);
      ASSERT_TRUE(data.ok())
          << label << ": restore " << FileId(f) << "@v" << v << ": "
          << data.status();
      EXPECT_EQ(data.value(), expected[f][v])
          << label << ": " << FileId(f) << "@v" << v
          << " corrupt after rebuild";
    }
  }
  GnodeSpace space = SpaceOf(slim);
  EXPECT_EQ(space, golden)
      << label << ": space did not converge (containers "
      << space.container_bytes << " vs " << golden.container_bytes
      << ", metas " << space.meta_bytes << " vs " << golden.meta_bytes
      << ", recipes " << space.recipe_bytes << " vs "
      << golden.recipe_bytes << ")";
}

// One seed of the sweep: a golden run counts the total number of OSS
// operations T the workload admits, then every cut in [1, T] is run as
// its own universe that dies exactly there.
void RunSweepSeed(uint64_t seed) {
  const auto expected = MakeVersions(seed);

  // Golden universe: the cut is armed (so operations are counted
  // identically to the crash runs) but fail_after_ops = 0 never fires.
  Universe golden = MakeUniverse(oss::FaultProfile::CrashCut(0, seed));
  golden.faulty->set_enabled(true);
  DriveWorkload(golden.slim.get(), expected, /*swallow_errors=*/false);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  const uint64_t total_ops = golden.faulty->ops_admitted();
  ASSERT_GT(total_ops, 0u);
  golden.faulty->set_enabled(false);
  const GnodeSpace golden_space = SpaceOf(golden.slim.get());

  for (uint64_t cut = 1; cut <= total_ops; ++cut) {
    std::string label =
        "seed " + std::to_string(seed) + " cut " + std::to_string(cut) +
        "/" + std::to_string(total_ops);

    // The process lives for exactly `cut` OSS operations, then every
    // later operation fails: the workload dies wherever that lands.
    Universe u = MakeUniverse(oss::FaultProfile::CrashCut(cut, seed));
    u.faulty->set_enabled(true);
    DriveWorkload(u.slim.get(), expected, /*swallow_errors=*/true);

    // Process death: the SlimStore and every local structure in it are
    // gone. Only the object store (OSS) survives.
    u.slim.reset();
    u.faulty->set_enabled(false);

    // Restart: a brand-new SlimStore over the surviving objects, local
    // state reconstructed purely from OSS.
    auto restarted =
        std::make_unique<core::SlimStore>(u.mem.get(), MakeOptions());
    Status rebuilt = restarted->Rebuild();
    ASSERT_TRUE(rebuilt.ok()) << label << ": rebuild failed: " << rebuilt;

    // Re-drive what the crash interrupted, then converge.
    DriveWorkload(restarted.get(), expected, /*swallow_errors=*/false);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << label;
    ExpectConverged(restarted.get(), expected, golden_space, label);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class CrashRestartSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRestartSweepTest, EveryCrashPointConverges) {
  RunSweepSeed(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRestartSweepTest,
                         ::testing::Range<uint64_t>(1, kSweepSeeds + 1),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

// ---------------------------------------------------------------------------
// Rebuild without any crash: a plain restart that never called
// SaveState must come back whole from recipes + containers alone.
// ---------------------------------------------------------------------------

TEST(RebuildTest, RebuildsWithoutCheckpointOrCrash) {
  const uint64_t seed = 42;
  const auto expected = MakeVersions(seed);
  auto mem = std::make_unique<oss::MemoryObjectStore>();
  {
    core::SlimStore slim(mem.get(), MakeOptions());
    DriveWorkload(&slim, expected, /*swallow_errors=*/false);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    // No SaveState: the process dies with its checkpointable state.
  }
  core::SlimStore restarted(mem.get(), MakeOptions());
  ASSERT_TRUE(restarted.Rebuild().ok());
  auto report = restarted.VerifyRepository();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().ok());
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = restarted.Restore(FileId(f), v);
      ASSERT_TRUE(data.ok()) << data.status();
      EXPECT_EQ(data.value(), expected[f][v]);
    }
  }
  // All versions were G-node processed before the restart and carry no
  // pending records, so nothing is pending after the rebuild either.
  EXPECT_TRUE(restarted.catalog()->GnodePending().empty());
  // Backups continue seamlessly: the next version lands on top.
  auto stats = restarted.Backup(FileId(0), expected[0][kVersions - 1]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().version, kVersions);
}

// A crashed backup leaves a pending record whose recipe never landed;
// Rebuild must delete the orphan rather than resurrect a half-version.
TEST(RebuildTest, OrphanPendingRecordIsDeleted) {
  auto mem = std::make_unique<oss::MemoryObjectStore>();
  core::SlimStore slim(mem.get(), MakeOptions());
  auto stats = slim.Backup("kept", std::string(4096, 'a'));
  ASSERT_TRUE(stats.ok()) << stats.status();

  // Forge the crash artifact: a pending record for a version that never
  // committed (its recipe object does not exist).
  format::PendingRecord orphan;
  orphan.file_id = "ghost";
  orphan.version = 0;
  orphan.new_containers = {99};
  ASSERT_TRUE(slim.pending_store()->Write(orphan).ok());

  core::SlimStore restarted(mem.get(), MakeOptions());
  ASSERT_TRUE(restarted.Rebuild().ok());
  EXPECT_FALSE(restarted.catalog()->Get("ghost", 0).has_value());
  auto exists = restarted.pending_store()->Exists("ghost", 0);
  ASSERT_TRUE(exists.ok()) << exists.status();
  EXPECT_FALSE(exists.value());
  EXPECT_TRUE(restarted.catalog()->Get("kept", 0).has_value());
}

// ---------------------------------------------------------------------------
// Statcache fast path: skip-unchanged backups, and their survival (with
// revalidation) across a rebuild.
// ---------------------------------------------------------------------------

core::SlimStoreOptions StatCacheOptions() {
  core::SlimStoreOptions options = MakeOptions();
  options.enable_statcache = true;
  return options;
}

TEST(StatCacheTest, UnchangedBackupForwardsRecipe) {
  auto mem = std::make_unique<oss::MemoryObjectStore>();
  core::SlimStore slim(mem.get(), StatCacheOptions());
  const std::string data(32 << 10, 'x');

  auto v0 = slim.Backup("f", data);
  ASSERT_TRUE(v0.ok()) << v0.status();
  EXPECT_EQ(v0.value().version, 0u);

  // Identical bytes: the fast path forwards the recipe — every chunk a
  // duplicate, no new containers, born fully G-node processed.
  auto v1 = slim.Backup("f", data);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1.value().version, 1u);
  EXPECT_EQ(v1.value().detection, lnode::BaseDetection::kByName);
  EXPECT_EQ(v1.value().dup_chunks, v1.value().total_chunks);
  EXPECT_TRUE(v1.value().new_containers.empty());
  auto info = slim.catalog()->Get("f", 1);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->gnode_pending);

  // Changed bytes fall back to the full pipeline.
  std::string changed = data;
  changed[100] = 'y';
  auto v2 = slim.Backup("f", changed);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2.value().version, 2u);
  EXPECT_LT(v2.value().dup_chunks, v2.value().total_chunks);

  // All three versions restore byte-identically.
  for (uint64_t v = 0; v < 3; ++v) {
    auto restored = slim.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), v == 2 ? changed : data);
  }
  auto report = slim.VerifyRepository();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().ok());
}

TEST(StatCacheTest, SurvivesRebuildViaCheckpointAndRevalidation) {
  auto mem = std::make_unique<oss::MemoryObjectStore>();
  const std::string data(32 << 10, 'x');
  {
    core::SlimStore slim(mem.get(), StatCacheOptions());
    ASSERT_TRUE(slim.Backup("f", data).ok());
    ASSERT_TRUE(slim.SaveState().ok());
  }
  core::SlimStore restarted(mem.get(), StatCacheOptions());
  ASSERT_TRUE(restarted.Rebuild().ok());
  // The checkpointed entry still describes the rebuilt latest version,
  // so it survives revalidation and the next identical backup is a
  // fast-path forward.
  EXPECT_EQ(restarted.stat_cache()->size(), 1u);
  auto v1 = restarted.Backup("f", data);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1.value().version, 1u);
  EXPECT_EQ(v1.value().dup_chunks, v1.value().total_chunks);
  EXPECT_TRUE(v1.value().new_containers.empty());
}

TEST(StatCacheTest, StaleEntriesDroppedAtRebuild) {
  auto mem = std::make_unique<oss::MemoryObjectStore>();
  const std::string data(32 << 10, 'x');
  {
    core::SlimStore slim(mem.get(), StatCacheOptions());
    ASSERT_TRUE(slim.Backup("f", data).ok());
    ASSERT_TRUE(slim.SaveState().ok());
    // The checkpoint now says "latest of f is v0"... and then v1 lands
    // without another SaveState, so the checkpointed entry is stale.
    ASSERT_TRUE(slim.Backup("f", data + "tail").ok());
  }
  core::SlimStore restarted(mem.get(), StatCacheOptions());
  ASSERT_TRUE(restarted.Rebuild().ok());
  // Revalidation dropped the stale entry (it names v0, latest is v1).
  EXPECT_EQ(restarted.stat_cache()->size(), 0u);
  // Cold statcache is only a missed optimization: the next backup runs
  // the full pipeline and still dedups everything against v0's recipe.
  auto v2 = restarted.Backup("f", data);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2.value().version, 2u);
  auto restored = restarted.Restore("f", 2);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
}

}  // namespace
}  // namespace slim
