// End-to-end scrub-and-repair sweeps (ctest label: durability).
//
// The invariants under test are the durability subsystem's contract:
//  1. With losses within redundancy (up to one replica of EVERY object
//     destroyed or bit-rotted), scrub detects everything and repair
//     converges in at most two cycles to a clean repository from which
//     every version restores byte-identically.
//  2. With losses beyond redundancy, scrub reports the EXACT
//     unrecoverable (version, chunk) set and restores fail cleanly —
//     corruption is never silent and bytes are never fabricated.
//  3. Structural rebuilds (container meta from the data object, recipe
//     toc/index from the recipe, container data from XOR parity) recover
//     without any replica.
//  4. A budgeted pass resumes from its durable cursor and finds exactly
//     what an unbudgeted pass finds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "core/slimstore.h"
#include "durability/checksum.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "durability/scrubber.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

constexpr size_t kFiles = 2;
constexpr size_t kVersions = 3;
constexpr size_t kBaseSize = 96 << 10;

std::string FileId(size_t f) { return "file-" + std::to_string(f); }

std::vector<std::vector<std::string>> MakeVersions(uint64_t seed) {
  std::vector<std::vector<std::string>> expected(kFiles);
  for (size_t f = 0; f < kFiles; ++f) {
    workload::GeneratorOptions gopts;
    gopts.base_size = kBaseSize;
    gopts.duplication_ratio = 0.80;
    gopts.seed = seed * 1000 + f;
    workload::VersionedFileGenerator gen(gopts);
    expected[f].push_back(gen.data());
    for (size_t v = 1; v < kVersions; ++v) {
      gen.Mutate();
      expected[f].push_back(gen.data());
    }
  }
  return expected;
}

core::SlimStoreOptions SmallContainerOptions() {
  core::SlimStoreOptions options;
  // Small containers so every run spans several of them.
  options.backup.container_capacity = 64 << 10;
  options.backup.sparse_utilization_threshold = 0.9;
  return options;
}

void BackupAll(core::SlimStore* slim,
               const std::vector<std::vector<std::string>>& expected) {
  for (size_t v = 0; v < kVersions; ++v) {
    for (size_t f = 0; f < kFiles; ++f) {
      auto stats = slim->Backup(FileId(f), expected[f][v]);
      ASSERT_TRUE(stats.ok()) << stats.status();
    }
  }
}

void ExpectAllRestore(core::SlimStore* slim,
                      const std::vector<std::vector<std::string>>& expected,
                      const char* when) {
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = slim->Restore(FileId(f), v);
      ASSERT_TRUE(data.ok()) << when << ": " << FileId(f) << "@v" << v
                             << ": " << data.status();
      ASSERT_EQ(data.value(), expected[f][v])
          << when << ": " << FileId(f) << "@v" << v << " not byte-identical";
    }
  }
}

// ---------------------------------------------------------------------------
// Replicated deployment
// ---------------------------------------------------------------------------

struct ReplicatedUniverse {
  std::vector<std::unique_ptr<oss::MemoryObjectStore>> backing;
  std::unique_ptr<durability::ReplicatingObjectStore> replicated;
  std::unique_ptr<core::SlimStore> slim;
};

ReplicatedUniverse MakeReplicated(uint32_t n) {
  ReplicatedUniverse u;
  std::vector<oss::ObjectStore*> replicas;
  for (uint32_t i = 0; i < n; ++i) {
    u.backing.push_back(std::make_unique<oss::MemoryObjectStore>());
    replicas.push_back(u.backing.back().get());
  }
  u.replicated = std::make_unique<durability::ReplicatingObjectStore>(
      std::move(replicas), durability::PlacementPolicy(),
      [](std::string_view object) {
        return durability::HasValidFooter(object);
      });
  core::SlimStoreOptions options = SmallContainerOptions();
  options.durability.replicated = u.replicated.get();
  u.slim = std::make_unique<core::SlimStore>(u.replicated.get(), options);
  return u;
}

// Destroys exactly one replica of every object: keys alternate
// (deterministically, by key hash) between hard deletion and a byte
// flip. Returns the number of keys damaged.
size_t DamageOneReplicaOfEverything(ReplicatedUniverse* u) {
  auto keys = u->replicated->List("slim/");
  EXPECT_TRUE(keys.ok());
  size_t damaged = 0;
  for (const std::string& key : keys.value()) {
    auto placed = u->replicated->PlacementFor(key);
    uint64_t h = Fnv1a64(key);
    oss::ObjectStore* victim =
        u->backing[placed[h % placed.size()]].get();
    auto held = victim->Get(key);
    if (!held.ok()) continue;
    if (h % 2 == 0) {
      EXPECT_TRUE(victim->Delete(key).ok());
    } else {
      std::string rotten = std::move(held).value();
      rotten[h % rotten.size()] =
          static_cast<char>(rotten[h % rotten.size()] ^ 0x20);
      EXPECT_TRUE(victim->Put(key, std::move(rotten)).ok());
    }
    ++damaged;
  }
  return damaged;
}

TEST(ScrubRepairTest, OneReplicaOfEverythingLostRepairsInTwoCycles) {
  ReplicatedUniverse u = MakeReplicated(3);
  auto expected = MakeVersions(41);
  BackupAll(u.slim.get(), expected);
  // A G-node pass first, so redirects and rewritten containers are part
  // of what the sweep must survive.
  ASSERT_TRUE(u.slim->RunGNodeCycle().ok());
  ASSERT_TRUE(u.slim->SaveState().ok());

  size_t damaged = DamageOneReplicaOfEverything(&u);
  ASSERT_GT(damaged, 10u);

  // Detection names every damaged object and fixes nothing.
  auto detect = u.slim->Scrub(/*repair=*/false);
  ASSERT_TRUE(detect.ok()) << detect.status();
  EXPECT_TRUE(detect.value().cycle_complete);
  EXPECT_GE(detect.value().problems.size(), damaged);
  EXPECT_EQ(detect.value().replicas_repaired, 0u);
  EXPECT_FALSE(detect.value().data_loss());

  // Repair converges in at most two cycles.
  bool clean = false;
  for (int cycle = 0; cycle < 2 && !clean; ++cycle) {
    auto repair = u.slim->Scrub(/*repair=*/true);
    ASSERT_TRUE(repair.ok()) << repair.status();
    ASSERT_TRUE(repair.value().cycle_complete);
    EXPECT_FALSE(repair.value().data_loss());
    clean = repair.value().problems.empty();
  }

  auto verify = u.slim->Scrub(/*repair=*/false);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().clean())
      << "first problem: "
      << (verify.value().problems.empty() ? "?"
                                          : verify.value().problems[0]);

  // Bit-rotted replicas were quarantined for forensics before repair.
  auto quarantine = u.replicated->List("slim/durability/quarantine/");
  ASSERT_TRUE(quarantine.ok());
  EXPECT_FALSE(quarantine.value().empty());

  ExpectAllRestore(u.slim.get(), expected, "after repair");
  auto fsck = u.slim->VerifyRepository();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().ok());
}

TEST(ScrubRepairTest, DetectionIsDeterministicAndSideEffectFree) {
  ReplicatedUniverse u = MakeReplicated(3);
  auto expected = MakeVersions(43);
  BackupAll(u.slim.get(), expected);
  ASSERT_TRUE(u.slim->SaveState().ok());
  ASSERT_GT(DamageOneReplicaOfEverything(&u), 0u);

  auto first = u.slim->Scrub(/*repair=*/false);
  auto second = u.slim->Scrub(/*repair=*/false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().problems, second.value().problems);
  EXPECT_EQ(first.value().checksum_failures,
            second.value().checksum_failures);
  EXPECT_EQ(first.value().objects_scanned, second.value().objects_scanned);
  EXPECT_EQ(first.value().quarantined, 0u);
  EXPECT_EQ(first.value().replicas_repaired, 0u);
}

TEST(ScrubRepairTest, LossBeyondRedundancyIsReportedExactly) {
  ReplicatedUniverse u = MakeReplicated(3);
  auto expected = MakeVersions(47);
  BackupAll(u.slim.get(), expected);
  ASSERT_TRUE(u.slim->SaveState().ok());

  // Kill EVERY replica of one container's data object.
  auto ids = u.slim->container_store()->ListContainerIds();
  ASSERT_TRUE(ids.ok());
  ASSERT_FALSE(ids.value().empty());
  const uint64_t victim = ids.value()[ids.value().size() / 2];
  const std::string victim_key =
      u.slim->container_store()->DataObjectKey(victim);
  for (auto& replica : u.backing) {
    ASSERT_TRUE(replica->Delete(victim_key).ok());
  }

  // The exact expected loss set, derived independently from the live
  // recipes: every (file, version, fingerprint) whose chunk lives in
  // the victim container (no G-node ran, so there are no redirects).
  std::set<std::string> expected_loss;
  std::set<std::pair<std::string, uint64_t>> affected_versions;
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto recipe = u.slim->recipe_store()->ReadRecipe(FileId(f), v);
      ASSERT_TRUE(recipe.ok());
      for (const auto& rec : recipe.value().Flatten()) {
        if (rec.container_id == victim) {
          expected_loss.insert(FileId(f) + "@" + std::to_string(v) + ":" +
                               rec.fp.ToHex());
          affected_versions.insert({FileId(f), v});
        }
      }
    }
  }
  ASSERT_FALSE(expected_loss.empty());

  auto report = u.slim->Scrub(/*repair=*/true);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report.value().cycle_complete);
  EXPECT_TRUE(report.value().data_loss());
  EXPECT_TRUE(report.value().unrecoverable_versions.empty());

  std::set<std::string> reported_loss;
  for (const auto& c : report.value().unrecoverable_chunks) {
    EXPECT_EQ(c.container_id, victim);
    reported_loss.insert(c.file_id + "@" + std::to_string(c.version) + ":" +
                         c.fp.ToHex());
  }
  EXPECT_EQ(reported_loss, expected_loss);

  // Affected versions fail cleanly; unaffected versions still restore
  // byte-identically.
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = u.slim->Restore(FileId(f), v);
      if (affected_versions.count({FileId(f), v}) > 0) {
        EXPECT_FALSE(data.ok()) << FileId(f) << "@v" << v;
      } else {
        ASSERT_TRUE(data.ok()) << FileId(f) << "@v" << v << ": "
                               << data.status();
        EXPECT_EQ(data.value(), expected[f][v]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Single-store structural rebuilds
// ---------------------------------------------------------------------------

TEST(ScrubRepairTest, MetaAndRecipeObjectsRebuildWithoutReplicas) {
  oss::MemoryObjectStore mem;
  core::SlimStore slim(&mem, SmallContainerOptions());
  auto expected = MakeVersions(53);
  BackupAll(&slim, expected);
  ASSERT_TRUE(slim.SaveState().ok());

  // Destroy every container meta and every toc + recipe index: all are
  // structurally derivable (meta from the data object's directory,
  // toc/index from the recipe).
  size_t destroyed = 0;
  for (const char* prefix :
       {"slim/containers/meta-", "slim/recipes/toc/",
        "slim/recipes/index/"}) {
    auto keys = mem.List(prefix);
    ASSERT_TRUE(keys.ok());
    for (const std::string& key : keys.value()) {
      ASSERT_TRUE(mem.Delete(key).ok());
      ++destroyed;
    }
  }
  ASSERT_GT(destroyed, 0u);

  auto detect = slim.Scrub(/*repair=*/false);
  ASSERT_TRUE(detect.ok());
  EXPECT_GE(detect.value().checksum_failures, destroyed);
  EXPECT_FALSE(detect.value().data_loss());

  auto repair = slim.Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok()) << repair.status();
  EXPECT_GT(repair.value().metas_rebuilt, 0u);
  EXPECT_GT(repair.value().recipes_rebuilt, 0u);
  EXPECT_FALSE(repair.value().data_loss());

  auto verify = slim.Scrub(/*repair=*/false);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().clean())
      << (verify.value().problems.empty() ? "?"
                                          : verify.value().problems[0]);
  ExpectAllRestore(&slim, expected, "after structural rebuild");
}

TEST(ScrubRepairTest, ParityReconstructsLostContainerOnSingleStore) {
  oss::MemoryObjectStore mem;
  core::SlimStoreOptions options = SmallContainerOptions();
  options.durability.scrub.parity_group_size = 4;
  core::SlimStore slim(&mem, options);
  auto expected = MakeVersions(59);
  BackupAll(&slim, expected);
  ASSERT_TRUE(slim.SaveState().ok());

  // First repair cycle builds the parity groups (lazy maintenance).
  auto build = slim.Scrub(/*repair=*/true);
  ASSERT_TRUE(build.ok()) << build.status();
  EXPECT_GT(build.value().parity_built, 0u);
  EXPECT_TRUE(build.value().clean());

  // Lose one container data object outright — no replica exists; parity
  // is the only redundancy.
  auto ids = slim.container_store()->ListContainerIds();
  ASSERT_TRUE(ids.ok());
  const uint64_t victim = ids.value().front();
  ASSERT_TRUE(
      mem.Delete(slim.container_store()->DataObjectKey(victim)).ok());

  // Detection reports it as reconstructible but does not write.
  auto detect = slim.Scrub(/*repair=*/false);
  ASSERT_TRUE(detect.ok());
  EXPECT_FALSE(detect.value().clean());
  EXPECT_FALSE(detect.value().data_loss());
  EXPECT_EQ(detect.value().parity_reconstructed, 0u);

  auto repair = slim.Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok()) << repair.status();
  EXPECT_EQ(repair.value().parity_reconstructed, 1u);
  EXPECT_FALSE(repair.value().data_loss());

  auto verify = slim.Scrub(/*repair=*/false);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().clean());
  ExpectAllRestore(&slim, expected, "after parity reconstruction");

  // Beyond parity: two losses in one group are unrecoverable — and said
  // so, not papered over.
  const uint64_t second = ids.value()[1];
  ASSERT_TRUE(
      mem.Delete(slim.container_store()->DataObjectKey(victim)).ok());
  ASSERT_TRUE(
      mem.Delete(slim.container_store()->DataObjectKey(second)).ok());
  auto both = slim.Scrub(/*repair=*/true);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both.value().data_loss());
}

// ---------------------------------------------------------------------------
// Budgeted, resumable cycles
// ---------------------------------------------------------------------------

TEST(ScrubRepairTest, BudgetedPassResumesFromDurableCursor) {
  oss::MemoryObjectStore mem;
  core::SlimStore slim(&mem, SmallContainerOptions());
  auto expected = MakeVersions(61);
  BackupAll(&slim, expected);
  ASSERT_TRUE(slim.SaveState().ok());

  // Damage a few objects so the budgeted pass has real findings.
  for (const char* prefix : {"slim/containers/meta-", "slim/recipes/toc/"}) {
    auto keys = mem.List(prefix);
    ASSERT_TRUE(keys.ok());
    ASSERT_FALSE(keys.value().empty());
    ASSERT_TRUE(mem.Delete(keys.value().front()).ok());
  }

  auto live_of = [&] {
    std::vector<durability::ScrubLiveVersion> live;
    for (const auto& fv : slim.catalog()->LiveVersions()) {
      durability::ScrubLiveVersion v;
      v.file_id = fv.file_id;
      v.version = fv.version;
      auto info = slim.catalog()->Get(fv.file_id, fv.version);
      if (info.has_value()) {
        v.referenced_containers.assign(info->referenced_containers.begin(),
                                       info->referenced_containers.end());
      }
      live.push_back(std::move(v));
    }
    return live;
  };

  // Reference: one unbudgeted detection pass.
  durability::ScrubOptions unbudgeted;
  durability::Scrubber reference(&mem, slim.container_store(),
                                 slim.recipe_store(), slim.global_index(),
                                 nullptr, "slim", unbudgeted);
  auto whole = reference.RunCycle(live_of(), /*repair=*/false);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(whole.value().cycle_complete);
  ASSERT_FALSE(whole.value().problems.empty());

  // Budgeted: 5 objects per cycle, resumed via the durable cursor.
  durability::ScrubOptions budgeted;
  budgeted.max_objects_per_cycle = 5;
  durability::Scrubber scrubber(&mem, slim.container_store(),
                                slim.recipe_store(), slim.global_index(),
                                nullptr, "slim", budgeted);
  std::vector<std::string> all_problems;
  uint64_t total_scanned = 0;
  size_t cycles = 0;
  for (;; ++cycles) {
    ASSERT_LT(cycles, 200u) << "budgeted pass failed to converge";
    auto cycle = scrubber.RunCycle(live_of(), /*repair=*/false);
    ASSERT_TRUE(cycle.ok()) << cycle.status();
    EXPECT_LE(cycle.value().objects_scanned, 5u);
    total_scanned += cycle.value().objects_scanned;
    for (const auto& p : cycle.value().problems) all_problems.push_back(p);
    if (cycle.value().cycle_complete) {
      EXPECT_FALSE(mem.Exists(scrubber.CursorKey()).value());
      break;
    }
    // Mid-pass: the cursor is durable (a new process could resume).
    EXPECT_TRUE(mem.Exists(scrubber.CursorKey()).value());
  }
  EXPECT_GT(cycles, 1u);
  // Resume is exact: every work item is processed exactly once across
  // the budgeted cycles (the cursor object lives outside the scanned
  // prefixes, so it does not inflate the count).
  EXPECT_EQ(total_scanned, whole.value().objects_scanned);
  std::sort(all_problems.begin(), all_problems.end());
  std::vector<std::string> whole_problems = whole.value().problems;
  std::sort(whole_problems.begin(), whole_problems.end());
  EXPECT_EQ(all_problems, whole_problems);
}

}  // namespace
}  // namespace slim
