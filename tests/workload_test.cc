#include <gtest/gtest.h>

#include <set>
#include <string>

#include "workload/generator.h"

namespace slim::workload {
namespace {

GeneratorOptions SmallOptions(uint64_t seed = 1) {
  GeneratorOptions options;
  options.base_size = 256 << 10;
  options.duplication_ratio = 0.85;
  options.self_reference = 0.2;
  options.block_size = 1024;
  options.seed = seed;
  return options;
}

TEST(GeneratorTest, BaseSizeHonored) {
  VersionedFileGenerator gen(SmallOptions());
  EXPECT_EQ(gen.data().size(), 256u << 10);
  EXPECT_EQ(gen.version(), 0u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  VersionedFileGenerator a(SmallOptions(7));
  VersionedFileGenerator b(SmallOptions(7));
  EXPECT_EQ(a.data(), b.data());
  a.Mutate();
  b.Mutate();
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.version(), 1u);
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentContent) {
  VersionedFileGenerator a(SmallOptions(1));
  VersionedFileGenerator b(SmallOptions(2));
  EXPECT_NE(a.data(), b.data());
}

TEST(GeneratorTest, MutationChangesRoughlyTargetFraction) {
  for (double target : {0.95, 0.85, 0.70}) {
    GeneratorOptions options = SmallOptions(11);
    options.duplication_ratio = target;
    VersionedFileGenerator gen(options);
    std::string before = gen.data();
    gen.Mutate();
    double measured =
        MeasureDuplication(before, gen.data(), 1024).byte_duplication;
    // CDC-measured duplication tracks the configured ratio within a
    // modest band (boundary chunks cost a little).
    EXPECT_NEAR(measured, target, 0.08) << "target " << target;
  }
}

TEST(GeneratorTest, SizeStaysRoughlyStable) {
  VersionedFileGenerator gen(SmallOptions(13));
  size_t base = gen.data().size();
  for (int i = 0; i < 20; ++i) gen.Mutate();
  // Inserts and deletes are balanced in expectation.
  EXPECT_GT(gen.data().size(), base / 2);
  EXPECT_LT(gen.data().size(), base * 2);
}

TEST(GeneratorTest, SelfReferenceProducesInternalDuplicates) {
  GeneratorOptions with = SmallOptions(17);
  with.self_reference = 0.3;
  GeneratorOptions without = SmallOptions(17);
  without.self_reference = 0.0;

  auto dup_blocks = [](const std::string& data) {
    std::set<uint64_t> seen;
    size_t dups = 0, total = 0;
    for (size_t off = 0; off + 1024 <= data.size(); off += 1024) {
      if (!seen.insert(Fnv1a64(data.data() + off, 1024)).second) ++dups;
      ++total;
    }
    return static_cast<double>(dups) / static_cast<double>(total);
  };
  EXPECT_GT(dup_blocks(VersionedFileGenerator(with).data()), 0.15);
  EXPECT_LT(dup_blocks(VersionedFileGenerator(without).data()), 0.02);
}

TEST(GeneratorTest, MutateWithExplicitRatio) {
  VersionedFileGenerator gen(SmallOptions(19));
  std::string before = gen.data();
  gen.MutateWithRatio(0.5);
  double measured =
      MeasureDuplication(before, gen.data(), 1024).byte_duplication;
  EXPECT_LT(measured, 0.75);
}

TEST(DatasetTest, SdbShape) {
  SdbOptions options;
  options.num_files = 3;
  options.file_size = 64 << 10;
  options.num_versions = 5;
  Dataset ds = Dataset::MakeSdb(options);
  EXPECT_EQ(ds.file_count(), 3u);
  EXPECT_EQ(ds.num_versions(), 5u);
  EXPECT_EQ(ds.files().size(), 3u);
  // Duplication ratios spread across [min, max].
  EXPECT_DOUBLE_EQ(ds.file_duplication(0), 0.65);
  EXPECT_DOUBLE_EQ(ds.file_duplication(2), 0.95);
  // Version stepping.
  int steps = 0;
  while (ds.NextVersion()) ++steps;
  EXPECT_EQ(steps, 4);
  EXPECT_EQ(ds.current_version(), 4u);
}

TEST(DatasetTest, RdataShape) {
  RdataOptions options;
  options.num_files = 5;
  options.file_size = 32 << 10;
  options.num_versions = 3;
  Dataset ds = Dataset::MakeRdata(options);
  EXPECT_EQ(ds.file_count(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ds.file_duplication(i), 0.92);
    EXPECT_EQ(ds.file_data(i).size(), 32u << 10);
  }
  EXPECT_NE(ds.file_id(0), ds.file_id(1));
}

TEST(DatasetTest, FilesEvolveIndependently) {
  SdbOptions options;
  options.num_files = 2;
  options.file_size = 64 << 10;
  options.num_versions = 3;
  Dataset ds = Dataset::MakeSdb(options);
  std::string f0 = ds.file_data(0);
  std::string f1 = ds.file_data(1);
  EXPECT_NE(f0, f1);
  ASSERT_TRUE(ds.NextVersion());
  EXPECT_NE(ds.file_data(0), f0);
  EXPECT_NE(ds.file_data(1), f1);
}

TEST(MeasureDuplicationTest, IdenticalIsOne) {
  VersionedFileGenerator gen(SmallOptions(23));
  EXPECT_DOUBLE_EQ(
      MeasureDuplication(gen.data(), gen.data(), 1024).byte_duplication,
      1.0);
}

TEST(MeasureDuplicationTest, UnrelatedIsNearZero) {
  VersionedFileGenerator a(SmallOptions(29));
  GeneratorOptions bo = SmallOptions(31);
  bo.self_reference = 0;
  VersionedFileGenerator b(bo);
  EXPECT_LT(MeasureDuplication(a.data(), b.data(), 1024).byte_duplication,
            0.02);
}

TEST(MeasureDuplicationTest, RobustToInsertions) {
  VersionedFileGenerator gen(SmallOptions(37));
  std::string shifted =
      gen.data().substr(0, 100) + "X" + gen.data().substr(100);
  // One inserted byte must not destroy the measured duplication
  // (content-defined measurement).
  EXPECT_GT(MeasureDuplication(gen.data(), shifted, 1024).byte_duplication,
            0.9);
}

TEST(MeasureDuplicationTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(MeasureDuplication("abc", "", 1024).byte_duplication,
                   0.0);
}

}  // namespace
}  // namespace slim::workload
