#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gnode/reverse_dedup.h"
#include "gnode/scc.h"
#include "gnode/version_collector.h"
#include "index/global_index.h"
#include "oss/memory_object_store.h"

namespace slim::gnode {
namespace {

using format::ChunkRecord;
using format::ContainerBuilder;
using format::ContainerId;
using format::ContainerStore;
using format::Recipe;
using format::RecipeStore;
using format::SegmentRecipe;

Fingerprint FpOf(const std::string& s) { return Sha1::Hash(s); }

/// Fixture with raw stores (no SlimStore facade) for precise G-node
/// unit tests.
class GNodeUnitTest : public ::testing::Test {
 protected:
  GNodeUnitTest()
      : containers_(&oss_, "c"), recipes_(&oss_, "r"), gindex_(&oss_, "g") {}

  /// Writes a container holding the given chunk contents; returns id.
  ContainerId WriteContainer(const std::vector<std::string>& chunks) {
    ContainerBuilder builder(containers_.AllocateId(), 1 << 20);
    for (const auto& c : chunks) EXPECT_TRUE(builder.Add(FpOf(c), c));
    ContainerId id = builder.id();
    EXPECT_TRUE(containers_.Write(std::move(builder)).ok());
    return id;
  }

  /// Registers chunks of a container in the global index.
  void IndexContainer(ContainerId id,
                      const std::vector<std::string>& chunks) {
    for (const auto& c : chunks) {
      ASSERT_TRUE(gindex_.Put(FpOf(c), id).ok());
    }
  }

  Recipe MakeRecipe(const std::string& file, uint64_t version,
                    const std::vector<std::pair<std::string, ContainerId>>&
                        chunks) {
    Recipe recipe;
    recipe.file_id = file;
    recipe.version = version;
    SegmentRecipe seg;
    for (const auto& [content, cid] : chunks) {
      ChunkRecord r;
      r.fp = FpOf(content);
      r.container_id = cid;
      r.size = static_cast<uint32_t>(content.size());
      seg.records.push_back(r);
    }
    recipe.segments.push_back(seg);
    return recipe;
  }

  oss::MemoryObjectStore oss_;
  ContainerStore containers_;
  RecipeStore recipes_;
  index::GlobalIndex gindex_;
};

// ---------------------------------------------------------------------------
// ReverseDeduplicator
// ---------------------------------------------------------------------------

TEST_F(GNodeUnitTest, ReverseDedupRegistersNewChunks) {
  ContainerId id = WriteContainer({"aaa", "bbb"});
  ReverseDeduplicator rd(&containers_, &gindex_);
  auto stats = rd.ProcessNewContainers({id});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().chunks_filtered, 2u);
  EXPECT_EQ(stats.value().index_inserts, 2u);
  EXPECT_EQ(stats.value().duplicates_found, 0u);
  EXPECT_EQ(gindex_.Get(FpOf("aaa")).value(), id);
}

TEST_F(GNodeUnitTest, ReverseDedupBloomSkipsUniqueChunks) {
  ContainerId id = WriteContainer({"u1", "u2", "u3"});
  ReverseDeduplicator rd(&containers_, &gindex_);
  auto stats = rd.ProcessNewContainers({id});
  ASSERT_TRUE(stats.ok());
  // All chunks were globally new: the bloom pre-filter should have
  // short-circuited (almost) all of them.
  EXPECT_GE(stats.value().bloom_negatives, 2u);
}

TEST_F(GNodeUnitTest, ReverseDedupTombstonesOldCopy) {
  ContainerId old_id = WriteContainer({"shared", "only-old"});
  IndexContainer(old_id, {"shared", "only-old"});
  ContainerId new_id = WriteContainer({"shared", "only-new"});

  ReverseDeduplicator rd(&containers_, &gindex_);
  auto stats = rd.ProcessNewContainers({new_id});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().duplicates_found, 1u);
  // Index re-pointed to the new (kept) copy.
  EXPECT_EQ(gindex_.Get(FpOf("shared")).value(), new_id);
  // Old copy tombstoned but data intact (below rewrite threshold? 1/2
  // = 50% > 20%, so it should have been compacted away).
  auto loaded = containers_.ReadContainer(old_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().GetChunk(FpOf("shared")).has_value());
  EXPECT_TRUE(loaded.value().GetChunk(FpOf("only-old")).has_value());
}

TEST_F(GNodeUnitTest, ReverseDedupRespectsRewriteThreshold) {
  // 1 duplicate among 6 chunks (16% < 20%): tombstone only, no rewrite.
  ContainerId old_id =
      WriteContainer({"dup", "k1", "k2", "k3", "k4", "k5"});
  IndexContainer(old_id, {"dup", "k1", "k2", "k3", "k4", "k5"});
  ContainerId new_id = WriteContainer({"dup"});

  ReverseDedupOptions options;
  options.rewrite_threshold = 0.20;
  ReverseDeduplicator rd(&containers_, &gindex_, options);
  auto stats = rd.ProcessNewContainers({new_id});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().duplicates_found, 1u);
  EXPECT_EQ(stats.value().containers_rewritten, 0u);
  // Data still present (only meta tombstoned).
  auto loaded = containers_.ReadContainer(old_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().GetChunk(FpOf("dup")).has_value());
  auto meta = containers_.ReadMeta(old_id);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().DeletedCount(), 1u);
}

TEST_F(GNodeUnitTest, ReverseDedupIdempotentOnRerun) {
  ContainerId old_id = WriteContainer({"x"});
  IndexContainer(old_id, {"x"});
  ContainerId new_id = WriteContainer({"x"});
  ReverseDeduplicator rd(&containers_, &gindex_);
  ASSERT_TRUE(rd.ProcessNewContainers({new_id}).ok());
  auto second = rd.ProcessNewContainers({new_id});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().duplicates_found, 0u);
  EXPECT_EQ(gindex_.Get(FpOf("x")).value(), new_id);
}

TEST_F(GNodeUnitTest, ReverseDedupKeepsNewerWhenBothInBatch) {
  // Both copies in the same batch (backup + SCC scenario): the copy in
  // the higher-numbered container must win, the other be tombstoned.
  ContainerId first = WriteContainer({"pp"});
  ContainerId second = WriteContainer({"pp"});
  ReverseDeduplicator rd(&containers_, &gindex_);
  auto stats = rd.ProcessNewContainers({first, second});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().duplicates_found, 1u);
  EXPECT_EQ(gindex_.Get(FpOf("pp")).value(), second);
  // The newer copy is alive.
  auto meta = containers_.ReadMeta(second);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().DeletedCount(), 0u);
}

// ---------------------------------------------------------------------------
// SparseContainerCompactor
// ---------------------------------------------------------------------------

TEST_F(GNodeUnitTest, SccMovesReferencedChunksAndUpdatesRecipe) {
  ContainerId sparse_id =
      WriteContainer({"wanted-1", "wanted-2", "junk-1", "junk-2",
                      "junk-3", "junk-4"});
  IndexContainer(sparse_id, {"wanted-1", "wanted-2"});
  Recipe recipe = MakeRecipe("f", 3, {{"wanted-1", sparse_id},
                                      {"wanted-2", sparse_id}});
  ASSERT_TRUE(recipes_.WriteRecipe(recipe, 4).ok());

  SparseContainerCompactor scc(&containers_, &recipes_, &gindex_);
  std::vector<ContainerId> new_ids;
  auto stats = scc.Compact("f", 3, {sparse_id}, &new_ids);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().chunks_moved, 2u);
  EXPECT_EQ(stats.value().new_containers, 1u);
  EXPECT_GT(stats.value().bytes_reclaimed, 0u);
  ASSERT_EQ(new_ids.size(), 1u);

  // Recipe now points at the dense container.
  auto updated = recipes_.ReadRecipe("f", 3);
  ASSERT_TRUE(updated.ok());
  for (const auto& rec : updated.value().Flatten()) {
    EXPECT_EQ(rec.container_id, new_ids[0]);
  }
  // Global index redirected.
  EXPECT_EQ(gindex_.Get(FpOf("wanted-1")).value(), new_ids[0]);
  // Source compacted: moved chunks gone, junk retained.
  auto loaded = containers_.ReadContainer(sparse_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().GetChunk(FpOf("wanted-1")).has_value());
  EXPECT_TRUE(loaded.value().GetChunk(FpOf("junk-1")).has_value());
}

TEST_F(GNodeUnitTest, SccNoopWithoutSparseContainers) {
  Recipe recipe = MakeRecipe("f", 0, {});
  ASSERT_TRUE(recipes_.WriteRecipe(recipe, 4).ok());
  SparseContainerCompactor scc(&containers_, &recipes_, &gindex_);
  auto stats = scc.Compact("f", 0, {}, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().chunks_moved, 0u);
}

TEST_F(GNodeUnitTest, SccIgnoresSparseContainersNotReferenced) {
  ContainerId unrelated = WriteContainer({"zzz"});
  Recipe recipe = MakeRecipe("f", 1, {});
  ASSERT_TRUE(recipes_.WriteRecipe(recipe, 4).ok());
  SparseContainerCompactor scc(&containers_, &recipes_, &gindex_);
  auto stats = scc.Compact("f", 1, {unrelated}, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().chunks_moved, 0u);
  // Unrelated container untouched.
  EXPECT_TRUE(
      containers_.ReadContainer(unrelated).value().GetChunk(FpOf("zzz"))
          .has_value());
}

TEST_F(GNodeUnitTest, SccUpdatesSuperchunkConstituents) {
  ContainerId sparse_id = WriteContainer({"c1", "c2", "f0", "f1", "f2",
                                          "f3", "f4", "f5"});
  // A recipe whose superchunk constituents live in the sparse container.
  Recipe recipe;
  recipe.file_id = "f";
  recipe.version = 9;
  SegmentRecipe seg;
  ChunkRecord sc;
  sc.fp = FpOf("span");
  sc.container_id = format::kInvalidContainerId;
  sc.size = 4;
  sc.is_superchunk = true;
  sc.first_chunk_fp = FpOf("c1");
  auto constituents = std::make_shared<std::vector<ChunkRecord>>();
  for (const char* c : {"c1", "c2"}) {
    ChunkRecord r;
    r.fp = FpOf(c);
    r.container_id = sparse_id;
    r.size = 2;
    constituents->push_back(r);
  }
  sc.constituents = constituents;
  seg.records.push_back(sc);
  recipe.segments.push_back(seg);
  ASSERT_TRUE(recipes_.WriteRecipe(recipe, 4).ok());

  SparseContainerCompactor scc(&containers_, &recipes_, &gindex_);
  std::vector<ContainerId> new_ids;
  auto stats = scc.Compact("f", 9, {sparse_id}, &new_ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().chunks_moved, 2u);
  ASSERT_EQ(new_ids.size(), 1u);

  auto updated = recipes_.ReadRecipe("f", 9);
  ASSERT_TRUE(updated.ok());
  const auto& record = updated.value().segments[0].records[0];
  ASSERT_TRUE(record.is_superchunk);
  ASSERT_NE(record.constituents, nullptr);
  for (const auto& constituent : *record.constituents) {
    EXPECT_EQ(constituent.container_id, new_ids[0]);
  }
}

// ---------------------------------------------------------------------------
// VersionCollector
// ---------------------------------------------------------------------------

TEST_F(GNodeUnitTest, MarkSweepReclaimsUnreferencedContainers) {
  ContainerId only_v0 = WriteContainer({"v0-only"});
  ContainerId shared = WriteContainer({"shared"});
  IndexContainer(only_v0, {"v0-only"});
  IndexContainer(shared, {"shared"});
  ASSERT_TRUE(recipes_
                  .WriteRecipe(MakeRecipe("f", 0, {{"v0-only", only_v0},
                                                   {"shared", shared}}),
                               4)
                  .ok());
  ASSERT_TRUE(
      recipes_.WriteRecipe(MakeRecipe("f", 1, {{"shared", shared}}), 4)
          .ok());

  index::SimilarFileIndex sfi;
  VersionCollector collector(&containers_, &recipes_, &sfi, &gindex_);
  auto stats = collector.CollectMarkSweep(
      "f", 0, {{"f", 0}, {"f", 1}});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().containers_deleted, 1u);
  EXPECT_FALSE(containers_.Exists(only_v0).value());
  EXPECT_TRUE(containers_.Exists(shared).value());
  // The recipe is gone; the reclaimed chunk's index entry scrubbed.
  EXPECT_TRUE(recipes_.ReadRecipe("f", 0).status().IsNotFound());
  EXPECT_TRUE(gindex_.Get(FpOf("v0-only")).status().IsNotFound());
  EXPECT_TRUE(gindex_.Get(FpOf("shared")).ok());
}

TEST_F(GNodeUnitTest, PrecomputedSweepHonorsLiveSets) {
  ContainerId candidate = WriteContainer({"maybe"});
  ASSERT_TRUE(
      recipes_.WriteRecipe(MakeRecipe("f", 0, {{"maybe", candidate}}), 4)
          .ok());
  index::SimilarFileIndex sfi;
  VersionCollector collector(&containers_, &recipes_, &sfi, &gindex_);
  // Another live version still references the candidate: not reclaimed.
  auto stats = collector.CollectPrecomputed("f", 0, {candidate},
                                            {{candidate}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().containers_deleted, 0u);
  EXPECT_TRUE(containers_.Exists(candidate).value());
}

TEST_F(GNodeUnitTest, PrecomputedSweepReclaimsWhenNothingReferences) {
  ContainerId candidate = WriteContainer({"gone"});
  IndexContainer(candidate, {"gone"});
  ASSERT_TRUE(
      recipes_.WriteRecipe(MakeRecipe("f", 0, {{"gone", candidate}}), 4)
          .ok());
  index::SimilarFileIndex sfi;
  VersionCollector collector(&containers_, &recipes_, &sfi, &gindex_);
  auto stats = collector.CollectPrecomputed("f", 0, {candidate}, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().containers_deleted, 1u);
  EXPECT_GT(stats.value().bytes_reclaimed, 0u);
  EXPECT_FALSE(containers_.Exists(candidate).value());
}

TEST_F(GNodeUnitTest, SweepSkipsAlreadyReclaimedContainers) {
  ContainerId candidate = WriteContainer({"dup-listed"});
  ASSERT_TRUE(
      recipes_.WriteRecipe(MakeRecipe("f", 0, {{"dup-listed", candidate}}),
                           4)
          .ok());
  ASSERT_TRUE(containers_.Delete(candidate).ok());  // Reclaimed earlier.
  index::SimilarFileIndex sfi;
  VersionCollector collector(&containers_, &recipes_, &sfi, &gindex_);
  auto stats = collector.CollectPrecomputed("f", 0, {candidate}, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().containers_deleted, 0u);
}

TEST_F(GNodeUnitTest, MarkSweepHonorsSuperchunkConstituents) {
  // A live version references a container ONLY through superchunk
  // constituents; GC of an older version must not reclaim it.
  ContainerId via_constituent = WriteContainer({"cc"});
  ASSERT_TRUE(recipes_
                  .WriteRecipe(
                      MakeRecipe("f", 0, {{"cc", via_constituent}}), 4)
                  .ok());
  Recipe live;
  live.file_id = "f";
  live.version = 1;
  SegmentRecipe seg;
  ChunkRecord sc;
  sc.fp = FpOf("span");
  sc.container_id = format::kInvalidContainerId;
  sc.is_superchunk = true;
  sc.size = 2;
  sc.first_chunk_fp = FpOf("cc");
  auto constituents = std::make_shared<std::vector<ChunkRecord>>();
  ChunkRecord c;
  c.fp = FpOf("cc");
  c.container_id = via_constituent;
  c.size = 2;
  constituents->push_back(c);
  sc.constituents = constituents;
  seg.records.push_back(sc);
  live.segments.push_back(seg);
  ASSERT_TRUE(recipes_.WriteRecipe(live, 4).ok());

  index::SimilarFileIndex sfi;
  VersionCollector collector(&containers_, &recipes_, &sfi, &gindex_);
  auto stats = collector.CollectMarkSweep("f", 0, {{"f", 0}, {"f", 1}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().containers_deleted, 0u);
  EXPECT_TRUE(containers_.Exists(via_constituent).value());
}

}  // namespace
}  // namespace slim::gnode
