// Negative-compile fixture: proves the class-level [[nodiscard]] on
// slim::Status and slim::Result actually rejects swallowed errors.
//
// Built twice by tests/CMakeLists.txt with -Werror=unused-result:
//   * without NEGCOMPILE_VIOLATE — must compile (control, so a failure of
//     the violating build can only come from the guarded lines);
//   * with NEGCOMPILE_VIOLATE — must FAIL to compile (WILL_FAIL ctest).

#include "common/status.h"

namespace slim {
namespace {

Status MightFail() { return Status::IoError("boom"); }
Result<int> MightFailWithValue() { return Status::NotFound("gone"); }

void Caller() {
#ifdef NEGCOMPILE_VIOLATE
  MightFail();           // error: ignoring [[nodiscard]] Status
  MightFailWithValue();  // error: ignoring [[nodiscard]] Result<int>
#else
  MightFail().IgnoreError();
  MightFailWithValue().IgnoreError();
#endif
}

}  // namespace
}  // namespace slim

int main() {
  slim::Caller();
  return 0;
}
