// Negative-compile fixture: proves the capability annotations on
// slim::Mutex catch an unlocked access to SLIM_GUARDED_BY state and an
// unlocked dereference of SLIM_PT_GUARDED_BY pointees.
//
// Clang-only (GCC compiles the annotations away). Built twice with
// -Wthread-safety -Werror=thread-safety-analysis:
//   * without NEGCOMPILE_VIOLATE — must compile (control);
//   * with NEGCOMPILE_VIOLATE — must FAIL to compile (WILL_FAIL ctest).

#include "common/mutex.h"

namespace slim {
namespace {

class Counter {
 public:
  void Increment() SLIM_EXCLUDES(mu_) {
#ifdef NEGCOMPILE_VIOLATE
    ++count_;  // error: writing count_ requires holding mutex mu_
#else
    MutexLock lock(mu_);
    ++count_;
#endif
  }

  int Get() const SLIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_{"negcompile.guard"};
  int count_ SLIM_GUARDED_BY(mu_) = 0;
};

// Mirrors the RocksOss layout: the pointer itself is set once in the
// constructor, but the pointee may only be touched with mu_ held.
class PointerGuard {
 public:
  explicit PointerGuard(int* shared) : shared_(shared) {}

  void Bump() SLIM_EXCLUDES(mu_) {
#ifdef NEGCOMPILE_VIOLATE
    ++*shared_;  // error: dereferencing shared_ requires holding mu_
#else
    MutexLock lock(mu_);
    ++*shared_;
#endif
  }

  int Read() const SLIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return *shared_;
  }

 private:
  mutable Mutex mu_{"negcompile.guard"};
  int* shared_ SLIM_PT_GUARDED_BY(mu_);
};

}  // namespace
}  // namespace slim

int main() {
  slim::Counter c;
  c.Increment();
  int value = 0;
  slim::PointerGuard guard(&value);
  guard.Bump();
  return (c.Get() == 1 && guard.Read() == 1) ? 0 : 1;
}
