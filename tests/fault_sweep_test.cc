// End-to-end fault-injection sweep: a seeded matrix of fault profiles
// is driven through generator -> backup -> fault-injected restore and
// G-node passes. The invariant under test is the one a backup system
// lives or dies by: under ANY injected fault schedule an operation
// either fails with a cleanly propagated Status or produces
// byte-identical data — never a restore that "succeeds" with wrong
// bytes, and never a repository a clean retry cannot bring back to a
// verified state. Everything is deterministic given the seed, which
// the sweep proves by replaying each cell and comparing injection logs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/retrying_object_store.h"
#include "workload/generator.h"

namespace slim {
namespace {

constexpr size_t kFiles = 2;
constexpr size_t kVersions = 3;
constexpr size_t kBaseSize = 96 << 10;
constexpr uint64_t kSweepSeeds = 20;

std::string FileId(size_t f) { return "file-" + std::to_string(f); }

// expected[f][v] = bytes of version v of file f. Deterministic in seed.
std::vector<std::vector<std::string>> MakeVersions(uint64_t seed) {
  std::vector<std::vector<std::string>> expected(kFiles);
  for (size_t f = 0; f < kFiles; ++f) {
    workload::GeneratorOptions gopts;
    gopts.base_size = kBaseSize;
    gopts.duplication_ratio = 0.80;
    gopts.seed = seed * 1000 + f;
    workload::VersionedFileGenerator gen(gopts);
    expected[f].push_back(gen.data());
    for (size_t v = 1; v < kVersions; ++v) {
      gen.Mutate();
      expected[f].push_back(gen.data());
    }
  }
  return expected;
}

// The full decorator stack of one simulated deployment:
//   SlimStore -> Retrying -> FaultInjecting -> Memory.
struct Universe {
  std::unique_ptr<oss::MemoryObjectStore> mem;
  std::unique_ptr<oss::FaultInjectingObjectStore> faulty;
  std::unique_ptr<oss::RetryingObjectStore> retrying;
  std::unique_ptr<core::SlimStore> slim;
};

core::SlimStoreOptions MakeStoreOptions() {
  core::SlimStoreOptions options;
  // Small containers so every cell spans several of them, and an
  // aggressive sparseness threshold so partially-referenced containers
  // qualify for SCC — otherwise ~80% inter-version duplication never
  // drops utilization below the default 0.30 and the G-node phases
  // would be no-ops.
  options.backup.container_capacity = 64 << 10;
  options.backup.sparse_utilization_threshold = 0.9;
  return options;
}

Universe MakeUniverse(const oss::FaultProfile& profile,
                      const oss::RetryPolicy& policy) {
  Universe u;
  u.mem = std::make_unique<oss::MemoryObjectStore>();
  u.faulty =
      std::make_unique<oss::FaultInjectingObjectStore>(u.mem.get(), profile);
  u.faulty->set_enabled(false);  // Armed after the clean backup phase.
  u.retrying =
      std::make_unique<oss::RetryingObjectStore>(u.faulty.get(), policy);
  u.slim = std::make_unique<core::SlimStore>(u.retrying.get(),
                                             MakeStoreOptions());
  return u;
}

// Backs up every version of every file with faults disarmed.
void CleanBackups(Universe* u,
                  const std::vector<std::vector<std::string>>& expected) {
  for (size_t v = 0; v < kVersions; ++v) {
    for (size_t f = 0; f < kFiles; ++f) {
      auto stats = u->slim->Backup(FileId(f), expected[f][v]);
      ASSERT_TRUE(stats.ok()) << stats.status();
      ASSERT_EQ(stats.value().version, v);
    }
  }
}

std::string FormatFault(const oss::InjectedFault& fault) {
  return fault.op + " " + fault.key + " #" + std::to_string(fault.op_index) +
         " -> " + StatusCodeName(fault.code) +
         (fault.latency_nanos > 0
              ? " +" + std::to_string(fault.latency_nanos) + "ns"
              : "");
}

// Everything observable about one sweep cell, for determinism replay.
struct CellOutcome {
  std::vector<std::string> events;

  bool operator==(const CellOutcome& rhs) const {
    return events == rhs.events;
  }
};

enum class ProfileKind {
  kTransientRetried,  // Light transients, generous retries: must succeed.
  kTransientHeavy,    // Heavy transients, tight retries: error-or-correct.
  kCrashCut,          // Hard cut after N ops: error-or-correct.
  kCrashRestart,      // Hard cut, then process death + Rebuild().
  kPermanentData,     // Container-data keyspace hard down.
};

const char* ProfileName(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kTransientRetried:
      return "transient_retried";
    case ProfileKind::kTransientHeavy:
      return "transient_heavy";
    case ProfileKind::kCrashCut:
      return "crash_cut";
    case ProfileKind::kCrashRestart:
      return "crash_restart";
    case ProfileKind::kPermanentData:
      return "permanent_data";
  }
  return "?";
}

oss::FaultProfile MakeProfile(ProfileKind kind, uint64_t seed) {
  switch (kind) {
    case ProfileKind::kTransientRetried:
      return oss::FaultProfile::TransientLight(seed);
    case ProfileKind::kTransientHeavy:
      return oss::FaultProfile::TransientHeavy(seed);
    case ProfileKind::kCrashCut:
    case ProfileKind::kCrashRestart:
      // Vary the cut point with the seed so the sweep slices the
      // restore/G-node pipelines at many different operations.
      return oss::FaultProfile::CrashCut(10 + seed * 7 % 120, seed);
    case ProfileKind::kPermanentData:
      return oss::FaultProfile::PermanentPrefix("slim/containers/data-",
                                                seed);
  }
  return {};
}

oss::RetryPolicy MakePolicy(ProfileKind kind, uint64_t seed) {
  oss::RetryPolicy policy;
  policy.seed = seed;
  switch (kind) {
    case ProfileKind::kTransientRetried:
      policy.max_attempts = 8;
      break;
    case ProfileKind::kTransientHeavy:
      policy.max_attempts = 2;
      break;
    case ProfileKind::kCrashCut:
    case ProfileKind::kCrashRestart:
    case ProfileKind::kPermanentData:
      policy.max_attempts = 2;
      break;
  }
  return policy;
}

// Runs one (seed, profile) cell: clean backups, then fault-injected
// restores and a fault-injected G-node cycle, then recovery with faults
// disarmed. Asserts error-or-byte-identical throughout and returns the
// cell's observable outcome for the determinism replay.
CellOutcome RunCell(ProfileKind kind, uint64_t seed) {
  CellOutcome outcome;
  const auto expected = MakeVersions(seed);
  Universe u = MakeUniverse(MakeProfile(kind, seed), MakePolicy(kind, seed));
  CleanBackups(&u, expected);
  if (::testing::Test::HasFatalFailure()) return outcome;

  // --- Fault phase -----------------------------------------------------
  u.faulty->Reset();
  u.faulty->set_enabled(true);

  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = u.slim->Restore(FileId(f), v);
      std::string label =
          "restore " + FileId(f) + "@v" + std::to_string(v) + ": ";
      if (data.ok()) {
        // THE invariant: a restore that reports success must be
        // byte-identical. Anything else is silent corruption.
        if (data.value() == expected[f][v]) {
          outcome.events.push_back(label + "ok");
        } else {
          outcome.events.push_back(label + "CORRUPT");
          ADD_FAILURE() << ProfileName(kind) << " seed " << seed << ": "
                        << label
                        << "restore succeeded with non-identical bytes";
        }
      } else {
        outcome.events.push_back(label + data.status().ToString());
        EXPECT_NE(kind, ProfileKind::kTransientRetried)
            << "seed " << seed << ": light transients must be fully "
            << "absorbed by retries, got " << data.status();
      }
    }
  }

  auto faulted_cycle = u.slim->RunGNodeCycle();
  outcome.events.push_back(
      std::string("gnode: ") +
      (faulted_cycle.ok() ? "ok" : faulted_cycle.status().ToString()));

  // --- Recovery phase --------------------------------------------------
  // Faults disarmed: the repository must come back to a fully verified,
  // byte-identical state no matter where the faults cut.
  for (const oss::InjectedFault& fault : u.faulty->injection_log()) {
    outcome.events.push_back(FormatFault(fault));
  }
  u.faulty->set_enabled(false);

  if (kind == ProfileKind::kCrashRestart) {
    // The cut was a process death, not a blip: throw the L-node away —
    // caches, catalog, statcache, everything — and bring up a fresh one
    // over the same OSS stack. Recovery below must then work from
    // rebuilt state alone.
    u.slim.reset();
    u.slim = std::make_unique<core::SlimStore>(u.retrying.get(),
                                               MakeStoreOptions());
    auto rebuilt = u.slim->Rebuild();
    EXPECT_TRUE(rebuilt.ok())
        << ProfileName(kind) << " seed " << seed
        << ": rebuild after restart failed: " << rebuilt;
    if (!rebuilt.ok()) return outcome;
  }

  auto recovered_cycle = u.slim->RunGNodeCycle();
  EXPECT_TRUE(recovered_cycle.ok())
      << ProfileName(kind) << " seed " << seed
      << ": clean G-node retry failed: " << recovered_cycle.status();

  auto report = u.slim->VerifyRepository();
  EXPECT_TRUE(report.ok()) << report.status();
  if (report.ok()) {
    EXPECT_TRUE(report.value().ok())
        << ProfileName(kind) << " seed " << seed << ": "
        << (report.value().problems.empty()
                ? ""
                : report.value().problems.front());
  }

  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = u.slim->Restore(FileId(f), v);
      EXPECT_TRUE(data.ok()) << ProfileName(kind) << " seed " << seed
                             << ": clean restore failed: " << data.status();
      if (!data.ok()) continue;
      EXPECT_EQ(data.value(), expected[f][v])
          << ProfileName(kind) << " seed " << seed << ": " << FileId(f)
          << "@v" << v << " corrupt after recovery";
    }
  }
  return outcome;
}

class FaultSweepTest : public ::testing::TestWithParam<ProfileKind> {};

TEST_P(FaultSweepTest, ErrorOrIdenticalAcrossSeedsAndDeterministic) {
  for (uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    CellOutcome first = RunCell(GetParam(), seed);
    if (::testing::Test::HasFatalFailure()) return;
    // Same seed => same injection log and same outcomes, replayed in a
    // brand-new universe.
    CellOutcome second = RunCell(GetParam(), seed);
    EXPECT_EQ(first, second)
        << ProfileName(GetParam()) << " seed " << seed
        << ": outcome not deterministic across replays";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FaultSweepTest,
    ::testing::Values(ProfileKind::kTransientRetried,
                      ProfileKind::kTransientHeavy, ProfileKind::kCrashCut,
                      ProfileKind::kCrashRestart,
                      ProfileKind::kPermanentData),
    [](const ::testing::TestParamInfo<ProfileKind>& param_info) {
      return ProfileName(param_info.param);
    });

// ---------------------------------------------------------------------------
// G-node idempotence: a cycle that dies mid-pass and is retried cleanly
// must converge to the same space costs as a universe that never saw a
// fault (satellite: SCC abort-and-retry).
// ---------------------------------------------------------------------------

struct GnodeSpace {
  uint64_t container_bytes;
  uint64_t meta_bytes;
  uint64_t recipe_bytes;
};

// Space the G-node is responsible for. The global index is excluded:
// its run structure legitimately differs when flushes are split by a
// failure (the *mappings* converge, the packaging need not).
GnodeSpace SpaceOf(core::SlimStore* slim) {
  auto report = slim->GetSpaceReport();
  EXPECT_TRUE(report.ok()) << report.status();
  if (!report.ok()) return {0, 0, 0};
  return {report.value().container_bytes, report.value().meta_bytes,
          report.value().recipe_bytes};
}

// Runs the convergence scenario with a fault profile striking the given
// keyspace during the first G-node cycle.
void CheckGnodeConvergence(const std::string& faulted_prefix,
                           uint64_t seed) {
  const auto expected = MakeVersions(seed);

  // Universe A: never sees a fault.
  oss::FaultProfile no_faults;
  oss::RetryPolicy no_retries;
  no_retries.max_attempts = 1;
  Universe a = MakeUniverse(no_faults, no_retries);
  CleanBackups(&a, expected);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  auto clean_cycle = a.slim->RunGNodeCycle();
  ASSERT_TRUE(clean_cycle.ok()) << clean_cycle.status();

  // Universe B: same data, but the first cycle dies mid-pass.
  Universe b = MakeUniverse(
      oss::FaultProfile::PermanentPrefix(faulted_prefix, seed), no_retries);
  CleanBackups(&b, expected);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  b.faulty->set_enabled(true);
  auto faulted_cycle = b.slim->RunGNodeCycle();
  ASSERT_FALSE(faulted_cycle.ok())
      << "fault on " << faulted_prefix
      << " was expected to break the first cycle";
  b.faulty->set_enabled(false);

  auto retried_cycle = b.slim->RunGNodeCycle();
  ASSERT_TRUE(retried_cycle.ok()) << retried_cycle.status();

  // Convergence: same bytes on OSS as the never-faulted universe.
  GnodeSpace space_a = SpaceOf(a.slim.get());
  GnodeSpace space_b = SpaceOf(b.slim.get());
  EXPECT_EQ(space_a.container_bytes, space_b.container_bytes);
  EXPECT_EQ(space_a.meta_bytes, space_b.meta_bytes);
  EXPECT_EQ(space_a.recipe_bytes, space_b.recipe_bytes);

  // And the repository is whole: verified, every version byte-identical.
  auto report = b.slim->VerifyRepository();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().ok())
      << (report.value().problems.empty() ? ""
                                          : report.value().problems.front());
  for (size_t f = 0; f < kFiles; ++f) {
    for (size_t v = 0; v < kVersions; ++v) {
      auto data = b.slim->Restore(FileId(f), v);
      ASSERT_TRUE(data.ok()) << data.status();
      EXPECT_EQ(data.value(), expected[f][v]);
    }
  }
}

TEST(GnodeIdempotenceTest, SccRetryAfterRecipeCommitFailureConverges) {
  // The recipe keyspace is down: SCC finishes its copy phase, fails at
  // the commit point, and must roll the new containers back. The retry
  // then redoes the whole pass from scratch.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CheckGnodeConvergence("slim/recipes/", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(GnodeIdempotenceTest, SccRetryAfterIndexFailureConverges) {
  // The global-index keyspace is down: SCC commits the rewritten recipe
  // but dies in the roll-forward (index flush). The retry must resume
  // from durable state — tombstones, redirects, compaction — without
  // re-copying chunks.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CheckGnodeConvergence("slim/gindex/", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace slim
