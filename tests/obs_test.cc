// Tests for the observability layer: metrics registry, histograms,
// spans/tracing, exporters, and the logger integration.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace slim::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter& c = MetricsRegistry::Get().counter("obs_test.counter.mt");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge& g = MetricsRegistry::Get().gauge("obs_test.gauge");
  g.Set(10);
  g.Add(5);
  g.Sub(20);
  EXPECT_EQ(g.value(), -5);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(RegistryTest, SameNameSameHandle) {
  Counter& a = MetricsRegistry::Get().counter("obs_test.same");
  Counter& b = MetricsRegistry::Get().counter("obs_test.same");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramTest, EmptyReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
  EXPECT_EQ(h.Stats().p99, 0u);
}

TEST(HistogramTest, SingleValueIsExactAtEveryPercentile) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.ValueAtPercentile(0), 42u);
  EXPECT_EQ(h.ValueAtPercentile(50), 42u);
  EXPECT_EQ(h.ValueAtPercentile(99), 42u);
  EXPECT_EQ(h.ValueAtPercentile(100), 42u);
  HistogramStats s = h.Stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 42u);
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.max, 42u);
}

TEST(HistogramTest, PercentileEdgesOnUniformRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Edges are exact (clamped to observed min/max).
  EXPECT_EQ(h.ValueAtPercentile(0), 1u);
  EXPECT_EQ(h.ValueAtPercentile(100), 1000u);
  // Interior percentiles resolve to a power-of-two bucket bound: the
  // true p50 (500) lies in bucket [256, 511], so within one bucket.
  uint64_t p50 = h.ValueAtPercentile(50);
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1000u);
  uint64_t p99 = h.ValueAtPercentile(99);
  EXPECT_GE(p99, 512u);
  EXPECT_LE(p99, 1000u);
  EXPECT_LE(h.ValueAtPercentile(50), h.ValueAtPercentile(95));
  EXPECT_LE(h.ValueAtPercentile(95), h.ValueAtPercentile(99));
}

TEST(HistogramTest, InterpolatedQuantilesAreMonotoneAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramStats s = h.Stats();
  EXPECT_EQ(s.count, 1000u);
  // Interpolation keeps quantiles ordered and inside [min, max].
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  // The true p50 is 500 in bucket [256, 511]; linear interpolation
  // lands well inside that bucket rather than pinning to its bound.
  EXPECT_GT(s.p50, 300u);
  EXPECT_LT(s.p50, 700u);
  // p90 = 900 lies in bucket [512, 1023]; clamped to max 1000.
  EXPECT_GT(s.p90, 700u);
  EXPECT_LE(s.p90, 1000u);
}

TEST(HistogramTest, InterpolationClampsToObservedRangeWithinOneBucket) {
  Histogram h;
  // Both values share bucket [512, 1023]; interpolation must never step
  // outside what was actually observed.
  h.Record(600);
  h.Record(610);
  EXPECT_EQ(h.ValueAtPercentile(0), 600u);
  EXPECT_EQ(h.ValueAtPercentile(100), 610u);
  uint64_t p50 = h.ValueAtPercentile(50);
  EXPECT_GE(p50, 600u);
  EXPECT_LE(p50, 610u);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram& h = MetricsRegistry::Get().histogram("obs_test.hist.mt");
  h.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 977 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_GE(h.Stats().min, 1u);
}

TEST(RegistryTest, ResetAllZeroesButKeepsHandles) {
  auto& reg = MetricsRegistry::Get();
  Counter& c = reg.counter("obs_test.resetall.c");
  Histogram& h = reg.histogram("obs_test.resetall.h");
  c.Inc(5);
  h.Record(9);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // The same references keep working after the reset.
  c.Inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(SpanTest, NestingViaThreadLocalContext) {
  TraceSink::Get().Clear();
  uint64_t outer_id = 0;
  {
    Span outer("obs_test.outer");
    outer_id = outer.id();
    EXPECT_EQ(Span::CurrentId(), outer_id);
    {
      Span inner("obs_test.inner");
      EXPECT_EQ(Span::CurrentId(), inner.id());
    }
    EXPECT_EQ(Span::CurrentId(), outer_id);
  }
  EXPECT_EQ(Span::CurrentId(), 0u);

  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: inner closes (and records) first.
  EXPECT_EQ(spans[0].name, "obs_test.inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "obs_test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST(SpanTest, ExplicitParentCrossesThreads) {
  TraceSink::Get().Clear();
  uint64_t root_id = 0;
  {
    Span root("obs_test.root");
    root_id = root.id();
    std::thread worker([root_id] {
      // A worker thread has no inherited context; nest explicitly, the
      // way restore prefetchers attach to their restore span.
      Span child("obs_test.remote_child", root_id);
      EXPECT_EQ(child.id() != 0u, true);
    });
    worker.join();
  }
  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "obs_test.remote_child");
  EXPECT_EQ(spans[0].parent_id, root_id);
  EXPECT_EQ(spans[0].depth, 1u);
}

TEST(SpanTest, RingBufferOverwritesOldest) {
  TraceSink::Get().Clear();
  size_t original = TraceSink::Get().capacity();
  TraceSink::Get().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    Span s("obs_test.ring" + std::to_string(i));
  }
  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.back().name, "obs_test.ring9");
  EXPECT_EQ(spans.front().name, "obs_test.ring6");
  TraceSink::Get().set_capacity(original);
}

TEST(SpanTest, OverflowBumpsDroppedTallyAndCounter) {
  Counter& dropped_counter =
      MetricsRegistry::Get().counter("obs.trace.dropped");
  size_t original = TraceSink::Get().capacity();
  TraceSink::Get().set_capacity(4);  // Also resets the dropped tally.
  EXPECT_EQ(TraceSink::Get().dropped(), 0u);
  uint64_t counter_before = dropped_counter.value();
  for (int i = 0; i < 10; ++i) {
    Span s("obs_test.drop" + std::to_string(i));
  }
  // 10 spans into a 4-slot ring: 6 overwritten.
  EXPECT_EQ(TraceSink::Get().dropped(), 6u);
  EXPECT_EQ(dropped_counter.value() - counter_before, 6u);
  // The table renderer reports the loss instead of truncating silently.
  std::string trace = RenderTrace(TraceSink::Get());
  EXPECT_NE(trace.find("6 span(s) dropped"), std::string::npos);
  TraceSink::Get().Clear();
  EXPECT_EQ(TraceSink::Get().dropped(), 0u);
  TraceSink::Get().set_capacity(original);
}

TEST(SpanTest, SpansCarrySmallThreadIds) {
  TraceSink::Get().Clear();
  uint32_t main_tid = TraceThreadId();
  EXPECT_GT(main_tid, 0u);
  EXPECT_EQ(TraceThreadId(), main_tid);  // Stable within a thread.
  { Span s("obs_test.tid_main"); }
  uint32_t worker_tid = 0;
  std::thread worker([&worker_tid] {
    worker_tid = TraceThreadId();
    Span s("obs_test.tid_worker");
  });
  worker.join();
  EXPECT_NE(worker_tid, main_tid);
  std::vector<SpanRecord> spans = TraceSink::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tid, main_tid);
  EXPECT_EQ(spans[1].tid, worker_tid);
}

TEST(ScopedTimerTest, RecordsOnceAndBumpsCounter) {
  Histogram h;
  Counter c;
  {
    ScopedTimer timer(&h, &c);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ExportTest, JsonContainsRegisteredMetrics) {
  auto& reg = MetricsRegistry::Get();
  reg.counter("obs_test.json.counter").Reset();
  reg.counter("obs_test.json.counter").Inc(7);
  reg.gauge("obs_test.json.gauge").Set(-3);
  reg.histogram("obs_test.json.hist").Reset();
  reg.histogram("obs_test.json.hist").Record(100);

  std::string json = RenderRegistry(ExportFormat::kJson);
  EXPECT_NE(json.find("\"obs_test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.gauge\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.hist\": {\"count\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ExportTest, PrometheusNamesAreSanitized) {
  auto& reg = MetricsRegistry::Get();
  reg.counter("obs_test.prom.counter").Reset();
  reg.counter("obs_test.prom.counter").Inc(11);
  reg.histogram("obs_test.prom.hist").Record(50);

  std::string prom = RenderRegistry(ExportFormat::kPrometheus);
  // TYPE declares the base name; the counter sample carries the
  // conventional _total suffix.
  EXPECT_NE(prom.find("# TYPE slim_obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("slim_obs_test_prom_counter_total 11"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE slim_obs_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(prom.find("slim_obs_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("slim_obs_test_prom_hist{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("slim_obs_test_prom_hist_count 1"), std::string::npos);
  // No raw dots survive in metric names, and _total is not doubled.
  EXPECT_EQ(prom.find("slim_obs_test.prom"), std::string::npos);
  EXPECT_EQ(prom.find("_total_total"), std::string::npos);
}

TEST(ExportTest, PrometheusCounterTotalSuffixNotDuplicated) {
  auto& reg = MetricsRegistry::Get();
  reg.counter("obs_test.prom.already_total").Reset();
  reg.counter("obs_test.prom.already_total").Inc(3);
  std::string prom = RenderRegistry(ExportFormat::kPrometheus);
  EXPECT_NE(prom.find("slim_obs_test_prom_already_total 3"),
            std::string::npos);
  EXPECT_EQ(prom.find("slim_obs_test_prom_already_total_total"),
            std::string::npos);
}

TEST(ExportTest, PromEscapeLabelValueEscapesSpecials) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(PromEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(ExportTest, PromMetricNameSanitizes) {
  EXPECT_EQ(PromMetricName("oss.get.requests"), "slim_oss_get_requests");
  EXPECT_EQ(PromMetricName("backup-pipeline/chunk ns"),
            "slim_backup_pipeline_chunk_ns");
}

TEST(ExportTest, TableListsSections) {
  auto& reg = MetricsRegistry::Get();
  reg.counter("obs_test.table.counter").Inc();
  std::string table = RenderRegistry(ExportFormat::kTable);
  EXPECT_NE(table.find("-- counters --"), std::string::npos);
  EXPECT_NE(table.find("obs_test.table.counter"), std::string::npos);
}

TEST(ExportTest, TraceRendersSpanTree) {
  TraceSink::Get().Clear();
  {
    Span outer("obs_test.render_outer");
    Span inner("obs_test.render_inner");
  }
  std::string trace = RenderTrace(TraceSink::Get());
  EXPECT_NE(trace.find("obs_test.render_outer"), std::string::npos);
  // The child is indented under its parent.
  EXPECT_NE(trace.find("  obs_test.render_inner"), std::string::npos);
}

TEST(LoggerTest, SinkCapturesFormattedLines) {
  std::vector<std::string> lines;
  Logger::Get().set_sink(
      [&lines](LogLevel, const std::string& line) { lines.push_back(line); });
  LogWarn("oss", "slow request");
  Logger::Get().set_sink(nullptr);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[WARN] [oss] slow request"), std::string::npos);
  // Timestamped: "[YYYY-MM-DD HH:MM:SS.mmm]" prefix.
  EXPECT_EQ(lines[0][0], '[');
  EXPECT_EQ(lines[0].substr(5, 1), "-");
}

TEST(LoggerTest, WarnAndErrorCountsTrackedAsGauges) {
  auto& reg = MetricsRegistry::Get();
  Logger::Get().set_sink([](LogLevel, const std::string&) {});
  int64_t warns_before = reg.gauge("log.warnings").value();
  int64_t errors_before = reg.gauge("log.errors").value();
  LogWarn("test", "w");
  LogError("test", "e");
  LogDebug("test", "suppressed but fine");
  Logger::Get().set_sink(nullptr);
  EXPECT_EQ(reg.gauge("log.warnings").value(), warns_before + 1);
  EXPECT_EQ(reg.gauge("log.errors").value(), errors_before + 1);
}

}  // namespace
}  // namespace slim::obs
