// Membership-change and rebalance tests for the sharded cluster
// (DESIGN.md §8): two-phase Join/Leave staging, the ring-delta-only
// data movement guarantee asserted via OSS op counts, idempotent resume
// across injected crash cuts, and the bandwidth throttle.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "cluster/sharded_cluster.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

namespace slim {
namespace {

using cluster::ShardedCluster;
using cluster::ShardedClusterOptions;
using cluster::ShardMap;
using oss::MemoryObjectStore;
using oss::OssCostModel;
using oss::SimulatedOss;
using workload::GeneratorOptions;
using workload::VersionedFileGenerator;

OssCostModel FreeModel() {
  OssCostModel model;
  model.sleep_for_cost = false;
  return model;
}

core::SlimStoreOptions SmallStoreOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_type = chunking::ChunkerType::kFastCdc;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.segment_max_chunks = 64;
  options.restore.cache_bytes = 1 << 20;
  options.restore.prefetch_threads = 0;
  return options;
}

ShardedClusterOptions SmallClusterOptions() {
  ShardedClusterOptions options;
  options.root = "cluster";
  options.num_shards = 8;
  options.vnodes_per_node = 8;
  options.store = SmallStoreOptions();
  return options;
}

/// Truth table of the deterministic seed data: tenant -> file ->
/// versions (payload bytes).
using Truth =
    std::map<std::string, std::map<std::string, std::vector<std::string>>>;

/// Seeds the cluster with two tenants, one file per (tenant, shard) —
/// every shard holds data for every tenant, so ANY nonempty ring delta
/// is guaranteed to move objects. Fully deterministic: file names are
/// found by probing the shard hash, which depends only on num_shards.
Truth SeedCluster(ShardedCluster* cluster) {
  const uint32_t num_shards = cluster->options().num_shards;
  ShardMap probe(num_shards, 1, {"probe"});
  Truth truth;
  uint64_t seed = 42;
  for (const std::string tenant : {"alpha", "beta"}) {
    std::set<uint32_t> covered;
    for (int candidate = 0; covered.size() < num_shards && candidate < 10000;
         ++candidate) {
      std::string file = "f" + std::to_string(candidate);
      uint32_t shard = probe.ShardOfFile(tenant, file);
      if (!covered.insert(shard).second) continue;
      GeneratorOptions gen;
      gen.base_size = 24 << 10;
      gen.duplication_ratio = 0.8;
      gen.block_size = 1024;
      gen.seed = seed++;
      VersionedFileGenerator generator(gen);
      truth[tenant][file].push_back(generator.data());
      auto stats = cluster->Backup(tenant, file, generator.data());
      EXPECT_TRUE(stats.ok()) << stats.status();
    }
    EXPECT_EQ(covered.size(), num_shards) << "shard probe did not converge";
  }
  return truth;
}

void ExpectAllRestorable(ShardedCluster* cluster, const Truth& truth) {
  for (const auto& [tenant, files] : truth) {
    for (const auto& [file, versions] : files) {
      for (size_t v = 0; v < versions.size(); ++v) {
        auto restored = cluster->Restore(tenant, file, v);
        ASSERT_TRUE(restored.ok()) << restored.status();
        EXPECT_EQ(restored.value(), versions[v])
            << tenant << "/" << file << " v" << v;
      }
    }
  }
}

/// Full key -> value snapshot of a store (resume tests compare final
/// states byte-for-byte against a clean run).
std::map<std::string, std::string> DumpStore(oss::ObjectStore* store) {
  std::map<std::string, std::string> dump;
  auto keys = store->List("");
  EXPECT_TRUE(keys.ok());
  for (const auto& key : keys.value()) {
    auto value = store->Get(key);
    EXPECT_TRUE(value.ok()) << key;
    dump[key] = value.ok() ? value.value() : "";
  }
  return dump;
}

TEST(RebalanceTest, NoopWithoutStagedChange) {
  MemoryObjectStore store;
  auto cluster =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  ASSERT_TRUE(cluster.ok());
  auto stats = cluster.value()->Rebalance();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats.value().moved_shards.empty());
  EXPECT_FALSE(stats.value().resumed);
}

TEST(RebalanceTest, JoinStagesTargetWithoutMovingData) {
  MemoryObjectStore store;
  auto cluster =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0"});
  ASSERT_TRUE(cluster.ok());
  Truth truth = SeedCluster(cluster.value().get());

  ASSERT_TRUE(cluster.value()->Join("L1").ok());
  auto status = cluster.value()->GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status.value().rebalance_pending);
  EXPECT_EQ(status.value().map_version, 1u);  // Current map untouched.
  EXPECT_EQ(status.value().target_map_version, 2u);
  EXPECT_EQ(status.value().nodes, (std::vector<std::string>{"L0"}));
  // Routing still follows the current map; data is fully readable.
  ExpectAllRestorable(cluster.value().get(), truth);

  // A second membership change cannot stack on the staged one.
  EXPECT_EQ(cluster.value()->Join("L2").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.value()->Leave("L0").code(),
            StatusCode::kFailedPrecondition);
}

TEST(RebalanceTest, JoinMovesExactlyTheRingDeltaByOpCounts) {
  MemoryObjectStore base;
  SimulatedOss store(&base, FreeModel());
  auto cluster =
      ShardedCluster::Create(&store, SmallClusterOptions(), {"L0", "L1"});
  ASSERT_TRUE(cluster.ok());
  Truth truth = SeedCluster(cluster.value().get());

  // Predict the ring delta and count the objects living under exactly
  // those (tenant, moved-shard) prefixes before any data moves.
  auto current = ShardMap::Load(&store, "cluster/map/current");
  ASSERT_TRUE(current.ok());
  ShardMap target = current.value();
  ASSERT_TRUE(target.AddNode("L2").ok());
  auto delta = ShardMap::Delta(current.value(), target);
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta.value().empty()) << "join moved nothing; re-seed";
  size_t expected_objects = 0;
  for (const auto& move : delta.value()) {
    for (const std::string tenant : {"alpha", "beta"}) {
      auto keys = store.List(
          cluster.value()->StoreRoot(move.from_node, tenant, move.shard) +
          "/");
      ASSERT_TRUE(keys.ok());
      expected_objects += keys.value().size();
    }
  }
  ASSERT_GT(expected_objects, 0u);  // Every shard is seeded, so the
                                    // delta must carry real objects.
  auto all_data = store.List("cluster/n/");
  ASSERT_TRUE(all_data.ok());
  // The delta is a strict subset of the keyspace: a join must not
  // rewrite the world.
  ASSERT_LT(expected_objects, all_data.value().size());

  ASSERT_TRUE(cluster.value()->Join("L2").ok());
  auto before = store.metrics();
  auto stats = cluster.value()->Rebalance();
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto ops = store.metrics() - before;

  // Every move targets the joining node, and the moved shard set is the
  // predicted ring delta.
  std::set<uint32_t> moved(stats.value().moved_shards.begin(),
                           stats.value().moved_shards.end());
  std::set<uint32_t> predicted;
  for (const auto& move : delta.value()) predicted.insert(move.shard);
  EXPECT_EQ(moved, predicted);
  EXPECT_EQ(stats.value().objects_copied, expected_objects);

  // Exact op accounting: the copy phase touches ONLY the delta objects.
  //   gets    = C copies + 1 target-map load
  //   puts    = M pending records + C copies + 1 current-map flip
  //   deletes = C source deletes + M record deletes + 1 target delete
  const uint64_t c = static_cast<uint64_t>(expected_objects);
  const uint64_t m = static_cast<uint64_t>(delta.value().size());
  EXPECT_EQ(ops.get_requests, c + 1);
  EXPECT_EQ(ops.put_requests, m + c + 1);
  EXPECT_EQ(ops.delete_requests, c + m + 1);

  // Post-conditions: committed map, no staging residue, empty source
  // prefixes, all data byte-identical through the new routing.
  auto status = cluster.value()->GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().map_version, 2u);
  EXPECT_FALSE(status.value().rebalance_pending);
  EXPECT_EQ(status.value().nodes,
            (std::vector<std::string>{"L0", "L1", "L2"}));
  EXPECT_TRUE(store.List("cluster/pending/").value().empty());
  for (const auto& move : delta.value()) {
    for (const std::string tenant : {"alpha", "beta"}) {
      EXPECT_TRUE(
          store
              .List(cluster.value()->StoreRoot(move.from_node, tenant,
                                               move.shard) +
                    "/")
              .value()
              .empty());
    }
  }
  ExpectAllRestorable(cluster.value().get(), truth);
}

TEST(RebalanceTest, LeaveDrainsDepartingNodeCompletely) {
  MemoryObjectStore store;
  auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                        {"L0", "L1", "L2"});
  ASSERT_TRUE(cluster.ok());
  Truth truth = SeedCluster(cluster.value().get());

  ASSERT_TRUE(cluster.value()->Leave("L1").ok());
  auto stats = cluster.value()->Rebalance();
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto status = cluster.value()->GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().nodes, (std::vector<std::string>{"L0", "L2"}));
  EXPECT_EQ(status.value().shards_by_node.count("L1"), 0u);
  // Nothing left under the departed node's whole subtree.
  EXPECT_TRUE(store.List("cluster/n/L1/").value().empty());
  ExpectAllRestorable(cluster.value().get(), truth);
}

TEST(RebalanceTest, ResumesIdempotentlyAcrossCrashCuts) {
  // Reference: an identical cluster rebalanced with no crash.
  auto run = [](size_t crash_after_objects, bool double_crash,
                std::map<std::string, std::string>* final_dump) {
    MemoryObjectStore store;
    auto cluster = ShardedCluster::Create(&store, SmallClusterOptions(),
                                          {"L0", "L1"});
    ASSERT_TRUE(cluster.ok());
    Truth truth = SeedCluster(cluster.value().get());
    ASSERT_TRUE(cluster.value()->Join("L2").ok());

    if (crash_after_objects > 0) {
      auto crashed = cluster.value()->Rebalance(crash_after_objects);
      ASSERT_EQ(crashed.status().code(), StatusCode::kInternal)
          << "crash cut did not trigger — data set too small?";
      if (double_crash) {
        // Crash the RESUME too: the worklist must survive two cuts.
        auto reopened = ShardedCluster::Open(&store, SmallClusterOptions());
        ASSERT_TRUE(reopened.ok());
        auto again =
            reopened.value()->Rebalance(crash_after_objects + 1);
        ASSERT_EQ(again.status().code(), StatusCode::kInternal);
      }
      // A brand-new process attaches and simply re-runs Rebalance.
      auto resumed = ShardedCluster::Open(&store, SmallClusterOptions());
      ASSERT_TRUE(resumed.ok());
      auto stats = resumed.value()->Rebalance();
      ASSERT_TRUE(stats.ok()) << stats.status();
      EXPECT_TRUE(stats.value().resumed);
      ExpectAllRestorable(resumed.value().get(), truth);
    } else {
      auto stats = cluster.value()->Rebalance();
      ASSERT_TRUE(stats.ok()) << stats.status();
      ExpectAllRestorable(cluster.value().get(), truth);
    }
    *final_dump = DumpStore(&store);
  };

  std::map<std::string, std::string> clean;
  run(0, false, &clean);
  ASSERT_FALSE(clean.empty());

  // Crash after the first object, mid-worklist, and with a crashed
  // resume on top: every cut must converge to the clean run's exact
  // final OSS state (same keys, same bytes).
  const std::vector<std::pair<size_t, bool>> cuts = {
      {1, false}, {3, false}, {1, true}};
  for (auto [cut, double_crash] : cuts) {
    std::map<std::string, std::string> resumed;
    run(cut, double_crash, &resumed);
    EXPECT_EQ(resumed.size(), clean.size())
        << "cut=" << cut << " double=" << double_crash;
    EXPECT_TRUE(resumed == clean)
        << "resumed final state diverged from clean run at cut=" << cut
        << " double=" << double_crash;
  }
}

TEST(RebalanceTest, ThrottlePacesTheCopyPhase) {
  MemoryObjectStore store;
  ShardedClusterOptions options = SmallClusterOptions();
  // Slow enough that a few dozen KB of moved containers forces at least
  // one sleep, fast enough to keep the test well under a second.
  options.rebalance_bytes_per_sec = 512 << 10;
  auto cluster = ShardedCluster::Create(&store, options, {"L0", "L1"});
  ASSERT_TRUE(cluster.ok());
  Truth truth = SeedCluster(cluster.value().get());

  ASSERT_TRUE(cluster.value()->Join("L2").ok());
  auto stats = cluster.value()->Rebalance();
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_GT(stats.value().bytes_copied, 0u);
  EXPECT_GT(stats.value().throttle_sleep_ms, 0u);
  ExpectAllRestorable(cluster.value().get(), truth);
}

}  // namespace
}  // namespace slim
