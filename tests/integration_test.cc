// Whole-system integration: the scaled S-DB dataset through the full
// lifecycle — multi-file backups over many versions, interleaved G-node
// cycles, retention, verification, and byte-exact restores of retained
// versions. This is the closest test to how the paper's evaluation
// actually drives the system.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "oss/simulated_oss.h"
#include "workload/generator.h"

namespace slim {
namespace {

TEST(IntegrationTest, SdbLifecycle) {
  oss::MemoryObjectStore inner;
  oss::OssCostModel model;
  model.sleep_for_cost = false;
  oss::SimulatedOss oss(&inner, model);

  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 32 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.chunk_merging = true;
  options.backup.merge_threshold = 3;
  options.backup.min_merge_chunks = 2;
  core::SlimStore store(&oss, options);

  workload::SdbOptions sdb;
  sdb.num_files = 3;
  sdb.file_size = 128 << 10;
  sdb.num_versions = 8;
  sdb.seed = 2026;
  workload::Dataset dataset = workload::Dataset::MakeSdb(sdb);

  constexpr uint64_t kRetain = 4;
  // (file, version) -> expected bytes for retained versions.
  std::map<std::pair<std::string, uint64_t>, std::string> retained;

  uint64_t version = 0;
  for (;;) {
    for (size_t f = 0; f < dataset.file_count(); ++f) {
      auto stats = store.Backup(dataset.file_id(f), dataset.file_data(f));
      ASSERT_TRUE(stats.ok()) << stats.status();
      ASSERT_EQ(stats.value().version, version);
      retained[{dataset.file_id(f), version}] = dataset.file_data(f);
    }
    ASSERT_TRUE(store.RunGNodeCycle().ok());

    if (version >= kRetain) {
      uint64_t expired = version - kRetain;
      for (size_t f = 0; f < dataset.file_count(); ++f) {
        ASSERT_TRUE(
            store.DeleteVersion(dataset.file_id(f), expired).ok());
        retained.erase({dataset.file_id(f), expired});
      }
    }
    if (!dataset.NextVersion()) break;
    ++version;
  }

  // The repository self-checks clean.
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << report.value().problems.front();
  EXPECT_EQ(report.value().versions_checked,
            dataset.file_count() * kRetain);

  // Every retained version restores byte-identically.
  for (const auto& [key, expected] : retained) {
    lnode::RestoreStats stats;
    auto restored = store.Restore(key.first, key.second, &stats);
    ASSERT_TRUE(restored.ok())
        << key.first << " v" << key.second << ": " << restored.status();
    EXPECT_EQ(restored.value(), expected)
        << key.first << " v" << key.second;
  }

  // Expired versions are really gone.
  EXPECT_FALSE(store.Restore(dataset.file_id(0), 0).ok());

  // Dedup across the whole run did its job: stored bytes far below
  // logical bytes of all retained data, let alone all backed-up data.
  auto space = store.GetSpaceReport();
  ASSERT_TRUE(space.ok());
  uint64_t retained_logical = 0;
  for (const auto& [key, data] : retained) retained_logical += data.size();
  EXPECT_LT(space.value().container_bytes, retained_logical);
}

TEST(IntegrationTest, RdataManySmallFiles) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  core::SlimStore store(&oss, options);

  workload::RdataOptions rdata;
  rdata.num_files = 10;
  rdata.file_size = 24 << 10;
  rdata.num_versions = 4;
  rdata.seed = 404;
  workload::Dataset dataset = workload::Dataset::MakeRdata(rdata);

  std::map<std::pair<size_t, uint64_t>, std::string> all;
  uint64_t version = 0;
  for (;;) {
    for (size_t f = 0; f < dataset.file_count(); ++f) {
      ASSERT_TRUE(
          store.Backup(dataset.file_id(f), dataset.file_data(f)).ok());
      all[{f, version}] = dataset.file_data(f);
    }
    if (!dataset.NextVersion()) break;
    ++version;
  }
  ASSERT_TRUE(store.RunGNodeCycle().ok());

  for (const auto& [key, expected] : all) {
    auto restored = store.Restore(dataset.file_id(key.first), key.second);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), expected);
  }
}

}  // namespace
}  // namespace slim
