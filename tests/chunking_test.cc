#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <string>

#include "chunking/chunker.h"
#include "chunking/gear.h"
#include "chunking/rabin.h"
#include "common/rng.h"

namespace slim::chunking {
namespace {

std::string RandomData(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  return rng.RandomBytes(n);
}

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

// ---------------------------------------------------------------------------
// RabinWindow basics
// ---------------------------------------------------------------------------

TEST(RabinWindowTest, DeterministicFingerprints) {
  RabinWindow a, b;
  std::string data = RandomData(1000);
  uint64_t last_a = 0, last_b = 0;
  for (char c : data) {
    last_a = a.Slide(static_cast<uint8_t>(c));
    last_b = b.Slide(static_cast<uint8_t>(c));
  }
  EXPECT_EQ(last_a, last_b);
}

TEST(RabinWindowTest, WindowedProperty) {
  // After sliding in more than window_size bytes, the fingerprint
  // depends only on the last window_size bytes.
  const size_t w = RabinWindow::kDefaultWindowSize;
  std::string prefix1 = RandomData(500, 1);
  std::string prefix2 = RandomData(300, 2);
  std::string suffix = RandomData(w, 3);

  RabinWindow a;
  for (char c : prefix1 + suffix) a.Slide(static_cast<uint8_t>(c));
  RabinWindow b;
  for (char c : prefix2 + suffix) b.Slide(static_cast<uint8_t>(c));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(RabinWindowTest, ResetClearsState) {
  RabinWindow w;
  for (int i = 0; i < 100; ++i) w.Slide(static_cast<uint8_t>(i));
  w.Reset();
  EXPECT_EQ(w.fingerprint(), 0u);
}

// ---------------------------------------------------------------------------
// Shared chunker properties (parameterized over all CDC algorithms)
// ---------------------------------------------------------------------------

class CdcChunkerTest : public ::testing::TestWithParam<ChunkerType> {
 protected:
  std::unique_ptr<Chunker> Make(size_t avg = 4096) {
    return CreateChunker(GetParam(), ChunkerParams::FromAverage(avg));
  }
};

TEST_P(CdcChunkerTest, ChunksCoverWholeBuffer) {
  auto chunker = Make();
  std::string data = RandomData(1 << 20);
  auto chunks = ChunkAll(*chunker, data);
  ASSERT_FALSE(chunks.empty());
  size_t pos = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, pos);
    pos += c.size;
  }
  EXPECT_EQ(pos, data.size());
}

TEST_P(CdcChunkerTest, RespectsSizeBounds) {
  auto chunker = Make();
  const auto& params = chunker->params();
  std::string data = RandomData(1 << 20);
  auto chunks = ChunkAll(*chunker, data);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {  // Last chunk may be short.
    EXPECT_GE(chunks[i].size, params.min_size);
    EXPECT_LE(chunks[i].size, params.max_size);
  }
}

TEST_P(CdcChunkerTest, MeanChunkSizeNearTarget) {
  auto chunker = Make(4096);
  std::string data = RandomData(4 << 20);
  auto chunks = ChunkAll(*chunker, data);
  double mean = static_cast<double>(data.size()) /
                static_cast<double>(chunks.size());
  // CDC with min/max clamping lands above the mask average; accept a
  // generous band.
  EXPECT_GT(mean, 4096 * 0.5);
  EXPECT_LT(mean, 4096 * 4.0);
}

TEST_P(CdcChunkerTest, Deterministic) {
  auto c1 = Make();
  auto c2 = Make();
  std::string data = RandomData(256 << 10);
  auto a = ChunkAll(*c1, data);
  auto b = ChunkAll(*c2, data);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST_P(CdcChunkerTest, BoundaryShiftResynchronizes) {
  if (GetParam() == ChunkerType::kFixed) GTEST_SKIP();
  auto chunker = Make();
  std::string data = RandomData(1 << 20);
  // Insert 7 bytes near the front: CDC must resynchronize so most
  // chunks (by content) are unchanged.
  std::string shifted = data.substr(0, 1000) + "INSERT!" + data.substr(1000);

  auto a = ChunkAll(*chunker, data);
  auto b = ChunkAll(*chunker, shifted);

  std::set<std::pair<size_t, uint64_t>> a_contents;  // (size, hash)
  for (const auto& c : a) {
    a_contents.insert({c.size, Fnv1a64(data.data() + c.offset, c.size)});
  }
  size_t shared = 0;
  for (const auto& c : b) {
    if (a_contents.count(
            {c.size, Fnv1a64(shifted.data() + c.offset, c.size)}) > 0) {
      ++shared;
    }
  }
  // The vast majority of chunks must survive the shift.
  EXPECT_GT(shared, b.size() * 8 / 10);
}

TEST_P(CdcChunkerTest, VerifyCutAgreesWithScan) {
  auto chunker = Make();
  std::string data = RandomData(512 << 10, 99);
  auto chunks = ChunkAll(*chunker, data);
  size_t checked = 0;
  for (const auto& c : chunks) {
    // Skip the trailing end-of-buffer chunk (not a content cut).
    if (c.offset + c.size == data.size()) continue;
    EXPECT_TRUE(chunker->VerifyCut(Bytes(data) + c.offset, c.size))
        << "chunk at " << c.offset << " size " << c.size;
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST_P(CdcChunkerTest, VerifyCutRejectsOutOfBounds) {
  auto chunker = Make();
  const auto& params = chunker->params();
  std::string data = RandomData(64 << 10);
  EXPECT_FALSE(chunker->VerifyCut(Bytes(data), params.min_size - 1));
  EXPECT_FALSE(chunker->VerifyCut(Bytes(data), params.max_size + 1));
}

TEST_P(CdcChunkerTest, VerifyCutAcceptsForcedMaxBoundary) {
  auto chunker = Make();
  std::string data = RandomData(1 << 20, 5);
  EXPECT_TRUE(chunker->VerifyCut(Bytes(data), chunker->params().max_size));
}

TEST_P(CdcChunkerTest, ShortInputIsOneChunk) {
  auto chunker = Make();
  std::string data = RandomData(100);
  auto chunks = ChunkAll(*chunker, data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllCdc, CdcChunkerTest,
                         ::testing::Values(ChunkerType::kRabin,
                                           ChunkerType::kGear,
                                           ChunkerType::kFastCdc),
                         [](const auto& param_info) {
                           return std::string(ChunkerTypeName(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Per-algorithm specifics
// ---------------------------------------------------------------------------

TEST(FixedChunkerTest, CutsAtExactMultiples) {
  FixedChunker chunker(ChunkerParams::FromAverage(4096));
  std::string data = RandomData(10000);
  auto chunks = ChunkAll(chunker, data);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size, 4096u);
  EXPECT_EQ(chunks[1].size, 4096u);
  EXPECT_EQ(chunks[2].size, 10000u - 8192u);
}

TEST(FixedChunkerTest, VerifyCutOnlyAcceptsFixedSize) {
  FixedChunker chunker(ChunkerParams::FromAverage(4096));
  std::string data = RandomData(8192);
  EXPECT_TRUE(chunker.VerifyCut(Bytes(data), 4096));
  EXPECT_FALSE(chunker.VerifyCut(Bytes(data), 4095));
}

TEST(FastCdcTest, DistributionTighterThanGear) {
  // Normalized chunking should concentrate sizes around the average:
  // compare the standard deviation of chunk sizes.
  auto gear = CreateChunker(ChunkerType::kGear,
                            ChunkerParams::FromAverage(4096));
  auto fast = CreateChunker(ChunkerType::kFastCdc,
                            ChunkerParams::FromAverage(4096));
  std::string data = RandomData(8 << 20, 31);

  auto stddev = [&](const std::vector<RawChunk>& chunks) {
    double mean = 0;
    for (const auto& c : chunks) mean += static_cast<double>(c.size);
    mean /= static_cast<double>(chunks.size());
    double var = 0;
    for (const auto& c : chunks) {
      const double d = static_cast<double>(c.size) - mean;
      var += d * d;
    }
    return std::sqrt(var / static_cast<double>(chunks.size())) /
           mean;  // Coefficient of var.
  };
  double cv_gear = stddev(ChunkAll(*gear, data));
  double cv_fast = stddev(ChunkAll(*fast, data));
  EXPECT_LT(cv_fast, cv_gear);
}

TEST(GearTableTest, StableAcrossCalls) {
  const auto& t1 = GearTable();
  const auto& t2 = GearTable();
  EXPECT_EQ(&t1, &t2);
  EXPECT_NE(t1[0], t1[1]);
}

TEST(ChunkerFactoryTest, NamesMatch) {
  EXPECT_STREQ(ChunkerTypeName(ChunkerType::kRabin), "rabin");
  EXPECT_STREQ(ChunkerTypeName(ChunkerType::kFastCdc), "fastcdc");
  auto c = CreateChunker(ChunkerType::kGear, ChunkerParams::FromAverage(8192));
  EXPECT_STREQ(c->name(), "gear");
}

TEST(ChunkerParamsTest, FromAverageDerivesBounds) {
  auto p = ChunkerParams::FromAverage(8192);
  EXPECT_EQ(p.min_size, 2048u);
  EXPECT_EQ(p.max_size, 65536u);
}

// Identical content after a duplicate boundary yields identical chunks:
// the property skip chunking relies on.
TEST(SkipChunkingPropertyTest, DuplicateRegionsProduceSameCuts) {
  auto chunker = CreateChunker(ChunkerType::kFastCdc,
                               ChunkerParams::FromAverage(4096));
  std::string shared = RandomData(256 << 10, 8);
  std::string v1 = RandomData(50 << 10, 9) + shared;
  std::string v2 = RandomData(70 << 10, 10) + shared;

  auto c1 = ChunkAll(*chunker, v1);
  auto c2 = ChunkAll(*chunker, v2);

  // Collect chunk content hashes from the shared tail of both versions.
  auto tail_hashes = [&](const std::string& data,
                         const std::vector<RawChunk>& chunks,
                         size_t tail_start) {
    std::vector<uint64_t> hashes;
    for (const auto& c : chunks) {
      if (c.offset >= tail_start) {
        hashes.push_back(Fnv1a64(data.data() + c.offset, c.size));
      }
    }
    return hashes;
  };
  auto h1 = tail_hashes(v1, c1, v1.size() - (200 << 10));
  auto h2 = tail_hashes(v2, c2, v2.size() - (200 << 10));
  // After resynchronization the two tails chunk identically.
  ASSERT_GT(h1.size(), 10u);
  EXPECT_EQ(h1, h2);
}

}  // namespace
}  // namespace slim::chunking
