// Streaming backup: the pipeline consumes a ByteSource with bounded
// memory and produces exactly the same result as a buffered backup.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/slimstore.h"
#include "lnode/stream_window.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim::lnode {
namespace {

/// A source that doles out bytes in deliberately awkward sizes.
class DribbleSource : public ByteSource {
 public:
  explicit DribbleSource(std::string data, size_t max_read = 1000)
      : data_(std::move(data)), max_read_(max_read) {}

  Result<size_t> Read(char* buf, size_t n) override {
    size_t take = std::min({n, max_read_, data_.size() - pos_});
    std::memcpy(buf, data_.data() + pos_, take);
    pos_ += take;
    return take;
  }

 private:
  std::string data_;
  size_t max_read_;
  size_t pos_ = 0;
};

core::SlimStoreOptions SmallOptions() {
  core::SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.segment_bytes = 16 << 10;
  options.backup.sample_ratio = 4;
  options.backup.similarity_header_bytes = 32 << 10;
  return options;
}

std::string Content(uint64_t seed, size_t size = 256 << 10) {
  workload::GeneratorOptions gen;
  gen.base_size = size;
  gen.block_size = 1024;
  gen.duplication_ratio = 0.85;
  gen.seed = seed;
  return workload::VersionedFileGenerator(gen).data();
}

// ---------------------------------------------------------------------------
// StreamWindow unit tests
// ---------------------------------------------------------------------------

TEST(StreamWindowTest, PreloadedModeIsZeroBuffer) {
  std::string data = "hello stream";
  StreamWindow window{std::string_view(data)};
  auto avail = window.Ensure(0, 5);
  ASSERT_TRUE(avail.ok());
  EXPECT_EQ(avail.value(), 5u);
  EXPECT_EQ(window.View(6, 6), "stream");
  EXPECT_EQ(window.peak_buffer_bytes(), 0u);
  EXPECT_TRUE(window.AtEof(data.size()).value());
  EXPECT_FALSE(window.AtEof(0).value());
}

TEST(StreamWindowTest, StreamingPullsOnDemand) {
  DribbleSource source(Content(1, 64 << 10), /*max_read=*/777);
  StreamWindow window(&source);
  auto avail = window.Ensure(0, 10);
  ASSERT_TRUE(avail.ok());
  EXPECT_EQ(avail.value(), 10u);
  // Probe past EOF: short availability.
  auto tail = window.Ensure(60 << 10, 64 << 10);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value(), (64u << 10) - (60u << 10));
  EXPECT_TRUE(window.AtEof(64 << 10).value());
}

TEST(StreamWindowTest, DiscardBoundsBuffer) {
  std::string data = Content(2, 128 << 10);
  DribbleSource source(data, 4096);
  StreamWindow window(&source);
  for (uint64_t pos = 0; pos + 4096 <= data.size(); pos += 4096) {
    auto avail = window.Ensure(pos, 4096);
    ASSERT_TRUE(avail.ok());
    ASSERT_EQ(avail.value(), 4096u);
    EXPECT_EQ(window.View(pos, 4096), std::string_view(data).substr(pos,
                                                                    4096));
    window.DiscardBefore(pos);
  }
  // The window never held more than a couple read blocks.
  EXPECT_LT(window.peak_buffer_bytes(), 600u << 10);
}

// ---------------------------------------------------------------------------
// Streaming backups end to end
// ---------------------------------------------------------------------------

TEST(StreamingBackupTest, MatchesBufferedBackupExactly) {
  // Same content through both entry points into two stores: identical
  // recipes (same chunking, same dedup decisions).
  std::string v0 = Content(3);
  oss::MemoryObjectStore oss_a, oss_b;
  core::SlimStore buffered(&oss_a, SmallOptions());
  core::SlimStore streamed(&oss_b, SmallOptions());

  ASSERT_TRUE(buffered.Backup("f", v0).ok());
  DribbleSource source(v0, 913);
  auto stream_stats = streamed.BackupStream("f", &source);
  ASSERT_TRUE(stream_stats.ok()) << stream_stats.status();
  EXPECT_EQ(stream_stats.value().logical_bytes, v0.size());

  auto ra = buffered.recipe_store()->ReadRecipe("f", 0);
  auto rb = streamed.recipe_store()->ReadRecipe("f", 0);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra.value().TotalChunks(), rb.value().TotalChunks());
  auto fa = ra.value().Flatten();
  auto fb = rb.value().Flatten();
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].fp, fb[i].fp) << i;
    EXPECT_EQ(fa[i].size, fb[i].size) << i;
  }
}

TEST(StreamingBackupTest, MultiVersionLifecycleWithBoundedMemory) {
  oss::MemoryObjectStore oss;
  core::SlimStoreOptions options = SmallOptions();
  options.backup.chunk_merging = true;
  options.backup.merge_threshold = 2;
  options.backup.min_merge_chunks = 2;
  core::SlimStore store(&oss, options);

  workload::GeneratorOptions gen;
  gen.base_size = 512 << 10;
  gen.block_size = 1024;
  gen.duplication_ratio = 0.9;
  gen.seed = 4;
  workload::VersionedFileGenerator file(gen);

  std::vector<std::string> versions;
  for (int v = 0; v < 4; ++v) {
    versions.push_back(file.data());
    DribbleSource source(file.data(), 4096);
    auto stats = store.BackupStream("f", &source);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats.value().version, static_cast<uint64_t>(v));
    // Bounded memory: far below the 512 KB input (header detection on
    // v0 buffers similarity_header_bytes; later versions stay within a
    // few segments).
    EXPECT_LT(stats.value().peak_stream_buffer_bytes, 320u << 10)
        << "version " << v;
    if (v > 0) {
      EXPECT_GT(stats.value().DedupRatio(), 0.5);
    }
    file.Mutate();
  }
  for (int v = 0; v < 4; ++v) {
    auto restored = store.Restore("f", v);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), versions[v]);
  }
}

TEST(StreamingBackupTest, IstreamSourceWorks) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  std::string content = Content(5, 64 << 10);
  std::istringstream in(content);
  IstreamSource source(&in);
  auto stats = store.BackupStream("piped", &source);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto restored = store.Restore("piped", 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), content);
}

TEST(StreamingBackupTest, EmptyStream) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  std::istringstream in("");
  IstreamSource source(&in);
  auto stats = store.BackupStream("empty", &source);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_bytes, 0u);
  auto restored = store.Restore("empty", 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), "");
}

class FailingSource : public ByteSource {
 public:
  Result<size_t> Read(char*, size_t) override {
    return Status::IoError("network dropped");
  }
};

TEST(StreamingBackupTest, SourceErrorsSurface) {
  oss::MemoryObjectStore oss;
  core::SlimStore store(&oss, SmallOptions());
  FailingSource source;
  auto stats = store.BackupStream("flaky", &source);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIoError());
}

}  // namespace
}  // namespace slim::lnode
