#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "index/bloom.h"
#include "index/dedup_cache.h"
#include "index/global_index.h"
#include "index/similar_file_index.h"
#include "oss/memory_object_store.h"

namespace slim::index {
namespace {

Fingerprint FpOf(const std::string& s) { return Sha1::Hash(s); }

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 1000; ++i) {
    fps.push_back(FpOf("item-" + std::to_string(i)));
    bloom.Add(fps.back());
  }
  for (const auto& fp : fps) EXPECT_TRUE(bloom.MayContain(fp));
}

TEST(BloomFilterTest, FalsePositiveRateBounded) {
  BloomFilter bloom(10000, 10);
  for (int i = 0; i < 10000; ++i) {
    bloom.Add(FpOf("present-" + std::to_string(i)));
  }
  int fp_count = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(FpOf("absent-" + std::to_string(i)))) ++fp_count;
  }
  // 10 bits/key gives ~1%; allow 3%.
  EXPECT_LT(fp_count, probes * 3 / 100);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter bloom(10);
  bloom.Add(FpOf("x"));
  ASSERT_TRUE(bloom.MayContain(FpOf("x")));
  bloom.Clear();
  EXPECT_FALSE(bloom.MayContain(FpOf("x")));
  EXPECT_EQ(bloom.added_count(), 0u);
}

// ---------------------------------------------------------------------------
// CountingBloomFilter
// ---------------------------------------------------------------------------

TEST(CountingBloomTest, CountsReferencesUpAndDown) {
  CountingBloomFilter cbf(1000);
  Fingerprint fp = FpOf("chunk");
  cbf.Add(fp);
  cbf.Add(fp);
  cbf.Add(fp);
  EXPECT_GE(cbf.CountEstimate(fp), 3u);
  cbf.Remove(fp);
  cbf.Remove(fp);
  EXPECT_GE(cbf.CountEstimate(fp), 1u);
  cbf.Remove(fp);
  EXPECT_EQ(cbf.CountEstimate(fp), 0u);
  EXPECT_FALSE(cbf.MayContain(fp));
}

TEST(CountingBloomTest, NeverUndercounts) {
  // The min-counter estimate must be >= the true remaining count for
  // every element (collisions only inflate).
  CountingBloomFilter cbf(500);
  std::vector<Fingerprint> fps;
  Rng rng(4);
  std::vector<int> truth(200, 0);
  for (int i = 0; i < 200; ++i) {
    fps.push_back(FpOf("c" + std::to_string(i)));
  }
  for (int step = 0; step < 2000; ++step) {
    int i = static_cast<int>(rng.Uniform(200));
    if (rng.Bernoulli(0.6)) {
      cbf.Add(fps[i]);
      ++truth[i];
    } else if (truth[i] > 0) {
      cbf.Remove(fps[i]);
      --truth[i];
    }
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(cbf.CountEstimate(fps[i]), static_cast<uint32_t>(truth[i]));
  }
}

TEST(CountingBloomTest, RemoveAtZeroIsNoop) {
  CountingBloomFilter cbf(100);
  Fingerprint fp = FpOf("z");
  cbf.Remove(fp);  // Must not underflow.
  EXPECT_EQ(cbf.CountEstimate(fp), 0u);
  cbf.Add(fp);
  EXPECT_GE(cbf.CountEstimate(fp), 1u);
}

// ---------------------------------------------------------------------------
// SimilarFileIndex
// ---------------------------------------------------------------------------

std::vector<Fingerprint> Samples(const std::string& prefix, int n) {
  std::vector<Fingerprint> out;
  for (int i = 0; i < n; ++i) out.push_back(FpOf(prefix + std::to_string(i)));
  return out;
}

TEST(SimilarFileIndexTest, LatestVersionByName) {
  SimilarFileIndex index;
  index.AddFileVersion("a.db", 0, Samples("a0-", 3));
  index.AddFileVersion("a.db", 1, Samples("a1-", 3));
  EXPECT_EQ(index.LatestVersion("a.db").value(), 1u);
  EXPECT_FALSE(index.LatestVersion("b.db").has_value());
}

TEST(SimilarFileIndexTest, FindSimilarPicksMostShared) {
  SimilarFileIndex index;
  index.AddFileVersion("x", 0, Samples("shared-", 5));
  index.AddFileVersion("y", 0, Samples("other-", 5));
  // Query shares 3 samples with x, 1 with y.
  std::vector<Fingerprint> query = {FpOf("shared-0"), FpOf("shared-1"),
                                    FpOf("shared-2"), FpOf("other-0")};
  auto found = index.FindSimilar(query);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->file_id, "x");
}

TEST(SimilarFileIndexTest, MinSharedThreshold) {
  SimilarFileIndex index;
  index.AddFileVersion("x", 0, Samples("s-", 5));
  std::vector<Fingerprint> query = {FpOf("s-0")};
  EXPECT_TRUE(index.FindSimilar(query, 1).has_value());
  EXPECT_FALSE(index.FindSimilar(query, 2).has_value());
}

TEST(SimilarFileIndexTest, PrefersNewerVersionOnTie) {
  SimilarFileIndex index;
  index.AddFileVersion("x", 0, Samples("s-", 3));
  index.AddFileVersion("x", 1, Samples("s-", 3));
  auto found = index.FindSimilar(Samples("s-", 3));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->version, 1u);
}

TEST(SimilarFileIndexTest, RemoveVersionUpdatesLatest) {
  SimilarFileIndex index;
  index.AddFileVersion("x", 0, Samples("v0-", 3));
  index.AddFileVersion("x", 1, Samples("v1-", 3));
  index.RemoveFileVersion("x", 1);
  EXPECT_EQ(index.LatestVersion("x").value(), 0u);
  EXPECT_FALSE(index.FindSimilar(Samples("v1-", 3)).has_value());
  index.RemoveFileVersion("x", 0);
  EXPECT_FALSE(index.LatestVersion("x").has_value());
}

TEST(SimilarFileIndexTest, SaveLoadRoundTrip) {
  oss::MemoryObjectStore store;
  SimilarFileIndex index;
  index.AddFileVersion("f1", 0, Samples("f1-", 4));
  index.AddFileVersion("f2", 7, Samples("f2-", 2));
  ASSERT_TRUE(index.Save(&store, "sfi").ok());

  SimilarFileIndex loaded;
  ASSERT_TRUE(loaded.Load(&store, "sfi").ok());
  EXPECT_EQ(loaded.LatestVersion("f2").value(), 7u);
  auto found = loaded.FindSimilar(Samples("f1-", 4));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->file_id, "f1");
  EXPECT_EQ(loaded.sample_count(), index.sample_count());
}

// ---------------------------------------------------------------------------
// GlobalIndex
// ---------------------------------------------------------------------------

TEST(GlobalIndexTest, PutGetDelete) {
  oss::MemoryObjectStore store;
  GlobalIndex gindex(&store, "g");
  Fingerprint fp = FpOf("chunk");
  ASSERT_TRUE(gindex.Put(fp, 12).ok());
  EXPECT_EQ(gindex.Get(fp).value(), 12u);
  ASSERT_TRUE(gindex.Put(fp, 99).ok());  // Re-point.
  EXPECT_EQ(gindex.Get(fp).value(), 99u);
  ASSERT_TRUE(gindex.Delete(fp).ok());
  EXPECT_TRUE(gindex.Get(fp).status().IsNotFound());
}

TEST(GlobalIndexTest, BloomPrefilter) {
  oss::MemoryObjectStore store;
  GlobalIndex gindex(&store, "g");
  ASSERT_TRUE(gindex.Put(FpOf("present"), 1).ok());
  EXPECT_TRUE(gindex.MayContain(FpOf("present")));
  int false_positives = 0;
  for (int i = 0; i < 1000; ++i) {
    if (gindex.MayContain(FpOf("absent-" + std::to_string(i)))) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, 50);
}

TEST(GlobalIndexTest, ReopenRebuildsBloom) {
  oss::MemoryObjectStore store;
  {
    GlobalIndex gindex(&store, "g");
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(gindex.Put(FpOf("k" + std::to_string(i)), i).ok());
    }
    ASSERT_TRUE(gindex.Flush().ok());
  }
  GlobalIndex reopened(&store, "g");
  ASSERT_TRUE(reopened.Open().ok());
  for (int i = 0; i < 100; ++i) {
    Fingerprint fp = FpOf("k" + std::to_string(i));
    EXPECT_TRUE(reopened.MayContain(fp));
    EXPECT_EQ(reopened.Get(fp).value(), static_cast<uint64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// DedupCache
// ---------------------------------------------------------------------------

format::SegmentRecipe MakeSegment(const std::string& prefix, int n,
                                  format::ContainerId cid = 0) {
  format::SegmentRecipe seg;
  for (int i = 0; i < n; ++i) {
    format::ChunkRecord r;
    r.fp = FpOf(prefix + std::to_string(i));
    r.container_id = cid;
    r.size = 100;
    seg.records.push_back(r);
  }
  return seg;
}

TEST(DedupCacheTest, LookupHitAndMiss) {
  DedupCache cache(4);
  cache.AddSegment(MakeSegment("s-", 5));
  auto h = cache.Lookup(FpOf("s-2"));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(cache.Record(*h).fp, FpOf("s-2"));
  EXPECT_FALSE(cache.Lookup(FpOf("nope")).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DedupCacheTest, NextWalksSegmentInOrder) {
  DedupCache cache(4);
  cache.AddSegment(MakeSegment("s-", 3));
  auto h = cache.Lookup(FpOf("s-0"));
  ASSERT_TRUE(h.has_value());
  auto n1 = cache.Next(*h);
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(cache.Record(*n1).fp, FpOf("s-1"));
  auto n2 = cache.Next(*n1);
  ASSERT_TRUE(n2.has_value());
  EXPECT_FALSE(cache.Next(*n2).has_value());  // End of segment.
}

TEST(DedupCacheTest, EvictsLruSegment) {
  DedupCache cache(2);
  cache.AddSegment(MakeSegment("a-", 2));
  cache.AddSegment(MakeSegment("b-", 2));
  // Touch segment a so b becomes LRU.
  ASSERT_TRUE(cache.Lookup(FpOf("a-0")).has_value());
  cache.AddSegment(MakeSegment("c-", 2));
  EXPECT_EQ(cache.segment_count(), 2u);
  EXPECT_TRUE(cache.Lookup(FpOf("a-0")).has_value());
  EXPECT_FALSE(cache.Lookup(FpOf("b-0")).has_value());
  EXPECT_TRUE(cache.Lookup(FpOf("c-1")).has_value());
}

TEST(DedupCacheTest, TryRecordOnStaleHandle) {
  DedupCache cache(1);
  cache.AddSegment(MakeSegment("a-", 2));
  auto h = cache.Lookup(FpOf("a-0"));
  ASSERT_TRUE(h.has_value());
  cache.AddSegment(MakeSegment("b-", 2));  // Evicts a.
  EXPECT_EQ(cache.TryRecord(*h), nullptr);
  EXPECT_FALSE(cache.Next(*h).has_value());
}

TEST(DedupCacheTest, ClearEmptiesEverything) {
  DedupCache cache(4);
  cache.AddSegment(MakeSegment("a-", 3));
  cache.Clear();
  EXPECT_EQ(cache.segment_count(), 0u);
  EXPECT_FALSE(cache.Lookup(FpOf("a-0")).has_value());
}

TEST(DedupCacheTest, FirstOccurrenceWinsForDuplicateFps) {
  DedupCache cache(4);
  format::SegmentRecipe seg;
  format::ChunkRecord r1;
  r1.fp = FpOf("dup");
  r1.container_id = 1;
  r1.size = 10;
  format::ChunkRecord r2 = r1;
  r2.container_id = 2;
  seg.records.push_back(r1);
  seg.records.push_back(r2);
  cache.AddSegment(seg);
  auto h = cache.Lookup(FpOf("dup"));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(cache.Record(*h).container_id, 1u);
}

}  // namespace
}  // namespace slim::index
