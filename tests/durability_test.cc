// Unit tests for the durability primitives: CRC32C and the object
// footer, key classification and placement, the checksumming and
// replicating store decorators, and XOR parity groups. The end-to-end
// scrub-and-repair sweeps live in scrub_repair_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "durability/checksum.h"
#include "durability/checksumming_object_store.h"
#include "durability/parity.h"
#include "durability/placement.h"
#include "durability/replicating_object_store.h"
#include "oss/memory_object_store.h"

namespace slim::durability {
namespace {

// ---------------------------------------------------------------------------
// CRC32C + footer
// ---------------------------------------------------------------------------

TEST(Crc32cTest, PublishedTestVector) {
  // The canonical CRC-32C check value (e.g. RFC 3720 appendix).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(FooterTest, RoundTrip) {
  std::string object = "payload bytes";
  AppendFooter(&object);
  EXPECT_EQ(object.size(), 13 + kFooterSize);
  EXPECT_TRUE(HasValidFooter(object));
  auto payload = VerifyFooter(object, Component::kOther);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value(), "payload bytes");
}

TEST(FooterTest, EmptyPayloadRoundTrips) {
  std::string object;
  AppendFooter(&object);
  EXPECT_EQ(object.size(), kFooterSize);
  EXPECT_TRUE(HasValidFooter(object));
  EXPECT_EQ(VerifyFooter(object, Component::kOther).value(), "");
}

TEST(FooterTest, EverySingleByteFlipIsDetected) {
  std::string object = "sensitive";
  AppendFooter(&object);
  for (size_t i = 0; i < object.size(); ++i) {
    std::string bad = object;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(HasValidFooter(bad)) << "flip at " << i;
    EXPECT_TRUE(VerifyFooter(bad, Component::kOther).status().IsCorruption());
  }
}

TEST(FooterTest, TruncatedObjectIsCorruption) {
  std::string object = "abc";
  AppendFooter(&object);
  for (size_t len = 0; len < kFooterSize; ++len) {
    EXPECT_FALSE(HasValidFooter(object.substr(0, len)));
    EXPECT_TRUE(VerifyFooter(object.substr(0, len), Component::kOther)
                    .status()
                    .IsCorruption());
  }
}

TEST(FooterTest, VerifyAndStripInPlace) {
  std::string object = "hello";
  AppendFooter(&object);
  ASSERT_TRUE(VerifyAndStripFooter(&object, Component::kOther).ok());
  EXPECT_EQ(object, "hello");
  // A second strip must fail: the footer is gone.
  EXPECT_TRUE(
      VerifyAndStripFooter(&object, Component::kOther).IsCorruption());
}

TEST(FooterTest, VerifiedStoreRoundTrip) {
  oss::MemoryObjectStore store;
  ASSERT_TRUE(
      PutWithFooter(store, "k", "value", Component::kState).ok());
  // The stored object carries the footer...
  EXPECT_EQ(store.Size("k").value(), 5 + kFooterSize);
  // ...and the verified read strips it.
  auto got = GetVerified(store, "k", Component::kState);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "value");
  EXPECT_TRUE(
      GetVerified(store, "ghost", Component::kState).status().IsNotFound());

  // Bit rot in the stored bytes surfaces as Corruption, never as data.
  std::string raw = store.Get("k").value();
  raw[1] = static_cast<char>(raw[1] ^ 1);
  ASSERT_TRUE(store.Put("k", raw).ok());
  EXPECT_TRUE(
      GetVerified(store, "k", Component::kState).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Key classification + placement
// ---------------------------------------------------------------------------

TEST(PlacementTest, ClassifyKey) {
  EXPECT_EQ(ClassifyKey("slim/containers/data-00000000000000000042"),
            KeyClass::kContainerData);
  EXPECT_EQ(ClassifyKey("slim/containers/meta-00000000000000000042"),
            KeyClass::kContainerMeta);
  EXPECT_EQ(ClassifyKey("slim/recipes/recipe/f.bin/000000000007"),
            KeyClass::kRecipe);
  EXPECT_EQ(ClassifyKey("slim/recipes/toc/f.bin/000000000007"),
            KeyClass::kRecipeToc);
  EXPECT_EQ(ClassifyKey("slim/recipes/index/f.bin/000000000007"),
            KeyClass::kRecipeIndex);
  EXPECT_EQ(ClassifyKey("slim/gindex/run-000001"), KeyClass::kIndexRun);
  EXPECT_EQ(ClassifyKey("slim/state/catalog"), KeyClass::kState);
  EXPECT_EQ(ClassifyKey("slim/durability/scrub-cursor"), KeyClass::kState);
  EXPECT_EQ(ClassifyKey("unrelated"), KeyClass::kOther);
  // A backed-up file whose *name* is "index" or "toc" must classify by
  // position, not by substring.
  EXPECT_EQ(ClassifyKey("slim/recipes/recipe/index/000000000001"),
            KeyClass::kRecipe);
  EXPECT_EQ(ClassifyKey("slim/recipes/recipe/toc/000000000001"),
            KeyClass::kRecipe);
}

TEST(PlacementTest, DeterministicAndDistinct) {
  PlacementPolicy policy = PlacementPolicy::Uniform(2);
  for (const std::string key :
       {"slim/containers/data-1", "slim/containers/data-2", "a", "b"}) {
    auto first = policy.PlacementFor(key, 5);
    auto again = policy.PlacementFor(key, 5);
    EXPECT_EQ(first, again);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_NE(first[0], first[1]);
    for (uint32_t idx : first) EXPECT_LT(idx, 5u);
  }
}

TEST(PlacementTest, ReplicaCountClampedToStoreCount) {
  PlacementPolicy policy = PlacementPolicy::Uniform(4);
  EXPECT_EQ(policy.PlacementFor("some-key", 3).size(), 3u);
  EXPECT_EQ(policy.PlacementFor("some-key", 1).size(), 1u);
}

TEST(PlacementTest, MetadataClassesGetFullReplication) {
  // Default policy: tiny metadata objects go everywhere, bulk container
  // data gets 2 copies.
  PlacementPolicy policy;
  EXPECT_EQ(policy.PlacementFor("slim/recipes/recipe/f/0", 3).size(), 3u);
  EXPECT_EQ(policy.PlacementFor("slim/state/catalog", 3).size(), 3u);
  EXPECT_EQ(policy.PlacementFor("slim/containers/meta-7", 3).size(), 3u);
  EXPECT_EQ(policy.PlacementFor("slim/containers/data-7", 3).size(), 2u);
}

// ---------------------------------------------------------------------------
// ChecksummingObjectStore
// ---------------------------------------------------------------------------

TEST(ChecksummingStoreTest, InnerObjectCarriesFooterOutsideDoesNot) {
  oss::MemoryObjectStore inner;
  ChecksummingObjectStore store(&inner);
  ASSERT_TRUE(store.Put("k", "0123456789").ok());
  EXPECT_EQ(inner.Size("k").value(), 10 + kFooterSize);
  EXPECT_TRUE(HasValidFooter(inner.Get("k").value()));
  EXPECT_EQ(store.Size("k").value(), 10u);
  EXPECT_EQ(store.Get("k").value(), "0123456789");
  EXPECT_EQ(store.GetRange("k", 7, 100).value(), "789");
}

TEST(ChecksummingStoreTest, InnerCorruptionSurfacesAsCorruption) {
  oss::MemoryObjectStore inner;
  ChecksummingObjectStore store(&inner);
  ASSERT_TRUE(store.Put("k", "0123456789").ok());
  std::string raw = inner.Get("k").value();
  raw[3] = static_cast<char>(raw[3] ^ 0x80);
  ASSERT_TRUE(inner.Put("k", raw).ok());
  EXPECT_TRUE(store.Get("k").status().IsCorruption());
  // An object too short to even hold a footer is corrupt, not a range
  // error.
  ASSERT_TRUE(inner.Put("tiny", "abc").ok());
  EXPECT_TRUE(store.Get("tiny").status().IsCorruption());
  EXPECT_TRUE(store.GetRange("tiny", 0, 1).status().IsCorruption());
  EXPECT_TRUE(store.Size("tiny").status().IsCorruption());
}

// ---------------------------------------------------------------------------
// ReplicatingObjectStore
// ---------------------------------------------------------------------------

struct ReplicatedFixture {
  std::vector<std::unique_ptr<oss::MemoryObjectStore>> backing;
  std::unique_ptr<ReplicatingObjectStore> store;

  explicit ReplicatedFixture(uint32_t n, uint32_t k,
                             ReplicatingObjectStore::Validator validator = {}) {
    std::vector<oss::ObjectStore*> replicas;
    for (uint32_t i = 0; i < n; ++i) {
      backing.push_back(std::make_unique<oss::MemoryObjectStore>());
      replicas.push_back(backing.back().get());
    }
    store = std::make_unique<ReplicatingObjectStore>(
        std::move(replicas), PlacementPolicy::Uniform(k),
        std::move(validator));
  }

  oss::MemoryObjectStore* replica(uint32_t i) { return backing[i].get(); }
};

TEST(ReplicatingStoreTest, PutWritesExactlyThePlacedReplicas) {
  ReplicatedFixture fx(3, 2);
  ASSERT_TRUE(fx.store->Put("k", "v").ok());
  auto placed = fx.store->PlacementFor("k");
  ASSERT_EQ(placed.size(), 2u);
  for (uint32_t i = 0; i < 3; ++i) {
    bool is_placed =
        std::find(placed.begin(), placed.end(), i) != placed.end();
    EXPECT_EQ(fx.replica(i)->Exists("k").value(), is_placed) << i;
  }
}

TEST(ReplicatingStoreTest, GetFailsOverAndReadRepairsMissingReplica) {
  ReplicatedFixture fx(3, 2);
  ASSERT_TRUE(fx.store->Put("k", "precious").ok());
  auto placed = fx.store->PlacementFor("k");
  // Destroy the preferred copy: the read must transparently fail over.
  ASSERT_TRUE(fx.replica(placed[0])->Delete("k").ok());
  EXPECT_EQ(fx.store->Get("k").value(), "precious");
  // ...and read repair restored the destroyed copy.
  EXPECT_EQ(fx.replica(placed[0])->Get("k").value(), "precious");
}

TEST(ReplicatingStoreTest, ValidatorRejectsCorruptReplica) {
  ReplicatedFixture fx(3, 2, [](std::string_view object) {
    return HasValidFooter(object);
  });
  std::string value = "guarded payload";
  AppendFooter(&value);
  ASSERT_TRUE(fx.store->Put("k", value).ok());
  auto placed = fx.store->PlacementFor("k");
  // Bit-rot the preferred copy (still a well-formed object!). Without
  // the validator this garbage would be served verbatim.
  std::string rotten = value;
  rotten[0] = static_cast<char>(rotten[0] ^ 1);
  ASSERT_TRUE(fx.replica(placed[0])->Put("k", rotten).ok());
  EXPECT_EQ(fx.store->Get("k").value(), value);
  // Read repair overwrote the rotten copy with the good bytes.
  EXPECT_EQ(fx.replica(placed[0])->Get("k").value(), value);
}

TEST(ReplicatingStoreTest, AllReplicasLostIsNotFound) {
  ReplicatedFixture fx(3, 2);
  ASSERT_TRUE(fx.store->Put("k", "v").ok());
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.replica(i)->Delete("k").ok());
  }
  EXPECT_TRUE(fx.store->Get("k").status().IsNotFound());
}

TEST(ReplicatingStoreTest, DeleteRemovesEveryReplica) {
  ReplicatedFixture fx(3, 3);
  ASSERT_TRUE(fx.store->Put("k", "v").ok());
  ASSERT_TRUE(fx.store->Delete("k").ok());
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(fx.replica(i)->Exists("k").value()) << i;
  }
  EXPECT_TRUE(fx.store->Get("k").status().IsNotFound());
}

TEST(ReplicatingStoreTest, ListIsTheSortedUnion) {
  ReplicatedFixture fx(3, 2);
  for (const std::string key : {"p/c", "p/a", "p/b", "q/x"}) {
    ASSERT_TRUE(fx.store->Put(key, "v").ok());
  }
  auto keys = fx.store->List("p/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"p/a", "p/b", "p/c"}));
}

TEST(ReplicatingStoreTest, ScrubKeyDetectsAndRepairsMissingReplica) {
  ReplicatedFixture fx(3, 2, [](std::string_view object) {
    return HasValidFooter(object);
  });
  std::string value = "payload";
  AppendFooter(&value);
  ASSERT_TRUE(fx.store->Put("k", value).ok());
  auto placed = fx.store->PlacementFor("k");
  ASSERT_TRUE(fx.replica(placed[1])->Delete("k").ok());

  auto audit = fx.store->ScrubKey("k", /*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit.value().any_bad());
  EXPECT_TRUE(audit.value().recoverable);
  EXPECT_EQ(audit.value().states[1], ReplicaState::kMissing);
  EXPECT_EQ(audit.value().repaired, 0u);
  // Detection did not write anything.
  EXPECT_FALSE(fx.replica(placed[1])->Exists("k").value());

  auto fixed = fx.store->ScrubKey("k", /*repair=*/true);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed.value().repaired, 1u);
  EXPECT_EQ(fx.replica(placed[1])->Get("k").value(), value);

  auto clean = fx.store->ScrubKey("k", /*repair=*/false);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean.value().any_bad());
}

TEST(ReplicatingStoreTest, ScrubKeyArbitratesDivergenceByMajority) {
  ReplicatedFixture fx(3, 3);
  ASSERT_TRUE(fx.store->Put("k", "majority").ok());
  // One replica diverges (e.g. a torn overwrite): two good copies win.
  // states[] is parallel to the placement vector, so find the damaged
  // replica's position in it.
  auto placed = fx.store->PlacementFor("k");
  size_t pos = static_cast<size_t>(
      std::find(placed.begin(), placed.end(), 1u) - placed.begin());
  ASSERT_LT(pos, placed.size());
  ASSERT_TRUE(fx.replica(1)->Put("k", "minority").ok());
  auto fixed = fx.store->ScrubKey("k", /*repair=*/true);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed.value().states[pos], ReplicaState::kDiverged);
  EXPECT_EQ(fixed.value().repaired, 1u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fx.replica(i)->Get("k").value(), "majority") << i;
  }
}

TEST(ReplicatingStoreTest, ScrubKeyAllLostIsUnrecoverable) {
  ReplicatedFixture fx(3, 2);
  ASSERT_TRUE(fx.store->Put("k", "v").ok());
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.replica(i)->Delete("k").ok());
  }
  auto audit = fx.store->ScrubKey("k", /*repair=*/true);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit.value().any_bad());
  EXPECT_FALSE(audit.value().recoverable);
  EXPECT_EQ(audit.value().repaired, 0u);
}

// ---------------------------------------------------------------------------
// Parity groups
// ---------------------------------------------------------------------------

class ParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_ = {"c/data-0", "c/data-1", "c/data-2"};
    std::vector<std::string> values = {"short", "a rather longer member",
                                       "mid-sized"};
    for (size_t i = 0; i < keys_.size(); ++i) {
      ASSERT_TRUE(PutWithFooter(store_, keys_[i], values[i],
                                Component::kContainerData)
                      .ok());
      raw_.push_back(store_.Get(keys_[i]).value());
    }
  }

  oss::MemoryObjectStore store_;
  ParityManager parity_{&store_, "slim/durability", 3};
  std::vector<std::string> keys_;
  std::vector<std::string> raw_;  // Raw stored bytes incl. footer.
};

TEST_F(ParityTest, ReconstructsAnySingleLostMember) {
  ASSERT_TRUE(parity_.BuildGroup(0, keys_).ok());
  EXPECT_TRUE(parity_.IsFresh(0, keys_).value());
  for (size_t lost = 0; lost < keys_.size(); ++lost) {
    ASSERT_TRUE(store_.Delete(keys_[lost]).ok());
    auto bytes = parity_.Reconstruct(0, keys_[lost]);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    EXPECT_EQ(bytes.value(), raw_[lost]);
    // The reconstructed object is byte-identical, so its footer still
    // verifies.
    EXPECT_TRUE(HasValidFooter(bytes.value()));
    ASSERT_TRUE(store_.Put(keys_[lost], bytes.value()).ok());
  }
}

TEST_F(ParityTest, StaleParityNeverFabricatesBytes) {
  ASSERT_TRUE(parity_.BuildGroup(0, keys_).ok());
  // A member is rewritten after the parity was built (G-node churn)...
  ASSERT_TRUE(PutWithFooter(store_, keys_[1], "rewritten content",
                            Component::kContainerData)
                  .ok());
  EXPECT_FALSE(parity_.IsFresh(0, keys_).value());
  // ...and another member is lost before the group was refreshed: the
  // stale parity must refuse, not hand back garbage.
  ASSERT_TRUE(store_.Delete(keys_[0]).ok());
  EXPECT_EQ(parity_.Reconstruct(0, keys_[0]).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ParityTest, FreshnessTracksMemberSet) {
  ASSERT_TRUE(parity_.BuildGroup(0, keys_).ok());
  EXPECT_TRUE(parity_.IsFresh(0, keys_).value());
  // Missing parity object → not fresh.
  EXPECT_FALSE(parity_.IsFresh(1, keys_).value());
  // Different member set → not fresh.
  std::vector<std::string> fewer(keys_.begin(), keys_.end() - 1);
  EXPECT_FALSE(parity_.IsFresh(0, fewer).value());
  // Rebuild over the new set → fresh again.
  ASSERT_TRUE(parity_.BuildGroup(0, fewer).ok());
  EXPECT_TRUE(parity_.IsFresh(0, fewer).value());
}

TEST_F(ParityTest, BuildRequiresFooterValidMembers) {
  std::string raw = store_.Get(keys_[2]).value();
  raw[0] = static_cast<char>(raw[0] ^ 1);
  ASSERT_TRUE(store_.Put(keys_[2], raw).ok());
  EXPECT_EQ(parity_.BuildGroup(0, keys_).code(),
            StatusCode::kFailedPrecondition);
  // Nothing was written on failure.
  EXPECT_FALSE(store_.Exists(parity_.KeyFor(0)).value());
}

}  // namespace
}  // namespace slim::durability
