#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "common/macros.h"
#include "common/rng.h"
#include "oss/fault_injecting_object_store.h"
#include "oss/memory_object_store.h"
#include "oss/retrying_object_store.h"
#include "oss/rocks_oss.h"
#include "oss/simulated_oss.h"

namespace slim::oss {
namespace {

OssCostModel FastModel() {
  OssCostModel model;
  model.sleep_for_cost = false;  // Account only; tests stay fast.
  return model;
}

// ---------------------------------------------------------------------------
// MemoryObjectStore
// ---------------------------------------------------------------------------

TEST(MemoryObjectStoreTest, PutGetRoundTrip) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a/b", "hello").ok());
  auto v = store.Get("a/b");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "hello");
}

TEST(MemoryObjectStoreTest, GetMissingIsNotFound) {
  MemoryObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_TRUE(store.Size("nope").status().IsNotFound());
}

TEST(MemoryObjectStoreTest, PutOverwrites) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "v1").ok());
  ASSERT_TRUE(store.Put("k", "v2").ok());
  EXPECT_EQ(store.Get("k").value(), "v2");
  EXPECT_EQ(store.ObjectCount(), 1u);
}

TEST(MemoryObjectStoreTest, GetRangeSemantics) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "0123456789").ok());
  EXPECT_EQ(store.GetRange("k", 2, 3).value(), "234");
  // Reading past the end returns the available suffix.
  EXPECT_EQ(store.GetRange("k", 8, 100).value(), "89");
  // Offset at exactly the end is an empty read.
  EXPECT_EQ(store.GetRange("k", 10, 1).value(), "");
  // Offset beyond the end is an error.
  EXPECT_FALSE(store.GetRange("k", 11, 1).ok());
}

TEST(MemoryObjectStoreTest, DeleteIsIdempotent) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k").value());
}

TEST(MemoryObjectStoreTest, ListByPrefixSorted) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("x/2", "").ok());
  ASSERT_TRUE(store.Put("x/1", "").ok());
  ASSERT_TRUE(store.Put("y/1", "").ok());
  ASSERT_TRUE(store.Put("x", "").ok());
  auto keys = store.List("x/");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys.value().size(), 2u);
  EXPECT_EQ(keys.value()[0], "x/1");
  EXPECT_EQ(keys.value()[1], "x/2");
}

TEST(MemoryObjectStoreTest, TotalBytesWithPrefix) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("p/a", "12345").ok());
  ASSERT_TRUE(store.Put("p/b", "123").ok());
  ASSERT_TRUE(store.Put("q/c", "1").ok());
  EXPECT_EQ(TotalBytesWithPrefix(store, "p/").value(), 8u);
}

TEST(MemoryObjectStoreTest, ConcurrentPutsAreSafe) {
  MemoryObjectStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(
            store.Put("k" + std::to_string(t) + "-" + std::to_string(i),
                      "v")
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.ObjectCount(), 800u);
}

// ---------------------------------------------------------------------------
// SimulatedOss
// ---------------------------------------------------------------------------

TEST(SimulatedOssTest, CountsRequestsAndBytes) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", std::string(1000, 'x')).ok());
  ASSERT_TRUE(oss.Get("k").ok());
  ASSERT_TRUE(oss.Get("k").ok());
  auto m = oss.metrics();
  EXPECT_EQ(m.put_requests, 1u);
  EXPECT_EQ(m.get_requests, 2u);
  EXPECT_EQ(m.bytes_written, 1000u);
  EXPECT_EQ(m.bytes_read, 2000u);
  EXPECT_GT(m.sim_cost_nanos, 0u);
}

TEST(SimulatedOssTest, CostModelArithmetic) {
  OssCostModel model;
  model.request_latency_nanos = 1000;
  model.read_nanos_per_byte = 2.0;
  EXPECT_EQ(model.ReadCostNanos(500), 1000u + 1000u);
}

TEST(SimulatedOssTest, ResetMetrics) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "v").ok());
  oss.ResetMetrics();
  auto m = oss.metrics();
  EXPECT_EQ(m.put_requests, 0u);
  EXPECT_EQ(m.bytes_written, 0u);
}

TEST(SimulatedOssTest, MetricsSnapshotDiff) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "vvvv").ok());
  auto before = oss.metrics();
  ASSERT_TRUE(oss.Get("k").ok());
  auto delta = oss.metrics() - before;
  EXPECT_EQ(delta.get_requests, 1u);
  EXPECT_EQ(delta.put_requests, 0u);
  EXPECT_EQ(delta.bytes_read, 4u);
}

TEST(SimulatedOssTest, FailureInjection) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "v").ok());
  oss.set_failure_injector([](const std::string& op, const std::string&) {
    if (op == "get") return Status::IoError("injected");
    return Status::Ok();
  });
  EXPECT_TRUE(oss.Get("k").status().IsIoError());
  // Other ops still work.
  EXPECT_TRUE(oss.Put("k2", "v").ok());
  oss.set_failure_injector(nullptr);
  EXPECT_TRUE(oss.Get("k").ok());
}

TEST(SimulatedOssTest, PassesThroughNotFound) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  EXPECT_TRUE(oss.Get("missing").status().IsNotFound());
}

TEST(SimulatedOssTest, SleepForCostActuallySleeps) {
  MemoryObjectStore inner;
  OssCostModel model;
  model.request_latency_nanos = 5 * 1000 * 1000;  // 5 ms
  model.read_nanos_per_byte = 0;
  model.write_nanos_per_byte = 0;
  model.sleep_for_cost = true;
  SimulatedOss oss(&inner, model);
  ASSERT_TRUE(oss.Put("k", "v").ok());
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(oss.Get("k").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4);
}

// ---------------------------------------------------------------------------
// RocksOss
// ---------------------------------------------------------------------------

RocksOssOptions SmallLsm() {
  RocksOssOptions options;
  options.memtable_limit_bytes = 4096;
  options.max_runs = 4;
  return options;
}

TEST(RocksOssTest, PutGetRoundTrip) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("key", "value").ok());
  EXPECT_EQ(db.Get("key").value(), "value");
}

TEST(RocksOssTest, GetMissing) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  EXPECT_TRUE(db.Get("missing").status().IsNotFound());
}

TEST(RocksOssTest, OverwriteTakesLatest) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("k", "v1").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("k", "v2").ok());
  EXPECT_EQ(db.Get("k").value(), "v2");
}

TEST(RocksOssTest, DeleteTombstonesAcrossFlush) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("k", "v").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
}

TEST(RocksOssTest, FlushPersistsRunsOnOss) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(db.run_count(), 1u);
  EXPECT_FALSE(store.List("db/run-").value().empty());
}

TEST(RocksOssTest, AutoFlushOnMemtableLimit) {
  MemoryObjectStore store;
  RocksOssOptions options = SmallLsm();
  options.memtable_limit_bytes = 256;
  RocksOss db(&store, "db", options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Put("key-" + std::to_string(i), "some value").ok());
  }
  EXPECT_GE(db.run_count(), 1u);
  // All keys still readable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(db.Get("key-" + std::to_string(i)).ok());
  }
}

TEST(RocksOssTest, CompactMergesToSingleRun) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.Put("k" + std::to_string(batch * 10 + i), "v").ok());
    }
    ASSERT_TRUE(db.Flush().ok());
  }
  EXPECT_EQ(db.run_count(), 3u);
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_EQ(db.run_count(), 1u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(db.Get("k" + std::to_string(i)).ok());
  }
  // Old run objects are deleted from OSS.
  EXPECT_EQ(store.List("db/run-").value().size(), 1u);
}

TEST(RocksOssTest, ScanRangeMergesAllSources) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("b", "2x").ok());  // Overwrite in memtable.
  ASSERT_TRUE(db.Put("c", "3").ok());
  ASSERT_TRUE(db.Delete("a").ok());
  auto scan = db.Scan("", "");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 2u);
  EXPECT_EQ(scan.value()[0].first, "b");
  EXPECT_EQ(scan.value()[0].second, "2x");
  EXPECT_EQ(scan.value()[1].first, "c");
}

TEST(RocksOssTest, ScanRespectsBounds) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE(db.Put(std::string(1, c), "v").ok());
  }
  auto scan = db.Scan("b", "e");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 3u);
  EXPECT_EQ(scan.value().front().first, "b");
  EXPECT_EQ(scan.value().back().first, "d");
}

TEST(RocksOssTest, ReopenRecoversFlushedState) {
  MemoryObjectStore store;
  {
    RocksOss db(&store, "db", SmallLsm());
    ASSERT_TRUE(db.Put("persisted", "yes").ok());
    ASSERT_TRUE(db.Put("dropped", "tomb").ok());
    ASSERT_TRUE(db.Delete("dropped").ok());
    ASSERT_TRUE(db.Flush().ok());
  }
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Open().ok());
  EXPECT_EQ(db.Get("persisted").value(), "yes");
  EXPECT_TRUE(db.Get("dropped").status().IsNotFound());
  // New writes get fresh run ids that do not collide.
  ASSERT_TRUE(db.Put("after", "reopen").ok());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(db.Get("after").value(), "reopen");
}

TEST(RocksOssTest, RandomizedAgainstMapOracle) {
  MemoryObjectStore store;
  RocksOssOptions options = SmallLsm();
  options.memtable_limit_bytes = 512;
  options.max_runs = 3;
  RocksOss db(&store, "db", options);
  std::map<std::string, std::string> oracle;
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    double p = rng.NextDouble();
    if (p < 0.5) {
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(db.Put(key, value).ok());
      oracle[key] = value;
    } else if (p < 0.7) {
      ASSERT_TRUE(db.Delete(key).ok());
      oracle.erase(key);
    } else if (p < 0.72) {
      ASSERT_TRUE(db.Compact().ok());
    } else {
      auto got = db.Get(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(got.value(), it->second);
      }
    }
  }
  // Final full comparison via Scan.
  auto scan = db.Scan("", "");
  ASSERT_TRUE(scan.ok());
  std::map<std::string, std::string> scanned(scan.value().begin(),
                                             scan.value().end());
  EXPECT_EQ(scanned, oracle);
}

TEST(RocksOssTest, BloomSkipsReduceReads) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Put("present-" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db.Flush().ok());
  for (int i = 0; i < 200; ++i) {
    db.Get("absent-" + std::to_string(i)).IgnoreError();
  }
  EXPECT_GT(db.bloom_skips(), 150u);
}

// ---------------------------------------------------------------------------
// FaultInjectingObjectStore
// ---------------------------------------------------------------------------

std::string LogString(const FaultInjectingObjectStore& store) {
  std::string out;
  for (const InjectedFault& fault : store.injection_log()) {
    out += fault.op + " " + fault.key + " #" +
           std::to_string(fault.op_index) + " " + StatusCodeName(fault.code) +
           " " + std::to_string(fault.latency_nanos) + "\n";
  }
  return out;
}

TEST(FaultInjectingTest, DisabledPassesEverythingThrough) {
  MemoryObjectStore mem;
  FaultProfile profile;
  profile.transient_error_prob = 1.0;  // Would fail every op if armed.
  FaultInjectingObjectStore faulty(&mem, profile);
  faulty.set_enabled(false);
  EXPECT_TRUE(faulty.Put("k", "v").ok());
  EXPECT_EQ(faulty.Get("k").value(), "v");
  EXPECT_TRUE(faulty.injection_log().empty());
}

TEST(FaultInjectingTest, CertainTransientFailsWithoutTouchingInner) {
  MemoryObjectStore mem;
  FaultProfile profile;
  profile.transient_error_prob = 1.0;
  FaultInjectingObjectStore faulty(&mem, profile);
  Status put = faulty.Put("k", "v");
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(put.IsRetryable());
  // Faults strike BEFORE delegation: the inner store must be untouched.
  EXPECT_TRUE(mem.Get("k").status().IsNotFound());
  EXPECT_EQ(faulty.injected_error_count(), 1u);
}

TEST(FaultInjectingTest, CrashCutFailsEveryOpAfterN) {
  MemoryObjectStore mem;
  FaultInjectingObjectStore faulty(&mem, FaultProfile::CrashCut(3, 1));
  EXPECT_TRUE(faulty.Put("a", "1").ok());
  EXPECT_TRUE(faulty.Put("b", "2").ok());
  EXPECT_TRUE(faulty.Get("a").ok());
  // Ops 3, 4, ... all fail Unavailable.
  for (int i = 0; i < 5; ++i) {
    auto got = faulty.Get("a");
    ASSERT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsUnavailable());
  }
  // The data written before the cut is intact underneath.
  EXPECT_EQ(mem.Get("a").value(), "1");
}

TEST(FaultInjectingTest, PermanentPrefixFailsIoErrorOnlyInsidePrefix) {
  MemoryObjectStore mem;
  FaultInjectingObjectStore faulty(
      &mem, FaultProfile::PermanentPrefix("broken/", 1));
  Status put = faulty.Put("broken/key", "v");
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.code(), StatusCode::kIoError);
  EXPECT_FALSE(put.IsRetryable());
  EXPECT_TRUE(faulty.Put("healthy/key", "v").ok());
  EXPECT_EQ(faulty.Get("healthy/key").value(), "v");
}

TEST(FaultInjectingTest, LatencySpikeLogsOkEventAndSucceeds) {
  MemoryObjectStore mem;
  FaultProfile profile;
  profile.latency_spike_prob = 1.0;
  profile.latency_spike_nanos = 123456;
  // sleep_on_spike stays false: recorded, not slept.
  FaultInjectingObjectStore faulty(&mem, profile);
  EXPECT_TRUE(faulty.Put("k", "v").ok());
  auto log = faulty.injection_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].code, StatusCode::kOk);
  EXPECT_EQ(log[0].latency_nanos, 123456u);
  EXPECT_EQ(faulty.injected_error_count(), 0u);
}

// Replays a fixed operation sequence against the given store.
void DriveOps(ObjectStore* store) {
  for (int i = 0; i < 20; ++i) {
    store->Put("k" + std::to_string(i % 5), "v").IgnoreError();
    store->Get("k" + std::to_string(i % 3)).IgnoreError();
    store->Exists("k0").IgnoreError();
    store->List("k").IgnoreError();
  }
}

TEST(FaultInjectingTest, SameSeedSameOpsSameInjectionLog) {
  FaultProfile profile;
  profile.seed = 42;
  profile.transient_error_prob = 0.3;
  profile.latency_spike_prob = 0.1;
  profile.latency_spike_nanos = 1000;

  MemoryObjectStore mem_a, mem_b;
  FaultInjectingObjectStore faulty_a(&mem_a, profile);
  FaultInjectingObjectStore faulty_b(&mem_b, profile);
  DriveOps(&faulty_a);
  DriveOps(&faulty_b);
  std::string log = LogString(faulty_a);
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log, LogString(faulty_b));

  // Reset replays the profile from scratch on the same instance.
  faulty_a.Reset();
  DriveOps(&faulty_a);
  EXPECT_EQ(LogString(faulty_a), log);
}

TEST(FaultInjectingTest, DifferentSeedsDiverge) {
  FaultProfile a_profile, b_profile;
  a_profile.transient_error_prob = b_profile.transient_error_prob = 0.3;
  a_profile.seed = 1;
  b_profile.seed = 2;
  MemoryObjectStore mem_a, mem_b;
  FaultInjectingObjectStore faulty_a(&mem_a, a_profile);
  FaultInjectingObjectStore faulty_b(&mem_b, b_profile);
  DriveOps(&faulty_a);
  DriveOps(&faulty_b);
  EXPECT_NE(LogString(faulty_a), LogString(faulty_b));
}

TEST(FaultInjectingTest, VerdictsArePerKeyOccurrenceNotGlobalOrder) {
  // The n-th Get of a given key must get the same verdict no matter what
  // other keys are interleaved — decisions hash (op, key, occurrence),
  // they do not consume a shared stream.
  FaultProfile profile;
  profile.seed = 9;
  profile.transient_error_prob = 0.5;

  auto verdicts_for = [&](bool interleave) {
    MemoryObjectStore mem;
    FaultInjectingObjectStore faulty(&mem, profile);
    std::string out;
    for (int i = 0; i < 16; ++i) {
      out += faulty.Get("target").ok() ? 'o' : 'x';
      if (interleave) {
        faulty.Get("noise-" + std::to_string(i)).IgnoreError();
        faulty.Put("noise", "v").IgnoreError();
      }
    }
    return out;
  };
  EXPECT_EQ(verdicts_for(false), verdicts_for(true));
}

// ---------------------------------------------------------------------------
// ParseFaultProfile
// ---------------------------------------------------------------------------

TEST(ParseFaultProfileTest, PresetsMatchFactories) {
  auto parsed = ParseFaultProfile("transient-heavy");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().transient_error_prob,
            FaultProfile::TransientHeavy(1).transient_error_prob);

  auto crash = ParseFaultProfile("crash,fail_after=17");
  ASSERT_TRUE(crash.ok());
  EXPECT_EQ(crash.value().fail_after_ops, 17u);
}

TEST(ParseFaultProfileTest, KeyValueTokensOverrideInOrder) {
  auto parsed = ParseFaultProfile(
      "transient-light,seed=7,transient=0.5,deadline_frac=0.9,"
      "spike_p=0.25,spike_ns=5000,fail_after=99,"
      "permanent_prefix=a/,permanent_prefix=b/");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const FaultProfile& profile = parsed.value();
  EXPECT_EQ(profile.seed, 7u);
  EXPECT_DOUBLE_EQ(profile.transient_error_prob, 0.5);
  EXPECT_DOUBLE_EQ(profile.deadline_fraction, 0.9);
  EXPECT_DOUBLE_EQ(profile.latency_spike_prob, 0.25);
  EXPECT_EQ(profile.latency_spike_nanos, 5000u);
  EXPECT_EQ(profile.fail_after_ops, 99u);
  EXPECT_EQ(profile.permanent_error_prefixes,
            (std::vector<std::string>{"a/", "b/"}));
}

TEST(ParseFaultProfileTest, RejectsUnknownAndMalformedTokens) {
  EXPECT_EQ(ParseFaultProfile("bogus-preset").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultProfile("transient=not-a-number").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultProfile("unknown_key=3").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// RetryingObjectStore
// ---------------------------------------------------------------------------

// Test double that fails the next `failures_remaining` operations with
// `fail_status`, then delegates to an in-memory store.
class FlakyStore : public ObjectStore {
 public:
  Status fail_status = Status::Unavailable("flaky");
  int failures_remaining = 0;
  int calls = 0;

  Status Put(const std::string& key, std::string value) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.Put(key, std::move(value));
  }
  Result<std::string> Get(const std::string& key) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.Get(key);
  }
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.GetRange(key, offset, len);
  }
  Status Delete(const std::string& key) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.Delete(key);
  }
  Result<bool> Exists(const std::string& key) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.Exists(key);
  }
  Result<uint64_t> Size(const std::string& key) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.Size(key);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    SLIM_RETURN_IF_ERROR(Next());
    return mem_.List(prefix);
  }

 private:
  Status Next() {
    ++calls;
    if (failures_remaining > 0) {
      --failures_remaining;
      return fail_status;
    }
    return Status::Ok();
  }

  MemoryObjectStore mem_;
};

RetryPolicy TestPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  return policy;  // sleep_on_backoff defaults to false: tests stay fast.
}

TEST(RetryingTest, SucceedsAfterTransientFailures) {
  FlakyStore flaky;
  flaky.failures_remaining = 2;
  RetryingObjectStore retrying(&flaky, TestPolicy(4));
  ASSERT_TRUE(retrying.Put("k", "v").ok());
  EXPECT_EQ(flaky.calls, 3);
  // The value survived the two copy-attempts before the final move.
  EXPECT_EQ(retrying.Get("k").value(), "v");
  RetryStatsSnapshot stats = retrying.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.successes_after_retry, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryingTest, PermanentErrorsPassThroughOnFirstAttempt) {
  FlakyStore flaky;
  flaky.fail_status = Status::NotFound("no such object");
  flaky.failures_remaining = 5;
  RetryingObjectStore retrying(&flaky, TestPolicy(4));
  EXPECT_TRUE(retrying.Get("k").status().IsNotFound());
  EXPECT_EQ(flaky.calls, 1);
  EXPECT_EQ(retrying.stats().permanent_errors, 1u);
  EXPECT_EQ(retrying.stats().retries, 0u);
}

TEST(RetryingTest, ExhaustsAttemptsAndReturnsLastError) {
  FlakyStore flaky;
  flaky.failures_remaining = 100;
  RetryingObjectStore retrying(&flaky, TestPolicy(3));
  auto got = retrying.Get("k");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable());
  EXPECT_EQ(flaky.calls, 3);
  RetryStatsSnapshot stats = retrying.stats();
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(RetryingTest, SpentBudgetSuppressesFurtherRetries) {
  FlakyStore flaky;
  flaky.failures_remaining = 100;
  RetryPolicy policy = TestPolicy(10);
  policy.retry_budget = 2;
  RetryingObjectStore retrying(&flaky, policy);

  // First op burns the whole budget (2 retries), then fails on the
  // budget check; subsequent ops fail on their very first attempt.
  EXPECT_FALSE(retrying.Get("k").ok());
  int calls_after_first = flaky.calls;
  EXPECT_EQ(calls_after_first, 3);
  EXPECT_FALSE(retrying.Get("k").ok());
  EXPECT_EQ(flaky.calls, calls_after_first + 1);
  EXPECT_GE(retrying.stats().budget_exhausted, 2u);
}

TEST(RetryingTest, StackedOverFaultInjectionAbsorbsLightTransients) {
  // The canonical deployment stack: Retrying(FaultInjecting(mem)). With
  // generous attempts, light transients must be fully invisible.
  MemoryObjectStore mem;
  FaultInjectingObjectStore faulty(&mem,
                                   FaultProfile::TransientLight(/*seed=*/3));
  RetryingObjectStore retrying(&faulty, TestPolicy(8));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(retrying.Put("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(retrying.Get("k" + std::to_string(i)).ok());
  }
  // And the injector really did fire underneath.
  EXPECT_GT(faulty.injected_error_count(), 0u);
  EXPECT_EQ(retrying.stats().exhausted, 0u);
}

}  // namespace
}  // namespace slim::oss
