#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "common/rng.h"
#include "oss/memory_object_store.h"
#include "oss/rocks_oss.h"
#include "oss/simulated_oss.h"

namespace slim::oss {
namespace {

OssCostModel FastModel() {
  OssCostModel model;
  model.sleep_for_cost = false;  // Account only; tests stay fast.
  return model;
}

// ---------------------------------------------------------------------------
// MemoryObjectStore
// ---------------------------------------------------------------------------

TEST(MemoryObjectStoreTest, PutGetRoundTrip) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a/b", "hello").ok());
  auto v = store.Get("a/b");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "hello");
}

TEST(MemoryObjectStoreTest, GetMissingIsNotFound) {
  MemoryObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_TRUE(store.Size("nope").status().IsNotFound());
}

TEST(MemoryObjectStoreTest, PutOverwrites) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "v1").ok());
  ASSERT_TRUE(store.Put("k", "v2").ok());
  EXPECT_EQ(store.Get("k").value(), "v2");
  EXPECT_EQ(store.ObjectCount(), 1u);
}

TEST(MemoryObjectStoreTest, GetRangeSemantics) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "0123456789").ok());
  EXPECT_EQ(store.GetRange("k", 2, 3).value(), "234");
  // Reading past the end returns the available suffix.
  EXPECT_EQ(store.GetRange("k", 8, 100).value(), "89");
  // Offset at exactly the end is an empty read.
  EXPECT_EQ(store.GetRange("k", 10, 1).value(), "");
  // Offset beyond the end is an error.
  EXPECT_FALSE(store.GetRange("k", 11, 1).ok());
}

TEST(MemoryObjectStoreTest, DeleteIsIdempotent) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k").value());
}

TEST(MemoryObjectStoreTest, ListByPrefixSorted) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("x/2", "").ok());
  ASSERT_TRUE(store.Put("x/1", "").ok());
  ASSERT_TRUE(store.Put("y/1", "").ok());
  ASSERT_TRUE(store.Put("x", "").ok());
  auto keys = store.List("x/");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys.value().size(), 2u);
  EXPECT_EQ(keys.value()[0], "x/1");
  EXPECT_EQ(keys.value()[1], "x/2");
}

TEST(MemoryObjectStoreTest, TotalBytesWithPrefix) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("p/a", "12345").ok());
  ASSERT_TRUE(store.Put("p/b", "123").ok());
  ASSERT_TRUE(store.Put("q/c", "1").ok());
  EXPECT_EQ(TotalBytesWithPrefix(store, "p/").value(), 8u);
}

TEST(MemoryObjectStoreTest, ConcurrentPutsAreSafe) {
  MemoryObjectStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(
            store.Put("k" + std::to_string(t) + "-" + std::to_string(i),
                      "v")
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.ObjectCount(), 800u);
}

// ---------------------------------------------------------------------------
// SimulatedOss
// ---------------------------------------------------------------------------

TEST(SimulatedOssTest, CountsRequestsAndBytes) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", std::string(1000, 'x')).ok());
  ASSERT_TRUE(oss.Get("k").ok());
  ASSERT_TRUE(oss.Get("k").ok());
  auto m = oss.metrics();
  EXPECT_EQ(m.put_requests, 1u);
  EXPECT_EQ(m.get_requests, 2u);
  EXPECT_EQ(m.bytes_written, 1000u);
  EXPECT_EQ(m.bytes_read, 2000u);
  EXPECT_GT(m.sim_cost_nanos, 0u);
}

TEST(SimulatedOssTest, CostModelArithmetic) {
  OssCostModel model;
  model.request_latency_nanos = 1000;
  model.read_nanos_per_byte = 2.0;
  EXPECT_EQ(model.ReadCostNanos(500), 1000u + 1000u);
}

TEST(SimulatedOssTest, ResetMetrics) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "v").ok());
  oss.ResetMetrics();
  auto m = oss.metrics();
  EXPECT_EQ(m.put_requests, 0u);
  EXPECT_EQ(m.bytes_written, 0u);
}

TEST(SimulatedOssTest, MetricsSnapshotDiff) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "vvvv").ok());
  auto before = oss.metrics();
  ASSERT_TRUE(oss.Get("k").ok());
  auto delta = oss.metrics() - before;
  EXPECT_EQ(delta.get_requests, 1u);
  EXPECT_EQ(delta.put_requests, 0u);
  EXPECT_EQ(delta.bytes_read, 4u);
}

TEST(SimulatedOssTest, FailureInjection) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  ASSERT_TRUE(oss.Put("k", "v").ok());
  oss.set_failure_injector([](const std::string& op, const std::string&) {
    if (op == "get") return Status::IoError("injected");
    return Status::Ok();
  });
  EXPECT_TRUE(oss.Get("k").status().IsIoError());
  // Other ops still work.
  EXPECT_TRUE(oss.Put("k2", "v").ok());
  oss.set_failure_injector(nullptr);
  EXPECT_TRUE(oss.Get("k").ok());
}

TEST(SimulatedOssTest, PassesThroughNotFound) {
  MemoryObjectStore inner;
  SimulatedOss oss(&inner, FastModel());
  EXPECT_TRUE(oss.Get("missing").status().IsNotFound());
}

TEST(SimulatedOssTest, SleepForCostActuallySleeps) {
  MemoryObjectStore inner;
  OssCostModel model;
  model.request_latency_nanos = 5 * 1000 * 1000;  // 5 ms
  model.read_nanos_per_byte = 0;
  model.write_nanos_per_byte = 0;
  model.sleep_for_cost = true;
  SimulatedOss oss(&inner, model);
  ASSERT_TRUE(oss.Put("k", "v").ok());
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(oss.Get("k").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4);
}

// ---------------------------------------------------------------------------
// RocksOss
// ---------------------------------------------------------------------------

RocksOssOptions SmallLsm() {
  RocksOssOptions options;
  options.memtable_limit_bytes = 4096;
  options.max_runs = 4;
  return options;
}

TEST(RocksOssTest, PutGetRoundTrip) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("key", "value").ok());
  EXPECT_EQ(db.Get("key").value(), "value");
}

TEST(RocksOssTest, GetMissing) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  EXPECT_TRUE(db.Get("missing").status().IsNotFound());
}

TEST(RocksOssTest, OverwriteTakesLatest) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("k", "v1").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("k", "v2").ok());
  EXPECT_EQ(db.Get("k").value(), "v2");
}

TEST(RocksOssTest, DeleteTombstonesAcrossFlush) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("k", "v").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
}

TEST(RocksOssTest, FlushPersistsRunsOnOss) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(db.run_count(), 1u);
  EXPECT_FALSE(store.List("db/run-").value().empty());
}

TEST(RocksOssTest, AutoFlushOnMemtableLimit) {
  MemoryObjectStore store;
  RocksOssOptions options = SmallLsm();
  options.memtable_limit_bytes = 256;
  RocksOss db(&store, "db", options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Put("key-" + std::to_string(i), "some value").ok());
  }
  EXPECT_GE(db.run_count(), 1u);
  // All keys still readable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(db.Get("key-" + std::to_string(i)).ok());
  }
}

TEST(RocksOssTest, CompactMergesToSingleRun) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.Put("k" + std::to_string(batch * 10 + i), "v").ok());
    }
    ASSERT_TRUE(db.Flush().ok());
  }
  EXPECT_EQ(db.run_count(), 3u);
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_EQ(db.run_count(), 1u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(db.Get("k" + std::to_string(i)).ok());
  }
  // Old run objects are deleted from OSS.
  EXPECT_EQ(store.List("db/run-").value().size(), 1u);
}

TEST(RocksOssTest, ScanRangeMergesAllSources) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("b", "2x").ok());  // Overwrite in memtable.
  ASSERT_TRUE(db.Put("c", "3").ok());
  ASSERT_TRUE(db.Delete("a").ok());
  auto scan = db.Scan("", "");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 2u);
  EXPECT_EQ(scan.value()[0].first, "b");
  EXPECT_EQ(scan.value()[0].second, "2x");
  EXPECT_EQ(scan.value()[1].first, "c");
}

TEST(RocksOssTest, ScanRespectsBounds) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE(db.Put(std::string(1, c), "v").ok());
  }
  auto scan = db.Scan("b", "e");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 3u);
  EXPECT_EQ(scan.value().front().first, "b");
  EXPECT_EQ(scan.value().back().first, "d");
}

TEST(RocksOssTest, ReopenRecoversFlushedState) {
  MemoryObjectStore store;
  {
    RocksOss db(&store, "db", SmallLsm());
    ASSERT_TRUE(db.Put("persisted", "yes").ok());
    ASSERT_TRUE(db.Put("dropped", "tomb").ok());
    ASSERT_TRUE(db.Delete("dropped").ok());
    ASSERT_TRUE(db.Flush().ok());
  }
  RocksOss db(&store, "db", SmallLsm());
  ASSERT_TRUE(db.Open().ok());
  EXPECT_EQ(db.Get("persisted").value(), "yes");
  EXPECT_TRUE(db.Get("dropped").status().IsNotFound());
  // New writes get fresh run ids that do not collide.
  ASSERT_TRUE(db.Put("after", "reopen").ok());
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(db.Get("after").value(), "reopen");
}

TEST(RocksOssTest, RandomizedAgainstMapOracle) {
  MemoryObjectStore store;
  RocksOssOptions options = SmallLsm();
  options.memtable_limit_bytes = 512;
  options.max_runs = 3;
  RocksOss db(&store, "db", options);
  std::map<std::string, std::string> oracle;
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    double p = rng.NextDouble();
    if (p < 0.5) {
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(db.Put(key, value).ok());
      oracle[key] = value;
    } else if (p < 0.7) {
      ASSERT_TRUE(db.Delete(key).ok());
      oracle.erase(key);
    } else if (p < 0.72) {
      ASSERT_TRUE(db.Compact().ok());
    } else {
      auto got = db.Get(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(got.value(), it->second);
      }
    }
  }
  // Final full comparison via Scan.
  auto scan = db.Scan("", "");
  ASSERT_TRUE(scan.ok());
  std::map<std::string, std::string> scanned(scan.value().begin(),
                                             scan.value().end());
  EXPECT_EQ(scanned, oracle);
}

TEST(RocksOssTest, BloomSkipsReduceReads) {
  MemoryObjectStore store;
  RocksOss db(&store, "db", SmallLsm());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Put("present-" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db.Flush().ok());
  for (int i = 0; i < 200; ++i) {
    db.Get("absent-" + std::to_string(i)).IgnoreError();
  }
  EXPECT_GT(db.bloom_skips(), 150u);
}

}  // namespace
}  // namespace slim::oss
