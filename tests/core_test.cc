#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/cluster.h"
#include "core/slimstore.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim::core {
namespace {

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

VersionInfo MakeInfo(const std::string& file, uint64_t version,
                     std::vector<format::ContainerId> referenced = {}) {
  VersionInfo info;
  info.file_id = file;
  info.version = version;
  info.referenced_containers = std::move(referenced);
  return info;
}

TEST(CatalogTest, RecordAndGet) {
  Catalog catalog;
  catalog.RecordBackup(MakeInfo("f", 0, {1, 2}));
  auto info = catalog.Get("f", 0);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->referenced_containers,
            (std::vector<format::ContainerId>{1, 2}));
  EXPECT_TRUE(info->gnode_pending);
  EXPECT_FALSE(catalog.Get("f", 1).has_value());
}

TEST(CatalogTest, LiveVersionsAndVersionsOf) {
  Catalog catalog;
  catalog.RecordBackup(MakeInfo("a", 0));
  catalog.RecordBackup(MakeInfo("a", 2));
  catalog.RecordBackup(MakeInfo("b", 1));
  EXPECT_EQ(catalog.LiveVersions().size(), 3u);
  EXPECT_EQ(catalog.VersionsOf("a"), (std::vector<uint64_t>{0, 2}));
  catalog.Erase("a", 0);
  EXPECT_EQ(catalog.VersionsOf("a"), (std::vector<uint64_t>{2}));
}

TEST(CatalogTest, GnodePendingLifecycle) {
  Catalog catalog;
  catalog.RecordBackup(MakeInfo("f", 0));
  catalog.RecordBackup(MakeInfo("f", 1));
  EXPECT_EQ(catalog.GnodePending().size(), 2u);
  catalog.MarkGnodeDone("f", 0);
  auto pending = catalog.GnodePending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].version, 1u);
}

TEST(CatalogTest, GarbageAndNewContainerAccumulation) {
  Catalog catalog;
  catalog.RecordBackup(MakeInfo("f", 0));
  catalog.AddGarbage("f", 0, {7, 8});
  catalog.AddGarbage("f", 0, {9});
  catalog.AddNewContainers("f", 0, {10});
  auto info = catalog.Get("f", 0);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->garbage_containers,
            (std::vector<format::ContainerId>{7, 8, 9}));
  EXPECT_EQ(info->new_containers,
            (std::vector<format::ContainerId>{10}));
  // Updates to unknown versions are ignored, not fatal.
  catalog.AddGarbage("ghost", 5, {1});
}

TEST(CatalogTest, LiveReferencedSetsExcludesTarget) {
  Catalog catalog;
  catalog.RecordBackup(MakeInfo("f", 0, {1}));
  catalog.RecordBackup(MakeInfo("f", 1, {2}));
  catalog.RecordBackup(MakeInfo("g", 0, {3}));
  auto sets = catalog.LiveReferencedSetsExcept("f", 0);
  EXPECT_EQ(sets.size(), 2u);
  for (const auto& set : sets) {
    EXPECT_NE(set, (std::vector<format::ContainerId>{1}));
  }
}

// ---------------------------------------------------------------------------
// SlimStore facade behaviors
// ---------------------------------------------------------------------------

SlimStoreOptions SmallOptions() {
  SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  return options;
}

workload::GeneratorOptions Gen(uint64_t seed, size_t size = 96 << 10) {
  workload::GeneratorOptions gen;
  gen.base_size = size;
  gen.duplication_ratio = 0.85;
  gen.block_size = 1024;
  gen.seed = seed;
  return gen;
}

TEST(SlimStoreTest, AutoGnodeRunsCyclePerBackup) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = SmallOptions();
  options.auto_gnode = true;
  SlimStore store(&oss, options);
  workload::VersionedFileGenerator file(Gen(3));
  ASSERT_TRUE(store.Backup("f", file.data()).ok());
  EXPECT_TRUE(store.catalog()->GnodePending().empty());
}

TEST(SlimStoreTest, SpaceReportBreaksDownByClass) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  workload::VersionedFileGenerator file(Gen(5));
  ASSERT_TRUE(store.Backup("f", file.data()).ok());
  auto report = store.GetSpaceReport();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().container_bytes, 64u << 10);
  EXPECT_GT(report.value().meta_bytes, 0u);
  EXPECT_GT(report.value().recipe_bytes, 0u);
  EXPECT_EQ(report.value().total(),
            report.value().container_bytes + report.value().meta_bytes +
                report.value().recipe_bytes + report.value().index_bytes);
}

TEST(SlimStoreTest, MultipleFilesShareContainersAfterGDedup) {
  oss::MemoryObjectStore oss;
  SlimStoreOptions options = SmallOptions();
  // No similarity detection: copies are only caught by G-dedupe.
  options.backup.sample_ratio = 1u << 30;
  options.backup.min_similarity_samples = 1000000;
  options.enable_scc = false;
  SlimStore store(&oss, options);

  workload::VersionedFileGenerator file(Gen(7));
  ASSERT_TRUE(store.Backup("a", file.data()).ok());
  ASSERT_TRUE(store.Backup("b", file.data()).ok());
  auto before = store.GetSpaceReport().value().container_bytes;
  ASSERT_TRUE(store.RunGNodeCycle().ok());
  auto after = store.GetSpaceReport().value().container_bytes;
  EXPECT_LT(after, before);

  // Both restore fine, b without redirects (it kept its copies),
  // a with redirects.
  auto ra = store.Restore("a", 0);
  ASSERT_TRUE(ra.ok()) << ra.status();
  EXPECT_EQ(ra.value(), file.data());
  auto rb = store.Restore("b", 0);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb.value(), file.data());
}

TEST(SlimStoreTest, DeleteUnknownVersionFails) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  EXPECT_TRUE(store.DeleteVersion("nope", 0).status().IsNotFound());
}

TEST(SlimStoreTest, DeleteAllVersionsReclaimsNearlyEverything) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  workload::VersionedFileGenerator file(Gen(11));
  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    file.Mutate();
  }
  for (uint64_t v = 0; v < 3; ++v) {
    ASSERT_TRUE(store.DeleteVersion("f", v).ok());
  }
  auto report = store.GetSpaceReport();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().container_bytes, 0u);
  EXPECT_TRUE(store.catalog()->LiveVersions().empty());
}

TEST(SlimStoreTest, DeleteMiddleVersionKeepsNeighborsRestorable) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  workload::VersionedFileGenerator file(Gen(13));
  std::vector<std::string> versions;
  for (int v = 0; v < 3; ++v) {
    versions.push_back(file.data());
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    file.Mutate();
  }
  ASSERT_TRUE(store.DeleteVersion("f", 1).ok());
  auto v0 = store.Restore("f", 0);
  ASSERT_TRUE(v0.ok()) << v0.status();
  EXPECT_EQ(v0.value(), versions[0]);
  auto v2 = store.Restore("f", 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), versions[2]);
  EXPECT_FALSE(store.Restore("f", 1).ok());
}

TEST(SlimStoreTest, VersionNumbersContinueAfterDeletion) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  workload::VersionedFileGenerator file(Gen(17));
  ASSERT_TRUE(store.Backup("f", file.data()).ok());
  file.Mutate();
  auto v1 = store.Backup("f", file.data());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value().version, 1u);
  ASSERT_TRUE(store.DeleteVersion("f", 0).ok());
  file.Mutate();
  auto v2 = store.Backup("f", file.data());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().version, 2u);
}

// ---------------------------------------------------------------------------
// Cluster sizing
// ---------------------------------------------------------------------------

TEST(ClusterTest, NodeSpillMath) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  Cluster::Options copts;
  copts.num_lnodes = 3;
  copts.backup_jobs_per_node = 2;
  Cluster cluster(&store, copts);

  std::vector<std::string> contents;
  for (int i = 0; i < 5; ++i) {
    contents.push_back(
        workload::VersionedFileGenerator(Gen(50 + i, 16 << 10)).data());
  }
  std::vector<BackupJob> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({"f" + std::to_string(i), &contents[i]});
  }
  auto run = cluster.ParallelBackup(jobs);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().lnodes_used, 3u);  // ceil(5/2)
  EXPECT_EQ(run.value().concurrency, 5u);
}

TEST(ClusterTest, EmptyWaveIsOk) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  Cluster cluster(&store, {});
  auto run = cluster.ParallelBackup({});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().jobs, 0u);
}

TEST(ClusterTest, RestoreFailuresPropagate) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  Cluster cluster(&store, {});
  auto run = cluster.ParallelRestore({{"ghost", 0}});
  EXPECT_FALSE(run.ok());
}

}  // namespace
}  // namespace slim::core
