#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/slimstore.h"
#include "lnode/restore_pipeline.h"
#include "oss/memory_object_store.h"
#include "workload/generator.h"

namespace slim::core {
namespace {

SlimStoreOptions SmallOptions() {
  SlimStoreOptions options;
  options.backup.chunker_params = chunking::ChunkerParams::FromAverage(1024);
  options.backup.container_capacity = 16 << 10;
  options.backup.sample_ratio = 4;
  return options;
}

workload::VersionedFileGenerator MakeFile(uint64_t seed = 61) {
  workload::GeneratorOptions gen;
  gen.base_size = 96 << 10;
  gen.duplication_ratio = 0.85;
  gen.block_size = 1024;
  gen.seed = seed;
  return workload::VersionedFileGenerator(gen);
}

TEST(VerifierTest, CleanRepositoryPasses) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile();
  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    file.Mutate();
  }
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << report.value().problems.front();
  EXPECT_EQ(report.value().versions_checked, 3u);
  EXPECT_GT(report.value().chunks_checked, 100u);
  EXPECT_GT(report.value().containers_checked, 0u);
}

TEST(VerifierTest, PassesAfterGnodeWithRedirects) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(62);
  for (int v = 0; v < 5; ++v) {
    ASSERT_TRUE(store.Backup("f", file.data()).ok());
    ASSERT_TRUE(store.RunGNodeCycle().ok());
    file.Mutate();
  }
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << report.value().problems.front();
}

TEST(VerifierTest, DetectsCorruptedContainer) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(63);
  ASSERT_TRUE(store.Backup("f", file.data()).ok());

  auto keys = oss.List("slim/containers/data-");
  ASSERT_TRUE(keys.ok());
  ASSERT_FALSE(keys.value().empty());
  auto object = oss.Get(keys.value()[0]);
  ASSERT_TRUE(object.ok());
  std::string mutated = object.value();
  mutated[mutated.size() - 1] =
      static_cast<char>(mutated[mutated.size() - 1] ^ 0xff);
  ASSERT_TRUE(oss.Put(keys.value()[0], mutated).ok());

  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok());
}

TEST(VerifierTest, DetectsDeletedContainer) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(64);
  ASSERT_TRUE(store.Backup("f", file.data()).ok());
  auto keys = oss.List("slim/containers/data-");
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(oss.Delete(keys.value()[0]).ok());
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok());
}

TEST(VerifierTest, DetectsMissingRecipe) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(65);
  ASSERT_TRUE(store.Backup("f", file.data()).ok());
  ASSERT_TRUE(store.recipe_store()->DeleteVersion("f", 0).ok());
  auto report = store.VerifyRepository();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok());
}

// ---------------------------------------------------------------------------
// RestoreToSink
// ---------------------------------------------------------------------------

TEST(RestoreToSinkTest, StreamsSameBytesAsRestore) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(66);
  ASSERT_TRUE(store.Backup("f", file.data()).ok());

  lnode::RestoreOptions opts = SmallOptions().restore;
  opts.global_index = store.global_index();
  lnode::RestorePipeline pipeline(store.container_store(),
                                  store.recipe_store(), opts);
  std::string streamed;
  size_t pushes = 0;
  Status s = pipeline.RestoreToSink(
      "f", 0,
      [&](std::string_view bytes) {
        streamed.append(bytes.data(), bytes.size());
        ++pushes;
        return Status::Ok();
      },
      nullptr);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(streamed, file.data());
  EXPECT_GT(pushes, 10u);  // Chunk-granular pushes, not one big blob.
}

TEST(RestoreToSinkTest, SinkErrorAbortsRestore) {
  oss::MemoryObjectStore oss;
  SlimStore store(&oss, SmallOptions());
  auto file = MakeFile(67);
  ASSERT_TRUE(store.Backup("f", file.data()).ok());

  lnode::RestoreOptions opts = SmallOptions().restore;
  opts.global_index = store.global_index();
  lnode::RestorePipeline pipeline(store.container_store(),
                                  store.recipe_store(), opts);
  size_t pushes = 0;
  Status s = pipeline.RestoreToSink(
      "f", 0,
      [&](std::string_view) {
        if (++pushes == 3) return Status::IoError("client went away");
        return Status::Ok();
      },
      nullptr);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(pushes, 3u);
}

}  // namespace
}  // namespace slim::core
