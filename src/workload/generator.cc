#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include "chunking/chunker.h"
#include "common/hash.h"
#include "common/macros.h"

namespace slim::workload {

VersionedFileGenerator::VersionedFileGenerator(GeneratorOptions options)
    : options_(options), rng_(options.seed) {
  SLIM_CHECK(options_.block_size > 0);
  SLIM_CHECK(options_.base_size >= options_.block_size);
  // Build version 0 block by block so self-referencing duplicates exist
  // from the start.
  data_.reserve(options_.base_size);
  while (data_.size() < options_.base_size) {
    size_t n = std::min(options_.block_size,
                        options_.base_size - data_.size());
    data_ += NewContent(n);
  }
}

std::string VersionedFileGenerator::NewContent(size_t n) {
  if (options_.self_reference > 0 && data_.size() >= n &&
      rng_.Bernoulli(options_.self_reference)) {
    // Copy an aligned existing block: a self-reference duplicate.
    size_t blocks = data_.size() / options_.block_size;
    if (blocks > 0) {
      size_t src = rng_.Uniform(blocks) * options_.block_size;
      size_t avail = data_.size() - src;
      if (avail >= n) return data_.substr(src, n);
    }
  }
  return rng_.RandomBytes(n);
}

void VersionedFileGenerator::Mutate() {
  MutateWithRatio(options_.duplication_ratio);
}

void VersionedFileGenerator::MutateWithRatio(double duplication_ratio) {
  duplication_ratio = std::clamp(duplication_ratio, 0.0, 1.0);
  uint64_t budget =
      static_cast<uint64_t>(static_cast<double>(data_.size()) *
                            (1.0 - duplication_ratio));
  while (budget > 0 && data_.size() > options_.block_size * 4) {
    // Mutation span: 2..9 blocks. Fewer, larger spans keep the
    // chunk-boundary waste low so the configured byte-level ratio
    // translates closely into the measured chunk-level dedup ratio.
    size_t span = options_.block_size * (2 + rng_.Uniform(8));
    span = std::min<size_t>(span, budget == 0 ? span : budget);
    span = std::max<size_t>(span, 1);
    double p = rng_.NextDouble();
    if (p < options_.insert_fraction) {
      // INSERT fresh content at a random offset.
      size_t at = rng_.Uniform(data_.size());
      data_.insert(at, NewContent(span));
    } else if (p < options_.insert_fraction + options_.delete_fraction) {
      // DELETE a span.
      size_t at = rng_.Uniform(data_.size());
      size_t len = std::min(span, data_.size() - at);
      data_.erase(at, len);
    } else {
      // UPDATE a span in place.
      size_t at = rng_.Uniform(data_.size());
      size_t len = std::min(span, data_.size() - at);
      std::string fresh = NewContent(len);
      data_.replace(at, len, fresh);
    }
    budget = budget > span ? budget - span : 0;
  }
  ++version_;
}

Dataset Dataset::MakeSdb(const SdbOptions& options) {
  Dataset ds;
  ds.num_versions_ = options.num_versions;
  for (size_t i = 0; i < options.num_files; ++i) {
    GeneratorOptions gen;
    gen.base_size = options.file_size;
    // Spread per-file duplication uniformly over [min, max], matching
    // the paper's "varying the duplication ratio of each table file
    // between versions from 0.65 to 0.95".
    double t = options.num_files <= 1
                   ? 0.5
                   : static_cast<double>(i) /
                         static_cast<double>(options.num_files - 1);
    gen.duplication_ratio =
        options.min_duplication +
        t * (options.max_duplication - options.min_duplication);
    gen.self_reference = options.self_reference;
    gen.seed = options.seed * 1000003 + i;
    ds.generators_.emplace_back(gen);
    ds.file_ids_.push_back("sdb/table-" + std::to_string(i) + ".db");
    ds.duplications_.push_back(gen.duplication_ratio);
  }
  return ds;
}

Dataset Dataset::MakeRdata(const RdataOptions& options) {
  Dataset ds;
  ds.num_versions_ = options.num_versions;
  for (size_t i = 0; i < options.num_files; ++i) {
    GeneratorOptions gen;
    gen.base_size = options.file_size;
    gen.duplication_ratio = options.duplication;
    gen.self_reference = options.self_reference;
    gen.seed = options.seed * 7777777 + i;
    ds.generators_.emplace_back(gen);
    ds.file_ids_.push_back("rdata/file-" + std::to_string(i) + ".bin");
    ds.duplications_.push_back(gen.duplication_ratio);
  }
  return ds;
}

std::vector<DatasetFile> Dataset::files() const {
  std::vector<DatasetFile> out;
  out.reserve(generators_.size());
  for (size_t i = 0; i < generators_.size(); ++i) {
    out.push_back(DatasetFile{file_ids_[i], &generators_[i].data()});
  }
  return out;
}

const std::string& Dataset::file_data(size_t i) const {
  return generators_[i].data();
}

bool Dataset::NextVersion() {
  if (current_version_ + 1 >= num_versions_) return false;
  for (auto& gen : generators_) gen.Mutate();
  ++current_version_;
  return true;
}

PairStats MeasureDuplication(const std::string& prev, const std::string& cur,
                             size_t block_size) {
  PairStats stats;
  if (cur.empty()) return stats;
  // Content-defined chunking so insertions/deletions do not misalign
  // the comparison (the same reason dedup systems use CDC).
  auto chunker = chunking::CreateChunker(
      chunking::ChunkerType::kGear,
      chunking::ChunkerParams::FromAverage(block_size));
  std::unordered_set<uint64_t> prev_chunks;
  for (const auto& c : chunking::ChunkAll(*chunker, prev)) {
    prev_chunks.insert(Fnv1a64(prev.data() + c.offset, c.size));
  }
  uint64_t shared_bytes = 0, total_bytes = 0;
  for (const auto& c : chunking::ChunkAll(*chunker, cur)) {
    total_bytes += c.size;
    if (prev_chunks.count(Fnv1a64(cur.data() + c.offset, c.size)) > 0) {
      shared_bytes += c.size;
    }
  }
  stats.byte_duplication =
      total_bytes == 0 ? 0.0
                       : static_cast<double>(shared_bytes) /
                             static_cast<double>(total_bytes);
  return stats;
}

}  // namespace slim::workload
