#include "workload/arrivals.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "common/rng.h"

namespace slim::workload {

namespace {

/// Per-(tenant, file) version state while building the schedule.
struct FileState {
  VersionedFileGenerator generator;
  uint64_t versions_backed_up = 0;
};

}  // namespace

ArrivalWorkload::ArrivalWorkload(ArrivalOptions options)
    : options_(std::move(options)) {
  Rng rng(options_.seed);

  std::vector<double> weights;
  for (size_t w = 0; w < options_.num_whales; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "whale-%zu", w);
    tenants_.push_back(name);
    weights.push_back(options_.whale_weight);
  }
  for (size_t t = 0; t < options_.num_small_tenants; ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "tenant-%02zu", t);
    tenants_.push_back(name);
    weights.push_back(1.0);
  }
  double total_weight = 0;
  for (double w : weights) total_weight += w;

  // (tenant index, file index) -> generator state, created lazily so
  // only files the schedule actually touches cost memory.
  std::map<std::pair<size_t, size_t>, FileState> files;
  // Restore candidates: (tenant idx, file idx, version) seen so far.
  struct Backed {
    size_t tenant;
    size_t file;
    uint64_t version;
  };
  std::vector<Backed> backed_up;

  double clock_ms = 0;
  for (size_t j = 0; j < options_.num_jobs; ++j) {
    // Exponential inter-arrival: clamped away from u=1 for finiteness.
    double u = rng.NextDouble();
    if (u > 0.999999) u = 0.999999;
    clock_ms += -options_.mean_interarrival_ms * std::log(1.0 - u);

    // Weighted tenant draw.
    double pick = rng.NextDouble() * total_weight;
    size_t tenant = 0;
    for (; tenant + 1 < weights.size(); ++tenant) {
      if (pick < weights[tenant]) break;
      pick -= weights[tenant];
    }
    size_t file = options_.files_per_tenant == 0
                      ? 0
                      : static_cast<size_t>(rng.Uniform(
                            static_cast<uint64_t>(options_.files_per_tenant)));

    bool is_backup = backed_up.empty() ||
                     rng.NextDouble() < options_.backup_fraction;

    ArrivalEvent event;
    event.at_ms = clock_ms;
    char file_id[32];
    if (is_backup) {
      event.tenant = tenants_[tenant];
      std::snprintf(file_id, sizeof(file_id), "file-%zu", file);
      event.file_id = file_id;
      auto key = std::make_pair(tenant, file);
      auto it = files.find(key);
      if (it == files.end()) {
        GeneratorOptions gen = options_.file_options;
        gen.base_size = tenant < options_.num_whales
                            ? options_.whale_file_size
                            : options_.small_file_size;
        // Seeds are always tenant-distinct so payloads never dedup
        // across tenants by construction. With correlated_files the
        // seed is shared within the tenant and file k pre-mutates k
        // times, giving files of one tenant a common content lineage.
        gen.seed = options_.seed ^ (0x9e37ULL * (tenant + 1)) ^
                   (options_.correlated_files ? 0
                                              : 0x79b9ULL * (file + 1));
        VersionedFileGenerator generator(gen);
        if (options_.correlated_files) {
          for (size_t m = 0; m < file; ++m) generator.Mutate();
        }
        it = files.emplace(key, FileState{std::move(generator), 0}).first;
      } else {
        it->second.generator.Mutate();
      }
      event.is_backup = true;
      event.payload_index = payloads_.size();
      payloads_.push_back(it->second.generator.data());
      // Version numbers are 0-based (BackupPipeline: latest + 1, or 0).
      backed_up.push_back(
          Backed{tenant, file, it->second.versions_backed_up});
      ++it->second.versions_backed_up;
    } else {
      const Backed& source = backed_up[static_cast<size_t>(
          rng.Uniform(static_cast<uint64_t>(backed_up.size())))];
      event.tenant = tenants_[source.tenant];
      std::snprintf(file_id, sizeof(file_id), "file-%zu", source.file);
      event.file_id = file_id;
      event.is_backup = false;
      event.restore_version = source.version;
    }
    events_.push_back(std::move(event));
  }
}

bool ArrivalWorkload::IsWhale(const std::string& tenant) const {
  return tenant.rfind("whale-", 0) == 0;
}

}  // namespace slim::workload
