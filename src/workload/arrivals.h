#ifndef SLIMSTORE_WORKLOAD_ARRIVALS_H_
#define SLIMSTORE_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace slim::workload {

/// Options for the multi-tenant arrival-process generator.
struct ArrivalOptions {
  /// Tenant population: many small tenants plus a few whales whose
  /// job-arrival rate is `whale_weight` times a small tenant's.
  size_t num_small_tenants = 12;
  size_t num_whales = 2;
  double whale_weight = 16.0;
  /// Total jobs in the schedule (backups + restores).
  size_t num_jobs = 200;
  /// Fraction of jobs that are backups; the rest restore a version that
  /// an earlier event in the schedule already backed up.
  double backup_fraction = 0.8;
  size_t files_per_tenant = 3;
  size_t small_file_size = 192 << 10;
  size_t whale_file_size = 768 << 10;
  /// When true, a tenant's files share a content lineage (file k starts
  /// as file 0's content mutated k times), so files of one tenant carry
  /// substantial cross-file duplication — the signal that exposes the
  /// dedup-domain cost of sharding a tenant's files across shards.
  /// When false every (tenant, file) is independent content.
  bool correlated_files = true;
  /// Versioning behavior of each tenant's files (sizes overridden).
  GeneratorOptions file_options;
  /// Mean of the exponential inter-arrival time, milliseconds.
  double mean_interarrival_ms = 4.0;
  uint64_t seed = 20210419;  // ICDE'21.
};

/// One scheduled job. `at_ms` is the arrival offset from schedule
/// start; events are emitted in arrival order.
struct ArrivalEvent {
  double at_ms = 0;
  std::string tenant;
  std::string file_id;
  bool is_backup = true;
  /// Backups: index into ArrivalWorkload::payload(). Restores: unused.
  size_t payload_index = 0;
  /// Restores: version to read back (0-based, as BackupStats reports).
  uint64_t restore_version = 0;
};

/// Generates a deterministic interleaved schedule of backup and restore
/// jobs from a skewed multi-tenant population — the "thousands of small
/// tenants plus a few whales" shape the cluster benches drive
/// (cluster.skew / cluster.scaleout). Arrivals follow an exponential
/// (Poisson-process) inter-arrival clock; the tenant of each job is a
/// weighted draw, so whales dominate the queue exactly as a skewed
/// production mix would.
///
/// Each (tenant, file) evolves through a VersionedFileGenerator, so
/// consecutive backups of one file carry the configured duplication
/// ratio and cross-tenant payloads stay distinct (no accidental
/// cross-tenant dedup). Fully deterministic given the seed: the same
/// options always produce byte-identical payloads and ordering.
class ArrivalWorkload {
 public:
  explicit ArrivalWorkload(ArrivalOptions options);

  const ArrivalOptions& options() const { return options_; }
  const std::vector<ArrivalEvent>& events() const { return events_; }
  /// Backup payload bytes for events()[i].payload_index.
  const std::string& payload(size_t index) const {
    return payloads_[index];
  }
  /// All tenant ids, whales first ("whale-0", ...) then small tenants
  /// ("tenant-00", ...).
  const std::vector<std::string>& tenants() const { return tenants_; }
  /// True when `tenant` is one of the whales.
  bool IsWhale(const std::string& tenant) const;

 private:
  ArrivalOptions options_;
  std::vector<std::string> tenants_;
  std::vector<ArrivalEvent> events_;
  std::vector<std::string> payloads_;
};

}  // namespace slim::workload

#endif  // SLIMSTORE_WORKLOAD_ARRIVALS_H_
