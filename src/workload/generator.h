#ifndef SLIMSTORE_WORKLOAD_GENERATOR_H_
#define SLIMSTORE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace slim::workload {

/// Options for the multi-version file generator.
struct GeneratorOptions {
  /// Size of version 0.
  size_t base_size = 8 << 20;
  /// Target fraction of bytes that survive unchanged from version n to
  /// n+1 (the paper's "duplication ratio between versions").
  double duplication_ratio = 0.84;
  /// Fraction of blocks whose content duplicates another block of the
  /// same file (the paper's "self-reference": 20% for S-DB, ~0.1% for
  /// R-Data).
  double self_reference = 0.20;
  /// Granularity of mutations and self-referencing copies.
  size_t block_size = 4096;
  /// Of the mutated byte budget, how much is applied as insertions /
  /// deletions (the rest is in-place modification). Insertions and
  /// deletions shift content, exercising CDC boundary resynchronization.
  double insert_fraction = 0.10;
  double delete_fraction = 0.10;
  uint64_t seed = 1;
};

/// Generates one file's consecutive backup versions by applying
/// insert/update/delete mutations, the way the paper synthesized its
/// S-DB dataset ("each table is simulated by the insert, update, and
/// delete operations"). Fully deterministic given the seed.
class VersionedFileGenerator {
 public:
  explicit VersionedFileGenerator(GeneratorOptions options);

  /// Content of the current version.
  const std::string& data() const { return data_; }
  uint64_t version() const { return version_; }

  /// Advances to the next version by mutating ~(1 - duplication_ratio)
  /// of the bytes.
  void Mutate();

  /// Mutates with an explicit per-step duplication ratio (overrides the
  /// configured one; used by sweeps over file characteristics).
  void MutateWithRatio(double duplication_ratio);

 private:
  /// Fresh content of `n` bytes; honors self_reference by sometimes
  /// copying an existing block of the file.
  std::string NewContent(size_t n);

  GeneratorOptions options_;
  Rng rng_;
  std::string data_;
  uint64_t version_ = 0;
};

/// One file of a dataset at one version.
struct DatasetFile {
  std::string file_id;
  const std::string* data;  // Owned by the dataset.
};

/// A synthetic stand-in for the paper's S-DB dataset (Table I): a set of
/// database files backed up for `num_versions` versions, with the
/// per-file duplication ratio spread uniformly over
/// [min_duplication, max_duplication] (paper: 0.65–0.95, average 0.84)
/// and 20% self-reference. Scaled down in bytes, identical in structure.
struct SdbOptions {
  size_t num_files = 4;
  size_t file_size = 4 << 20;
  size_t num_versions = 25;
  double min_duplication = 0.65;
  double max_duplication = 0.95;
  double self_reference = 0.20;
  uint64_t seed = 42;
};

/// A synthetic stand-in for the paper's R-Data dataset (Table I): many
/// smaller files, high duplication (0.92), negligible self-reference.
struct RdataOptions {
  size_t num_files = 24;
  size_t file_size = 512 << 10;
  size_t num_versions = 13;
  double duplication = 0.92;
  double self_reference = 0.001;
  uint64_t seed = 7;
};

/// Materializes a multi-file multi-version dataset one version at a
/// time. Memory footprint is one version of every file.
class Dataset {
 public:
  /// file duplication ratio of file i spread over [min_dup, max_dup].
  static Dataset MakeSdb(const SdbOptions& options);
  static Dataset MakeRdata(const RdataOptions& options);

  size_t file_count() const { return generators_.size(); }
  size_t num_versions() const { return num_versions_; }
  uint64_t current_version() const { return current_version_; }

  /// Files at the current version.
  std::vector<DatasetFile> files() const;
  const std::string& file_data(size_t i) const;
  const std::string& file_id(size_t i) const { return file_ids_[i]; }
  double file_duplication(size_t i) const { return duplications_[i]; }

  /// Advances every file to the next version. Returns false once
  /// num_versions have been produced.
  bool NextVersion();

 private:
  Dataset() = default;

  std::vector<VersionedFileGenerator> generators_;
  std::vector<std::string> file_ids_;
  std::vector<double> duplications_;
  size_t num_versions_ = 0;
  uint64_t current_version_ = 0;
};

/// Measured characteristics of consecutive versions (for Table I).
struct PairStats {
  double byte_duplication = 0;  // Fraction of bytes shared (block level).
};
PairStats MeasureDuplication(const std::string& prev, const std::string& cur,
                             size_t block_size = 4096);

}  // namespace slim::workload

#endif  // SLIMSTORE_WORKLOAD_GENERATOR_H_
