#ifndef SLIMSTORE_FORMAT_RECIPE_H_
#define SLIMSTORE_FORMAT_RECIPE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "format/chunk.h"
#include "oss/object_store.h"

namespace slim::format {

/// The recipe of one backup version of one file: the logical sequence of
/// chunks, grouped into segments (paper §III-B). Restoring the file is
/// replaying this sequence.
struct Recipe {
  std::string file_id;
  uint64_t version = 0;
  std::vector<SegmentRecipe> segments;

  uint64_t TotalChunks() const {
    uint64_t n = 0;
    for (const auto& s : segments) n += s.records.size();
    return n;
  }
  uint64_t LogicalBytes() const {
    uint64_t n = 0;
    for (const auto& s : segments) n += s.LogicalBytes();
    return n;
  }
  /// All *physical* chunk records in stream order (restore order):
  /// logical superchunk records are expanded into their constituents.
  std::vector<ChunkRecord> Flatten() const;
};

/// Recipe index (paper §III-B): representative (sampled) fingerprints of
/// each segment mapped to the segment's ordinal, so a backup job can
/// locate the similar segment recipe of the historical version with one
/// lookup and fetch just that segment.
struct RecipeIndex {
  std::string file_id;
  uint64_t version = 0;
  std::unordered_map<Fingerprint, uint32_t> sample_to_segment;

  /// Builds the index for `recipe` by sampling fingerprints whose 64-bit
  /// prefix is 0 mod `sample_ratio` (the paper's "mod R == 0" random
  /// sampling). The first chunk of each segment is always included so
  /// every segment is discoverable.
  static RecipeIndex Build(const Recipe& recipe, uint32_t sample_ratio);

  std::string Encode() const;
  static Status Decode(std::string_view data, RecipeIndex* out);
};

/// True if `fp` is selected by "mod R == 0" sampling.
inline bool IsSampleFingerprint(const Fingerprint& fp,
                                uint32_t sample_ratio) {
  return sample_ratio <= 1 || fp.Prefix64() % sample_ratio == 0;
}

/// Recipe store on OSS. Three objects per (file, version):
///   "<prefix>/recipe/<file>/<version>"  — header + concatenated segments
///   "<prefix>/toc/<file>/<version>"     — per-segment byte ranges, so a
///                                         segment fetch is 1 range-read
///   "<prefix>/index/<file>/<version>"   — the RecipeIndex
class RecipeStore {
 public:
  RecipeStore(oss::ObjectStore* store, std::string prefix);

  /// Persists the recipe, its table of contents and its index (index is
  /// built with `sample_ratio`).
  Status WriteRecipe(const Recipe& recipe, uint32_t sample_ratio);

  Result<Recipe> ReadRecipe(const std::string& file_id,
                            uint64_t version) const;
  Result<RecipeIndex> ReadIndex(const std::string& file_id,
                                uint64_t version) const;
  /// Fetches a single segment recipe via one OSS range read (plus a
  /// cached table-of-contents read on first use).
  Result<SegmentRecipe> ReadSegment(const std::string& file_id,
                                    uint64_t version,
                                    uint32_t segment_ordinal);

  /// Fetches up to `count` consecutive segment recipes starting at
  /// `first_ordinal` with ONE range read (segments are contiguous in
  /// the recipe object). Returns fewer when the recipe ends earlier.
  Result<std::vector<SegmentRecipe>> ReadSegmentRange(
      const std::string& file_id, uint64_t version, uint32_t first_ordinal,
      uint32_t count);

  Status DeleteVersion(const std::string& file_id, uint64_t version);
  Result<std::vector<uint64_t>> ListVersions(const std::string& file_id)
      const;
  /// Every (file, version) with a committed recipe object, in key order
  /// (files sorted by escaped id, versions ascending). The recipe
  /// object is the commit point, so this IS the set of live versions
  /// from OSS's point of view — Rebuild's ground truth.
  Result<std::vector<std::pair<std::string, uint64_t>>> ListAllVersions()
      const;

  /// Rebuildable-state contract: drop the table-of-contents cache (the
  /// store's only process-local state).
  void DropLocalState();

  oss::ObjectStore* object_store() const { return store_; }

  /// Object keys (exposed for the durability scrubber's work list).
  std::string RecipeObjectKey(const std::string& file_id,
                              uint64_t version) const {
    return RecipeKey(file_id, version);
  }
  std::string TocObjectKey(const std::string& file_id,
                           uint64_t version) const {
    return TocKey(file_id, version);
  }
  std::string IndexObjectKey(const std::string& file_id,
                             uint64_t version) const {
    return IndexKey(file_id, version);
  }

 private:
  struct Toc {
    std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (offset, length)
  };

  std::string RecipeKey(const std::string& file_id, uint64_t version) const;
  std::string TocKey(const std::string& file_id, uint64_t version) const;
  std::string IndexKey(const std::string& file_id, uint64_t version) const;
  Result<Toc> GetToc(const std::string& file_id, uint64_t version);

  // Not SLIM_PT_GUARDED_BY(toc_mu_): the store locks for itself and
  // recipe reads/writes run concurrently; toc_mu_ only covers the
  // parsed-TOC cache below.
  oss::ObjectStore* store_;
  std::string prefix_;

  mutable Mutex toc_mu_{"format.recipe_toc"};
  std::unordered_map<std::string, Toc> toc_cache_
      SLIM_GUARDED_BY(toc_mu_);  // Keyed by TocKey.
};

/// Escapes a file id for embedding in an object key ('/' and '%').
std::string EscapeFileId(const std::string& file_id);
/// Inverse of EscapeFileId (recovering file ids from object keys).
std::string UnescapeFileId(const std::string& escaped);

/// Every container id the recipe can reference, including superchunk
/// constituents (a later dedup fallback may resurrect references to
/// them, so GC must treat them as live).
std::vector<ContainerId> CollectReferencedContainers(const Recipe& recipe);

}  // namespace slim::format

#endif  // SLIMSTORE_FORMAT_RECIPE_H_
