#ifndef SLIMSTORE_FORMAT_PENDING_H_
#define SLIMSTORE_FORMAT_PENDING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "format/chunk.h"
#include "oss/object_store.h"

namespace slim::format {

/// A version's durable G-node worklist: the containers a backup created
/// and the sparse containers it identified, persisted to OSS just
/// before the recipe commit. Without it, the G-node inputs live only in
/// the L-node's catalog and die with the process; with it,
/// SlimStore::Rebuild restores exactly which versions still owe a
/// G-node pass and what that pass must touch.
struct PendingRecord {
  std::string file_id;
  uint64_t version = 0;
  std::vector<ContainerId> new_containers;
  std::vector<ContainerId> sparse_containers;
};

/// One small OSS object per not-yet-processed version under
/// "<prefix>/<escaped file>/<version>". Written BEFORE the recipe (the
/// recipe stays the commit point: a pending record without a recipe is
/// an orphan of a crashed backup and is deleted at rebuild), deleted
/// after the G-node cycle marks the version done.
class PendingStore {
 public:
  /// `store` must outlive this object.
  PendingStore(oss::ObjectStore* store, std::string prefix);

  Status Write(const PendingRecord& record);
  Result<PendingRecord> Read(const std::string& file_id,
                             uint64_t version) const;
  Status Delete(const std::string& file_id, uint64_t version);
  Result<bool> Exists(const std::string& file_id, uint64_t version) const;

  /// Every pending record currently on OSS.
  Result<std::vector<PendingRecord>> ListAll() const;

 private:
  std::string KeyOf(const std::string& file_id, uint64_t version) const;

  oss::ObjectStore* store_;
  std::string prefix_;
};

}  // namespace slim::format

#endif  // SLIMSTORE_FORMAT_PENDING_H_
