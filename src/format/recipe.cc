#include "format/recipe.h"

#include <cinttypes>

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"

namespace slim::format {

namespace {
constexpr uint32_t kRecipeMagic = 0x534c5231;  // "SLR1"
constexpr uint32_t kIndexMagic = 0x534c4931;   // "SLI1"
}  // namespace

std::vector<ContainerId> CollectReferencedContainers(const Recipe& recipe) {
  std::unordered_map<ContainerId, bool> seen;
  std::vector<ContainerId> out;
  auto add = [&](ContainerId cid) {
    if (cid == kInvalidContainerId) return;  // Logical superchunks.
    if (!seen.emplace(cid, true).second) return;
    out.push_back(cid);
  };
  for (const auto& segment : recipe.segments) {
    for (const auto& record : segment.records) {
      add(record.container_id);
      if (record.constituents != nullptr) {
        for (const auto& constituent : *record.constituents) {
          add(constituent.container_id);
        }
      }
    }
  }
  return out;
}

std::vector<ChunkRecord> Recipe::Flatten() const {
  std::vector<ChunkRecord> out;
  out.reserve(TotalChunks());
  for (const auto& seg : segments) {
    for (const auto& record : seg.records) {
      // Superchunks are logical: restore operates on their physical
      // constituents.
      if (record.is_superchunk && record.constituents != nullptr &&
          !record.constituents->empty()) {
        out.insert(out.end(), record.constituents->begin(),
                   record.constituents->end());
      } else {
        out.push_back(record);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RecipeIndex
// ---------------------------------------------------------------------------

RecipeIndex RecipeIndex::Build(const Recipe& recipe, uint32_t sample_ratio) {
  RecipeIndex index;
  index.file_id = recipe.file_id;
  index.version = recipe.version;
  for (uint32_t ordinal = 0; ordinal < recipe.segments.size(); ++ordinal) {
    const SegmentRecipe& seg = recipe.segments[ordinal];
    bool sampled_any = false;
    for (const ChunkRecord& record : seg.records) {
      if (IsSampleFingerprint(record.fp, sample_ratio)) {
        index.sample_to_segment.emplace(record.fp, ordinal);
        sampled_any = true;
      }
      // A superchunk can only be re-discovered through its first CDC
      // chunk (Algorithm 1), so that fingerprint is always indexed; its
      // sampled constituents are indexed too so a partially-diverged
      // span still finds this segment (small-chunk fallback).
      if (record.is_superchunk) {
        index.sample_to_segment.emplace(record.first_chunk_fp, ordinal);
        sampled_any = true;
        if (record.constituents != nullptr) {
          for (const ChunkRecord& constituent : *record.constituents) {
            if (IsSampleFingerprint(constituent.fp, sample_ratio)) {
              index.sample_to_segment.emplace(constituent.fp, ordinal);
            }
          }
        }
      }
    }
    // Guarantee discoverability of every segment.
    if (!sampled_any && !seg.records.empty()) {
      index.sample_to_segment.emplace(seg.records.front().fp, ordinal);
    }
  }
  return index;
}

std::string RecipeIndex::Encode() const {
  std::string out;
  PutFixed32(&out, kIndexMagic);
  PutLengthPrefixed(&out, file_id);
  PutFixed64(&out, version);
  PutVarint64(&out, sample_to_segment.size());
  for (const auto& [fp, ordinal] : sample_to_segment) {
    PutFingerprint(&out, fp);
    PutFixed32(&out, ordinal);
  }
  return out;
}

Status RecipeIndex::Decode(std::string_view data, RecipeIndex* out) {
  Decoder dec(data);
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kIndexMagic) return Status::Corruption("recipe index magic");
  std::string_view id;
  SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&id));
  out->file_id = std::string(id);
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&out->version));
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  out->sample_to_segment.clear();
  out->sample_to_segment.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Fingerprint fp;
    uint32_t ordinal = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadFingerprint(&fp));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&ordinal));
    out->sample_to_segment.emplace(fp, ordinal);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// RecipeStore
// ---------------------------------------------------------------------------

std::string EscapeFileId(const std::string& file_id) {
  std::string out;
  out.reserve(file_id.size());
  for (char c : file_id) {
    if (c == '/' || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<uint8_t>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeFileId(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      out += static_cast<char>(
          std::stoi(escaped.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

RecipeStore::RecipeStore(oss::ObjectStore* store, std::string prefix)
    : store_(store), prefix_(std::move(prefix)) {}

namespace {
std::string VersionSuffix(uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012" PRIu64, version);
  return buf;
}
}  // namespace

std::string RecipeStore::RecipeKey(const std::string& file_id,
                                   uint64_t version) const {
  return prefix_ + "/recipe/" + EscapeFileId(file_id) + "/" +
         VersionSuffix(version);
}

std::string RecipeStore::TocKey(const std::string& file_id,
                                uint64_t version) const {
  return prefix_ + "/toc/" + EscapeFileId(file_id) + "/" +
         VersionSuffix(version);
}

std::string RecipeStore::IndexKey(const std::string& file_id,
                                  uint64_t version) const {
  return prefix_ + "/index/" + EscapeFileId(file_id) + "/" +
         VersionSuffix(version);
}

Status RecipeStore::WriteRecipe(const Recipe& recipe, uint32_t sample_ratio) {
  // Header.
  std::string header;
  PutFixed32(&header, kRecipeMagic);
  PutLengthPrefixed(&header, recipe.file_id);
  PutFixed64(&header, recipe.version);
  PutVarint64(&header, recipe.segments.size());

  // Segment bodies and table of contents (absolute ranges).
  std::string body;
  std::string toc;
  PutVarint64(&toc, recipe.segments.size());
  for (const SegmentRecipe& seg : recipe.segments) {
    std::string encoded;
    seg.Encode(&encoded);
    PutFixed64(&toc, header.size() + body.size());
    PutFixed64(&toc, encoded.size());
    body += encoded;
  }

  // The recipe object is the authoritative one: ReadRecipe,
  // ListVersions and restores consult it alone, while toc/index only
  // accelerate segment prefetch. Writing it LAST makes it the commit
  // point — if any earlier Put fails, the old recipe (and the
  // containers it references) stays fully intact, so callers like SCC
  // can roll back their new containers safely.
  SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
      *store_, TocKey(recipe.file_id, recipe.version), std::move(toc),
      durability::Component::kRecipeToc));
  RecipeIndex index = RecipeIndex::Build(recipe, sample_ratio);
  SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
      *store_, IndexKey(recipe.file_id, recipe.version), index.Encode(),
      durability::Component::kRecipeIndex));
  // The checksum footer is a suffix, so the toc's absolute segment
  // ranges stay valid for range reads of the recipe object.
  SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
      *store_, RecipeKey(recipe.file_id, recipe.version), header + body,
      durability::Component::kRecipe));
  {
    // Invalidate any stale cached toc for this key (recipe rewrite).
    MutexLock lock(toc_mu_);
    toc_cache_.erase(TocKey(recipe.file_id, recipe.version));
  }
  return Status::Ok();
}

Result<Recipe> RecipeStore::ReadRecipe(const std::string& file_id,
                                       uint64_t version) const {
  auto object = durability::GetVerified(*store_, RecipeKey(file_id, version),
                                        durability::Component::kRecipe);
  if (!object.ok()) return object.status();
  Decoder dec(object.value());
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kRecipeMagic) return Status::Corruption("recipe magic");
  std::string_view id;
  SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&id));
  Recipe recipe;
  recipe.file_id = std::string(id);
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&recipe.version));
  uint64_t seg_count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&seg_count));
  recipe.segments.resize(seg_count);
  for (uint64_t i = 0; i < seg_count; ++i) {
    uint64_t record_count = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&record_count));
    recipe.segments[i].records.resize(record_count);
    for (uint64_t j = 0; j < record_count; ++j) {
      SLIM_RETURN_IF_ERROR(
          DecodeChunkRecord(&dec, &recipe.segments[i].records[j]));
    }
  }
  return recipe;
}

Result<RecipeIndex> RecipeStore::ReadIndex(const std::string& file_id,
                                           uint64_t version) const {
  auto object = durability::GetVerified(*store_, IndexKey(file_id, version),
                                        durability::Component::kRecipeIndex);
  if (!object.ok()) return object.status();
  RecipeIndex index;
  SLIM_RETURN_IF_ERROR(RecipeIndex::Decode(object.value(), &index));
  return index;
}

Result<RecipeStore::Toc> RecipeStore::GetToc(const std::string& file_id,
                                             uint64_t version) {
  const std::string key = TocKey(file_id, version);
  {
    MutexLock lock(toc_mu_);
    auto it = toc_cache_.find(key);
    if (it != toc_cache_.end()) return it->second;
  }
  auto object =
      durability::GetVerified(*store_, key, durability::Component::kRecipeToc);
  if (!object.ok()) return object.status();
  Decoder dec(object.value());
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  Toc toc;
  toc.ranges.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t offset = 0, length = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&offset));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&length));
    toc.ranges.emplace_back(offset, length);
  }
  {
    MutexLock lock(toc_mu_);
    toc_cache_[key] = toc;
  }
  return toc;
}

Result<SegmentRecipe> RecipeStore::ReadSegment(const std::string& file_id,
                                               uint64_t version,
                                               uint32_t segment_ordinal) {
  auto toc = GetToc(file_id, version);
  if (!toc.ok()) return toc.status();
  if (segment_ordinal >= toc.value().ranges.size()) {
    return Status::InvalidArgument("segment ordinal out of range");
  }
  auto [offset, length] = toc.value().ranges[segment_ordinal];
  // Range reads cannot verify the whole-object footer; the segment is
  // structurally decoded below and whole-object scrub covers the rest.
  auto bytes = store_->GetRange(RecipeKey(file_id, version), offset,
                                length);  // lint:allow-unverified-read
  if (!bytes.ok()) return bytes.status();
  SegmentRecipe segment;
  SLIM_RETURN_IF_ERROR(SegmentRecipe::Decode(bytes.value(), &segment));
  return segment;
}

Result<std::vector<SegmentRecipe>> RecipeStore::ReadSegmentRange(
    const std::string& file_id, uint64_t version, uint32_t first_ordinal,
    uint32_t count) {
  auto toc = GetToc(file_id, version);
  if (!toc.ok()) return toc.status();
  const auto& ranges = toc.value().ranges;
  if (first_ordinal >= ranges.size()) {
    return Status::InvalidArgument("segment ordinal out of range");
  }
  uint32_t last = static_cast<uint32_t>(
      std::min<size_t>(first_ordinal + count, ranges.size()));
  uint64_t begin = ranges[first_ordinal].first;
  uint64_t end = ranges[last - 1].first + ranges[last - 1].second;
  // See ReadSegment: range reads rely on structural decode + scrub.
  auto bytes = store_->GetRange(RecipeKey(file_id, version), begin,
                                end - begin);  // lint:allow-unverified-read
  if (!bytes.ok()) return bytes.status();
  std::vector<SegmentRecipe> out;
  out.reserve(last - first_ordinal);
  for (uint32_t i = first_ordinal; i < last; ++i) {
    SegmentRecipe segment;
    std::string_view body(bytes.value());
    SLIM_RETURN_IF_ERROR(SegmentRecipe::Decode(
        body.substr(ranges[i].first - begin, ranges[i].second), &segment));
    out.push_back(std::move(segment));
  }
  return out;
}

Status RecipeStore::DeleteVersion(const std::string& file_id,
                                  uint64_t version) {
  SLIM_RETURN_IF_ERROR(store_->Delete(RecipeKey(file_id, version)));
  SLIM_RETURN_IF_ERROR(store_->Delete(TocKey(file_id, version)));
  SLIM_RETURN_IF_ERROR(store_->Delete(IndexKey(file_id, version)));
  MutexLock lock(toc_mu_);
  toc_cache_.erase(TocKey(file_id, version));
  return Status::Ok();
}

Result<std::vector<uint64_t>> RecipeStore::ListVersions(
    const std::string& file_id) const {
  const std::string prefix = prefix_ + "/recipe/" + EscapeFileId(file_id) +
                             "/";
  auto keys = store_->List(prefix);
  if (!keys.ok()) return keys.status();
  std::vector<uint64_t> versions;
  versions.reserve(keys.value().size());
  for (const auto& key : keys.value()) {
    versions.push_back(std::stoull(key.substr(prefix.size())));
  }
  return versions;
}

Result<std::vector<std::pair<std::string, uint64_t>>>
RecipeStore::ListAllVersions() const {
  const std::string prefix = prefix_ + "/recipe/";
  auto keys = store_->List(prefix);
  if (!keys.ok()) return keys.status();
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(keys.value().size());
  for (const auto& key : keys.value()) {
    // "<prefix>/recipe/<escaped file>/<%012d version>".
    std::string tail = key.substr(prefix.size());
    size_t slash = tail.rfind('/');
    if (slash == std::string::npos) continue;
    out.emplace_back(UnescapeFileId(tail.substr(0, slash)),
                     std::stoull(tail.substr(slash + 1)));
  }
  return out;
}

void RecipeStore::DropLocalState() {
  MutexLock lock(toc_mu_);
  toc_cache_.clear();
}

}  // namespace slim::format
