#include "format/container.h"

#include <cinttypes>

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"

namespace slim::format {

namespace {
constexpr uint32_t kMetaMagic = 0x534c4d31;     // "SLM1"
constexpr uint32_t kPayloadMagic = 0x534c4432;  // "SLD2"
constexpr uint32_t kDeletedFlag = 1;
}  // namespace

// ---------------------------------------------------------------------------
// ContainerMeta
// ---------------------------------------------------------------------------

std::string ContainerMeta::Encode() const {
  std::string out;
  PutFixed32(&out, kMetaMagic);
  PutFixed64(&out, id);
  PutFixed64(&out, data_size);
  PutFixed64(&out, payload_checksum);
  PutVarint64(&out, chunks.size());
  for (const auto& c : chunks) {
    PutFingerprint(&out, c.fp);
    PutFixed32(&out, c.offset);
    PutFixed32(&out, c.size);
    PutFixed32(&out, c.deleted ? kDeletedFlag : 0);
  }
  return out;
}

Status ContainerMeta::Decode(std::string_view data, ContainerMeta* out) {
  Decoder dec(data);
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kMetaMagic) {
    return Status::Corruption("container meta: bad magic");
  }
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&out->id));
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&out->data_size));
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&out->payload_checksum));
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  out->chunks.clear();
  out->chunks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ChunkLocation loc;
    uint32_t flags = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadFingerprint(&loc.fp));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&loc.offset));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&loc.size));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&flags));
    loc.deleted = (flags & kDeletedFlag) != 0;
    out->chunks.push_back(loc);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ContainerBuilder
// ---------------------------------------------------------------------------

bool ContainerBuilder::Add(const Fingerprint& fp, std::string_view data) {
  if (!meta_.chunks.empty() && payload_.size() + data.size() > capacity_) {
    return false;
  }
  ChunkLocation loc;
  loc.fp = fp;
  loc.offset = static_cast<uint32_t>(payload_.size());
  loc.size = static_cast<uint32_t>(data.size());
  meta_.chunks.push_back(loc);
  payload_.append(data.data(), data.size());
  return true;
}

void ContainerBuilder::Finish(std::string* payload, ContainerMeta* meta) {
  meta_.data_size = payload_.size();
  meta_.payload_checksum = Fnv1a64(payload_);
  *payload = std::move(payload_);
  *meta = std::move(meta_);
}

// ---------------------------------------------------------------------------
// Payload object (self-describing: directory + bytes)
// ---------------------------------------------------------------------------

std::string EncodeContainerPayload(const ContainerMeta& meta,
                                   std::string_view payload) {
  std::string out;
  PutFixed32(&out, kPayloadMagic);
  std::string dir = meta.Encode();
  PutLengthPrefixed(&out, dir);
  out.append(payload.data(), payload.size());
  return out;
}

namespace {
/// Parses the payload object structure without copying the chunk bytes
/// area (shared by the copying decode and the verified-directory fast
/// path).
Status DecodeContainerPayloadView(std::string_view object,
                                  ContainerMeta* meta,
                                  std::string_view* bytes) {
  Decoder dec(object);
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kPayloadMagic) {
    return Status::Corruption("container payload: bad magic");
  }
  std::string_view dir;
  SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&dir));
  SLIM_RETURN_IF_ERROR(ContainerMeta::Decode(dir, meta));
  SLIM_RETURN_IF_ERROR(dec.ReadBytes(dec.remaining(), bytes));
  if (bytes->size() != meta->data_size) {
    return Status::Corruption("container payload: truncated data area");
  }
  return Status::Ok();
}
}  // namespace

Status DecodeContainerPayload(std::string_view object, ContainerMeta* meta,
                              std::string* payload) {
  std::string_view bytes;
  SLIM_RETURN_IF_ERROR(DecodeContainerPayloadView(object, meta, &bytes));
  if (Fnv1a64(bytes) != meta->payload_checksum) {
    return Status::Corruption("container payload: checksum mismatch");
  }
  payload->assign(bytes.data(), bytes.size());
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ContainerStore
// ---------------------------------------------------------------------------

ContainerStore::ContainerStore(oss::ObjectStore* store, std::string prefix)
    : store_(store), prefix_(std::move(prefix)) {}

std::string ContainerStore::DataKey(ContainerId id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, id);
  return prefix_ + "/data-" + buf;
}

std::string ContainerStore::MetaKey(ContainerId id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, id);
  return prefix_ + "/meta-" + buf;
}

ContainerId ContainerStore::AllocateId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

Status ContainerStore::RecoverNextId() {
  auto ids = ListContainerIds();
  if (!ids.ok()) return ids.status();
  ContainerId next = 0;
  for (ContainerId id : ids.value()) next = std::max(next, id + 1);
  ContainerId current = next_id_.load(std::memory_order_relaxed);
  while (current < next && !next_id_.compare_exchange_weak(
                               current, next, std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

Status ContainerStore::Write(ContainerBuilder&& builder) {
  std::string payload;
  ContainerMeta meta;
  builder.Finish(&payload, &meta);
  return WritePayloadAndMeta(std::move(payload), meta);
}

Status ContainerStore::WritePayloadAndMeta(std::string payload,
                                           const ContainerMeta& meta) {
  SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
      *store_, DataKey(meta.id), EncodeContainerPayload(meta, payload),
      durability::Component::kContainerData));
  Status meta_status =
      durability::PutWithFooter(*store_, MetaKey(meta.id), meta.Encode(),
                                durability::Component::kContainerMeta);
  if (!meta_status.ok()) {
    // A data object without its meta is invisible to every reader but
    // still occupies space; reclaim it best-effort so a failed write
    // leaves no trace.
    store_->Delete(DataKey(meta.id)).IgnoreError();
    return meta_status;
  }
  {
    MutexLock lock(count_mu_);
    chunk_counts_[meta.id] = meta.chunks.size();
  }
  return Status::Ok();
}

Result<size_t> ContainerStore::ChunkCount(ContainerId id) const {
  {
    MutexLock lock(count_mu_);
    auto it = chunk_counts_.find(id);
    if (it != chunk_counts_.end()) return it->second;
  }
  auto meta = ReadMeta(id);
  if (!meta.ok()) return meta.status();
  size_t count = meta.value().chunks.size();
  MutexLock lock(count_mu_);
  chunk_counts_[id] = count;
  return count;
}

std::optional<std::string_view> ContainerStore::LoadedContainer::GetChunk(
    const Fingerprint& fp) const {
  const ChunkLocation* loc = directory.Find(fp);
  if (loc == nullptr) return std::nullopt;
  if (loc->offset + loc->size > payload.size()) return std::nullopt;
  return std::string_view(payload).substr(loc->offset, loc->size);
}

Result<ContainerStore::LoadedContainer> ContainerStore::ReadContainer(
    ContainerId id) const {
  auto object = durability::GetVerified(
      *store_, DataKey(id), durability::Component::kContainerData);
  if (!object.ok()) return object.status();
  LoadedContainer loaded;
  SLIM_RETURN_IF_ERROR(DecodeContainerPayload(object.value(),
                                              &loaded.directory,
                                              &loaded.payload));
  return loaded;
}

Result<ContainerMeta> ContainerStore::ReadVerifiedDirectory(
    ContainerId id) const {
  auto object = durability::GetVerified(
      *store_, DataKey(id), durability::Component::kContainerData);
  if (!object.ok()) return object.status();
  ContainerMeta meta;
  std::string_view bytes;
  SLIM_RETURN_IF_ERROR(
      DecodeContainerPayloadView(object.value(), &meta, &bytes));
  // The CRC32C footer already covered every payload byte, so the
  // (weaker) FNV self-checksum pass is skipped and nothing is copied.
  return meta;
}

Result<ContainerMeta> ContainerStore::ReadMeta(ContainerId id) const {
  auto object = durability::GetVerified(
      *store_, MetaKey(id), durability::Component::kContainerMeta);
  if (!object.ok()) return object.status();
  ContainerMeta meta;
  SLIM_RETURN_IF_ERROR(ContainerMeta::Decode(object.value(), &meta));
  return meta;
}

Status ContainerStore::WriteMeta(const ContainerMeta& meta) {
  return durability::PutWithFooter(*store_, MetaKey(meta.id), meta.Encode(),
                                   durability::Component::kContainerMeta);
}

Result<uint64_t> ContainerStore::CompactContainer(ContainerId id) {
  auto meta = ReadMeta(id);
  if (!meta.ok()) return meta.status();
  auto loaded = ReadContainer(id);
  if (!loaded.ok()) return loaded.status();

  uint64_t before = loaded.value().payload.size();
  ContainerMeta compacted;
  compacted.id = id;
  std::string payload;
  for (const ChunkLocation& loc : meta.value().chunks) {
    if (loc.deleted) continue;
    auto bytes = loaded.value().GetChunk(loc.fp);
    if (!bytes.has_value()) {
      return Status::Corruption("compaction: chunk missing from payload");
    }
    ChunkLocation out = loc;
    out.offset = static_cast<uint32_t>(payload.size());
    payload.append(bytes->data(), bytes->size());
    compacted.chunks.push_back(out);
  }
  compacted.data_size = payload.size();
  compacted.payload_checksum = Fnv1a64(payload);
  SLIM_RETURN_IF_ERROR(
      WritePayloadAndMeta(std::move(payload), compacted));
  return before - compacted.data_size;
}

Status ContainerStore::Delete(ContainerId id) {
  SLIM_RETURN_IF_ERROR(store_->Delete(DataKey(id)));
  SLIM_RETURN_IF_ERROR(store_->Delete(MetaKey(id)));
  MutexLock lock(count_mu_);
  chunk_counts_.erase(id);
  return Status::Ok();
}

Result<bool> ContainerStore::Exists(ContainerId id) const {
  return store_->Exists(DataKey(id));
}

Result<std::vector<ContainerId>> ContainerStore::ListContainerIds() const {
  auto keys = store_->List(prefix_ + "/data-");
  if (!keys.ok()) return keys.status();
  std::vector<ContainerId> ids;
  ids.reserve(keys.value().size());
  for (const auto& key : keys.value()) {
    ids.push_back(std::stoull(key.substr(key.rfind('-') + 1)));
  }
  return ids;
}

Result<uint64_t> ContainerStore::TotalStoredBytes() const {
  return oss::TotalBytesWithPrefix(*store_, prefix_ + "/data-");
}

void ContainerStore::DropLocalState() {
  next_id_.store(0, std::memory_order_relaxed);
  MutexLock lock(count_mu_);
  chunk_counts_.clear();
}

}  // namespace slim::format
