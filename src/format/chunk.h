#ifndef SLIMSTORE_FORMAT_CHUNK_H_
#define SLIMSTORE_FORMAT_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "common/status.h"

namespace slim::format {

/// Identifier of a container object on OSS.
using ContainerId = uint64_t;
inline constexpr ContainerId kInvalidContainerId =
    ~static_cast<ContainerId>(0);

/// One entry of a file recipe: the paper's quadruple
/// <fp, containerID, size, duplicateTimes>, extended with the superchunk
/// metadata of §IV-C (a superchunk record additionally stores the
/// fingerprint of the first CDC chunk it contains, used to detect
/// superchunk matches in later versions).
struct ChunkRecord {
  Fingerprint fp;
  ContainerId container_id = kInvalidContainerId;
  uint32_t size = 0;
  /// How many consecutive historical versions confirmed this chunk as a
  /// duplicate; drives history-aware chunk merging.
  uint32_t duplicate_times = 0;
  bool is_superchunk = false;
  Fingerprint first_chunk_fp;
  /// Superchunk records keep the original constituent records, so a
  /// later version whose content diverged inside the superchunk can
  /// still deduplicate the unmodified constituents at small-chunk
  /// granularity (their data lives on in the old containers). Null for
  /// regular chunks.
  std::shared_ptr<const std::vector<ChunkRecord>> constituents;

  friend bool operator==(const ChunkRecord& a, const ChunkRecord& b) {
    if (!(a.fp == b.fp && a.container_id == b.container_id &&
          a.size == b.size && a.duplicate_times == b.duplicate_times &&
          a.is_superchunk == b.is_superchunk)) {
      return false;
    }
    if (!a.is_superchunk) return true;
    if (!(a.first_chunk_fp == b.first_chunk_fp)) return false;
    const bool ha = a.constituents != nullptr && !a.constituents->empty();
    const bool hb = b.constituents != nullptr && !b.constituents->empty();
    if (ha != hb) return false;
    return !ha || *a.constituents == *b.constituents;
  }
};

void EncodeChunkRecord(std::string* dst, const ChunkRecord& record);
Status DecodeChunkRecord(Decoder* dec, ChunkRecord* record);

/// A segment recipe: the chunk records of one segment (a run of
/// consecutive chunks in the backup stream). Segments are the unit of
/// similarity detection and recipe prefetching.
struct SegmentRecipe {
  std::vector<ChunkRecord> records;

  uint64_t LogicalBytes() const {
    uint64_t total = 0;
    for (const auto& r : records) total += r.size;
    return total;
  }

  void Encode(std::string* dst) const;
  static Status Decode(std::string_view data, SegmentRecipe* out);
};

}  // namespace slim::format

#endif  // SLIMSTORE_FORMAT_CHUNK_H_
