#include "format/pending.h"

#include <cinttypes>

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"
#include "format/recipe.h"

namespace slim::format {

namespace {

constexpr uint32_t kPendingMagic = 0x534c5031;  // "SLP1"

void EncodeIds(std::string* out, const std::vector<ContainerId>& ids) {
  PutVarint64(out, ids.size());
  for (ContainerId id : ids) PutFixed64(out, id);
}

Status DecodeIds(Decoder* dec, std::vector<ContainerId>* ids) {
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec->ReadVarint64(&count));
  ids->clear();
  ids->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SLIM_RETURN_IF_ERROR(dec->ReadFixed64(&id));
    ids->push_back(id);
  }
  return Status::Ok();
}

}  // namespace

PendingStore::PendingStore(oss::ObjectStore* store, std::string prefix)
    : store_(store), prefix_(std::move(prefix)) {}

std::string PendingStore::KeyOf(const std::string& file_id,
                                uint64_t version) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012" PRIu64, version);
  return prefix_ + "/" + EscapeFileId(file_id) + "/" + buf;
}

Status PendingStore::Write(const PendingRecord& record) {
  std::string out;
  PutFixed32(&out, kPendingMagic);
  PutLengthPrefixed(&out, record.file_id);
  PutFixed64(&out, record.version);
  EncodeIds(&out, record.new_containers);
  EncodeIds(&out, record.sparse_containers);
  return durability::PutWithFooter(*store_,
                                   KeyOf(record.file_id, record.version),
                                   std::move(out),
                                   durability::Component::kState);
}

Result<PendingRecord> PendingStore::Read(const std::string& file_id,
                                         uint64_t version) const {
  auto object = durability::GetVerified(*store_, KeyOf(file_id, version),
                                        durability::Component::kState);
  if (!object.ok()) return object.status();
  Decoder dec(object.value());
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kPendingMagic) {
    return Status::Corruption("pending record: bad magic");
  }
  PendingRecord record;
  std::string_view id;
  SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&id));
  record.file_id = std::string(id);
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&record.version));
  SLIM_RETURN_IF_ERROR(DecodeIds(&dec, &record.new_containers));
  SLIM_RETURN_IF_ERROR(DecodeIds(&dec, &record.sparse_containers));
  return record;
}

Status PendingStore::Delete(const std::string& file_id, uint64_t version) {
  return store_->Delete(KeyOf(file_id, version));
}

Result<bool> PendingStore::Exists(const std::string& file_id,
                                  uint64_t version) const {
  return store_->Exists(KeyOf(file_id, version));
}

Result<std::vector<PendingRecord>> PendingStore::ListAll() const {
  auto keys = store_->List(prefix_ + "/");
  if (!keys.ok()) return keys.status();
  std::vector<PendingRecord> out;
  out.reserve(keys.value().size());
  for (const auto& key : keys.value()) {
    auto object = durability::GetVerified(*store_, key,
                                          durability::Component::kState);
    if (!object.ok()) return object.status();
    Decoder dec(object.value());
    uint32_t magic = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
    if (magic != kPendingMagic) {
      return Status::Corruption("pending record: bad magic");
    }
    PendingRecord record;
    std::string_view id;
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&id));
    record.file_id = std::string(id);
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&record.version));
    SLIM_RETURN_IF_ERROR(DecodeIds(&dec, &record.new_containers));
    SLIM_RETURN_IF_ERROR(DecodeIds(&dec, &record.sparse_containers));
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace slim::format
