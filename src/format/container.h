#ifndef SLIMSTORE_FORMAT_CONTAINER_H_
#define SLIMSTORE_FORMAT_CONTAINER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "format/chunk.h"
#include "oss/object_store.h"

namespace slim::format {

/// Location of one chunk inside a container's payload.
struct ChunkLocation {
  Fingerprint fp;
  uint32_t offset = 0;
  uint32_t size = 0;
  /// Tombstone set by G-node reverse deduplication. The bytes remain in
  /// the payload until the container is compacted.
  bool deleted = false;
};

/// Per-container metadata kept as a separate (small) OSS object so
/// G-node can tombstone chunks and track utilization without rewriting
/// the container payload (paper §VI-A).
struct ContainerMeta {
  ContainerId id = kInvalidContainerId;
  std::vector<ChunkLocation> chunks;
  uint64_t data_size = 0;
  /// FNV-1a of the payload; verified on read to detect corruption.
  uint64_t payload_checksum = 0;

  size_t DeletedCount() const {
    size_t n = 0;
    for (const auto& c : chunks) n += c.deleted ? 1 : 0;
    return n;
  }
  /// Fraction of chunks tombstoned by reverse dedup ("stale chunks").
  double DeletedFraction() const {
    return chunks.empty()
               ? 0.0
               : static_cast<double>(DeletedCount()) /
                     static_cast<double>(chunks.size());
  }

  const ChunkLocation* Find(const Fingerprint& fp) const {
    for (const auto& c : chunks) {
      if (c.fp == fp) return &c;
    }
    return nullptr;
  }

  std::string Encode() const;
  static Status Decode(std::string_view data, ContainerMeta* out);
};

/// Accumulates unique chunks until the container reaches capacity. The
/// basic storage/access unit of backup data (paper §III-B): whole
/// containers are what restore fetches from OSS, giving rise to the
/// physical locality every cache policy exploits.
class ContainerBuilder {
 public:
  ContainerBuilder(ContainerId id, size_t capacity_bytes)
      : capacity_(capacity_bytes) {
    meta_.id = id;
  }

  /// Appends a chunk if it fits. Returns false (and leaves the builder
  /// unchanged) when adding would exceed capacity and the container
  /// already holds at least one chunk.
  bool Add(const Fingerprint& fp, std::string_view data);

  bool empty() const { return meta_.chunks.empty(); }
  size_t payload_size() const { return payload_.size(); }
  size_t chunk_count() const { return meta_.chunks.size(); }
  ContainerId id() const { return meta_.id; }

  /// Finalizes checksum and releases the payload + meta pair.
  void Finish(std::string* payload, ContainerMeta* meta);

 private:
  size_t capacity_;
  std::string payload_;
  ContainerMeta meta_;
};

/// Container store over OSS. Each container is two objects:
/// "<prefix>/data-<id>" (self-describing payload: directory + bytes) and
/// "<prefix>/meta-<id>" (the mutable ContainerMeta).
class ContainerStore {
 public:
  /// `store` must outlive this object.
  ContainerStore(oss::ObjectStore* store, std::string prefix);

  /// Reserves a fresh container id (process-unique, monotonically
  /// increasing; ids order containers by creation time, which the
  /// new-version/old-version distinction of SCC and reverse dedup uses).
  ContainerId AllocateId();

  /// Scans existing containers and advances the id allocator past them
  /// (reopening an existing store).
  Status RecoverNextId();

  /// Persists a finished builder (payload + meta objects).
  Status Write(ContainerBuilder&& builder);
  Status WritePayloadAndMeta(std::string payload, const ContainerMeta& meta);

  /// Fetches the full payload object *including* its directory header,
  /// verifies the checksum, and returns the parsed directory plus the
  /// raw chunk bytes area. One OSS GET.
  struct LoadedContainer {
    ContainerMeta directory;
    std::string payload;  // Chunk bytes only (header stripped).

    /// Bytes of the chunk with this fingerprint, or nullopt if absent
    /// (e.g. compacted away).
    std::optional<std::string_view> GetChunk(const Fingerprint& fp) const;
  };
  Result<LoadedContainer> ReadContainer(ContainerId id) const;

  /// Checksum-footer fast path shared by the verifier and the
  /// durability scrubber: one OSS GET, CRC32C footer verification over
  /// the whole object, directory decoded in place — the payload is
  /// never copied out. Proves the object byte-intact and returns its
  /// directory.
  Result<ContainerMeta> ReadVerifiedDirectory(ContainerId id) const;

  /// Reads only the (small) mutable meta object.
  Result<ContainerMeta> ReadMeta(ContainerId id) const;
  /// Overwrites the meta object (tombstone updates).
  Status WriteMeta(const ContainerMeta& meta);

  /// Rewrites the container without its tombstoned chunks; offsets are
  /// recomputed and both objects replaced. Returns the reclaimed bytes.
  Result<uint64_t> CompactContainer(ContainerId id);

  /// Total chunk count of a container, served from an in-memory cache
  /// when possible (populated on writes and reads). Sparse-container
  /// detection calls this once per referenced container per backup, so
  /// avoiding an OSS meta read each time matters.
  Result<size_t> ChunkCount(ContainerId id) const;

  Status Delete(ContainerId id);
  Result<bool> Exists(ContainerId id) const;

  Result<std::vector<ContainerId>> ListContainerIds() const;
  /// Total payload-object bytes currently stored (space accounting).
  Result<uint64_t> TotalStoredBytes() const;

  /// Rebuildable-state contract: reset the chunk-count cache and the id
  /// allocator. Follow with RecoverNextId() once the durable container
  /// set is settled.
  void DropLocalState();

  oss::ObjectStore* object_store() const { return store_; }
  const std::string& prefix() const { return prefix_; }

  /// Object keys (exposed for the durability scrubber's work list).
  std::string DataObjectKey(ContainerId id) const { return DataKey(id); }
  std::string MetaObjectKey(ContainerId id) const { return MetaKey(id); }

 private:
  std::string DataKey(ContainerId id) const;
  std::string MetaKey(ContainerId id) const;

  // Not SLIM_PT_GUARDED_BY(count_mu_): the store locks for itself and
  // container I/O runs concurrently; count_mu_ only covers the
  // chunk-count cache below.
  oss::ObjectStore* store_;
  std::string prefix_;
  std::atomic<ContainerId> next_id_{0};

  mutable Mutex count_mu_{"format.container_count"};
  mutable std::unordered_map<ContainerId, size_t> chunk_counts_
      SLIM_GUARDED_BY(count_mu_);
};

/// Serializes a self-describing payload object (directory + bytes).
std::string EncodeContainerPayload(const ContainerMeta& meta,
                                   std::string_view payload);
/// Parses a payload object produced by EncodeContainerPayload.
Status DecodeContainerPayload(std::string_view object, ContainerMeta* meta,
                              std::string* payload);

}  // namespace slim::format

#endif  // SLIMSTORE_FORMAT_CONTAINER_H_
