#include "format/chunk.h"

#include "common/macros.h"

namespace slim::format {

namespace {
constexpr uint32_t kSuperchunkFlag = 1;
}  // namespace

void EncodeChunkRecord(std::string* dst, const ChunkRecord& record) {
  PutFingerprint(dst, record.fp);
  PutFixed64(dst, record.container_id);
  PutFixed32(dst, record.size);
  PutFixed32(dst, record.duplicate_times);
  uint32_t flags = record.is_superchunk ? kSuperchunkFlag : 0;
  PutFixed32(dst, flags);
  if (record.is_superchunk) {
    PutFingerprint(dst, record.first_chunk_fp);
    size_t count =
        record.constituents == nullptr ? 0 : record.constituents->size();
    PutVarint64(dst, count);
    for (size_t i = 0; i < count; ++i) {
      EncodeChunkRecord(dst, (*record.constituents)[i]);
    }
  }
}

Status DecodeChunkRecord(Decoder* dec, ChunkRecord* record) {
  SLIM_RETURN_IF_ERROR(dec->ReadFingerprint(&record->fp));
  SLIM_RETURN_IF_ERROR(dec->ReadFixed64(&record->container_id));
  SLIM_RETURN_IF_ERROR(dec->ReadFixed32(&record->size));
  SLIM_RETURN_IF_ERROR(dec->ReadFixed32(&record->duplicate_times));
  uint32_t flags = 0;
  SLIM_RETURN_IF_ERROR(dec->ReadFixed32(&flags));
  record->is_superchunk = (flags & kSuperchunkFlag) != 0;
  if (record->is_superchunk) {
    SLIM_RETURN_IF_ERROR(dec->ReadFingerprint(&record->first_chunk_fp));
    uint64_t count = 0;
    SLIM_RETURN_IF_ERROR(dec->ReadVarint64(&count));
    if (count > 0) {
      auto constituents = std::make_shared<std::vector<ChunkRecord>>();
      constituents->reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        ChunkRecord constituent;
        SLIM_RETURN_IF_ERROR(DecodeChunkRecord(dec, &constituent));
        constituents->push_back(std::move(constituent));
      }
      record->constituents = std::move(constituents);
    }
  } else {
    record->first_chunk_fp = Fingerprint();
    record->constituents.reset();
  }
  return Status::Ok();
}

void SegmentRecipe::Encode(std::string* dst) const {
  PutVarint64(dst, records.size());
  for (const auto& record : records) {
    EncodeChunkRecord(dst, record);
  }
}

Status SegmentRecipe::Decode(std::string_view data, SegmentRecipe* out) {
  Decoder dec(data);
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  out->records.clear();
  out->records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ChunkRecord record;
    SLIM_RETURN_IF_ERROR(DecodeChunkRecord(&dec, &record));
    out->records.push_back(record);
  }
  return Status::Ok();
}

}  // namespace slim::format
