#include "durability/parity.h"

#include <algorithm>
#include <cinttypes>

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"

namespace slim::durability {

namespace {
constexpr uint32_t kParityMagic = 0x534c5047;  // "GPLS" LE ("SLPG").

void XorInto(std::string* acc, std::string_view bytes) {
  if (acc->size() < bytes.size()) acc->resize(bytes.size(), '\0');
  for (size_t i = 0; i < bytes.size(); ++i) {
    (*acc)[i] = static_cast<char>(static_cast<uint8_t>((*acc)[i]) ^
                                  static_cast<uint8_t>(bytes[i]));
  }
}
}  // namespace

ParityManager::ParityManager(oss::ObjectStore* store, std::string prefix,
                             uint32_t group_size)
    : store_(store),
      prefix_(std::move(prefix)),
      group_size_(std::max<uint32_t>(group_size, 2)) {}

std::string ParityManager::KeyFor(uint64_t group) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, group);
  return prefix_ + "/parity-" + buf;
}

Status ParityManager::BuildGroup(uint64_t group,
                                 const std::vector<std::string>& member_keys) {
  ParityGroup pg;
  pg.group = group;
  std::string parity;
  for (const std::string& key : member_keys) {
    // Raw member bytes (their own footer included): reconstruction must
    // reproduce the object verbatim. Integrity is pinned by the
    // manifest CRC below, not by a footer on the slice.
    auto object = store_->Get(key);  // lint:allow-unverified-read
    if (!object.ok()) return object.status();
    if (!HasValidFooter(object.value())) {
      return Status::FailedPrecondition(
          "parity build over corrupt member: " + key);
    }
    ParityMember member;
    member.key = key;
    member.length = object.value().size();
    member.crc = Crc32c(object.value());
    pg.members.push_back(std::move(member));
    XorInto(&parity, object.value());
  }

  std::string out;
  PutFixed32(&out, kParityMagic);
  PutFixed64(&out, group);
  PutVarint64(&out, pg.members.size());
  for (const ParityMember& member : pg.members) {
    PutLengthPrefixed(&out, member.key);
    PutFixed64(&out, member.length);
    PutFixed32(&out, member.crc);
  }
  PutFixed64(&out, parity.size());
  out += parity;
  return PutWithFooter(*store_, KeyFor(group), std::move(out),
                       Component::kParity);
}

Result<ParityGroup> ParityManager::ReadGroup(uint64_t group) const {
  auto object = GetVerified(*store_, KeyFor(group), Component::kParity);
  if (!object.ok()) return object.status();
  Decoder dec(object.value());
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kParityMagic) return Status::Corruption("parity group magic");
  ParityGroup pg;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&pg.group));
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  pg.members.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ParityMember member;
    std::string_view key;
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&key));
    member.key = std::string(key);
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&member.length));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&member.crc));
    pg.members.push_back(std::move(member));
  }
  uint64_t parity_len = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&parity_len));
  std::string_view parity;
  SLIM_RETURN_IF_ERROR(dec.ReadBytes(parity_len, &parity));
  pg.parity.assign(parity.data(), parity.size());
  return pg;
}

Result<std::string> ParityManager::Reconstruct(uint64_t group,
                                               const std::string& lost_key) {
  auto pg = ReadGroup(group);
  if (!pg.ok()) return pg.status();

  const ParityMember* lost = nullptr;
  for (const ParityMember& member : pg.value().members) {
    if (member.key == lost_key) lost = &member;
  }
  if (lost == nullptr) {
    return Status::NotFound("parity group " + std::to_string(group) +
                            " has no member " + lost_key);
  }

  std::string bytes = std::move(pg.value().parity);
  for (const ParityMember& member : pg.value().members) {
    if (member.key == lost_key) continue;
    // Raw sibling bytes; verified against the manifest CRC right below.
    auto sibling = store_->Get(member.key);  // lint:allow-unverified-read
    if (!sibling.ok()) {
      return Status::FailedPrecondition(
          "parity reconstruction needs sibling " + member.key + ": " +
          sibling.status().ToString());
    }
    if (sibling.value().size() != member.length ||
        Crc32c(sibling.value()) != member.crc) {
      return Status::FailedPrecondition(
          "parity group stale: sibling changed since build: " + member.key);
    }
    XorInto(&bytes, sibling.value());
  }
  if (bytes.size() < lost->length) {
    return Status::Corruption("parity shorter than lost member");
  }
  bytes.resize(lost->length);
  if (Crc32c(bytes) != lost->crc) {
    return Status::Corruption(
        "parity reconstruction failed CRC for " + lost_key);
  }
  return bytes;
}

Result<bool> ParityManager::IsFresh(
    uint64_t group, const std::vector<std::string>& member_keys) const {
  auto pg = ReadGroup(group);
  if (!pg.ok()) {
    // Absent or corrupt parity is simply "not fresh" (rebuild it); only
    // infrastructure errors propagate.
    if (pg.status().code() == StatusCode::kNotFound ||
        pg.status().code() == StatusCode::kCorruption) {
      return false;
    }
    return pg.status();
  }
  if (pg.value().members.size() != member_keys.size()) return false;
  for (size_t i = 0; i < member_keys.size(); ++i) {
    const ParityMember& member = pg.value().members[i];
    if (member.key != member_keys[i]) return false;
    auto object = store_->Get(member.key);  // lint:allow-unverified-read
    if (!object.ok()) {
      if (object.status().code() == StatusCode::kNotFound) return false;
      return object.status();
    }
    if (object.value().size() != member.length ||
        Crc32c(object.value()) != member.crc) {
      return false;
    }
  }
  return true;
}

Status ParityManager::DeleteGroup(uint64_t group) {
  return store_->Delete(KeyFor(group));
}

}  // namespace slim::durability
