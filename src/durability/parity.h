#ifndef SLIMSTORE_DURABILITY_PARITY_H_
#define SLIMSTORE_DURABILITY_PARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "oss/object_store.h"

namespace slim::durability {

/// One member of a parity group, as recorded in the group's manifest.
struct ParityMember {
  std::string key;
  uint64_t length = 0;
  uint32_t crc = 0;  // CRC32C of the member's raw object bytes.
};

/// A decoded parity group object.
struct ParityGroup {
  uint64_t group = 0;
  std::vector<ParityMember> members;
  /// XOR of all member objects, each zero-padded to the longest.
  std::string parity;
};

/// XOR parity over container data objects: a redundancy option that
/// costs 1/group_size extra space instead of a full replica, at the
/// price of tolerating one loss per group. Groups are formed by
/// container id (id / group_size), so consecutively written containers
/// share a group and SCC churn stays localized.
///
/// Parity is maintained lazily by the scrubber (containers are
/// immutable between G-node cycles, which rewrite them wholesale):
/// each scrub cycle refreshes stale groups and uses fresh ones to
/// reconstruct lost members. The manifest pins each member's exact
/// length and CRC32C, so reconstruction is verified end-to-end — a
/// stale group can never fabricate plausible-but-wrong bytes.
class ParityManager {
 public:
  /// `store` must outlive this object. Parity objects live at
  /// "<prefix>/parity-<group>". `group_size` is the max members per
  /// group (>= 2).
  ParityManager(oss::ObjectStore* store, std::string prefix,
                uint32_t group_size);

  uint32_t group_size() const { return group_size_; }
  uint64_t GroupOfContainer(uint64_t container_id) const {
    return container_id / group_size_;
  }
  std::string KeyFor(uint64_t group) const;

  /// (Re)builds the parity object for `group` over `member_keys`
  /// (sorted, each currently readable and footer-valid at the top
  /// store). Fails without writing if any member read fails.
  Status BuildGroup(uint64_t group, const std::vector<std::string>& member_keys);

  Result<ParityGroup> ReadGroup(uint64_t group) const;

  /// Reconstructs the raw object bytes of `lost_key` from the group's
  /// parity and the surviving members, verifying the result against the
  /// manifest CRC. FailedPrecondition when the group is stale (a
  /// surviving member no longer matches its manifest entry) — stale
  /// parity must never fabricate data.
  Result<std::string> Reconstruct(uint64_t group, const std::string& lost_key);

  /// True when the stored group exists and exactly matches the given
  /// member set (keys, lengths, CRCs) — i.e. reconstruction would
  /// succeed for any single loss.
  Result<bool> IsFresh(uint64_t group,
                       const std::vector<std::string>& member_keys) const;

  Status DeleteGroup(uint64_t group);

 private:
  oss::ObjectStore* store_;
  std::string prefix_;
  uint32_t group_size_;
};

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_PARITY_H_
