#include "durability/checksumming_object_store.h"

#include <algorithm>

#include "common/macros.h"

namespace slim::durability {

Status ChecksummingObjectStore::Put(const std::string& key,
                                    std::string value) {
  AppendFooter(&value);
  return inner_->Put(key, std::move(value));
}

Result<std::string> ChecksummingObjectStore::Get(const std::string& key) {
  auto object = inner_->Get(key);
  if (!object.ok()) return object.status();
  SLIM_RETURN_IF_ERROR(VerifyAndStripFooter(&object.value(), component_));
  return std::move(object).value();
}

Result<std::string> ChecksummingObjectStore::GetRange(const std::string& key,
                                                      uint64_t offset,
                                                      uint64_t len) {
  // Range semantics are defined over the logical payload: clamp the
  // request so the footer can never leak into returned bytes. The
  // bytes themselves cannot be verified in isolation (that is what
  // whole-object scrub is for).
  auto physical = inner_->Size(key);
  if (!physical.ok()) return physical.status();
  if (physical.value() < kFooterSize) {
    return Status::Corruption("object too small for checksum footer: " + key);
  }
  const uint64_t logical = physical.value() - kFooterSize;
  if (offset > logical) {
    return Status::InvalidArgument("range offset beyond object end");
  }
  const uint64_t capped = std::min(len, logical - offset);
  if (capped == 0) return std::string();
  return inner_->GetRange(key, offset, capped);
}

Status ChecksummingObjectStore::Delete(const std::string& key) {
  return inner_->Delete(key);
}

Result<bool> ChecksummingObjectStore::Exists(const std::string& key) {
  return inner_->Exists(key);
}

Result<uint64_t> ChecksummingObjectStore::Size(const std::string& key) {
  auto physical = inner_->Size(key);
  if (!physical.ok()) return physical.status();
  if (physical.value() < kFooterSize) {
    return Status::Corruption("object too small for checksum footer: " + key);
  }
  return physical.value() - kFooterSize;
}

Result<std::vector<std::string>> ChecksummingObjectStore::List(
    const std::string& prefix) {
  return inner_->List(prefix);
}

}  // namespace slim::durability
