#ifndef SLIMSTORE_DURABILITY_REPLICATING_OBJECT_STORE_H_
#define SLIMSTORE_DURABILITY_REPLICATING_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "durability/placement.h"
#include "oss/object_store.h"

namespace slim::durability {

/// State of one replica of one key, as judged by a scrub probe.
enum class ReplicaState : uint8_t {
  kOk = 0,     // Present and validator-clean.
  kMissing,    // NotFound.
  kCorrupt,    // Present but fails the validator (bad footer).
  kDiverged,   // Validator-clean but bytes differ from the chosen copy.
  kError,      // Read failed with a non-NotFound error.
};
const char* ReplicaStateName(ReplicaState state);

/// Result of auditing (and optionally repairing) all replicas of a key.
struct KeyScrubReport {
  /// Parallel to the placement vector: state of each placed replica.
  std::vector<ReplicaState> states;
  /// Replicas rewritten from the chosen good copy.
  uint32_t repaired = 0;
  /// Bytes read while probing (scrub I/O accounting).
  uint64_t bytes_read = 0;
  bool any_bad() const {
    for (ReplicaState s : states) {
      if (s != ReplicaState::kOk) return true;
    }
    return false;
  }
  /// True when at least one validator-clean copy exists (the key's data
  /// survives, possibly after repair).
  bool recoverable = false;
};

/// k-way replication across N independent backing stores (the paper's
/// OSS assumed durable; FASTEN-style controlled redundancy restores the
/// copies dedup removed). Placement is deterministic per key via
/// PlacementPolicy, so no placement directory exists to lose.
///
/// Reads try placed replicas in order and fail over on NotFound /
/// Corruption / IoError or a validator rejection; a successful read
/// repairs the replicas that failed before it (read repair). Writes go
/// to every placed replica and fail if ANY replica write fails (the
/// retry layer above re-drives the whole Put; replicas may transiently
/// diverge, which scrub arbitrates later).
///
/// Stacks UNDER Retrying/FaultInjecting:
///   Retrying(FaultInjecting(Replicating({backing stores...})))
///
/// The optional validator (typically durability::HasValidFooter) is the
/// arbitration predicate: without it a bit-flipped replica would be
/// served verbatim; with it the read fails over and repairs instead.
class ReplicatingObjectStore : public oss::ObjectStore {
 public:
  using Validator = std::function<bool(std::string_view)>;

  /// `replicas` must be non-empty and outlive this object.
  ReplicatingObjectStore(std::vector<oss::ObjectStore*> replicas,
                         PlacementPolicy policy, Validator validator = {});

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  size_t replica_count() const { return replicas_.size(); }
  oss::ObjectStore* replica(size_t i) const { return replicas_[i]; }
  const PlacementPolicy& policy() const { return policy_; }
  std::vector<uint32_t> PlacementFor(const std::string& key) const;

  /// Audits every placed replica of `key`; with `repair`, rewrites
  /// missing/corrupt/diverged replicas from the chosen good copy.
  /// Divergence between validator-clean copies is resolved by majority
  /// byte-equality, ties to the earliest placed replica (writes land in
  /// placement order, so the earliest copy is the most likely complete
  /// one). Only fails on infrastructure errors, not on bad replicas —
  /// those are reported in the KeyScrubReport.
  Result<KeyScrubReport> ScrubKey(const std::string& key, bool repair);

 private:
  std::vector<oss::ObjectStore*> replicas_;
  PlacementPolicy policy_;
  Validator validator_;
};

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_REPLICATING_OBJECT_STORE_H_
