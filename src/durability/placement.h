#ifndef SLIMSTORE_DURABILITY_PLACEMENT_H_
#define SLIMSTORE_DURABILITY_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slim::durability {

/// Key classes a placement decision can distinguish. Derived purely from
/// the object key's path shape under the repository root, so every layer
/// (replication, parity, scrub) classifies identically.
enum class KeyClass : uint8_t {
  kContainerData = 0,  // .../containers/data-*
  kContainerMeta,      // .../containers/meta-*
  kRecipe,             // .../recipes/recipe/...
  kRecipeToc,          // .../recipes/toc/...
  kRecipeIndex,        // .../recipes/index/...
  kIndexRun,           // .../gindex/...
  kState,              // .../state/... and .../durability/...
  kOther,
};
const char* KeyClassName(KeyClass cls);

/// Classifies an object key by its path components (root-prefix
/// agnostic: matches the first recognized component anywhere in the
/// key).
KeyClass ClassifyKey(std::string_view key);

/// Per-class replica placement policy. N backing stores exist; each key
/// class is stored on `replicas(cls)` of them, chosen deterministically
/// by key hash so placement needs no directory. Small metadata classes
/// default to max redundancy (they are tiny but each protects many
/// megabytes of chunk data); bulk container data defaults to 2 copies.
class PlacementPolicy {
 public:
  PlacementPolicy();

  /// Uniform policy: every class gets `k` copies.
  static PlacementPolicy Uniform(uint32_t k);

  void set_replicas(KeyClass cls, uint32_t k);
  uint32_t replicas(KeyClass cls) const;

  /// The ordered replica indices (each < store_count) holding `key`.
  /// First index is the preferred read replica. Deterministic in (key,
  /// store_count).
  std::vector<uint32_t> PlacementFor(std::string_view key,
                                     uint32_t store_count) const;

 private:
  // Indexed by KeyClass.
  std::vector<uint32_t> replicas_;
};

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_PLACEMENT_H_
