#include "durability/replicating_object_store.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "obs/metrics.h"

namespace slim::durability {

namespace {

struct ReplicaMetrics {
  obs::Counter* failovers;
  obs::Counter* read_repairs;
  obs::Counter* validator_rejects;
  obs::Counter* divergence;
  obs::Counter* scrub_repairs;
};

ReplicaMetrics& Metrics() {
  static ReplicaMetrics m = [] {
    auto& registry = obs::MetricsRegistry::Get();
    const std::string base = "durability.replica";
    return ReplicaMetrics{
        &registry.counter(base + ".failovers"),
        &registry.counter(base + ".read_repairs"),
        &registry.counter(base + ".validator_rejects"),
        &registry.counter(base + ".divergence"),
        &registry.counter(base + ".scrub_repairs"),
    };
  }();
  return m;
}

/// Severity order for picking the status to surface when every replica
/// fails: corruption beats IO errors beats NotFound (an object that is
/// corrupt *somewhere* must never be reported as cleanly absent).
int Severity(const Status& s) {
  switch (s.code()) {
    case StatusCode::kCorruption:
      return 3;
    case StatusCode::kNotFound:
      return 1;
    default:
      return 2;
  }
}

}  // namespace

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kOk:
      return "ok";
    case ReplicaState::kMissing:
      return "missing";
    case ReplicaState::kCorrupt:
      return "corrupt";
    case ReplicaState::kDiverged:
      return "diverged";
    case ReplicaState::kError:
      return "error";
  }
  return "error";
}

ReplicatingObjectStore::ReplicatingObjectStore(
    std::vector<oss::ObjectStore*> replicas, PlacementPolicy policy,
    Validator validator)
    : replicas_(std::move(replicas)),
      policy_(std::move(policy)),
      validator_(std::move(validator)) {
  SLIM_CHECK(!replicas_.empty());
}

std::vector<uint32_t> ReplicatingObjectStore::PlacementFor(
    const std::string& key) const {
  return policy_.PlacementFor(key, static_cast<uint32_t>(replicas_.size()));
}

Status ReplicatingObjectStore::Put(const std::string& key, std::string value) {
  const std::vector<uint32_t> placed = PlacementFor(key);
  for (size_t i = 0; i < placed.size(); ++i) {
    Status st =
        (i + 1 == placed.size())
            ? replicas_[placed[i]]->Put(key, std::move(value))
            // Earlier replicas must keep the value for the next copy.
            : replicas_[placed[i]]->Put(key, value);  // lint:allow-put-copy
    SLIM_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

Result<std::string> ReplicatingObjectStore::Get(const std::string& key) {
  const std::vector<uint32_t> placed = PlacementFor(key);
  std::vector<uint32_t> failed;
  Status worst = Status::NotFound("no replica of " + key);
  for (uint32_t idx : placed) {
    auto object = replicas_[idx]->Get(key);
    if (object.ok()) {
      if (validator_ && !validator_(object.value())) {
        Metrics().validator_rejects->Inc();
        Status rejected =
            Status::Corruption("replica failed validation: " + key);
        if (Severity(rejected) > Severity(worst)) worst = rejected;
        failed.push_back(idx);
        continue;
      }
      if (!failed.empty()) {
        // Read repair: rewrite the replicas we had to skip.
        for (uint32_t bad : failed) {
          replicas_[bad]->Put(key, object.value()).IgnoreError();
          Metrics().read_repairs->Inc();
        }
      }
      return object;
    }
    Metrics().failovers->Inc();
    if (Severity(object.status()) > Severity(worst)) worst = object.status();
    failed.push_back(idx);
  }
  return worst;
}

Result<std::string> ReplicatingObjectStore::GetRange(const std::string& key,
                                                     uint64_t offset,
                                                     uint64_t len) {
  // No validator / read repair here: a range cannot be checksummed in
  // isolation. Failover only; scrub re-establishes replica agreement.
  const std::vector<uint32_t> placed = PlacementFor(key);
  Status worst = Status::NotFound("no replica of " + key);
  for (uint32_t idx : placed) {
    auto bytes = replicas_[idx]->GetRange(key, offset, len);
    if (bytes.ok()) return bytes;
    Metrics().failovers->Inc();
    if (Severity(bytes.status()) > Severity(worst)) worst = bytes.status();
  }
  return worst;
}

Status ReplicatingObjectStore::Delete(const std::string& key) {
  // Delete from every replica (not just placed ones) so a policy change
  // between writes cannot strand copies.
  for (oss::ObjectStore* replica : replicas_) {
    SLIM_RETURN_IF_ERROR(replica->Delete(key));
  }
  return Status::Ok();
}

Result<bool> ReplicatingObjectStore::Exists(const std::string& key) {
  Status worst = Status::Ok();
  for (uint32_t idx : PlacementFor(key)) {
    auto exists = replicas_[idx]->Exists(key);
    if (exists.ok()) {
      if (exists.value()) return true;
    } else {
      worst = exists.status();
    }
  }
  if (!worst.ok()) return worst;
  return false;
}

Result<uint64_t> ReplicatingObjectStore::Size(const std::string& key) {
  Status worst = Status::NotFound("no replica of " + key);
  for (uint32_t idx : PlacementFor(key)) {
    auto size = replicas_[idx]->Size(key);
    if (size.ok()) return size;
    if (Severity(size.status()) > Severity(worst)) worst = size.status();
  }
  return worst;
}

Result<std::vector<std::string>> ReplicatingObjectStore::List(
    const std::string& prefix) {
  // Sorted union across ALL replicas: any replica may hold keys the
  // others lost.
  std::vector<std::string> merged;
  for (oss::ObjectStore* replica : replicas_) {
    auto keys = replica->List(prefix);
    if (!keys.ok()) return keys.status();
    std::vector<std::string> next;
    next.reserve(merged.size() + keys.value().size());
    std::set_union(merged.begin(), merged.end(), keys.value().begin(),
                   keys.value().end(), std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

Result<KeyScrubReport> ReplicatingObjectStore::ScrubKey(const std::string& key,
                                                        bool repair) {
  const std::vector<uint32_t> placed = PlacementFor(key);
  KeyScrubReport report;
  report.states.resize(placed.size(), ReplicaState::kError);

  // Probe every placed replica.
  std::vector<std::string> bytes(placed.size());
  std::vector<bool> valid(placed.size(), false);
  for (size_t i = 0; i < placed.size(); ++i) {
    auto object = replicas_[placed[i]]->Get(key);
    if (!object.ok()) {
      report.states[i] = object.status().code() == StatusCode::kNotFound
                             ? ReplicaState::kMissing
                             : ReplicaState::kError;
      continue;
    }
    report.bytes_read += object.value().size();
    if (validator_ && !validator_(object.value())) {
      report.states[i] = ReplicaState::kCorrupt;
      continue;
    }
    bytes[i] = std::move(object).value();
    valid[i] = true;
    report.states[i] = ReplicaState::kOk;
  }

  // Choose the authoritative copy: majority byte-equality among valid
  // replicas, ties broken toward the earliest placed one.
  int chosen = -1;
  {
    std::map<std::string_view, std::pair<uint32_t, size_t>> votes;
    for (size_t i = 0; i < placed.size(); ++i) {
      if (!valid[i]) continue;
      auto [it, inserted] =
          votes.emplace(std::string_view(bytes[i]), std::make_pair(0u, i));
      it->second.first += 1;
    }
    uint32_t best_votes = 0;
    for (const auto& [view, vote] : votes) {
      if (vote.first > best_votes ||
          (vote.first == best_votes &&
           (chosen < 0 || vote.second < static_cast<size_t>(chosen)))) {
        best_votes = vote.first;
        chosen = static_cast<int>(vote.second);
      }
    }
    if (votes.size() > 1) Metrics().divergence->Inc();
  }
  report.recoverable = chosen >= 0;
  if (chosen < 0) return report;  // Nothing valid to repair from.

  // Mark diverged copies; optionally rewrite every non-authoritative
  // replica from the chosen copy.
  for (size_t i = 0; i < placed.size(); ++i) {
    if (valid[i] && bytes[i] != bytes[static_cast<size_t>(chosen)]) {
      report.states[i] = ReplicaState::kDiverged;
    }
    if (report.states[i] == ReplicaState::kOk) continue;
    if (!repair) continue;
    SLIM_RETURN_IF_ERROR(replicas_[placed[i]]->Put(
        key, bytes[static_cast<size_t>(chosen)]));
    Metrics().scrub_repairs->Inc();
    report.repaired += 1;
  }
  return report;
}

}  // namespace slim::durability
