#ifndef SLIMSTORE_DURABILITY_CHECKSUM_H_
#define SLIMSTORE_DURABILITY_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "oss/object_store.h"

namespace slim::durability {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the end-to-end
/// object checksum. Chosen over the format-internal FNV-1a because CRC
/// detects all burst errors up to 32 bits and has a published test
/// vector set; FNV remains in ContainerMeta for backward-compatible
/// payload self-description.
uint32_t Crc32c(const void* data, size_t len);
inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}
/// Incremental form: `crc` is the value returned by a previous call (or
/// 0 for the first block).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// Which durable object family a checksum verification is for. Used to
/// key the per-component `durability.checksum.<component>.{ok,corrupt}`
/// counters so corruption is attributable to a format, not just "some
/// object".
enum class Component : uint8_t {
  kContainerData = 0,
  kContainerMeta,
  kRecipe,
  kRecipeToc,
  kRecipeIndex,
  kIndexRun,
  kState,
  kParity,
  kOther,
};
const char* ComponentName(Component component);

/// Every durable object written by SlimStore carries an 8-byte footer:
///   [crc32c of payload, fixed32 LE][footer magic, fixed32 LE]
/// Appending (rather than prepending) keeps all absolute offsets inside
/// the payload valid, so toc-driven range reads of recipe segments need
/// no translation.
constexpr size_t kFooterSize = 8;

/// Appends the footer to `object` (checksum over the current contents).
void AppendFooter(std::string* object);

/// True iff `object` ends with a well-formed footer whose checksum
/// matches the preceding payload. This is the replica-arbitration
/// predicate: a replica whose bytes fail it is never served.
bool HasValidFooter(std::string_view object);

/// Verifies the footer and returns a view of the payload (footer
/// stripped). Corruption on a missing/bad footer. Bumps the
/// per-component counters.
Result<std::string_view> VerifyFooter(std::string_view object,
                                      Component component);

/// In-place variant: verifies, then truncates the footer off `object`.
Status VerifyAndStripFooter(std::string* object, Component component);

/// The sanctioned verified whole-object read path: one Get, footer
/// verification, footer stripped from the returned bytes. All system
/// read paths (containers, recipes, index runs, persisted state) go
/// through this; the repo lint rule `oss-verified-read` flags raw
/// store Gets outside this file.
Result<std::string> GetVerified(oss::ObjectStore& store,
                                const std::string& key, Component component);

/// Companion write path: appends the footer and Puts.
Status PutWithFooter(oss::ObjectStore& store, const std::string& key,
                     std::string value, Component component);

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_CHECKSUM_H_
