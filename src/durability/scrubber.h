#ifndef SLIMSTORE_DURABILITY_SCRUBBER_H_
#define SLIMSTORE_DURABILITY_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "durability/parity.h"
#include "durability/replicating_object_store.h"
#include "format/container.h"
#include "format/recipe.h"
#include "index/global_index.h"
#include "oss/object_store.h"

namespace slim::durability {

/// Scrub configuration (SlimStoreOptions::durability.scrub).
struct ScrubOptions {
  /// Max objects examined per RunCycle call; 0 = no cap (a full pass).
  /// A capped cycle persists a cursor and the next call resumes there —
  /// the configurable I/O budget of a background service.
  uint64_t max_objects_per_cycle = 0;
  /// Additional byte budget per cycle; 0 = no cap.
  uint64_t max_bytes_per_cycle = 0;
  /// Copy corrupt objects to "<root>/durability/quarantine/..." before
  /// any repair overwrites them (forensics; repair mode only).
  bool quarantine = true;
  /// Containers per XOR parity group; 0 disables parity. Parity groups
  /// are built/refreshed lazily during repair-mode cycles.
  uint32_t parity_group_size = 0;
  /// Sampling ratio used when rebuilding a lost recipe index (must
  /// match BackupOptions::sample_ratio).
  uint32_t index_sample_ratio = 32;
};

/// A live backup version, with the containers its recipe references
/// (from the catalog). Supplied by the caller so the scrubber stays
/// below the core layer.
struct ScrubLiveVersion {
  std::string file_id;
  uint64_t version = 0;
  std::vector<uint64_t> referenced_containers;
};

/// One chunk that no surviving object can produce.
struct UnrecoverableChunk {
  std::string file_id;
  uint64_t version = 0;
  uint64_t container_id = 0;
  Fingerprint fp;
};

/// One whole version that cannot be enumerated chunk-by-chunk because
/// its recipe object itself is gone.
struct UnrecoverableVersion {
  std::string file_id;
  uint64_t version = 0;
  std::string reason;
};

/// Outcome of one scrub cycle.
struct ScrubReport {
  uint64_t objects_scanned = 0;
  uint64_t bytes_verified = 0;
  uint64_t checksum_failures = 0;   // Objects with no clean copy at probe.
  uint64_t replicas_repaired = 0;   // Replica copies rewritten.
  uint64_t metas_rebuilt = 0;       // Container metas rebuilt from data.
  uint64_t recipes_rebuilt = 0;     // toc/index rebuilt from the recipe.
  uint64_t parity_built = 0;        // Parity groups built/refreshed.
  uint64_t parity_reconstructed = 0;  // Data objects rebuilt from parity.
  uint64_t quarantined = 0;
  /// True when this cycle reached the end of the work list (the cursor
  /// was cleared). False means the I/O budget paused the pass; call
  /// again to resume.
  bool cycle_complete = false;
  /// Human-readable findings (problems found, not necessarily fatal —
  /// a repaired replica still reports what was wrong).
  std::vector<std::string> problems;
  /// The exact loss set: only non-empty when data is gone beyond what
  /// replicas, parity, and structural rebuilds can recover.
  std::vector<UnrecoverableChunk> unrecoverable_chunks;
  std::vector<UnrecoverableVersion> unrecoverable_versions;

  bool clean() const {
    return problems.empty() && unrecoverable_chunks.empty() &&
           unrecoverable_versions.empty();
  }
  bool data_loss() const {
    return !unrecoverable_chunks.empty() || !unrecoverable_versions.empty();
  }
};

/// Background scrub-and-repair service (G-node style offline pass).
///
/// Walks every durable object class — persisted state, global-index
/// runs, recipe/toc/index triples of live versions, container data and
/// meta objects — verifying checksum footers and (when running over a
/// ReplicatingObjectStore) replica agreement. In repair mode it
/// re-replicates from good copies, reconstructs lost container data
/// from XOR parity, rebuilds container metas from the data object's
/// embedded directory and toc/index objects from the recipe, and
/// quarantines corrupt bytes before overwriting them.
///
/// Idempotent and resumable: the work list is deterministic, progress
/// commits to a durable cursor object only after the examined batch is
/// fully processed (the same commit-point discipline as SCC), and
/// re-running any part of a cycle is harmless.
///
/// What cannot be repaired is reported exactly: the (file, version,
/// container, fingerprint) set whose bytes are gone, cross-checked
/// against global-index redirects so relocated chunks do not count as
/// lost. Loss is never silent and never fabricated.
class Scrubber {
 public:
  /// All pointers are non-owning. `replicated` may be null (single
  /// backing store: detection, parity and structural rebuilds still
  /// work; replica repair does not). `global_index` may be null.
  Scrubber(oss::ObjectStore* store, format::ContainerStore* containers,
           format::RecipeStore* recipes, index::GlobalIndex* global_index,
           ReplicatingObjectStore* replicated, std::string root,
           ScrubOptions options);

  /// Runs one budgeted cycle over the work list derived from `live`
  /// (the catalog's live versions). `repair` false = detect only.
  Result<ScrubReport> RunCycle(const std::vector<ScrubLiveVersion>& live,
                               bool repair);

  std::string CursorKey() const;
  std::string QuarantinePrefix() const;

 private:
  struct WorkItem;
  class CycleState;

  Result<std::vector<WorkItem>> BuildWorkList(
      const std::vector<ScrubLiveVersion>& live) const;
  Status ProcessItem(const WorkItem& item,
                     const std::vector<ScrubLiveVersion>& live, bool repair,
                     CycleState* state, ScrubReport* report);
  /// Probes `key`: replica scrub (with repair) when replicated,
  /// footer check otherwise. Returns whether a clean copy exists now.
  Result<bool> ProbeAndRepairKey(const std::string& key, bool repair,
                                 ScrubReport* report);
  void Quarantine(const std::string& key, bool repair, ScrubReport* report);
  void AnalyzeDeadContainers(const std::vector<uint64_t>& dead,
                             const std::vector<ScrubLiveVersion>& live,
                             ScrubReport* report);
  Status MaintainParity(const std::vector<uint64_t>& container_ids,
                        ScrubReport* report);

  oss::ObjectStore* store_;
  format::ContainerStore* containers_;
  format::RecipeStore* recipes_;
  index::GlobalIndex* global_index_;
  ReplicatingObjectStore* replicated_;
  std::string root_;
  ScrubOptions options_;
};

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_SCRUBBER_H_
