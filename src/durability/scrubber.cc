#include "durability/scrubber.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"
#include "durability/placement.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace slim::durability {

namespace {

constexpr uint32_t kCursorMagic = 0x53435355;  // "USCS" LE ("SCUS").

struct ScrubMetrics {
  obs::Counter* cycles;
  obs::Counter* objects;
  obs::Counter* bytes;
  obs::Counter* problems;
  obs::Counter* repairs;
  obs::Counter* unrecoverable;
};

ScrubMetrics& Metrics() {
  static ScrubMetrics m = [] {
    auto& registry = obs::MetricsRegistry::Get();
    const std::string base = "durability.scrub";
    return ScrubMetrics{
        &registry.counter(base + ".cycles"),
        &registry.counter(base + ".objects_scanned"),
        &registry.counter(base + ".bytes_verified"),
        &registry.counter(base + ".problems"),
        &registry.counter(base + ".repairs"),
        &registry.counter(base + ".unrecoverable_chunks"),
    };
  }();
  return m;
}

std::string StatesToString(const KeyScrubReport& audit) {
  std::string out;
  for (size_t i = 0; i < audit.states.size(); ++i) {
    if (i > 0) out += ",";
    out += ReplicaStateName(audit.states[i]);
  }
  return out;
}

}  // namespace

/// One object to examine. Items are ordered by (phase, key): phases put
/// recipes before containers so dead-container analysis can rely on
/// recipes having been probed (and replica-repaired) first.
struct Scrubber::WorkItem {
  enum class Kind : uint8_t {
    kState = 0,     // Persisted state + global-index run objects.
    kRecipe,
    kToc,
    kIndex,
    kContainerData,
    kContainerMeta,
  };
  Kind kind = Kind::kState;
  std::string key;
  std::string file_id;
  uint64_t version = 0;
  uint64_t container_id = 0;

  uint32_t phase() const {
    switch (kind) {
      case Kind::kState:
        return 0;
      case Kind::kRecipe:
      case Kind::kToc:
      case Kind::kIndex:
        return 1;
      case Kind::kContainerData:
      case Kind::kContainerMeta:
        return 2;
    }
    return 2;
  }
  bool After(uint32_t cursor_phase, const std::string& cursor_key) const {
    return phase() != cursor_phase ? phase() > cursor_phase
                                   : key > cursor_key;
  }
};

/// Durable mid-pass state: where the budgeted pass stopped and which
/// containers were found dead so far (the completing call needs the
/// full dead set for exact loss analysis).
class Scrubber::CycleState {
 public:
  uint32_t phase = 0;
  std::string last_key;        // Last fully processed key.
  bool started = false;        // False: fresh pass from the beginning.
  std::set<uint64_t> dead_containers;

  std::string Encode() const {
    std::string out;
    PutFixed32(&out, kCursorMagic);
    PutVarint64(&out, phase);
    PutLengthPrefixed(&out, last_key);
    PutVarint64(&out, dead_containers.size());
    for (uint64_t id : dead_containers) PutFixed64(&out, id);
    return out;
  }

  static Result<CycleState> Decode(std::string_view data) {
    Decoder dec(data);
    uint32_t magic = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
    if (magic != kCursorMagic) return Status::Corruption("scrub cursor magic");
    CycleState state;
    state.started = true;
    uint64_t phase = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&phase));
    state.phase = static_cast<uint32_t>(phase);
    std::string_view key;
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&key));
    state.last_key = std::string(key);
    uint64_t count = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&id));
      state.dead_containers.insert(id);
    }
    return state;
  }
};

Scrubber::Scrubber(oss::ObjectStore* store,
                   format::ContainerStore* containers,
                   format::RecipeStore* recipes,
                   index::GlobalIndex* global_index,
                   ReplicatingObjectStore* replicated, std::string root,
                   ScrubOptions options)
    : store_(store),
      containers_(containers),
      recipes_(recipes),
      global_index_(global_index),
      replicated_(replicated),
      root_(std::move(root)),
      options_(options) {}

std::string Scrubber::CursorKey() const {
  return root_ + "/durability/scrub-cursor";
}

std::string Scrubber::QuarantinePrefix() const {
  return root_ + "/durability/quarantine/";
}

Result<std::vector<Scrubber::WorkItem>> Scrubber::BuildWorkList(
    const std::vector<ScrubLiveVersion>& live) const {
  std::vector<WorkItem> items;

  // Phase 0: persisted state + global-index runs. Not derivable from
  // other objects (state is re-written on SaveState, but between saves
  // it is the only copy of the catalog), so they are scrubbed too.
  // A failed List fails the cycle: silently skipping a prefix would
  // let a transient storm shrink the scan while still reporting a
  // clean full pass.
  for (const std::string& prefix :
       {root_ + "/state/", root_ + "/gindex/"}) {
    auto keys = store_->List(prefix);
    if (!keys.ok()) return keys.status();
    for (const std::string& key : keys.value()) {
      WorkItem item;
      item.kind = WorkItem::Kind::kState;
      item.key = key;
      items.push_back(std::move(item));
    }
  }

  // Phase 1: the recipe/toc/index triple of every live version.
  std::vector<ScrubLiveVersion> sorted_live = live;
  std::sort(sorted_live.begin(), sorted_live.end(),
            [](const ScrubLiveVersion& a, const ScrubLiveVersion& b) {
              return a.file_id != b.file_id ? a.file_id < b.file_id
                                            : a.version < b.version;
            });
  for (const ScrubLiveVersion& fv : sorted_live) {
    auto add = [&](WorkItem::Kind kind, std::string key) {
      WorkItem item;
      item.kind = kind;
      item.key = std::move(key);
      item.file_id = fv.file_id;
      item.version = fv.version;
      items.push_back(std::move(item));
    };
    add(WorkItem::Kind::kRecipe,
        recipes_->RecipeObjectKey(fv.file_id, fv.version));
    add(WorkItem::Kind::kToc, recipes_->TocObjectKey(fv.file_id, fv.version));
    add(WorkItem::Kind::kIndex,
        recipes_->IndexObjectKey(fv.file_id, fv.version));
  }

  // Phase 2: containers — the union of what is listable and what the
  // catalog says is referenced, so a container lost on EVERY replica
  // (hence invisible to List) is still examined and reported.
  std::set<uint64_t> ids;
  auto listed = containers_->ListContainerIds();
  if (!listed.ok()) return listed.status();
  ids.insert(listed.value().begin(), listed.value().end());
  for (const ScrubLiveVersion& fv : live) {
    ids.insert(fv.referenced_containers.begin(),
               fv.referenced_containers.end());
  }
  for (uint64_t id : ids) {
    WorkItem data;
    data.kind = WorkItem::Kind::kContainerData;
    data.key = containers_->DataObjectKey(id);
    data.container_id = id;
    items.push_back(std::move(data));
    WorkItem meta;
    meta.kind = WorkItem::Kind::kContainerMeta;
    meta.key = containers_->MetaObjectKey(id);
    meta.container_id = id;
    items.push_back(std::move(meta));
  }

  std::stable_sort(items.begin(), items.end(),
                   [](const WorkItem& a, const WorkItem& b) {
                     return a.phase() != b.phase() ? a.phase() < b.phase()
                                                   : a.key < b.key;
                   });
  return items;
}

Result<bool> Scrubber::ProbeAndRepairKey(const std::string& key, bool repair,
                                         ScrubReport* report) {
  if (replicated_ != nullptr) {
    auto audit = replicated_->ScrubKey(key, /*repair=*/false);
    if (!audit.ok()) return audit.status();
    report->bytes_verified += audit.value().bytes_read;
    if (!audit.value().any_bad()) return true;

    for (ReplicaState state : audit.value().states) {
      if (state != ReplicaState::kOk) ++report->checksum_failures;
    }
    report->problems.push_back(
        key + ": replicas [" + StatesToString(audit.value()) + "]" +
        (audit.value().recoverable ? "" : " — no intact copy"));

    // Keep the corrupt bytes for forensics before repair overwrites
    // them.
    if (repair && options_.quarantine) {
      const std::vector<uint32_t> placed = replicated_->PlacementFor(key);
      for (size_t i = 0; i < audit.value().states.size(); ++i) {
        if (audit.value().states[i] != ReplicaState::kCorrupt) continue;
        auto corrupt = replicated_->replica(placed[i])->Get(key);
        if (corrupt.ok()) {
          store_
              ->Put(QuarantinePrefix() + key + "#replica-" +
                        std::to_string(placed[i]),
                    std::move(corrupt).value())
              .IgnoreError();
          ++report->quarantined;
        }
      }
    }

    if (repair && audit.value().recoverable) {
      auto fixed = replicated_->ScrubKey(key, /*repair=*/true);
      if (!fixed.ok()) return fixed.status();
      report->replicas_repaired += fixed.value().repaired;
      Metrics().repairs->Inc(fixed.value().repaired);
    }
    return audit.value().recoverable;
  }

  // Single backing store: a footer check is the whole probe. The raw
  // read is deliberate — corrupt bytes must be observable here to be
  // quarantined.
  auto object = store_->Get(key);  // lint:allow-unverified-read
  if (!object.ok()) {
    if (object.status().code() == StatusCode::kNotFound) {
      ++report->checksum_failures;
      report->problems.push_back(key + ": missing");
      return false;
    }
    return object.status();
  }
  report->bytes_verified += object.value().size();
  if (HasValidFooter(object.value())) return true;
  ++report->checksum_failures;
  report->problems.push_back(key + ": checksum footer invalid");
  if (repair && options_.quarantine) {
    store_->Put(QuarantinePrefix() + key, std::move(object).value())
        .IgnoreError();
    ++report->quarantined;
  }
  return false;
}

Status Scrubber::ProcessItem(const WorkItem& item,
                             const std::vector<ScrubLiveVersion>& live,
                             bool repair, CycleState* state,
                             ScrubReport* report) {
  (void)live;
  auto intact = ProbeAndRepairKey(item.key, repair, report);
  if (!intact.ok()) return intact.status();
  if (intact.value()) {
    // A container data object that came back to life (earlier cycle
    // repaired it, or this one did) must not stay in the dead set.
    if (item.kind == WorkItem::Kind::kContainerData) {
      state->dead_containers.erase(item.container_id);
    }
    return Status::Ok();
  }

  const std::string where =
      item.file_id.empty()
          ? "container " + std::to_string(item.container_id)
          : item.file_id + "@v" + std::to_string(item.version);
  switch (item.kind) {
    case WorkItem::Kind::kState:
      report->problems.push_back(
          item.key + ": state object lost (restored on next SaveState; "
                     "index redirects may degrade until then)");
      break;

    case WorkItem::Kind::kRecipe: {
      report->unrecoverable_versions.push_back(
          {item.file_id, item.version,
           "recipe object lost with no intact copy"});
      break;
    }

    case WorkItem::Kind::kToc:
    case WorkItem::Kind::kIndex: {
      const char* what =
          item.kind == WorkItem::Kind::kToc ? "toc" : "recipe index";
      if (!repair) {
        report->problems.push_back(where + ": " + std::string(what) +
                                   " lost (rebuildable from recipe)");
        break;
      }
      auto recipe = recipes_->ReadRecipe(item.file_id, item.version);
      if (!recipe.ok()) {
        report->problems.push_back(
            where + ": " + std::string(what) +
            " lost and recipe unreadable: " + recipe.status().ToString());
        break;
      }
      SLIM_RETURN_IF_ERROR(
          recipes_->WriteRecipe(recipe.value(), options_.index_sample_ratio));
      ++report->recipes_rebuilt;
      report->problems.push_back(where + ": " + std::string(what) +
                                 " rebuilt from recipe");
      break;
    }

    case WorkItem::Kind::kContainerData: {
      // Last line of redundancy: XOR parity.
      if (options_.parity_group_size > 0) {
        ParityManager parity(store_, root_ + "/durability",
                             options_.parity_group_size);
        auto bytes = parity.Reconstruct(
            parity.GroupOfContainer(item.container_id), item.key);
        if (bytes.ok()) {
          if (repair) {
            SLIM_RETURN_IF_ERROR(
                store_->Put(item.key, std::move(bytes).value()));
            ++report->parity_reconstructed;
            Metrics().repairs->Inc();
            report->problems.push_back(where +
                                       ": data reconstructed from parity");
            state->dead_containers.erase(item.container_id);
          } else {
            report->problems.push_back(
                where + ": data lost but reconstructible from parity "
                        "(run repair)");
          }
          break;
        }
        report->problems.push_back(where + ": parity cannot reconstruct: " +
                                   bytes.status().ToString());
      }
      state->dead_containers.insert(item.container_id);
      break;
    }

    case WorkItem::Kind::kContainerMeta: {
      if (!repair) {
        report->problems.push_back(
            where + ": meta lost (rebuildable from data object)");
        break;
      }
      auto directory =
          containers_->ReadVerifiedDirectory(item.container_id);
      if (!directory.ok()) {
        // Data gone too: the data item carries the real loss report.
        report->problems.push_back(where +
                                   ": meta lost and data unreadable: " +
                                   directory.status().ToString());
        break;
      }
      // Reverse-dedup tombstones recorded only in the meta are lost;
      // the chunks' bytes are still in the payload, so restores stay
      // byte-identical and the next G-node pass re-tombstones.
      SLIM_RETURN_IF_ERROR(containers_->WriteMeta(directory.value()));
      ++report->metas_rebuilt;
      Metrics().repairs->Inc();
      report->problems.push_back(where + ": meta rebuilt from data object");
      break;
    }
  }
  return Status::Ok();
}

void Scrubber::AnalyzeDeadContainers(
    const std::vector<uint64_t>& dead,
    const std::vector<ScrubLiveVersion>& live, ScrubReport* report) {
  if (dead.empty()) return;
  const std::unordered_set<uint64_t> dead_set(dead.begin(), dead.end());

  // Directory cache of intact containers consulted for redirects.
  std::unordered_map<uint64_t, std::optional<format::ContainerMeta>>
      directories;
  auto directory_of =
      [&](uint64_t cid) -> const std::optional<format::ContainerMeta>& {
    auto it = directories.find(cid);
    if (it == directories.end()) {
      auto loaded = containers_->ReadVerifiedDirectory(cid);
      it = directories
               .emplace(cid, loaded.ok() ? std::optional<format::ContainerMeta>(
                                               std::move(loaded).value())
                                         : std::nullopt)
               .first;
    }
    return it->second;
  };

  for (const ScrubLiveVersion& fv : live) {
    auto recipe = recipes_->ReadRecipe(fv.file_id, fv.version);
    if (!recipe.ok()) continue;  // Reported by the recipe work item.
    for (const format::ChunkRecord& rec : recipe.value().Flatten()) {
      if (dead_set.count(rec.container_id) == 0) continue;
      // The recorded container is dead — but reverse dedup / SCC may
      // have moved the chunk; a live redirect means no loss.
      bool survives = false;
      if (global_index_ != nullptr) {
        auto owner = global_index_->Get(rec.fp);
        if (owner.ok() && dead_set.count(owner.value()) == 0) {
          const auto& directory = directory_of(owner.value());
          if (directory.has_value() &&
              directory->Find(rec.fp) != nullptr) {
            survives = true;
          }
        }
      }
      if (!survives) {
        report->unrecoverable_chunks.push_back(
            {fv.file_id, fv.version, rec.container_id, rec.fp});
      }
    }
  }
  Metrics().unrecoverable->Inc(report->unrecoverable_chunks.size());
}

Status Scrubber::MaintainParity(const std::vector<uint64_t>& container_ids,
                                ScrubReport* report) {
  if (options_.parity_group_size == 0) return Status::Ok();
  ParityManager parity(store_, root_ + "/durability",
                       options_.parity_group_size);
  std::map<uint64_t, std::vector<std::string>> groups;
  for (uint64_t id : container_ids) {
    groups[parity.GroupOfContainer(id)].push_back(
        containers_->DataObjectKey(id));
  }
  for (auto& [group, members] : groups) {
    std::sort(members.begin(), members.end());
    auto fresh = parity.IsFresh(group, members);
    if (!fresh.ok()) return fresh.status();
    if (fresh.value()) continue;
    Status built = parity.BuildGroup(group, members);
    if (built.ok()) {
      ++report->parity_built;
    } else {
      // A group with a dead member cannot be rebuilt; the stale object
      // is left in place (it may still reconstruct that member).
      report->problems.push_back("parity group " + std::to_string(group) +
                                 " not refreshed: " + built.ToString());
    }
  }
  return Status::Ok();
}

Result<ScrubReport> Scrubber::RunCycle(
    const std::vector<ScrubLiveVersion>& live, bool repair) {
  obs::Span span("durability.scrub.cycle");
  Metrics().cycles->Inc();
  ScrubReport report;

  // Resume from the durable cursor when a budgeted pass is midway.
  CycleState state;
  {
    auto stored = GetVerified(*store_, CursorKey(), Component::kState);
    if (stored.ok()) {
      auto decoded = CycleState::Decode(stored.value());
      if (decoded.ok()) state = std::move(decoded).value();
      // A corrupt cursor just restarts the pass: every step is
      // idempotent.
    }
  }

  auto worklist = BuildWorkList(live);
  if (!worklist.ok()) return worklist.status();
  const std::vector<WorkItem> items = std::move(worklist).value();
  std::vector<uint64_t> all_container_ids;
  for (const WorkItem& item : items) {
    if (item.kind == WorkItem::Kind::kContainerData) {
      all_container_ids.push_back(item.container_id);
    }
  }

  bool budget_hit = false;
  for (const WorkItem& item : items) {
    if (state.started && !item.After(state.phase, state.last_key)) continue;
    if ((options_.max_objects_per_cycle > 0 &&
         report.objects_scanned >= options_.max_objects_per_cycle) ||
        (options_.max_bytes_per_cycle > 0 &&
         report.bytes_verified >= options_.max_bytes_per_cycle)) {
      budget_hit = true;
      break;
    }
    SLIM_RETURN_IF_ERROR(ProcessItem(item, live, repair, &state, &report));
    ++report.objects_scanned;
    state.phase = item.phase();
    state.last_key = item.key;
    state.started = true;
  }

  if (budget_hit) {
    // Durable commit of this batch's progress (incl. the accumulated
    // dead set); crash before this Put re-scrubs the batch, which is
    // harmless.
    SLIM_RETURN_IF_ERROR(PutWithFooter(*store_, CursorKey(), state.Encode(),
                                       Component::kState));
    report.cycle_complete = false;
  } else {
    // Pass finished: exact loss accounting + lazy parity maintenance,
    // then clear the cursor so the next cycle starts fresh.
    AnalyzeDeadContainers(
        std::vector<uint64_t>(state.dead_containers.begin(),
                              state.dead_containers.end()),
        live, &report);
    if (repair) {
      SLIM_RETURN_IF_ERROR(MaintainParity(all_container_ids, &report));
    }
    SLIM_RETURN_IF_ERROR(store_->Delete(CursorKey()));
    report.cycle_complete = true;
  }

  Metrics().objects->Inc(report.objects_scanned);
  Metrics().bytes->Inc(report.bytes_verified);
  Metrics().problems->Inc(report.problems.size());
  return report;
}

}  // namespace slim::durability
