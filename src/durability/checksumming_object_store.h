#ifndef SLIMSTORE_DURABILITY_CHECKSUMMING_OBJECT_STORE_H_
#define SLIMSTORE_DURABILITY_CHECKSUMMING_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/checksum.h"
#include "oss/object_store.h"

namespace slim::durability {

/// Transparent checksum-footer decorator: every Put appends the CRC32C
/// footer, every Get verifies and strips it (Corruption on mismatch —
/// corrupt bytes are never returned). Size and GetRange expose the
/// LOGICAL object (footer excluded) so callers cannot observe the
/// footer at all and the full ObjectStore contract (suffix reads,
/// InvalidArgument past the end, exact Size) holds for the logical
/// payload.
///
/// SlimStore's own formats checksum at the consumer layer instead
/// (container/recipe/index writers call PutWithFooter directly, which
/// keeps toc range reads one hop); this decorator is for wrapping
/// arbitrary stores — e.g. giving a ReplicatingObjectStore's validator
/// footers to arbitrate with, or protecting foreign payloads.
class ChecksummingObjectStore : public oss::ObjectStore {
 public:
  /// `inner` must outlive this object.
  explicit ChecksummingObjectStore(oss::ObjectStore* inner,
                                   Component component = Component::kOther)
      : inner_(inner), component_(component) {}

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

 private:
  oss::ObjectStore* inner_;
  Component component_;
};

}  // namespace slim::durability

#endif  // SLIMSTORE_DURABILITY_CHECKSUMMING_OBJECT_STORE_H_
