#include "durability/checksum.h"

#include <array>
#include <cstring>

#include "common/coding.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace slim::durability {

namespace {

constexpr uint32_t kFooterMagic = 0x53435243;  // "CRCS" little-endian.

std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = BuildCrc32cTable();
  return table;
}

/// Per-component counters, resolved once per process (metric names are
/// built dynamically from the component name).
struct ChecksumCounters {
  obs::Counter* ok;
  obs::Counter* corrupt;
};

ChecksumCounters& CountersFor(Component component) {
  static std::array<ChecksumCounters, 9> counters = [] {
    std::array<ChecksumCounters, 9> out{};
    auto& registry = obs::MetricsRegistry::Get();
    for (size_t i = 0; i < out.size(); ++i) {
      const std::string base = std::string("durability.checksum.") +
                               ComponentName(static_cast<Component>(i));
      out[i].ok = &registry.counter(base + ".ok");
      out[i].corrupt = &registry.counter(base + ".corrupt");
    }
    return out;
  }();
  return counters[static_cast<size_t>(component)];
}

}  // namespace

const char* ComponentName(Component component) {
  switch (component) {
    case Component::kContainerData:
      return "container_data";
    case Component::kContainerMeta:
      return "container_meta";
    case Component::kRecipe:
      return "recipe";
    case Component::kRecipeToc:
      return "toc";
    case Component::kRecipeIndex:
      return "recipe_index";
    case Component::kIndexRun:
      return "index_run";
    case Component::kState:
      return "state";
    case Component::kParity:
      return "parity";
    case Component::kOther:
      return "other";
  }
  return "other";
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto& table = Crc32cTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

void AppendFooter(std::string* object) {
  PutFixed32(object, Crc32c(object->data(), object->size()));
  PutFixed32(object, kFooterMagic);
}

namespace {

/// Shared footer parse: returns true and sets *payload on success.
bool ParseFooter(std::string_view object, std::string_view* payload) {
  if (object.size() < kFooterSize) return false;
  const size_t payload_size = object.size() - kFooterSize;
  uint32_t stored_crc = 0;
  uint32_t magic = 0;
  std::memcpy(&stored_crc, object.data() + payload_size, 4);
  std::memcpy(&magic, object.data() + payload_size + 4, 4);
  if (magic != kFooterMagic) return false;
  if (Crc32c(object.data(), payload_size) != stored_crc) return false;
  *payload = object.substr(0, payload_size);
  return true;
}

}  // namespace

bool HasValidFooter(std::string_view object) {
  std::string_view payload;
  return ParseFooter(object, &payload);
}

Result<std::string_view> VerifyFooter(std::string_view object,
                                      Component component) {
  ChecksumCounters& counters = CountersFor(component);
  std::string_view payload;
  if (!ParseFooter(object, &payload)) {
    counters.corrupt->Inc();
    return Status::Corruption(std::string("checksum footer invalid (") +
                              ComponentName(component) + ")");
  }
  counters.ok->Inc();
  return payload;
}

Status VerifyAndStripFooter(std::string* object, Component component) {
  auto payload = VerifyFooter(*object, component);
  if (!payload.ok()) return payload.status();
  object->resize(payload.value().size());
  return Status::Ok();
}

Result<std::string> GetVerified(oss::ObjectStore& store,
                                const std::string& key, Component component) {
  auto object = store.Get(key);
  if (!object.ok()) return object.status();
  SLIM_RETURN_IF_ERROR(VerifyAndStripFooter(&object.value(), component));
  return std::move(object).value();
}

Status PutWithFooter(oss::ObjectStore& store, const std::string& key,
                     std::string value, Component component) {
  (void)component;
  AppendFooter(&value);
  return store.Put(key, std::move(value));
}

}  // namespace slim::durability
