#include "durability/placement.h"

#include <algorithm>

#include "common/hash.h"

namespace slim::durability {

const char* KeyClassName(KeyClass cls) {
  switch (cls) {
    case KeyClass::kContainerData:
      return "container_data";
    case KeyClass::kContainerMeta:
      return "container_meta";
    case KeyClass::kRecipe:
      return "recipe";
    case KeyClass::kRecipeToc:
      return "toc";
    case KeyClass::kRecipeIndex:
      return "recipe_index";
    case KeyClass::kIndexRun:
      return "index_run";
    case KeyClass::kState:
      return "state";
    case KeyClass::kOther:
      return "other";
  }
  return "other";
}

KeyClass ClassifyKey(std::string_view key) {
  // Find the position right after component `name` ("name/..." or
  // ".../name/..."), or npos. Only the FIRST matching component counts,
  // so escaped file ids deeper in the key cannot confuse the classifier.
  auto after_component = [&](std::string_view name) -> size_t {
    size_t pos = 0;
    while ((pos = key.find(name, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || key[pos - 1] == '/';
      const size_t end = pos + name.size();
      const bool right_ok = end == key.size() || key[end] == '/';
      if (left_ok && right_ok) return end < key.size() ? end + 1 : end;
      pos += 1;
    }
    return std::string_view::npos;
  };
  auto last_name = [&]() -> std::string_view {
    const size_t slash = key.rfind('/');
    return slash == std::string_view::npos ? key : key.substr(slash + 1);
  };
  // "recipes" is tested before "containers" so an escaped file id that
  // happens to contain "containers" stays in a recipe class.
  if (size_t rest = after_component("recipes");
      rest != std::string_view::npos) {
    const std::string_view tail = key.substr(std::min(rest, key.size()));
    if (tail.substr(0, 4) == "toc/") return KeyClass::kRecipeToc;
    if (tail.substr(0, 6) == "index/") return KeyClass::kRecipeIndex;
    return KeyClass::kRecipe;
  }
  if (after_component("containers") != std::string_view::npos) {
    return last_name().substr(0, 5) == "meta-" ? KeyClass::kContainerMeta
                                               : KeyClass::kContainerData;
  }
  if (after_component("gindex") != std::string_view::npos) {
    return KeyClass::kIndexRun;
  }
  if (after_component("state") != std::string_view::npos ||
      after_component("durability") != std::string_view::npos) {
    return KeyClass::kState;
  }
  return KeyClass::kOther;
}

namespace {
constexpr size_t kClassCount = static_cast<size_t>(KeyClass::kOther) + 1;
}  // namespace

PlacementPolicy::PlacementPolicy() : replicas_(kClassCount, 2) {
  // Small but load-bearing classes: replicate everywhere by default
  // (UINT32_MAX is clamped to the store count at placement time).
  set_replicas(KeyClass::kRecipe, UINT32_MAX);
  set_replicas(KeyClass::kRecipeToc, UINT32_MAX);
  set_replicas(KeyClass::kRecipeIndex, UINT32_MAX);
  set_replicas(KeyClass::kContainerMeta, UINT32_MAX);
  set_replicas(KeyClass::kState, UINT32_MAX);
}

PlacementPolicy PlacementPolicy::Uniform(uint32_t k) {
  PlacementPolicy policy;
  for (size_t i = 0; i < kClassCount; ++i) {
    policy.set_replicas(static_cast<KeyClass>(i), k);
  }
  return policy;
}

void PlacementPolicy::set_replicas(KeyClass cls, uint32_t k) {
  replicas_[static_cast<size_t>(cls)] = std::max<uint32_t>(k, 1);
}

uint32_t PlacementPolicy::replicas(KeyClass cls) const {
  return replicas_[static_cast<size_t>(cls)];
}

std::vector<uint32_t> PlacementPolicy::PlacementFor(
    std::string_view key, uint32_t store_count) const {
  const uint32_t k =
      std::min(replicas(ClassifyKey(key)), std::max<uint32_t>(store_count, 1));
  const uint32_t start = static_cast<uint32_t>(
      Mix64(Fnv1a64(key)) % std::max<uint32_t>(store_count, 1));
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    out.push_back((start + i) % store_count);
  }
  return out;
}

}  // namespace slim::durability
