#ifndef SLIMSTORE_CLUSTER_OBS_PUBLISH_H_
#define SLIMSTORE_CLUSTER_OBS_PUBLISH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/snapshot.h"
#include "oss/object_store.h"

namespace slim::cluster {

/// Key of node `node`'s published metrics snapshot under cluster root
/// `root`: "<root>/obs#/node/<node>". The "obs#" segment keeps the key
/// invisible to shallow List() calls (oss::ObsKeyHiddenFromList), so
/// backups, rebalances, and space accounting never see metric state as
/// data — the same journal-style trick as "#tmp" staging files.
std::string ObsSnapshotKey(const std::string& root, const std::string& node);

/// Serializes and overwrites node `snap.node`'s snapshot object. The
/// caller must capture the snapshot FIRST (CaptureSnapshot holds the
/// registry lock only while copying); no lock is held across this OSS
/// write. Counters are cumulative, so one overwritten key per node is a
/// complete record. InvalidArgument when the node id is empty or
/// contains '/' or '#'.
Status PublishSnapshot(oss::ObjectStore* store, const std::string& root,
                       const obs::Snapshot& snap);

/// A fleet's worth of node snapshots, fetched and merged.
struct FleetView {
  obs::Snapshot merged;
  std::vector<obs::Snapshot> per_node;
  /// Snapshot objects that failed to parse (skipped, not fatal).
  uint64_t malformed = 0;
};

/// Lists "<root>/obs#/node/", fetches every node snapshot, and merges
/// them (order-independent by the Merge() laws). Ok with an empty view
/// when no node has published yet.
Result<FleetView> FetchFleetSnapshot(oss::ObjectStore* store,
                                     const std::string& root);

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_OBS_PUBLISH_H_
