#include "cluster/namespace_store.h"

#include <utility>

namespace slim::cluster {

NamespacedObjectStore::NamespacedObjectStore(oss::ObjectStore* base,
                                             std::string namespace_prefix)
    : base_(base), prefix_(std::move(namespace_prefix)) {
  prefix_ += '/';
}

Status NamespacedObjectStore::Put(const std::string& key, std::string value) {
  return base_->Put(Scoped(key), std::move(value));
}

Result<std::string> NamespacedObjectStore::Get(const std::string& key) {
  return base_->Get(Scoped(key));
}

Result<std::string> NamespacedObjectStore::GetRange(const std::string& key,
                                                    uint64_t offset,
                                                    uint64_t len) {
  return base_->GetRange(Scoped(key), offset, len);
}

Status NamespacedObjectStore::Delete(const std::string& key) {
  return base_->Delete(Scoped(key));
}

Result<bool> NamespacedObjectStore::Exists(const std::string& key) {
  return base_->Exists(Scoped(key));
}

Result<uint64_t> NamespacedObjectStore::Size(const std::string& key) {
  return base_->Size(Scoped(key));
}

Result<std::vector<std::string>> NamespacedObjectStore::List(
    const std::string& prefix) {
  auto keys = base_->List(Scoped(prefix));
  if (!keys.ok()) return keys.status();
  std::vector<std::string> out;
  out.reserve(keys.value().size());
  for (const std::string& key : keys.value()) {
    // The base honors the prefix contract, so every returned key starts
    // with the namespace; strip it to restore the caller's view.
    out.push_back(key.substr(prefix_.size()));
  }
  return out;
}

}  // namespace slim::cluster
