#include "cluster/tenant.h"

namespace slim::cluster {

Status ValidateTenantId(std::string_view id) {
  if (id.empty()) {
    return Status::InvalidArgument(
        "tenant id must not be empty (omit --tenant for the untagged "
        "single-tenant mode)");
  }
  if (id.find('/') != std::string_view::npos) {
    return Status::InvalidArgument(
        "tenant id must not contain '/': it would fake nested namespace "
        "components in OSS key prefixes");
  }
  if (id.find("#tmp") != std::string_view::npos) {
    return Status::InvalidArgument(
        "tenant id must not contain '#tmp': it collides with the object "
        "store's atomic-write staging suffix");
  }
  for (unsigned char c : id) {
    if (c < 0x20 || c == 0x7f) {
      return Status::InvalidArgument(
          "tenant id must not contain control characters");
    }
  }
  return Status::Ok();
}

std::string TenantPrefix(std::string_view tenant_id) {
  return "t/" + std::string(tenant_id);
}

}  // namespace slim::cluster
