#include "cluster/shard_map.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/hash.h"

namespace slim::cluster {

namespace {

/// Node ids are embedded verbatim in JSON and in OSS key prefixes, so
/// the alphabet is restricted to characters safe in both.
Status ValidateNodeId(std::string_view id) {
  if (id.empty()) {
    return Status::InvalidArgument("node id must not be empty");
  }
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      return Status::InvalidArgument(
          "node id '" + std::string(id) +
          "' must match [A-Za-z0-9._-]+ (it is used in OSS key prefixes "
          "and the shard-map JSON)");
    }
  }
  return Status::Ok();
}

/// Ring point for one virtual node. The vnode index is mixed into the
/// FNV stream (not just XORed afterwards) so each vnode of a node lands
/// independently on the ring.
uint64_t VnodePoint(const std::string& node_id, uint32_t vnode) {
  char salt[16];
  int n = std::snprintf(salt, sizeof(salt), "#%u", vnode);
  uint64_t h = Fnv1a64(node_id);
  h ^= Fnv1a64(salt, static_cast<size_t>(n));
  return Mix64(h);
}

/// Ring position a shard looks up its owner at.
uint64_t ShardPoint(uint32_t shard) {
  return Mix64(0x5348415244ULL /* "SHARD" */ + shard);
}

}  // namespace

ShardMap::ShardMap(uint32_t num_shards, uint32_t vnodes_per_node,
                   std::vector<std::string> node_ids)
    : version_(1),
      num_shards_(num_shards),
      vnodes_per_node_(vnodes_per_node == 0 ? 1 : vnodes_per_node),
      nodes_(std::move(node_ids)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  BuildRing();
}

bool ShardMap::HasNode(std::string_view node_id) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node_id);
}

uint32_t ShardMap::ShardOfFile(std::string_view tenant,
                               std::string_view file_id) const {
  // 0x1f (unit separator) cannot appear in a valid tenant id, so the
  // combined stream is injective over (tenant, file_id) pairs.
  uint64_t h = Fnv1a64(tenant);
  const char sep = '\x1f';
  h ^= Fnv1a64(&sep, 1);
  h ^= Fnv1a64(file_id);
  return static_cast<uint32_t>(Mix64(h) %
                               std::max<uint32_t>(num_shards_, 1));
}

Result<std::string> ShardMap::OwnerOfShard(uint32_t shard) const {
  if (ring_.empty()) {
    return Status::FailedPrecondition(
        "shard map has no nodes; join a node before placing data");
  }
  if (shard >= num_shards_) {
    return Status::InvalidArgument("shard index out of range");
  }
  uint64_t point = ShardPoint(shard);
  // First vnode at or after the shard's point, wrapping at the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, uint32_t>& e, uint64_t p) {
        return e.first < p;
      });
  if (it == ring_.end()) it = ring_.begin();
  return nodes_[it->second];
}

Status ShardMap::AddNode(const std::string& node_id) {
  auto valid = ValidateNodeId(node_id);
  if (!valid.ok()) return valid;
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node_id);
  if (it != nodes_.end() && *it == node_id) {
    return Status::AlreadyExists("node '" + node_id +
                                 "' is already in the shard map");
  }
  nodes_.insert(it, node_id);
  ++version_;
  BuildRing();
  return Status::Ok();
}

Status ShardMap::RemoveNode(const std::string& node_id) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node_id);
  if (it == nodes_.end() || *it != node_id) {
    return Status::NotFound("node '" + node_id +
                            "' is not in the shard map");
  }
  if (nodes_.size() == 1) {
    return Status::FailedPrecondition(
        "cannot remove the last node: its shards would have no "
        "destination");
  }
  nodes_.erase(it);
  ++version_;
  BuildRing();
  return Status::Ok();
}

Result<std::vector<ShardMap::ShardMove>> ShardMap::Delta(
    const ShardMap& from, const ShardMap& to) {
  if (from.num_shards() != to.num_shards()) {
    return Status::InvalidArgument(
        "shard maps disagree on num_shards; the logical shard count is "
        "fixed at cluster creation");
  }
  std::vector<ShardMove> moves;
  for (uint32_t shard = 0; shard < from.num_shards(); ++shard) {
    auto before = from.OwnerOfShard(shard);
    auto after = to.OwnerOfShard(shard);
    if (!before.ok()) return before.status();
    if (!after.ok()) return after.status();
    if (before.value() != after.value()) {
      moves.push_back(
          ShardMove{shard, std::move(before.value()), std::move(after.value())});
    }
  }
  return moves;
}

void ShardMap::BuildRing() {
  ring_.clear();
  ring_.reserve(static_cast<size_t>(nodes_.size()) * vnodes_per_node_);
  for (uint32_t ni = 0; ni < nodes_.size(); ++ni) {
    for (uint32_t v = 0; v < vnodes_per_node_; ++v) {
      ring_.emplace_back(VnodePoint(nodes_[ni], v), ni);
    }
  }
  // Tie-break equal points by node index so the ring is deterministic
  // regardless of insertion order.
  std::sort(ring_.begin(), ring_.end());
}

std::string ShardMap::ToJson() const {
  std::string out = "{\"version\":" + std::to_string(version_) +
                    ",\"num_shards\":" + std::to_string(num_shards_) +
                    ",\"vnodes_per_node\":" +
                    std::to_string(vnodes_per_node_) + ",\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ',';
    // Node ids are validated to [A-Za-z0-9._-]+ so no escaping needed.
    out += '"';
    out += nodes_[i];
    out += '"';
  }
  out += "]}";
  return out;
}

Result<ShardMap> ShardMap::FromJson(const std::string& json) {
  auto extract_number = [&json](const std::string& key,
                                uint64_t* out) -> bool {
    std::string needle = "\"" + key + "\":";
    size_t pos = json.find(needle);
    if (pos == std::string::npos) return false;
    pos += needle.size();
    uint64_t value = 0;
    bool any = false;
    while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(json[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) return false;
    *out = value;
    return true;
  };

  uint64_t version = 0, num_shards = 0, vnodes = 0;
  if (!extract_number("version", &version) ||
      !extract_number("num_shards", &num_shards) ||
      !extract_number("vnodes_per_node", &vnodes)) {
    return Status::Corruption("shard map JSON missing numeric field");
  }
  size_t nodes_pos = json.find("\"nodes\":[");
  if (nodes_pos == std::string::npos) {
    return Status::Corruption("shard map JSON missing nodes array");
  }
  size_t pos = nodes_pos + 9;
  size_t end = json.find(']', pos);
  if (end == std::string::npos) {
    return Status::Corruption("shard map JSON: unterminated nodes array");
  }
  std::vector<std::string> nodes;
  while (pos < end) {
    size_t open = json.find('"', pos);
    if (open == std::string::npos || open >= end) break;
    size_t close = json.find('"', open + 1);
    if (close == std::string::npos || close > end) {
      return Status::Corruption("shard map JSON: unterminated node id");
    }
    std::string id = json.substr(open + 1, close - open - 1);
    auto valid = ValidateNodeId(id);
    if (!valid.ok()) {
      return Status::Corruption("shard map JSON: " + valid.message());
    }
    nodes.push_back(std::move(id));
    pos = close + 1;
  }
  ShardMap map(static_cast<uint32_t>(num_shards),
               static_cast<uint32_t>(vnodes), std::move(nodes));
  map.version_ = version;
  return map;
}

Status ShardMap::Save(oss::ObjectStore* store, const std::string& key) const {
  return store->Put(key, ToJson());
}

Result<ShardMap> ShardMap::Load(oss::ObjectStore* store,
                                const std::string& key) {
  // Map JSON is structurally validated by FromJson (fields, placement
  // completeness); a flipped bit fails the parse, not a restore.
  auto raw = store->Get(key);  // lint:allow-unverified-read
  if (!raw.ok()) return raw.status();
  return FromJson(raw.value());
}

}  // namespace slim::cluster
