#include "cluster/sharded_cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "cluster/obs_publish.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace slim::cluster {

namespace {

/// Minimal field extraction for the tiny pending-move records; mirrors
/// EventJournal::ExtractNumber/String but stays dependency-free.
bool ExtractU32(const std::string& json, const std::string& key,
                uint32_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  uint64_t value = 0;
  bool any = false;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(json[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ExtractStr(const std::string& json, const std::string& key,
                std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  size_t end = json.find('"', pos);
  if (end == std::string::npos) return false;
  *out = json.substr(pos, end - pos);
  return true;
}

std::string MoveRecordJson(const ShardMap::ShardMove& move) {
  return "{\"shard\":" + std::to_string(move.shard) + ",\"from\":\"" +
         move.from_node + "\",\"to\":\"" + move.to_node + "\"}";
}

Result<ShardMap::ShardMove> ParseMoveRecord(const std::string& json) {
  ShardMap::ShardMove move;
  if (!ExtractU32(json, "shard", &move.shard) ||
      !ExtractStr(json, "from", &move.from_node) ||
      !ExtractStr(json, "to", &move.to_node)) {
    return Status::Corruption("malformed pending move record: " + json);
  }
  return move;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t UnixMsNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Jain fairness index over per-tenant mean latencies: (Σx)² / (n·Σx²),
/// 1.0 = perfectly fair. Matches the bench harness computation.
double JainFairness(const std::map<std::string, std::vector<double>>&
                        latency_by_tenant) {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t n = 0;
  for (const auto& [tenant, latencies] : latency_by_tenant) {
    if (latencies.empty()) continue;
    double total = 0.0;
    for (double v : latencies) total += v;
    double mean = total / static_cast<double>(latencies.size());
    sum += mean;
    sum_sq += mean * mean;
    ++n;
  }
  if (n == 0 || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

}  // namespace

ShardedCluster::ShardedCluster(oss::ObjectStore* store,
                               ShardedClusterOptions options, ShardMap map)
    : store_(store), options_(std::move(options)) {
  MutexLock lock(map_mu_);
  current_map_ = std::move(map);
}

std::string ShardedCluster::MapKey(bool target) const {
  return options_.root + (target ? "/map/target" : "/map/current");
}

std::string ShardedCluster::PendingMovePrefix() const {
  return options_.root + "/pending/move-";
}

std::string ShardedCluster::PendingMoveKey(uint32_t shard) const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%05u", shard);
  return PendingMovePrefix() + buf;
}

std::string ShardedCluster::TenantMarkerPrefix() const {
  return options_.root + "/tenants/";
}

std::string ShardedCluster::StoreRoot(std::string_view node,
                                      std::string_view tenant,
                                      uint32_t shard) const {
  return options_.root + "/n/" + std::string(node) + "/" +
         TenantPrefix(tenant) + "/s/" + std::to_string(shard);
}

Result<std::unique_ptr<ShardedCluster>> ShardedCluster::Create(
    oss::ObjectStore* store, ShardedClusterOptions options,
    std::vector<std::string> initial_nodes) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::string map_key = options.root + "/map/current";
  auto exists = store->Exists(map_key);
  if (!exists.ok()) return exists.status();
  if (exists.value()) {
    return Status::AlreadyExists("a cluster already exists under '" +
                                 options.root + "'");
  }
  ShardMap map(options.num_shards, options.vnodes_per_node,
               std::move(initial_nodes));
  auto saved = map.Save(store, map_key);
  if (!saved.ok()) return saved;
  return std::unique_ptr<ShardedCluster>(new ShardedCluster(
      store, std::move(options), std::move(map)));  // lint:allow-new (private ctor)
}

Result<std::unique_ptr<ShardedCluster>> ShardedCluster::Open(
    oss::ObjectStore* store, ShardedClusterOptions options) {
  auto map = ShardMap::Load(store, options.root + "/map/current");
  if (!map.ok()) {
    if (map.status().IsNotFound()) {
      return Status::NotFound("no cluster under '" + options.root +
                              "'; run `slim cluster init` first");
    }
    return map.status();
  }
  return std::unique_ptr<ShardedCluster>(new ShardedCluster(
      store, std::move(options),
      std::move(map).value()));  // lint:allow-new (private ctor)
}

Status ShardedCluster::RegisterTenant(const std::string& tenant) {
  auto valid = ValidateTenantId(tenant);
  if (!valid.ok()) return valid;
  {
    MutexLock lock(stores_mu_);
    if (registered_tenants_.count(tenant) > 0) return Status::Ok();
  }
  std::string key = TenantMarkerPrefix() + tenant;
  auto exists = store_->Exists(key);
  if (!exists.ok()) return exists.status();
  if (!exists.value()) {
    auto put = store_->Put(key, tenant);
    if (!put.ok()) return put;
  }
  MutexLock lock(stores_mu_);
  registered_tenants_.insert(tenant);
  return Status::Ok();
}

Result<std::vector<std::string>> ShardedCluster::ListTenants() {
  auto keys = store_->List(TenantMarkerPrefix());
  if (!keys.ok()) return keys.status();
  std::vector<std::string> tenants;
  tenants.reserve(keys.value().size());
  for (const auto& key : keys.value()) {
    tenants.push_back(key.substr(TenantMarkerPrefix().size()));
  }
  return tenants;
}

Status ShardedCluster::Join(const std::string& node_id) {
  auto staged = store_->Exists(MapKey(/*target=*/true));
  if (!staged.ok()) return staged.status();
  if (staged.value()) {
    return Status::FailedPrecondition(
        "a membership change is already staged; run `slim cluster "
        "rebalance` to complete it first");
  }
  ShardMap target;
  {
    MutexLock lock(map_mu_);
    target = current_map_;
  }
  auto added = target.AddNode(node_id);
  if (!added.ok()) return added;
  return target.Save(store_, MapKey(/*target=*/true));
}

Status ShardedCluster::Leave(const std::string& node_id) {
  auto staged = store_->Exists(MapKey(/*target=*/true));
  if (!staged.ok()) return staged.status();
  if (staged.value()) {
    return Status::FailedPrecondition(
        "a membership change is already staged; run `slim cluster "
        "rebalance` to complete it first");
  }
  ShardMap target;
  {
    MutexLock lock(map_mu_);
    target = current_map_;
  }
  auto removed = target.RemoveNode(node_id);
  if (!removed.ok()) return removed;
  return target.Save(store_, MapKey(/*target=*/true));
}

Status ShardedCluster::ExecuteMove(const ShardMap::ShardMove& move,
                                   const std::vector<std::string>& tenants,
                                   size_t inject_crash_after_objects,
                                   RebalanceStats* stats,
                                   obs::Gauge* bytes_moved_gauge) {
  auto throttle_start = std::chrono::steady_clock::now();
  uint64_t throttled_bytes = 0;
  for (const auto& tenant : tenants) {
    std::string src_root =
        StoreRoot(move.from_node, tenant, move.shard) + "/";
    std::string dst_root = StoreRoot(move.to_node, tenant, move.shard) + "/";
    auto keys = store_->List(src_root);
    if (!keys.ok()) return keys.status();
    // Copy phase first, across the whole prefix; sources are deleted
    // only below, after every object has landed, so a crash anywhere in
    // here leaves the source complete and the redo idempotent.
    for (const auto& key : keys.value()) {
      if (inject_crash_after_objects > 0 &&
          stats->objects_copied >= inject_crash_after_objects) {
        return Status::Internal(
            "injected rebalance crash after " +
            std::to_string(stats->objects_copied) + " objects");
      }
      // A rebalance copies bytes verbatim between prefixes; any CRC
      // footer the durability layer added moves with them, and scrub
      // remains the integrity authority. Verifying here would reject
      // non-footered control objects (maps, pending records).
      auto value = store_->Get(key);  // lint:allow-unverified-read
      if (!value.ok()) return value.status();
      uint64_t size = value.value().size();
      auto put =
          store_->Put(dst_root + key.substr(src_root.size()),
                      std::move(value).value());
      if (!put.ok()) return put;
      ++stats->objects_copied;
      stats->bytes_copied += size;
      bytes_moved_gauge->Add(static_cast<int64_t>(size));
      throttled_bytes += size;
      if (options_.rebalance_bytes_per_sec > 0) {
        double target_elapsed =
            static_cast<double>(throttled_bytes) /
            static_cast<double>(options_.rebalance_bytes_per_sec);
        double actual = SecondsSince(throttle_start);
        if (actual < target_elapsed) {
          auto sleep_ms = static_cast<int64_t>(
              (target_elapsed - actual) * 1000.0);
          if (sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleep_ms));
            stats->throttle_sleep_ms +=
                static_cast<uint64_t>(sleep_ms);
          }
        }
      }
    }
    for (const auto& key : keys.value()) {
      auto del = store_->Delete(key);  // Idempotent on redo.
      if (!del.ok()) return del;
    }
  }
  return Status::Ok();
}

Result<RebalanceStats> ShardedCluster::Rebalance(
    size_t inject_crash_after_objects) {
  RebalanceStats stats;
  auto tenants = ListTenants();
  if (!tenants.ok()) return tenants.status();

  auto pending = store_->List(PendingMovePrefix());
  if (!pending.ok()) return pending.status();
  stats.resumed = !pending.value().empty();

  auto target = ShardMap::Load(store_, MapKey(/*target=*/true));
  if (!target.ok() && !target.status().IsNotFound()) {
    return target.status();
  }

  std::vector<ShardMap::ShardMove> moves;
  if (target.ok()) {
    ShardMap current;
    {
      MutexLock lock(map_mu_);
      current = current_map_;
    }
    if (target.value().version() > current.version()) {
      auto delta = ShardMap::Delta(current, target.value());
      if (!delta.ok()) return delta.status();
      moves = std::move(delta).value();
      // Durable worklist BEFORE any data moves: a crash between here
      // and the map flip resumes from these records (plus the still-
      // present target map).
      for (const auto& move : moves) {
        auto put = store_->Put(PendingMoveKey(move.shard),
                               MoveRecordJson(move));
        if (!put.ok()) return put;
      }
    }
    // target.version <= current.version: the flip already happened and
    // we crashed before cleanup; fall through to drain leftovers.
  }
  if (moves.empty() && !pending.value().empty()) {
    // Crash cut after the map flip (or a fully-written worklist whose
    // target content matches current): finish the journaled moves.
    for (const auto& key : pending.value()) {
      // Move records are structurally parse-validated just below.
      auto record = store_->Get(key);  // lint:allow-unverified-read
      if (!record.ok()) return record.status();
      auto move = ParseMoveRecord(record.value());
      if (!move.ok()) return move.status();
      moves.push_back(std::move(move).value());
    }
  }
  if (moves.empty() && !target.ok()) {
    return stats;  // Nothing staged, nothing pending.
  }

  // Rebalance progress as first-class gauges, so `slim top` and fleet
  // snapshots show bytes moved, throttle utilization, and an ETA while
  // a move is in flight. Resolved once here: each metric name has a
  // single declaration site.
  auto rebalance_start = std::chrono::steady_clock::now();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Gauge& bytes_moved_gauge = registry.gauge("cluster.rebalance.bytes_moved");
  obs::Gauge& moves_total_gauge = registry.gauge("cluster.rebalance.moves_total");
  obs::Gauge& moves_done_gauge = registry.gauge("cluster.rebalance.moves_done");
  obs::Gauge& throttle_gauge =
      registry.gauge("cluster.rebalance.throttle_util_pct");
  obs::Gauge& eta_gauge = registry.gauge("cluster.rebalance.eta_ms");
  bytes_moved_gauge.Set(0);
  moves_total_gauge.Set(static_cast<int64_t>(moves.size()));
  moves_done_gauge.Set(0);
  throttle_gauge.Set(0);
  eta_gauge.Set(0);

  for (const auto& move : moves) {
    stats.moved_shards.push_back(move.shard);
    auto executed = ExecuteMove(move, tenants.value(),
                                inject_crash_after_objects, &stats,
                                &bytes_moved_gauge);
    if (!executed.ok()) return executed;
    auto del = store_->Delete(PendingMoveKey(move.shard));
    if (!del.ok()) return del;
    ++stats.moves_completed;
    moves_done_gauge.Set(static_cast<int64_t>(stats.moves_completed));
    double elapsed_ms = SecondsSince(rebalance_start) * 1000.0;
    if (elapsed_ms > 0) {
      throttle_gauge.Set(std::lround(
          100.0 * static_cast<double>(stats.throttle_sleep_ms) / elapsed_ms));
    }
    double per_move_ms =
        elapsed_ms / static_cast<double>(stats.moves_completed);
    eta_gauge.Set(std::lround(
        per_move_ms *
        static_cast<double>(moves.size() - stats.moves_completed)));
    MaybePublishObs();
  }

  if (target.ok()) {
    auto flipped =
        target.value().Save(store_, MapKey(/*target=*/false));
    if (!flipped.ok()) return flipped;
    auto del = store_->Delete(MapKey(/*target=*/true));
    if (!del.ok()) return del;
    {
      MutexLock lock(map_mu_);
      current_map_ = std::move(target).value();
    }
  }
  // Owners changed: cached stores point at stale roots.
  DropNodeLocalState();
  return stats;
}

Result<core::SlimStore*> ShardedCluster::StoreFor(const std::string& tenant,
                                                  uint32_t shard) {
  std::string owner;
  {
    MutexLock lock(map_mu_);
    auto resolved = current_map_.OwnerOfShard(shard);
    if (!resolved.ok()) return resolved.status();
    owner = std::move(resolved).value();
  }
  std::string cache_key = tenant + '\x1f' + std::to_string(shard);
  // Single-flight build. Construction MUST be exclusive per key: two
  // concurrent Rebuild()s over one prefix race each other, and worse, a
  // Rebuild() racing an in-flight backup on the same prefix sweeps the
  // backup's not-yet-committed containers as torn-backup debris — the
  // recipe then commits pointing at deleted objects. Losers therefore
  // wait on a CondVar (GnodeGate style) instead of building a second
  // store; no lock is held across the Rebuild I/O.
  {
    MutexLock lock(stores_mu_);
    for (;;) {
      StoreSlot& slot = stores_[cache_key];
      if (slot.store != nullptr) return slot.store.get();
      if (!slot.building) {
        slot.building = true;
        break;
      }
      store_built_.Wait(stores_mu_);
    }
  }
  core::SlimStoreOptions store_options = options_.store;
  store_options.root = StoreRoot(owner, tenant, shard);
  store_options.tenant = tenant;
  auto built = std::make_unique<core::SlimStore>(store_, store_options);
  auto rebuilt = built->Rebuild();
  MutexLock lock(stores_mu_);
  StoreSlot& slot = stores_[cache_key];
  slot.building = false;
  store_built_.NotifyAll();
  if (!rebuilt.ok()) return rebuilt;  // A waiter retries the build.
  slot.store = std::move(built);
  return slot.store.get();
}

Result<lnode::BackupStats> ShardedCluster::Backup(const std::string& tenant,
                                                  const std::string& file_id,
                                                  std::string_view data) {
  auto registered = RegisterTenant(tenant);
  if (!registered.ok()) return registered;
  uint32_t shard;
  {
    MutexLock lock(map_mu_);
    shard = current_map_.ShardOfFile(tenant, file_id);
  }
  auto store = StoreFor(tenant, shard);
  if (!store.ok()) return store.status();
  auto start = std::chrono::steady_clock::now();
  auto stats = store.value()->Backup(file_id, data);
  RecordOpLatency("backup", tenant, SecondsSince(start));
  MaybePublishObs();
  return stats;
}

Result<std::string> ShardedCluster::Restore(const std::string& tenant,
                                            const std::string& file_id,
                                            uint64_t version,
                                            lnode::RestoreStats* stats) {
  auto valid = ValidateTenantId(tenant);
  if (!valid.ok()) return valid;
  uint32_t shard;
  {
    MutexLock lock(map_mu_);
    shard = current_map_.ShardOfFile(tenant, file_id);
  }
  auto store = StoreFor(tenant, shard);
  if (!store.ok()) return store.status();
  auto start = std::chrono::steady_clock::now();
  auto restored = store.value()->Restore(file_id, version, stats);
  RecordOpLatency("restore", tenant, SecondsSince(start));
  MaybePublishObs();
  return restored;
}

void ShardedCluster::RecordOpLatency(const char* op_class,
                                     const std::string& tenant,
                                     double seconds) {
  double ms = seconds * 1000.0;
  auto us = static_cast<uint64_t>(seconds * 1e6);
  obs::MetricsRegistry::Get()
      .histogram(obs::LabeledName("cluster.op.latency_us",
                                  {{"op", op_class}, {"tenant", tenant}}))
      .Record(us);
  if (const obs::SloObjective* objective = obs::FindDefaultSlo(op_class)) {
    obs::RecordSloSample(*objective, tenant, ms);
  }
}

Status ShardedCluster::PublishObsSnapshot() {
  if (options_.node_id.empty()) {
    return Status::FailedPrecondition(
        "set ShardedClusterOptions::node_id to publish metric snapshots");
  }
  uint64_t now = UnixMsNow();
  // Capture (brief registry lock), then publish with no lock held.
  obs::Snapshot snap = obs::CaptureSnapshot(options_.node_id, now);
  Status published = PublishSnapshot(store_, options_.root, snap);
  if (!published.ok()) {
    obs::MetricsRegistry::Get().counter("cluster.obs.publish_errors").Inc();
    return published;
  }
  obs_series_.Push(std::move(snap));
  last_publish_ms_.store(now, std::memory_order_relaxed);
  return Status::Ok();
}

void ShardedCluster::MaybePublishObs() {
  if (options_.node_id.empty()) return;
  uint64_t now = UnixMsNow();
  uint64_t last = last_publish_ms_.load(std::memory_order_relaxed);
  if (now - last < options_.obs_publish_interval_ms) return;
  // Claim the slot so concurrent wave jobs don't all publish at once; a
  // failed publish leaves the claim in place until the next interval
  // (publishing is best-effort, not exactly-once).
  if (!last_publish_ms_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
    return;
  }
  PublishObsSnapshot().IgnoreError();
}

Result<WaveStats> ShardedCluster::RunWave(const std::vector<WaveJob>& jobs) {
  size_t num_nodes;
  {
    MutexLock lock(map_mu_);
    num_nodes = current_map_.nodes().size();
  }
  if (num_nodes == 0) {
    return Status::FailedPrecondition("cluster has no nodes");
  }
  for (const auto& job : jobs) {
    auto registered = RegisterTenant(job.tenant);
    if (!registered.ok()) return registered;
  }

  size_t slots = num_nodes * options_.backup_jobs_per_node;
  TenantFairScheduler scheduler(TenantFairScheduler::Options{
      slots, options_.per_tenant_quota});
  ThreadPool pool(slots);

  struct JobResult {
    Status status;
    uint64_t logical_bytes = 0;
    uint64_t new_bytes = 0;
    uint64_t dup_bytes = 0;
    double seconds = 0;
  };
  // One pre-sized slot per job: each worker writes only its own index,
  // and the scheduler's join provides the happens-before for the read.
  std::vector<JobResult> results(jobs.size());

  auto wave_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const WaveJob& job = jobs[i];
    // file_id as the sequence key: one file's backup/restore chain runs
    // serially in wave order, so versions assign race-free and restores
    // see the versions enqueued before them.
    scheduler.Enqueue(job.tenant, [this, &job, &results, i]() {
      auto start = std::chrono::steady_clock::now();
      JobResult& slot = results[i];
      if (job.data != nullptr) {
        auto stats = Backup(job.tenant, job.file_id, *job.data);
        if (stats.ok()) {
          slot.logical_bytes = stats.value().logical_bytes;
          slot.new_bytes = stats.value().new_bytes;
          slot.dup_bytes = stats.value().dup_bytes;
        } else {
          slot.status = stats.status();
        }
      } else {
        auto bytes = Restore(job.tenant, job.file_id, job.version);
        if (bytes.ok()) {
          slot.logical_bytes = bytes.value().size();
        } else {
          slot.status = bytes.status();
        }
      }
      slot.seconds = SecondsSince(start);
    }, job.file_id);
  }
  WaveStats wave;
  wave.scheduler = scheduler.RunAll(&pool);
  pool.Shutdown();
  wave.elapsed_seconds = SecondsSince(wave_start);
  wave.jobs = jobs.size();
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!results[i].status.ok()) {
      ++wave.failures;
      continue;
    }
    wave.logical_bytes += results[i].logical_bytes;
    wave.new_bytes += results[i].new_bytes;
    wave.dup_bytes += results[i].dup_bytes;
    wave.latency_by_tenant[jobs[i].tenant].push_back(results[i].seconds);
  }
  // The scheduler's fairness becomes a live gauge (milli-units: 1000 =
  // perfectly fair) so fleet snapshots carry it.
  obs::MetricsRegistry::Get()
      .gauge("cluster.fairness.jain_milli")
      .Set(std::lround(JainFairness(wave.latency_by_tenant) * 1000.0));
  MaybePublishObs();
  return wave;
}

Result<ShardedCluster::ClusterGNodeStats> ShardedCluster::RunGNodeCycles() {
  auto tenants = ListTenants();
  if (!tenants.ok()) return tenants.status();
  uint32_t num_shards;
  {
    MutexLock lock(map_mu_);
    num_shards = current_map_.num_shards();
  }
  ClusterGNodeStats stats;
  // Shard-major: every tenant gets shard k serviced before any tenant
  // gets shard k+1 — coarse round-robin fairness across tenants.
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    for (const auto& tenant : tenants.value()) {
      auto store = StoreFor(tenant, shard);
      if (!store.ok()) return store.status();
      auto cycle = store.value()->RunGNodeCycle();
      if (!cycle.ok()) return cycle.status();
      ++stats.stores_processed;
      stats.backups_processed += cycle.value().backups_processed;
    }
  }
  return stats;
}

Result<ClusterStatus> ShardedCluster::GetStatus() {
  ClusterStatus status;
  ShardMap map;
  {
    MutexLock lock(map_mu_);
    map = current_map_;
  }
  status.map_version = map.version();
  status.num_shards = map.num_shards();
  status.nodes = map.nodes();
  for (uint32_t shard = 0; shard < map.num_shards(); ++shard) {
    auto owner = map.OwnerOfShard(shard);
    if (!owner.ok()) return owner.status();
    status.shards_by_node[owner.value()].push_back(shard);
  }
  auto tenants = ListTenants();
  if (!tenants.ok()) return tenants.status();
  status.tenants = std::move(tenants).value();
  auto target = ShardMap::Load(store_, MapKey(/*target=*/true));
  if (target.ok()) {
    status.rebalance_pending = true;
    status.target_map_version = target.value().version();
  } else if (!target.status().IsNotFound()) {
    return target.status();
  }
  return status;
}

void ShardedCluster::DropNodeLocalState() {
  MutexLock lock(stores_mu_);
  stores_.clear();
  registered_tenants_.clear();
}

Status ShardedCluster::EnsureStoresOpen() {
  auto tenants = ListTenants();
  if (!tenants.ok()) return tenants.status();
  uint32_t num_shards;
  {
    MutexLock lock(map_mu_);
    num_shards = current_map_.num_shards();
  }
  for (const auto& tenant : tenants.value()) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      auto store = StoreFor(tenant, shard);
      if (!store.ok()) return store.status();
    }
  }
  return Status::Ok();
}

}  // namespace slim::cluster
