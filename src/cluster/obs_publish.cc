#include "cluster/obs_publish.h"

#include <utility>

namespace slim::cluster {

namespace {

std::string ObsNodePrefix(const std::string& root) {
  return root + "/obs#/node/";
}

}  // namespace

std::string ObsSnapshotKey(const std::string& root, const std::string& node) {
  return ObsNodePrefix(root) + node;
}

Status PublishSnapshot(oss::ObjectStore* store, const std::string& root,
                       const obs::Snapshot& snap) {
  if (snap.node.empty() ||
      snap.node.find_first_of("/#") != std::string::npos) {
    return Status::InvalidArgument(
        "snapshot node id must be non-empty and free of '/' and '#': " +
        snap.node);
  }
  return store->Put(ObsSnapshotKey(root, snap.node), obs::SnapshotToJson(snap));
}

Result<FleetView> FetchFleetSnapshot(oss::ObjectStore* store,
                                     const std::string& root) {
  auto keys = store->List(ObsNodePrefix(root));
  if (!keys.ok()) return keys.status();
  FleetView view;
  for (const std::string& key : keys.value()) {
    // Snapshots are JSON blobs without the CRC32C container footer; a
    // torn or corrupt one fails SnapshotFromJson and is counted
    // malformed below. lint:allow-unverified-read
    auto body = store->Get(key);
    if (!body.ok()) {
      // Lost a race with a concurrent republish; a snapshot is a cache
      // of node state, so skip rather than fail the whole fleet fetch.
      ++view.malformed;
      continue;
    }
    auto snap = obs::SnapshotFromJson(body.value());
    if (!snap.ok()) {
      ++view.malformed;
      continue;
    }
    obs::MergeInto(&view.merged, snap.value());
    view.per_node.push_back(std::move(snap).value());
  }
  return view;
}

}  // namespace slim::cluster
