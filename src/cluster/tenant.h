#ifndef SLIMSTORE_CLUSTER_TENANT_H_
#define SLIMSTORE_CLUSTER_TENANT_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace slim::cluster {

/// Tenant identity. A tenant is a namespace on the shared logical OSS:
/// every object a tenant's backups create lives under a key prefix
/// derived from its id, so two tenants can never observe each other's
/// data through any store operation (isolation is structural, not
/// advisory). The id doubles as the job-scope tenant tag, so per-tenant
/// cost rollups (`slim jobs --by-tenant`) need no extra plumbing.
struct Tenant {
  std::string id;
};

/// Validates a tenant id for use in OSS key prefixes. Rejected:
///   - empty ids (the untagged pseudo-tenant is spelled by *omitting*
///     --tenant, never by an empty string);
///   - ids containing '/' (a slash would fake deeper namespace
///     components and could collide with another tenant's subtree);
///   - ids containing "#tmp" (DiskObjectStore stages atomic writes
///     under a '#tmp' suffix; a tenant id embedding it could alias the
///     staging namespace);
///   - control characters (keys must stay printable in logs and CLI
///     output).
/// Returns InvalidArgument with a human-readable reason.
Status ValidateTenantId(std::string_view id);

/// Key-prefix component for a tenant: "t/<id>". Callers append "/".
std::string TenantPrefix(std::string_view tenant_id);

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_TENANT_H_
