#ifndef SLIMSTORE_CLUSTER_NAMESPACE_STORE_H_
#define SLIMSTORE_CLUSTER_NAMESPACE_STORE_H_

#include <string>
#include <vector>

#include "oss/object_store.h"

namespace slim::cluster {

/// A prefix-scoped view of a shared ObjectStore: every key the caller
/// uses is transparently rooted under `namespace_prefix`, and List
/// strips the prefix back off, so the view is a complete, conformant
/// ObjectStore of its own. Two views with different prefixes over the
/// same base can never observe each other's objects — this is the
/// mechanism behind per-tenant namespace isolation on one logical
/// store (DESIGN.md §8).
///
/// The prefix is joined with '/', so "t/acme" scopes keys under
/// "t/acme/...". A sibling tenant "t/acme2" is NOT a sub-namespace:
/// the joined separator keeps "t/acme/..." and "t/acme2/..." disjoint.
class NamespacedObjectStore : public oss::ObjectStore {
 public:
  /// `base` must outlive this object. `namespace_prefix` must be
  /// non-empty and must not end in '/'.
  NamespacedObjectStore(oss::ObjectStore* base, std::string namespace_prefix);

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  const std::string& namespace_prefix() const { return prefix_; }

 private:
  std::string Scoped(const std::string& key) const { return prefix_ + key; }

  oss::ObjectStore* base_;
  std::string prefix_;  // "<namespace_prefix>/" (separator included).
};

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_NAMESPACE_STORE_H_
