#ifndef SLIMSTORE_CLUSTER_SCHEDULER_H_
#define SLIMSTORE_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace slim::cluster {

/// G-node style admission scheduler for a multi-tenant job wave
/// (DESIGN.md §8). Jobs are enqueued tagged with their tenant; RunAll
/// drains them through a ThreadPool under two admission constraints:
///
///   - a cluster-wide in-flight cap (`total_slots`, modeling the
///     aggregate L-node job slots), and
///   - a per-tenant in-flight quota (`per_tenant_quota`), so one whale
///     tenant cannot occupy every slot while small tenants starve.
///
/// Tenants are served round-robin in first-arrival order: each
/// dispatch scans from a rotating cursor for the next tenant that has
/// pending work and a free quota slot. With equal supply this
/// converges to equal shares; when a tenant is idle its share is
/// redistributed to the others (work-conserving).
///
/// Jobs may carry a *sequence key*: jobs of one tenant sharing a key
/// never run concurrently and always run in enqueue order (dispatch
/// skips a job whose key is in flight and takes the next eligible
/// one). A file's backup chain uses its file id as the key, so version
/// numbers are assigned race-free and a restore enqueued after the
/// backup that wrote its version is guaranteed to see it committed.
///
/// The scheduler lock ("cluster.scheduler") guards only queue and
/// counter state — jobs themselves always run with no scheduler lock
/// held, so job bodies may freely block on OSS I/O.
class TenantFairScheduler {
 public:
  struct Options {
    /// Aggregate concurrent jobs across all tenants.
    size_t total_slots = 8;
    /// Max concurrent jobs per tenant. 0 means "no per-tenant cap".
    size_t per_tenant_quota = 4;
  };

  /// Per-wave fairness accounting, snapshotted by RunAll on return.
  struct Stats {
    uint64_t jobs_dispatched = 0;
    size_t max_total_in_flight = 0;
    /// Tenant of each job in dispatch order — lets tests assert the
    /// round-robin interleave rather than just terminal counts.
    std::vector<std::string> dispatch_order;
    std::map<std::string, size_t> dispatched_by_tenant;
    std::map<std::string, size_t> max_in_flight_by_tenant;
  };

  explicit TenantFairScheduler(Options options) : options_(options) {}

  /// Adds a job to `tenant`'s FIFO queue. An empty `sequence_key`
  /// means unconstrained; equal non-empty keys serialize (see class
  /// comment). Not legal while RunAll is draining.
  void Enqueue(const std::string& tenant, std::function<void()> job,
               const std::string& sequence_key = "") SLIM_EXCLUDES(mu_);

  /// Dispatches every enqueued job through `pool` under the admission
  /// constraints; blocks until all jobs have completed. Returns the
  /// wave's stats and resets them, so the scheduler is reusable for the
  /// next wave.
  Stats RunAll(ThreadPool* pool) SLIM_EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  struct QueuedJob {
    std::string sequence_key;  // Empty = unconstrained.
    std::function<void()> fn;
  };
  struct TenantQueue {
    std::string tenant;
    std::deque<QueuedJob> jobs;
    /// Non-empty sequence keys currently in flight for this tenant.
    std::set<std::string> keys_in_flight;
    size_t in_flight = 0;
    size_t max_in_flight = 0;
    size_t dispatched = 0;
  };

  /// Next dispatchable (tenant index, job index within its queue) at or
  /// after the round-robin cursor; {queues_.size(), 0} when nothing is
  /// admissible.
  std::pair<size_t, size_t> PickNext() SLIM_REQUIRES(mu_);

  Options options_;
  Mutex mu_{"cluster.scheduler"};
  CondVar state_cv_;  // Signals RunAll: a job finished.
  std::vector<TenantQueue> queues_ SLIM_GUARDED_BY(mu_);
  size_t rr_cursor_ SLIM_GUARDED_BY(mu_) = 0;
  size_t total_in_flight_ SLIM_GUARDED_BY(mu_) = 0;
  size_t pending_jobs_ SLIM_GUARDED_BY(mu_) = 0;
  Stats stats_ SLIM_GUARDED_BY(mu_);
};

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_SCHEDULER_H_
