#ifndef SLIMSTORE_CLUSTER_SHARD_MAP_H_
#define SLIMSTORE_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "oss/object_store.h"

namespace slim::cluster {

/// Versioned shard-to-node placement for the multi-tenant cluster
/// (DESIGN.md §8). Two-level scheme:
///
///   file  --(stable hash mod)-->  logical shard  --(ring)-->  node
///
/// The *logical shard count* is fixed at cluster creation: a file's
/// shard never changes, so a shard is the unit of data placement,
/// dedup domain (per tenant), and migration. The *ring* assigns shards
/// to nodes by consistent hashing with virtual nodes — each node
/// projects `vnodes_per_node` points onto a 64-bit ring (generalizing
/// PlacementPolicy's Mix64(Fnv1a64(key)) scheme), and a shard belongs
/// to the node owning the first ring point at or after the shard's
/// hash. Adding or removing a node therefore moves only the ring-delta:
/// a shard changes owner iff the membership change inserted or removed
/// the winning point for its hash, so joins pull ~S/(n+1) shards to
/// the new node and leaves scatter only the departing node's shards.
///
/// The map carries a monotonically increasing version; every membership
/// edit bumps it. Serialization is a small JSON object persisted on the
/// shared OSS, so every node (and a rebalance resumed after a crash)
/// agrees on placement by version number.
class ShardMap {
 public:
  ShardMap() = default;
  /// A fresh version-1 map. `node_ids` may be empty (no placements
  /// resolvable until a node joins).
  ShardMap(uint32_t num_shards, uint32_t vnodes_per_node,
           std::vector<std::string> node_ids);

  uint64_t version() const { return version_; }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t vnodes_per_node() const { return vnodes_per_node_; }
  const std::vector<std::string>& nodes() const { return nodes_; }
  bool HasNode(std::string_view node_id) const;

  /// Stable logical shard of a tenant's file. Independent of
  /// membership: depends only on (tenant, file_id, num_shards).
  uint32_t ShardOfFile(std::string_view tenant,
                       std::string_view file_id) const;

  /// Node owning a logical shard under this map's ring. Fails with
  /// FailedPrecondition when the map has no nodes.
  Result<std::string> OwnerOfShard(uint32_t shard) const;

  /// Membership edits: bump the version and rebuild the ring.
  /// AlreadyExists / NotFound on duplicate join or unknown leave;
  /// FailedPrecondition when removing the last node.
  Status AddNode(const std::string& node_id);
  Status RemoveNode(const std::string& node_id);

  /// One shard whose owner differs between two maps with identical
  /// shard counts.
  struct ShardMove {
    uint32_t shard = 0;
    std::string from_node;
    std::string to_node;
  };
  /// All owner changes from `from` to `to`. InvalidArgument when the
  /// maps disagree on num_shards (the shard count is immutable).
  static Result<std::vector<ShardMove>> Delta(const ShardMap& from,
                                              const ShardMap& to);

  std::string ToJson() const;
  static Result<ShardMap> FromJson(const std::string& json);

  Status Save(oss::ObjectStore* store, const std::string& key) const;
  static Result<ShardMap> Load(oss::ObjectStore* store,
                               const std::string& key);

 private:
  void BuildRing();

  uint64_t version_ = 0;
  uint32_t num_shards_ = 0;
  uint32_t vnodes_per_node_ = 0;
  std::vector<std::string> nodes_;  // Sorted, unique.
  /// (ring point, node index) sorted by point; rebuilt from nodes_.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_SHARD_MAP_H_
