#ifndef SLIMSTORE_CLUSTER_SHARDED_CLUSTER_H_
#define SLIMSTORE_CLUSTER_SHARDED_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/scheduler.h"
#include "cluster/shard_map.h"
#include "cluster/tenant.h"
#include "common/mutex.h"
#include "core/slimstore.h"
#include "obs/timeseries.h"
#include "oss/object_store.h"

namespace slim::cluster {

/// Configuration for a sharded multi-tenant cluster.
struct ShardedClusterOptions {
  /// OSS key prefix under which ALL cluster state lives.
  std::string root = "cluster";
  /// Logical shard count, fixed at Create time (ignored by Open, which
  /// trusts the persisted map). More shards = finer rebalance granules
  /// and more parallelism, but smaller dedup domains.
  uint32_t num_shards = 8;
  uint32_t vnodes_per_node = 16;
  /// Aggregate concurrent jobs in a wave: jobs_per_node * |nodes|.
  size_t backup_jobs_per_node = 13;
  size_t restore_jobs_per_node = 8;
  /// Per-tenant in-flight cap in a wave (0 = uncapped).
  size_t per_tenant_quota = 6;
  /// Rebalance copy throttle in bytes/second (0 = unthrottled).
  uint64_t rebalance_bytes_per_sec = 0;
  /// Identity of THIS process in the fleet, used to tag and publish
  /// metric snapshots to <root>/obs#/node/<node_id>. Empty disables
  /// publishing (the default: embedded/test clusters opt in).
  std::string node_id;
  /// Minimum spacing between piggybacked snapshot publishes (operations
  /// call MaybePublishObs, which is a no-op until this much time has
  /// passed since the last publish). 0 = publish on every operation.
  uint64_t obs_publish_interval_ms = 2000;
  /// Template for every per-(tenant, shard) SlimStore; `root` and
  /// `tenant` are overridden per store.
  core::SlimStoreOptions store;
};

/// Result of one rebalance run (possibly a resumed one).
struct RebalanceStats {
  /// Shards whose owner differs between the current and target maps.
  std::vector<uint32_t> moved_shards;
  size_t moves_completed = 0;
  /// Objects copied source-prefix -> destination-prefix. The ring-delta
  /// property is asserted against this: it must equal the object count
  /// under the MOVED shards only, never the whole keyspace.
  size_t objects_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t throttle_sleep_ms = 0;
  /// True when this run found pending move records from an interrupted
  /// earlier run (crash-cut resume path).
  bool resumed = false;
};

/// One job in a mixed multi-tenant wave.
struct WaveJob {
  std::string tenant;
  std::string file_id;
  /// Backup payload; null marks a restore job (of `version`).
  const std::string* data = nullptr;
  uint64_t version = 0;
};

/// Aggregate result of a scheduler-driven wave.
struct WaveStats {
  size_t jobs = 0;
  size_t failures = 0;
  uint64_t logical_bytes = 0;
  uint64_t new_bytes = 0;
  uint64_t dup_bytes = 0;
  double elapsed_seconds = 0;
  /// Per-tenant per-job wall latencies (seconds), for p50/p99.
  std::map<std::string, std::vector<double>> latency_by_tenant;
  TenantFairScheduler::Stats scheduler;

  double AggregateThroughputMBps() const {
    return elapsed_seconds <= 0
               ? 0.0
               : (static_cast<double>(logical_bytes) / (1024.0 * 1024.0)) /
                     elapsed_seconds;
  }
};

/// Point-in-time cluster summary (backs `slim cluster status`).
struct ClusterStatus {
  uint64_t map_version = 0;
  uint32_t num_shards = 0;
  std::vector<std::string> nodes;
  /// node id -> shards currently owned.
  std::map<std::string, std::vector<uint32_t>> shards_by_node;
  std::vector<std::string> tenants;
  /// A target map exists: membership changed, rebalance not yet run to
  /// completion.
  bool rebalance_pending = false;
  uint64_t target_map_version = 0;
};

/// The tenancy + sharding subsystem (DESIGN.md §8): many tenants and
/// many L-nodes over ONE logical object store.
///
/// Layout — every (tenant, shard) pair is a complete, independent
/// SlimStore rooted at
///
///     <root>/n/<owner-node>/t/<tenant>/s/<shard>
///
/// so tenant isolation is structural (disjoint key prefixes; see
/// NamespacedObjectStore for the conformance-tested mechanism), the
/// dedup domain is (tenant, shard), and moving a shard between nodes is
/// a prefix copy. Control state lives beside the data:
///
///     <root>/map/current        committed ShardMap (JSON)
///     <root>/map/target         in-progress membership change, if any
///     <root>/pending/move-NNNN  durable rebalance worklist records
///     <root>/tenants/<tenant>   tenant registry markers
///
/// Membership changes are two-phase: Join/Leave only write a *target*
/// map; Rebalance copies exactly the ring-delta shards' prefixes,
/// journaling each move in a pending record before touching data, then
/// flips current = target. Every step is idempotent (overwrite-copy,
/// idempotent deletes), so a crash at ANY cut resumes by re-running
/// Rebalance — mirroring the backup pipeline's pending-record +
/// Rebuild() contract.
///
/// Per-(tenant, shard) SlimStores are opened lazily via Rebuild() (the
/// rebuildable-state contract: no checkpoint needed, OSS is the truth)
/// and cached; DropNodeLocalState() simulates killing an L-node's
/// process memory, after which the next touch rebuilds from OSS.
class ShardedCluster {
 public:
  /// Initializes a fresh cluster on `store`: writes the version-1 map
  /// with `initial_nodes`. Fails with AlreadyExists when a map already
  /// lives under options.root.
  static Result<std::unique_ptr<ShardedCluster>> Create(
      oss::ObjectStore* store, ShardedClusterOptions options,
      std::vector<std::string> initial_nodes);

  /// Attaches to an existing cluster: loads the committed map (shard
  /// count and membership come from it, not from `options`).
  static Result<std::unique_ptr<ShardedCluster>> Open(
      oss::ObjectStore* store, ShardedClusterOptions options);

  /// Validates and durably registers a tenant (idempotent).
  Status RegisterTenant(const std::string& tenant);
  Result<std::vector<std::string>> ListTenants();

  /// Stage a membership change: write a target map with the node added/
  /// removed. FailedPrecondition while another change awaits rebalance.
  Status Join(const std::string& node_id);
  Status Leave(const std::string& node_id);

  /// Executes (or resumes) the staged membership change, moving only
  /// the ring-delta shards. `inject_crash_after_objects` > 0 makes the
  /// run fail with Internal after copying that many objects — a
  /// deterministic crash cut for resume tests; production callers leave
  /// it 0. No-op (Ok, empty stats) when nothing is staged.
  Result<RebalanceStats> Rebalance(size_t inject_crash_after_objects = 0);

  /// Routed single-job entry points.
  Result<lnode::BackupStats> Backup(const std::string& tenant,
                                    const std::string& file_id,
                                    std::string_view data);
  Result<std::string> Restore(const std::string& tenant,
                              const std::string& file_id, uint64_t version,
                              lnode::RestoreStats* stats = nullptr);

  /// Runs a mixed wave through the tenant-fair scheduler on a pool of
  /// |nodes| * jobs_per_node slots.
  Result<WaveStats> RunWave(const std::vector<WaveJob>& jobs);

  /// Aggregate result of RunGNodeCycles across every (tenant, shard)
  /// store.
  struct ClusterGNodeStats {
    size_t stores_processed = 0;
    size_t backups_processed = 0;
  };

  /// Offline G-node pass over every open (tenant, shard) store,
  /// interleaved shard-major so each tenant gets one shard's worth of
  /// G-node service before any tenant gets its second — no tenant's
  /// garbage waits behind a whale.
  Result<ClusterGNodeStats> RunGNodeCycles();

  Result<ClusterStatus> GetStatus();

  /// Captures the process MetricsRegistry as a node-tagged snapshot,
  /// publishes it to <root>/obs#/node/<node_id>, and appends it to the
  /// local time-series ring. FailedPrecondition when options.node_id is
  /// empty. Capture holds the registry lock only while copying; the OSS
  /// write runs lock-free.
  Status PublishObsSnapshot();

  /// Local ring of this node's published snapshots (rate queries,
  /// multi-window burn rates).
  const obs::TimeSeries& obs_series() const { return obs_series_; }

  /// Drops every cached per-(tenant, shard) SlimStore — the moral
  /// equivalent of kill -9 on the L-node fleet. Subsequent operations
  /// Rebuild() from OSS.
  void DropNodeLocalState();

  /// Pre-opens the stores for every (registered tenant, shard) pair so
  /// timed benchmark sections exclude Rebuild cost.
  Status EnsureStoresOpen();

  const ShardedClusterOptions& options() const { return options_; }
  oss::ObjectStore* object_store() { return store_; }

  /// Root of the SlimStore holding (tenant, shard) data under `node`.
  std::string StoreRoot(std::string_view node, std::string_view tenant,
                        uint32_t shard) const;

 private:
  ShardedCluster(oss::ObjectStore* store, ShardedClusterOptions options,
                 ShardMap map);

  std::string MapKey(bool target) const;
  std::string PendingMovePrefix() const;
  std::string PendingMoveKey(uint32_t shard) const;
  std::string TenantMarkerPrefix() const;

  /// The SlimStore for (tenant, shard) under the CURRENT map, opened
  /// (Rebuild) and cached. Builds outside the cache lock with a
  /// double-checked insert, so no OSS call ever runs under
  /// "cluster.stores".
  Result<core::SlimStore*> StoreFor(const std::string& tenant,
                                    uint32_t shard);

  /// Copies then deletes one shard's prefix for every tenant, throttled
  /// to options_.rebalance_bytes_per_sec. Returns IoError-style failures
  /// through; `copied`/`stats` accumulate across calls.
  /// `bytes_moved_gauge` is resolved once by Rebalance (metric names
  /// are declared at a single site) and advanced per copied object so
  /// fleet snapshots see live progress.
  Status ExecuteMove(const ShardMap::ShardMove& move,
                     const std::vector<std::string>& tenants,
                     size_t inject_crash_after_objects,
                     RebalanceStats* stats, obs::Gauge* bytes_moved_gauge);

  /// Piggybacked publish: no-op unless node_id is set and
  /// obs_publish_interval_ms has elapsed since the last publish. One
  /// in-flight publisher at a time; publish failures only bump
  /// cluster.obs.publish_errors (metrics are a cache of node state, so
  /// an operation never fails because its snapshot didn't ship).
  void MaybePublishObs();

  /// Wraps one routed Backup/Restore call with latency + SLO tracking.
  void RecordOpLatency(const char* op_class, const std::string& tenant,
                       double seconds);

  oss::ObjectStore* store_;
  ShardedClusterOptions options_;

  /// Unix-ms stamp of the last successful snapshot publish (0 = never).
  std::atomic<uint64_t> last_publish_ms_{0};
  obs::TimeSeries obs_series_;

  Mutex map_mu_{"cluster.shard_map"};
  ShardMap current_map_ SLIM_GUARDED_BY(map_mu_);

  Mutex stores_mu_{"cluster.stores"};
  /// Signaled whenever an in-flight store build finishes (either way).
  CondVar store_built_;
  /// `building` makes construction single-flight: exactly one thread
  /// runs Rebuild() for a key while the rest wait on `store_built_`. A
  /// second concurrent Rebuild() over the same prefix would sweep an
  /// in-flight backup's uncommitted containers as torn-backup debris.
  struct StoreSlot {
    bool building = false;
    std::unique_ptr<core::SlimStore> store;
  };
  /// Key: "<tenant>\x1f<shard>".
  std::map<std::string, StoreSlot> stores_ SLIM_GUARDED_BY(stores_mu_);
  /// Tenants whose durable registry marker is known written — saves an
  /// Exists round trip per job.
  std::set<std::string> registered_tenants_ SLIM_GUARDED_BY(stores_mu_);
};

}  // namespace slim::cluster

#endif  // SLIMSTORE_CLUSTER_SHARDED_CLUSTER_H_
