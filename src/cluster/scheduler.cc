#include "cluster/scheduler.h"

#include <algorithm>
#include <utility>

namespace slim::cluster {

void TenantFairScheduler::Enqueue(const std::string& tenant,
                                  std::function<void()> job,
                                  const std::string& sequence_key) {
  MutexLock lock(mu_);
  TenantQueue* queue = nullptr;
  for (auto& q : queues_) {
    if (q.tenant == tenant) {
      queue = &q;
      break;
    }
  }
  if (queue == nullptr) {
    queues_.push_back(TenantQueue{});
    queue = &queues_.back();
    queue->tenant = tenant;
  }
  queue->jobs.push_back(QueuedJob{sequence_key, std::move(job)});
  ++pending_jobs_;
}

std::pair<size_t, size_t> TenantFairScheduler::PickNext() {
  const size_t n = queues_.size();
  for (size_t step = 0; step < n; ++step) {
    size_t idx = (rr_cursor_ + step) % n;
    TenantQueue& q = queues_[idx];
    if (q.jobs.empty()) continue;
    if (options_.per_tenant_quota > 0 &&
        q.in_flight >= options_.per_tenant_quota) {
      continue;
    }
    // Earliest job whose sequence key is free. Two queued jobs with the
    // same key can both be eligible, but front-to-back scan picks the
    // earlier one, so equal keys always dispatch in enqueue order.
    for (size_t j = 0; j < q.jobs.size(); ++j) {
      const QueuedJob& job = q.jobs[j];
      if (job.sequence_key.empty() ||
          q.keys_in_flight.count(job.sequence_key) == 0) {
        return {idx, j};
      }
    }
  }
  return {n, 0};
}

TenantFairScheduler::Stats TenantFairScheduler::RunAll(ThreadPool* pool) {
  MutexLock lock(mu_);
  while (pending_jobs_ > 0 || total_in_flight_ > 0) {
    if (pending_jobs_ > 0 && total_in_flight_ < options_.total_slots) {
      auto [idx, job_idx] = PickNext();
      if (idx < queues_.size()) {
        TenantQueue& q = queues_[idx];
        QueuedJob job = std::move(q.jobs[job_idx]);
        q.jobs.erase(q.jobs.begin() +
                     static_cast<std::ptrdiff_t>(job_idx));
        --pending_jobs_;
        ++q.in_flight;
        q.max_in_flight = std::max(q.max_in_flight, q.in_flight);
        ++q.dispatched;
        if (!job.sequence_key.empty()) {
          q.keys_in_flight.insert(job.sequence_key);
        }
        ++total_in_flight_;
        stats_.max_total_in_flight =
            std::max(stats_.max_total_in_flight, total_in_flight_);
        ++stats_.jobs_dispatched;
        stats_.dispatch_order.push_back(q.tenant);
        // Advance past the tenant just served so the next dispatch
        // starts at its successor (strict round-robin).
        rr_cursor_ = (idx + 1) % queues_.size();
        std::string tenant = q.tenant;
        // The wrapper recaptures the lock only after the job body is
        // done, so jobs never run under "cluster.scheduler".
        pool->Submit([this, tenant = std::move(tenant),
                      key = job.sequence_key,
                      fn = std::move(job.fn)]() {
          fn();
          MutexLock done_lock(mu_);
          for (auto& q2 : queues_) {
            if (q2.tenant == tenant) {
              --q2.in_flight;
              if (!key.empty()) q2.keys_in_flight.erase(key);
              break;
            }
          }
          --total_in_flight_;
          state_cv_.NotifyAll();
        });
        continue;  // Try to fill the next free slot immediately.
      }
    }
    // No admissible job (all slots busy, every pending tenant at quota,
    // or every pending key in flight): wait for a completion.
    state_cv_.Wait(mu_);
  }
  Stats out = std::move(stats_);
  for (auto& q : queues_) {
    out.dispatched_by_tenant[q.tenant] = q.dispatched;
    out.max_in_flight_by_tenant[q.tenant] = q.max_in_flight;
  }
  stats_ = Stats{};
  queues_.clear();
  rr_cursor_ = 0;
  return out;
}

}  // namespace slim::cluster
