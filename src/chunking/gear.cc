#include "chunking/gear.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"

namespace slim::chunking {

namespace {

// Number of set bits for a cut mask targeting an average of 2^bits.
int AvgBits(size_t avg_size) {
  int bits = 0;
  while ((size_t{1} << (bits + 1)) <= avg_size) ++bits;
  return bits;
}

// Deterministically spreads `nbits` mask bits over positions [0, 63].
// Spread masks (as in FastCDC) decorrelate the cut condition from byte
// alignment; determinism keeps boundaries stable across runs.
uint64_t SpreadMask(int nbits, uint64_t seed) {
  nbits = std::clamp(nbits, 1, 62);
  Rng rng(seed);
  uint64_t mask = 0;
  int set = 0;
  while (set < nbits) {
    uint64_t bit = uint64_t{1} << rng.Uniform(64);
    if ((mask & bit) == 0) {
      mask |= bit;
      ++set;
    }
  }
  return mask;
}

std::array<uint64_t, 256> MakeGearTable() {
  std::array<uint64_t, 256> table;
  Rng rng(0x67656172u /* "gear" */);
  for (auto& v : table) v = rng.Next();
  return table;
}

}  // namespace

const std::array<uint64_t, 256>& GearTable() {
  static const std::array<uint64_t, 256>* table =  // lint:allow-new (leaky singleton)
      new std::array<uint64_t, 256>(MakeGearTable());
  return *table;
}

// ---------------------------------------------------------------------------
// GearChunker
// ---------------------------------------------------------------------------

GearChunker::GearChunker(const ChunkerParams& params) : params_(params) {
  SLIM_CHECK(params_.min_size >= 1);
  SLIM_CHECK(params_.min_size <= params_.avg_size);
  SLIM_CHECK(params_.avg_size <= params_.max_size);
  mask_ = SpreadMask(AvgBits(params_.avg_size), /*seed=*/0x9ea7);
}

size_t GearChunker::NextCut(const uint8_t* data, size_t len) const {
  if (len <= params_.min_size) return len;
  size_t limit = std::min(len, params_.max_size);
  uint64_t h = 0;
  // The hash is strictly windowed (64 bytes); bytes before
  // min_size - 64 can never influence a cut decision, so start there.
  size_t start = params_.min_size > 64 ? params_.min_size - 64 : 0;
  for (size_t i = start; i < params_.min_size; ++i) h = GearStep(h, data[i]);
  if (IsCut(h)) return params_.min_size;
  for (size_t pos = params_.min_size; pos < limit;) {
    h = GearStep(h, data[pos]);
    ++pos;
    if (IsCut(h)) return pos;
  }
  return limit;
}

bool GearChunker::VerifyCut(const uint8_t* data, size_t chunk_len) const {
  if (chunk_len < params_.min_size || chunk_len > params_.max_size) {
    return false;
  }
  if (chunk_len == params_.max_size) return true;
  uint64_t h = 0;
  size_t start = chunk_len > 64 ? chunk_len - 64 : 0;
  for (size_t i = start; i < chunk_len; ++i) h = GearStep(h, data[i]);
  return IsCut(h);
}

// ---------------------------------------------------------------------------
// FastCdcChunker
// ---------------------------------------------------------------------------

FastCdcChunker::FastCdcChunker(const ChunkerParams& params)
    : params_(params) {
  SLIM_CHECK(params_.min_size >= 1);
  SLIM_CHECK(params_.min_size <= params_.avg_size);
  SLIM_CHECK(params_.avg_size <= params_.max_size);
  int bits = AvgBits(params_.avg_size);
  mask_small_ = SpreadMask(bits + 2, /*seed=*/0xfcdc01);
  mask_large_ = SpreadMask(bits - 2, /*seed=*/0xfcdc02);
}

size_t FastCdcChunker::NextCut(const uint8_t* data, size_t len) const {
  if (len <= params_.min_size) return len;
  size_t limit = std::min(len, params_.max_size);
  size_t normal = std::min(params_.avg_size, limit);
  uint64_t h = 0;
  size_t pos = params_.min_size;
  // Normalized chunking: strict mask up to the normal (average) size...
  while (pos < normal) {
    h = GearStep(h, data[pos]);
    ++pos;
    if ((h & mask_small_) == 0) return pos;
  }
  // ...then a loose mask so oversized chunks terminate quickly.
  while (pos < limit) {
    h = GearStep(h, data[pos]);
    ++pos;
    if ((h & mask_large_) == 0) return pos;
  }
  return limit;
}

bool FastCdcChunker::VerifyCut(const uint8_t* data, size_t chunk_len) const {
  // FastCDC evaluates its first cut condition strictly after min_size
  // (the hash is empty at min_size itself), so min_size is not a
  // content-defined boundary.
  if (chunk_len <= params_.min_size || chunk_len > params_.max_size) {
    return false;
  }
  if (chunk_len == params_.max_size) return true;
  // Recompute the windowed hash exactly as the scan would see it: the
  // scan starts with h=0 at min_size, and any byte more than 64 steps
  // back has shifted entirely out of the 64-bit state.
  size_t start = params_.min_size;
  if (chunk_len > start + 64) start = chunk_len - 64;
  uint64_t h = 0;
  for (size_t i = start; i < chunk_len; ++i) h = GearStep(h, data[i]);
  uint64_t mask = chunk_len <= params_.avg_size ? mask_small_ : mask_large_;
  return (h & mask) == 0;
}

}  // namespace slim::chunking
