#ifndef SLIMSTORE_CHUNKING_GEAR_H_
#define SLIMSTORE_CHUNKING_GEAR_H_

#include <array>
#include <cstdint>

#include "chunking/chunker.h"

namespace slim::chunking {

/// The 256-entry random table shared by Gear and FastCDC. Generated
/// deterministically from a fixed seed so chunk boundaries are stable
/// across runs and machines.
const std::array<uint64_t, 256>& GearTable();

/// Gear hash step (XOR variant). With XOR instead of +, the hash state
/// after 64 steps depends only on the last 64 bytes, making the hash
/// strictly windowed — which VerifyCut (skip chunking) exploits.
inline uint64_t GearStep(uint64_t h, uint8_t byte) {
  return (h << 1) ^ GearTable()[byte];
}

/// Gear content-defined chunker (Xia et al., "Ddelta"): one shift + one
/// XOR + one table lookup per byte, far cheaper than Rabin.
class GearChunker : public Chunker {
 public:
  explicit GearChunker(const ChunkerParams& params);

  size_t NextCut(const uint8_t* data, size_t len) const override;
  bool VerifyCut(const uint8_t* data, size_t chunk_len) const override;
  const ChunkerParams& params() const override { return params_; }
  const char* name() const override { return "gear"; }
  size_t window_size() const override { return 64; }

 private:
  bool IsCut(uint64_t h) const { return (h & mask_) == 0; }

  ChunkerParams params_;
  uint64_t mask_;
};

/// FastCDC (Xia et al., ATC'16): Gear hash plus normalized chunking —
/// a harder mask before the target (normal) size and an easier mask
/// after it, which tightens the chunk-size distribution and lets the
/// scan skip the first min_size bytes entirely.
class FastCdcChunker : public Chunker {
 public:
  explicit FastCdcChunker(const ChunkerParams& params);

  size_t NextCut(const uint8_t* data, size_t len) const override;
  bool VerifyCut(const uint8_t* data, size_t chunk_len) const override;
  const ChunkerParams& params() const override { return params_; }
  const char* name() const override { return "fastcdc"; }
  size_t window_size() const override { return 64; }

 private:
  ChunkerParams params_;
  uint64_t mask_small_;  // Stricter: used before avg_size (normal size).
  uint64_t mask_large_;  // Looser: used from avg_size to max_size.
};

/// Fixed-size chunker: cuts every avg_size bytes. The boundary-shift
/// baseline (one inserted byte misaligns every later chunk).
class FixedChunker : public Chunker {
 public:
  explicit FixedChunker(const ChunkerParams& params) : params_(params) {}

  size_t NextCut(const uint8_t* /*data*/, size_t len) const override {
    return std::min(len, params_.avg_size);
  }
  bool VerifyCut(const uint8_t* /*data*/, size_t chunk_len) const override {
    return chunk_len == params_.avg_size;
  }
  const ChunkerParams& params() const override { return params_; }
  const char* name() const override { return "fixed"; }
  size_t window_size() const override { return 0; }

 private:
  ChunkerParams params_;
};

}  // namespace slim::chunking

#endif  // SLIMSTORE_CHUNKING_GEAR_H_
