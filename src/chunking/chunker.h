#ifndef SLIMSTORE_CHUNKING_CHUNKER_H_
#define SLIMSTORE_CHUNKING_CHUNKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace slim::chunking {

/// Size policy for content-defined chunking. avg_size must be a power of
/// two (it defines the cut-condition mask).
struct ChunkerParams {
  size_t min_size = 2048;
  size_t avg_size = 8192;
  size_t max_size = 65536;

  /// Derives a conventional policy from an average size: min = avg/4,
  /// max = avg*8.
  static ChunkerParams FromAverage(size_t avg) {
    ChunkerParams p;
    p.avg_size = avg;
    p.min_size = avg / 4;
    p.max_size = avg * 8;
    return p;
  }
};

/// A chunking algorithm. Implementations are stateless between calls:
/// NextCut() considers `data` to be the start of a fresh chunk (rolling
/// hashes are re-seeded per chunk, as in LBFS/destor), which is what
/// makes boundaries reproducible across backup versions.
///
/// Instances are NOT thread-safe (they may keep internal scratch, e.g.
/// the Rabin window tables); create one chunker per job/thread.
///
/// VerifyCut() re-checks the cut condition at a *given* boundary by
/// hashing only the window that precedes it. This is the primitive
/// behind history-aware skip chunking (paper §IV-B): skipping |c_m^{n-1}|
/// bytes costs one window hash instead of a byte-by-byte scan. All our
/// rolling hashes are strictly windowed (Rabin by construction; Gear and
/// FastCDC use the XOR-gear variant whose state after W=64 bytes depends
/// only on those bytes), so VerifyCut is exact: it returns true iff a
/// full scan would cut there.
class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Length of the chunk starting at data[0]. Always in
  /// [1, min(len, max_size)]; returns len when len <= min_size or no cut
  /// point is found before the end of the buffer.
  virtual size_t NextCut(const uint8_t* data, size_t len) const = 0;

  /// True iff the cut condition holds at offset `chunk_len` of a chunk
  /// beginning at `data` (or chunk_len == max_size, a forced boundary).
  /// Note the deliberate weaker contract than "NextCut would return
  /// chunk_len": skip chunking does not check whether an *earlier* cut
  /// point exists — that is exactly the work it saves — and relies on the
  /// subsequent fingerprint comparison to confirm the duplicate (§IV-B).
  virtual bool VerifyCut(const uint8_t* data, size_t chunk_len) const = 0;

  virtual const ChunkerParams& params() const = 0;
  virtual const char* name() const = 0;

  /// Number of bytes the rolling hash inspects for one boundary test.
  virtual size_t window_size() const = 0;
};

/// One produced chunk: offset into the source buffer plus length.
struct RawChunk {
  size_t offset = 0;
  size_t size = 0;
};

/// Runs `chunker` over the whole buffer, returning consecutive chunks
/// covering every byte. Convenience for tests and baselines; the backup
/// pipeline drives NextCut incrementally so it can interleave skip
/// chunking.
std::vector<RawChunk> ChunkAll(const Chunker& chunker, std::string_view data);

enum class ChunkerType {
  kFixed,
  kRabin,
  kGear,
  kFastCdc,
};

const char* ChunkerTypeName(ChunkerType type);

/// Factory for all built-in chunkers.
std::unique_ptr<Chunker> CreateChunker(ChunkerType type,
                                       const ChunkerParams& params);

}  // namespace slim::chunking

#endif  // SLIMSTORE_CHUNKING_CHUNKER_H_
