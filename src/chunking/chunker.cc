#include "chunking/chunker.h"

#include "chunking/gear.h"
#include "chunking/rabin.h"
#include "common/macros.h"

namespace slim::chunking {

const char* ChunkerTypeName(ChunkerType type) {
  switch (type) {
    case ChunkerType::kFixed:
      return "fixed";
    case ChunkerType::kRabin:
      return "rabin";
    case ChunkerType::kGear:
      return "gear";
    case ChunkerType::kFastCdc:
      return "fastcdc";
  }
  return "unknown";
}

std::unique_ptr<Chunker> CreateChunker(ChunkerType type,
                                       const ChunkerParams& params) {
  switch (type) {
    case ChunkerType::kFixed:
      return std::make_unique<FixedChunker>(params);
    case ChunkerType::kRabin:
      return std::make_unique<RabinChunker>(params);
    case ChunkerType::kGear:
      return std::make_unique<GearChunker>(params);
    case ChunkerType::kFastCdc:
      return std::make_unique<FastCdcChunker>(params);
  }
  SLIM_CHECK(false);
  return nullptr;
}

}  // namespace slim::chunking
