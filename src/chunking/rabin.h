#ifndef SLIMSTORE_CHUNKING_RABIN_H_
#define SLIMSTORE_CHUNKING_RABIN_H_

#include <array>
#include <cstdint>

#include "chunking/chunker.h"

namespace slim::chunking {

/// Rabin fingerprinting over GF(2) polynomials (Broder/LBFS style).
/// Maintains the fingerprint of a sliding window of `window_size` bytes;
/// table-driven so advancing by one byte costs two table lookups.
class RabinWindow {
 public:
  /// Default irreducible polynomial (degree 53), the one used by LBFS.
  static constexpr uint64_t kDefaultPoly = 0x3DA3358B4DC173ULL;
  static constexpr size_t kDefaultWindowSize = 48;

  explicit RabinWindow(uint64_t poly = kDefaultPoly,
                       size_t window_size = kDefaultWindowSize);

  /// Clears the window to all-zero bytes.
  void Reset();

  /// Slides one byte in (and the oldest byte out); returns the new
  /// fingerprint.
  uint64_t Slide(uint8_t byte);

  uint64_t fingerprint() const { return fingerprint_; }
  size_t window_size() const { return window_size_; }

 private:
  uint64_t Append8(uint64_t p, uint8_t byte) const {
    return ((p << 8) | byte) ^ T_[p >> shift_];
  }

  uint64_t poly_;
  size_t window_size_;
  int shift_;
  std::array<uint64_t, 256> T_;  // High-byte reduction table.
  std::array<uint64_t, 256> U_;  // Outgoing-byte removal table.
  std::array<uint8_t, 256> buf_ = {};  // Circular window buffer.
  size_t bufpos_ = 0;
  uint64_t fingerprint_ = 0;
};

/// Content-defined chunker with the classic Rabin cut condition
/// (fingerprint & (avg-1)) == avg-1, bounded by min/max size. This is the
/// compute-heavy baseline of Fig 2 / Fig 5.
class RabinChunker : public Chunker {
 public:
  explicit RabinChunker(const ChunkerParams& params,
                        uint64_t poly = RabinWindow::kDefaultPoly,
                        size_t window_size = RabinWindow::kDefaultWindowSize);

  size_t NextCut(const uint8_t* data, size_t len) const override;
  bool VerifyCut(const uint8_t* data, size_t chunk_len) const override;
  const ChunkerParams& params() const override { return params_; }
  const char* name() const override { return "rabin"; }
  size_t window_size() const override { return window_size_; }

 private:
  bool IsCutFingerprint(uint64_t fp) const { return (fp & mask_) == mask_; }

  ChunkerParams params_;
  uint64_t poly_;
  size_t window_size_;
  uint64_t mask_;
  /// Reusable sliding window: the reduction tables are expensive to
  /// build, so they are computed once here and the window state is
  /// Reset() per call. This makes the chunker non-thread-safe, per the
  /// Chunker contract (one instance per job).
  mutable RabinWindow scratch_;
};

}  // namespace slim::chunking

#endif  // SLIMSTORE_CHUNKING_RABIN_H_
