#include "chunking/rabin.h"

#include "common/macros.h"

namespace slim::chunking {

namespace {

// Polynomial arithmetic over GF(2), after LBFS rabinpoly.c.

int Degree(uint64_t p) {
  SLIM_CHECK(p != 0);
  return 63 - __builtin_clzll(p);
}

// (nh * 2^64 + nl) mod d, all GF(2) polynomials.
uint64_t PolyMod(uint64_t nh, uint64_t nl, uint64_t d) {
  int k = Degree(d);
  d <<= (63 - k);
  if (nh) {
    if (nh & (uint64_t{1} << 63)) nh ^= d;
    for (int i = 62; i >= 0; --i) {
      if (nh & (uint64_t{1} << i)) {
        nh ^= d >> (63 - i);
        nl ^= d << (i + 1);
      }
    }
  }
  for (int i = 63; i >= k; --i) {
    if (nl & (uint64_t{1} << i)) nl ^= d >> (63 - i);
  }
  return nl;
}

// x * y as a 128-bit GF(2) product.
void PolyMult(uint64_t x, uint64_t y, uint64_t* ph, uint64_t* pl) {
  uint64_t hi = 0, lo = 0;
  if (x & 1) lo = y;
  for (int i = 1; i < 64; ++i) {
    if (x & (uint64_t{1} << i)) {
      hi ^= y >> (64 - i);
      lo ^= y << i;
    }
  }
  *ph = hi;
  *pl = lo;
}

uint64_t PolyMulMod(uint64_t x, uint64_t y, uint64_t d) {
  uint64_t h, l;
  PolyMult(x, y, &h, &l);
  return PolyMod(h, l, d);
}

}  // namespace

RabinWindow::RabinWindow(uint64_t poly, size_t window_size)
    : poly_(poly), window_size_(window_size) {
  SLIM_CHECK(window_size_ > 0 && window_size_ <= buf_.size());
  int k = Degree(poly_);
  shift_ = k - 8;
  SLIM_CHECK(shift_ > 0 && shift_ < 56);
  // T[j]: reduction of the high byte j about to shift past degree k. The
  // "| (j << k)" term cancels those high bits in Append8, keeping the
  // fingerprint below 2^k (LBFS rabinpoly).
  uint64_t t1 = PolyMod(0, uint64_t{1} << k, poly_);
  for (uint64_t j = 0; j < 256; ++j) {
    T_[j] = PolyMulMod(j, t1, poly_) | (j << k);
  }
  // U[j]: contribution of byte j leaving a window of window_size bytes.
  uint64_t sizeshift = 1;
  for (size_t i = 1; i < window_size_; ++i) sizeshift = Append8(sizeshift, 0);
  for (uint64_t j = 0; j < 256; ++j) {
    U_[j] = PolyMulMod(j, sizeshift, poly_);
  }
  Reset();
}

void RabinWindow::Reset() {
  buf_.fill(0);
  bufpos_ = 0;
  fingerprint_ = 0;
}

uint64_t RabinWindow::Slide(uint8_t byte) {
  uint8_t out = buf_[bufpos_];
  buf_[bufpos_] = byte;
  bufpos_ = (bufpos_ + 1) % window_size_;
  fingerprint_ = Append8(fingerprint_ ^ U_[out], byte);
  return fingerprint_;
}

RabinChunker::RabinChunker(const ChunkerParams& params, uint64_t poly,
                           size_t window_size)
    : params_(params),
      poly_(poly),
      window_size_(window_size),
      scratch_(poly, window_size) {
  SLIM_CHECK(params_.avg_size >= 2 &&
             (params_.avg_size & (params_.avg_size - 1)) == 0);
  SLIM_CHECK(params_.min_size >= window_size_);
  SLIM_CHECK(params_.min_size <= params_.avg_size);
  SLIM_CHECK(params_.avg_size <= params_.max_size);
  mask_ = params_.avg_size - 1;
}

size_t RabinChunker::NextCut(const uint8_t* data, size_t len) const {
  if (len <= params_.min_size) return len;
  size_t limit = std::min(len, params_.max_size);
  RabinWindow& window = scratch_;
  window.Reset();
  // Prime the window with the bytes leading up to the first candidate
  // cut position (a cut at position p tests the window ending at p).
  for (size_t i = params_.min_size - window_size_; i < params_.min_size;
       ++i) {
    window.Slide(data[i]);
  }
  if (IsCutFingerprint(window.fingerprint())) return params_.min_size;
  for (size_t pos = params_.min_size + 1; pos <= limit; ++pos) {
    window.Slide(data[pos - 1]);
    if (IsCutFingerprint(window.fingerprint())) return pos;
  }
  return limit;
}

bool RabinChunker::VerifyCut(const uint8_t* data, size_t chunk_len) const {
  if (chunk_len < params_.min_size) return false;
  if (chunk_len > params_.max_size) return false;
  if (chunk_len == params_.max_size) {
    // A max-size cut is forced, but only if no earlier content cut
    // exists; the caller relies on duplicate-fingerprint comparison to
    // weed out mismatches, so treat a forced boundary as acceptable.
    return true;
  }
  RabinWindow& window = scratch_;
  window.Reset();
  for (size_t i = chunk_len - window_size_; i < chunk_len; ++i) {
    window.Slide(data[i]);
  }
  return IsCutFingerprint(window.fingerprint());
}

std::vector<RawChunk> ChunkAll(const Chunker& chunker, std::string_view data) {
  std::vector<RawChunk> chunks;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  size_t offset = 0;
  while (remaining > 0) {
    size_t cut = chunker.NextCut(p + offset, remaining);
    SLIM_CHECK(cut > 0 && cut <= remaining);
    chunks.push_back(RawChunk{offset, cut});
    offset += cut;
    remaining -= cut;
  }
  return chunks;
}

}  // namespace slim::chunking
