#include "lnode/stream_window.h"

#include <algorithm>

#include "common/macros.h"

namespace slim::lnode {

Result<size_t> StreamWindow::Ensure(uint64_t pos, size_t len) {
  if (source_ == nullptr) {
    // Preloaded: everything is always available.
    if (pos >= preloaded_.size()) return size_t{0};
    return std::min<size_t>(len, preloaded_.size() - pos);
  }
  SLIM_CHECK(pos >= base_);
  uint64_t want_end = pos + len;
  while (!eof_known_ && base_ + buffer_.size() < want_end) {
    size_t old_size = buffer_.size();
    size_t to_read = static_cast<size_t>(want_end - base_) - old_size;
    // Read in generous blocks to amortize virtual-call overhead.
    to_read = std::max<size_t>(to_read, 256 << 10);
    buffer_.resize(old_size + to_read);
    auto n = source_->Read(buffer_.data() + old_size, to_read);
    if (!n.ok()) {
      buffer_.resize(old_size);
      return n.status();
    }
    buffer_.resize(old_size + n.value());
    if (n.value() == 0) {
      eof_known_ = true;
      eof_pos_ = base_ + buffer_.size();
    }
  }
  peak_buffer_ = std::max(peak_buffer_, buffer_.size());
  uint64_t avail_end = base_ + buffer_.size();
  if (pos >= avail_end) return size_t{0};
  return static_cast<size_t>(std::min<uint64_t>(len, avail_end - pos));
}

std::string_view StreamWindow::View(uint64_t pos, size_t len) const {
  if (source_ == nullptr) {
    SLIM_CHECK(pos + len <= preloaded_.size());
    return preloaded_.substr(pos, len);
  }
  SLIM_CHECK(pos >= base_);
  SLIM_CHECK(pos - base_ + len <= buffer_.size());
  return std::string_view(buffer_).substr(static_cast<size_t>(pos - base_),
                                          len);
}

Result<bool> StreamWindow::AtEof(uint64_t pos) {
  if (source_ == nullptr) return pos >= preloaded_.size();
  if (eof_known_ && pos >= eof_pos_) return true;
  auto avail = Ensure(pos, 1);
  if (!avail.ok()) return avail.status();
  return avail.value() == 0;
}

void StreamWindow::DiscardBefore(uint64_t pos) {
  if (source_ == nullptr) return;
  if (pos <= base_) return;
  size_t drop = static_cast<size_t>(
      std::min<uint64_t>(pos - base_, buffer_.size()));
  buffer_.erase(0, drop);
  base_ += drop;
}

}  // namespace slim::lnode
