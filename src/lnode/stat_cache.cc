#include "lnode/stat_cache.h"

#include "common/coding.h"
#include "common/macros.h"
#include "durability/checksum.h"

namespace slim::lnode {

namespace {
constexpr uint32_t kStatCacheMagic = 0x534c5331;  // "SLS1"
}  // namespace

void StatCache::Update(const std::string& file_id, const Entry& entry) {
  MutexLock lock(mu_);
  entries_[file_id] = entry;
}

std::optional<StatCache::Entry> StatCache::Get(
    const std::string& file_id) const {
  MutexLock lock(mu_);
  auto it = entries_.find(file_id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void StatCache::Remove(const std::string& file_id) {
  MutexLock lock(mu_);
  entries_.erase(file_id);
}

void StatCache::RetainIf(
    const std::function<bool(const std::string&, const Entry&)>& pred) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pred(it->first, it->second)) {
      ++it;
    } else {
      it = entries_.erase(it);
    }
  }
}

size_t StatCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

Status StatCache::Save(oss::ObjectStore* store,
                       const std::string& key) const {
  std::string out;
  {
    MutexLock lock(mu_);
    PutFixed32(&out, kStatCacheMagic);
    PutVarint64(&out, entries_.size());
    for (const auto& [file_id, entry] : entries_) {
      PutLengthPrefixed(&out, file_id);
      PutFixed64(&out, entry.size);
      PutFixed64(&out, entry.mtime_ns);
      PutFingerprint(&out, entry.content);
      PutFixed64(&out, entry.version);
    }
  }
  return durability::PutWithFooter(*store, key, std::move(out),
                                   durability::Component::kState);
}

Status StatCache::Load(oss::ObjectStore* store, const std::string& key) {
  auto object =
      durability::GetVerified(*store, key, durability::Component::kState);
  if (!object.ok()) return object.status();
  Decoder dec(object.value());
  uint32_t magic = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&magic));
  if (magic != kStatCacheMagic) {
    return Status::Corruption("statcache: bad magic");
  }
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadVarint64(&count));
  decltype(entries_) loaded;
  loaded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view file_id;
    Entry entry;
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&file_id));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&entry.size));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&entry.mtime_ns));
    SLIM_RETURN_IF_ERROR(dec.ReadFingerprint(&entry.content));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&entry.version));
    loaded.emplace(std::string(file_id), entry);
  }
  MutexLock lock(mu_);
  entries_ = std::move(loaded);
  return Status::Ok();
}

void StatCache::DropLocalState() {
  MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace slim::lnode
