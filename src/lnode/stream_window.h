#ifndef SLIMSTORE_LNODE_STREAM_WINDOW_H_
#define SLIMSTORE_LNODE_STREAM_WINDOW_H_

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace slim::lnode {

/// Pull-based byte source for streaming backups ("the L-node starts to
/// receive the input file stream", paper §III-B).
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `n` bytes into `buf`. Returns the number of bytes read;
  /// 0 means end of stream.
  virtual Result<size_t> Read(char* buf, size_t n) = 0;
};

/// Adapts any std::istream.
class IstreamSource : public ByteSource {
 public:
  explicit IstreamSource(std::istream* in) : in_(in) {}

  Result<size_t> Read(char* buf, size_t n) override {
    in_->read(buf, static_cast<std::streamsize>(n));
    if (in_->bad()) return Status::IoError("stream read failed");
    return static_cast<size_t>(in_->gcount());
  }

 private:
  std::istream* in_;
};

/// Sliding window over a ByteSource, addressed by absolute stream
/// offsets. The backup pipeline only ever needs bytes between the start
/// of the current input segment and a bounded lookahead (one max-size
/// chunk or superchunk), so memory stays O(segment + lookahead) no
/// matter how large the stream is.
///
/// Views returned by View() are invalidated by the next Ensure() or
/// DiscardBefore() call — take them immediately before use.
class StreamWindow {
 public:
  /// Streaming mode: pulls from `source` (not owned).
  explicit StreamWindow(ByteSource* source) : source_(source) {}

  /// Preloaded mode: the whole input is already in memory; zero-copy.
  explicit StreamWindow(std::string_view preloaded)
      : preloaded_(preloaded), eof_pos_(preloaded.size()), eof_known_(true) {}

  /// Makes bytes [pos, pos+len) available if the stream has them.
  /// Returns the number of bytes actually available at `pos` (< len only
  /// at end of stream). `pos` must be >= the last DiscardBefore() point.
  Result<size_t> Ensure(uint64_t pos, size_t len);

  /// View of [pos, pos+len); the range must have been Ensured.
  std::string_view View(uint64_t pos, size_t len) const;

  /// True when `pos` is at or past the end of the stream. Only reliable
  /// after an Ensure() probed at/behind `pos`; Ensure(pos, 1) == 0 is
  /// the definitive test, which this performs on demand.
  Result<bool> AtEof(uint64_t pos);

  /// Releases buffered bytes before `pos` (no-op in preloaded mode).
  void DiscardBefore(uint64_t pos);

  /// High-water mark of the internal buffer (0 in preloaded mode):
  /// proves streaming memory stays bounded.
  size_t peak_buffer_bytes() const { return peak_buffer_; }

 private:
  ByteSource* source_ = nullptr;
  std::string_view preloaded_;

  std::string buffer_;      // Bytes [base_, base_ + buffer_.size()).
  uint64_t base_ = 0;
  uint64_t eof_pos_ = 0;
  bool eof_known_ = false;
  size_t peak_buffer_ = 0;
};

}  // namespace slim::lnode

#endif  // SLIMSTORE_LNODE_STREAM_WINDOW_H_
