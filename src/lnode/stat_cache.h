#ifndef SLIMSTORE_LNODE_STAT_CACHE_H_
#define SLIMSTORE_LNODE_STAT_CACHE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "oss/object_store.h"

namespace slim::lnode {

/// Cumulus-statcache-style skip-unchanged fast path for incremental
/// backups: remembers, per file id, what the latest stored version
/// looked like (size, filesystem mtime, content hash). When the next
/// backup of the same file matches, SlimStore forwards the previous
/// recipe to a new version number without chunking, fingerprinting or
/// touching any container — the dominant case for nightly backups of
/// mostly-unchanged trees.
///
/// Strictly a cache under the rebuildable-state contract: entries are
/// hints, every hit is validated against the catalog + similar-file
/// index before being trusted, and a rebuilt L-node revalidates or
/// drops every entry (RetainIf). Persisted as one OSS state object by
/// SaveState; losing it costs one full dedup pass per file, never
/// correctness.
class StatCache {
 public:
  struct Entry {
    uint64_t size = 0;
    /// Filesystem mtime (ns since epoch); 0 = unknown (in-memory
    /// backups, which match by content hash instead).
    uint64_t mtime_ns = 0;
    /// SHA-1 of the file bytes at `version`.
    Fingerprint content;
    /// The version storing this exact content.
    uint64_t version = 0;
  };

  StatCache() = default;

  void Update(const std::string& file_id, const Entry& entry);
  std::optional<Entry> Get(const std::string& file_id) const;
  void Remove(const std::string& file_id);
  /// Drops every entry failing `pred` (post-rebuild revalidation).
  void RetainIf(
      const std::function<bool(const std::string&, const Entry&)>& pred);
  size_t size() const;

  /// Persists to / restores from one OSS state object.
  Status Save(oss::ObjectStore* store, const std::string& key) const;
  Status Load(oss::ObjectStore* store, const std::string& key);

  /// Rebuildable-state contract: forget every entry.
  void DropLocalState();

 private:
  mutable Mutex mu_{"lnode.statcache"};
  std::unordered_map<std::string, Entry> entries_ SLIM_GUARDED_BY(mu_);
};

}  // namespace slim::lnode

#endif  // SLIMSTORE_LNODE_STAT_CACHE_H_
