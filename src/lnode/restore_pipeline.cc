#include "lnode/restore_pipeline.h"

#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/bloom.h"
#include "obs/trace.h"

namespace slim::lnode {

using format::ChunkRecord;
using format::ContainerId;

/// Per-restore shared state. All mutable members are guarded by mu
/// (prefetch workers and the restore cursor both touch the caches).
struct RestoreJob {
  // Restore sequence: written once before any prefetch thread starts,
  // read-only afterwards (hence not guarded).
  std::vector<ChunkRecord> seq;

  Mutex mu{"lnode.restore_job"};
  CondVar cv;

  index::CountingBloomFilter cbf SLIM_GUARDED_BY(mu);

  // Cache_m: fingerprint -> chunk bytes, insertion-ordered for eviction.
  std::unordered_map<Fingerprint, std::string> mem SLIM_GUARDED_BY(mu);
  uint64_t mem_bytes SLIM_GUARDED_BY(mu) = 0;
  std::list<Fingerprint> mem_order SLIM_GUARDED_BY(mu);

  // Cache_d (local disk spill).
  std::unordered_map<Fingerprint, std::string> disk SLIM_GUARDED_BY(mu);
  uint64_t disk_bytes SLIM_GUARDED_BY(mu) = 0;
  std::list<Fingerprint> disk_order SLIM_GUARDED_BY(mu);

  // Multiset of fingerprints inside the look-ahead window.
  std::unordered_map<Fingerprint, uint32_t> law SLIM_GUARDED_BY(mu);

  // Containers already read / currently being read in this job.
  std::unordered_set<ContainerId> fetched SLIM_GUARDED_BY(mu);
  std::unordered_set<ContainerId> inflight SLIM_GUARDED_BY(mu);
  // Directory of every container read so far: which fingerprints it
  // holds. Lets the cursor skip a useless re-read when a chunk is known
  // to have been moved away (reverse dedup / SCC) and go straight to
  // the global-index redirect.
  std::unordered_map<ContainerId, std::unordered_set<Fingerprint>>
      directories SLIM_GUARDED_BY(mu);

  RestoreStats stats SLIM_GUARDED_BY(mu);
  // First asynchronous failure, returned at the end.
  Status failure SLIM_GUARDED_BY(mu);

  explicit RestoreJob(size_t expected_chunks)
      : cbf(expected_chunks, /*counters_per_item=*/10) {}
};

// The helpers below require job->mu held, which clang's thread-safety
// analysis enforces via the SLIM_REQUIRES annotations.
namespace {

enum class ChunkStatus { kInWindow, kLater, kUseless };

ChunkStatus StatusOfLocked(RestoreJob* job, const Fingerprint& fp,
                           const index::CountingBloomFilter& cbf)
    SLIM_REQUIRES(job->mu) {
  auto it = job->law.find(fp);
  if (it != job->law.end() && it->second > 0) return ChunkStatus::kInWindow;
  if (cbf.CountEstimate(fp) > 0) return ChunkStatus::kLater;
  return ChunkStatus::kUseless;
}

void DiskInsertLocked(RestoreJob* job, size_t capacity,
                      const Fingerprint& fp, std::string bytes)
    SLIM_REQUIRES(job->mu) {
  if (capacity == 0) return;
  if (job->disk.count(fp) > 0) return;
  job->disk_bytes += bytes.size();
  job->disk.emplace(fp, std::move(bytes));
  job->disk_order.push_back(fp);
  ++job->stats.disk_spills;
  while (job->disk_bytes > capacity && !job->disk_order.empty()) {
    Fingerprint victim = job->disk_order.front();
    job->disk_order.pop_front();
    auto it = job->disk.find(victim);
    if (it == job->disk.end()) continue;  // Stale order entry.
    job->disk_bytes -= it->second.size();
    job->disk.erase(it);
  }
}

// Frees Cache_m down to capacity: drop S_U, spill S_L to disk, and as a
// last resort spill S_I too (full-vision policy, §V-A).
void EvictLocked(RestoreJob* job, size_t mem_capacity,
                 size_t disk_capacity) SLIM_REQUIRES(job->mu) {
  while (job->mem_bytes > mem_capacity && !job->mem.empty()) {
    auto useless_it = job->mem_order.end();
    auto later_it = job->mem_order.end();
    for (auto it = job->mem_order.begin(); it != job->mem_order.end();) {
      if (job->mem.count(*it) == 0) {
        it = job->mem_order.erase(it);  // Stale entry.
        continue;
      }
      ChunkStatus status = StatusOfLocked(job, *it, job->cbf);
      if (status == ChunkStatus::kUseless) {
        useless_it = it;
        break;
      }
      if (status == ChunkStatus::kLater && later_it == job->mem_order.end()) {
        later_it = it;
      }
      ++it;
    }
    const bool drop = useless_it != job->mem_order.end();
    auto victim_it = drop ? useless_it
                          : (later_it != job->mem_order.end()
                                 ? later_it
                                 : job->mem_order.begin());
    if (victim_it == job->mem_order.end()) break;
    Fingerprint victim = *victim_it;
    job->mem_order.erase(victim_it);
    auto mit = job->mem.find(victim);
    if (mit == job->mem.end()) continue;
    std::string bytes = std::move(mit->second);
    job->mem_bytes -= bytes.size();
    job->mem.erase(mit);
    if (!drop) {
      // S_L or (rarely) S_I victim: keep it on local disk rather than
      // paying another OSS read later.
      DiskInsertLocked(job, disk_capacity, victim, std::move(bytes));
    }
  }
}

void InsertChunkLocked(RestoreJob* job, size_t mem_capacity,
                       size_t disk_capacity, const Fingerprint& fp,
                       std::string_view bytes) SLIM_REQUIRES(job->mu) {
  if (job->mem.count(fp) > 0 || job->disk.count(fp) > 0) return;
  ChunkStatus status = StatusOfLocked(job, fp, job->cbf);
  if (status == ChunkStatus::kUseless) return;
  job->mem_bytes += bytes.size();
  job->mem.emplace(fp, std::string(bytes));
  job->mem_order.push_back(fp);
  EvictLocked(job, mem_capacity, disk_capacity);
}

// Schedules a background prefetch of the container owning seq[idx], if
// it has not been read yet. `spawn` runs the actual fetch on the pool;
// it must outlive the pool.
void MaybePrefetchLocked(RestoreJob* job, ThreadPool* pool,
                         const std::function<void(ContainerId)>& spawn,
                         size_t idx) SLIM_REQUIRES(job->mu) {
  if (pool == nullptr || idx >= job->seq.size()) return;
  ContainerId cid = job->seq[idx].container_id;
  if (job->fetched.count(cid) > 0 || job->inflight.count(cid) > 0) return;
  job->inflight.insert(cid);
  pool->Submit([&spawn, cid] { spawn(cid); });
}

}  // namespace

Result<std::string> RestorePipeline::Restore(const std::string& file_id,
                                             uint64_t version,
                                             RestoreStats* stats) {
  std::string output;
  Status status = RestoreToSink(
      file_id, version,
      [&output](std::string_view bytes) {
        output.append(bytes.data(), bytes.size());
        return Status::Ok();
      },
      stats);
  if (!status.ok()) return status;
  return output;
}

Status RestorePipeline::RestoreToSink(const std::string& file_id,
                                      uint64_t version, const Sink& sink,
                                      RestoreStats* stats) {
  Stopwatch total_watch;
  obs::Span restore_span("restore");
  const uint64_t restore_span_id = restore_span.id();
  auto& reg = obs::MetricsRegistry::Get();
  obs::Histogram& fetch_latency =
      reg.histogram("restore.container_fetch_ns");

  Result<format::Recipe> recipe = [&] {
    obs::Span span("restore.read_recipe");
    return recipes_->ReadRecipe(file_id, version);
  }();
  if (!recipe.ok()) return recipe.status();

  RestoreJob job(recipe.value().TotalChunks());
  job.seq = recipe.value().Flatten();
  {
    MutexLock lock(job.mu);
    job.stats.logical_bytes = recipe.value().LogicalBytes();
    // Full restore information: every future reference counted up front.
    for (const ChunkRecord& rec : job.seq) job.cbf.Add(rec.fp);
  }

  const size_t mem_capacity = options_.cache_bytes;
  const size_t disk_capacity = options_.disk_cache_bytes;
  const size_t law_size = options_.law_chunks;

  // Fetches one container and populates the cache with its useful
  // chunks. Returns the loaded container so callers can pull the chunk
  // they were after. Called WITHOUT job.mu held; `cid` must already be
  // in job.inflight.
  auto fetch_container =
      [&](ContainerId cid) -> Result<format::ContainerStore::LoadedContainer> {
    // Explicit parent: prefetch workers run on pool threads, so the
    // thread-local context alone would not nest them under the restore.
    obs::Span fetch_span("restore.fetch_container", restore_span_id);
    obs::ScopedTimer fetch_timer(&fetch_latency);
    auto loaded = containers_->ReadContainer(cid);
    MutexLock lock(job.mu);
    if (loaded.ok()) {
      ++job.stats.containers_fetched;
      job.stats.bytes_fetched += loaded.value().payload.size();
      auto& directory = job.directories[cid];
      for (const format::ChunkLocation& loc :
           loaded.value().directory.chunks) {
        auto bytes = loaded.value().GetChunk(loc.fp);
        if (!bytes.has_value()) continue;
        directory.insert(loc.fp);
        InsertChunkLocked(&job, mem_capacity, disk_capacity, loc.fp,
                          *bytes);
      }
      job.fetched.insert(cid);
    }
    job.inflight.erase(cid);
    job.cv.NotifyAll();
    return loaded;
  };

  // Runs one prefetch on a pool thread, recording the first failure.
  // Declared before the pool: queued tasks reference it, so it must be
  // destroyed after the pool's destructor joins the workers.
  std::function<void(ContainerId)> spawn_fetch = [&](ContainerId cid) {
    auto result = fetch_container(cid);
    if (!result.ok()) {
      // NotFound is not fatal for a speculative prefetch: the chunk may
      // have been relocated by the G-node, and the synchronous path
      // resolves that through the global-index redirect. Poisoning
      // job.failure here would abort a restore that can still succeed.
      if (result.status().IsNotFound()) return;
      MutexLock lock(job.mu);
      if (job.failure.ok()) job.failure = result.status();
    }
  };

  std::unique_ptr<ThreadPool> pool;
  if (options_.prefetch_threads > 0) {
    pool = std::make_unique<ThreadPool>(options_.prefetch_threads);
  }

  // Prime the look-ahead window with the first `law_size` records.
  {
    MutexLock lock(job.mu);
    for (size_t i = 0; i < job.seq.size() && i < law_size; ++i) {
      ++job.law[job.seq[i].fp];
      MaybePrefetchLocked(&job, pool.get(), spawn_fetch, i);
    }
  }

  for (size_t i = 0; i < job.seq.size(); ++i) {
    const ChunkRecord& rec = job.seq[i];

    std::string chunk_bytes;
    bool have = false;
    {
      MutexLock lock(job.mu);
      for (;;) {
        auto mit = job.mem.find(rec.fp);
        if (mit != job.mem.end()) {
          chunk_bytes = mit->second;
          ++job.stats.cache_hits;
          have = true;
          break;
        }
        auto dit = job.disk.find(rec.fp);
        if (dit != job.disk.end()) {
          chunk_bytes = dit->second;
          ++job.stats.disk_hits;
          have = true;
          break;
        }
        // Not cached. If its container is being prefetched, wait for
        // that read to finish rather than issuing a duplicate one.
        if (job.inflight.count(rec.container_id) > 0) {
          job.cv.Wait(job.mu);
          continue;
        }
        break;
      }
    }

    if (!have) {
      // If this container was already read and its directory provably
      // lacks the chunk, skip the useless re-read and redirect.
      bool known_absent = false;
      {
        MutexLock lock(job.mu);
        auto dit = job.directories.find(rec.container_id);
        if (dit != job.directories.end() &&
            dit->second.count(rec.fp) == 0) {
          known_absent = true;
        }
      }
      std::optional<std::string> found;
      if (!known_absent) {
        // Synchronous fetch (prefetch disabled, cache too small, or the
        // chunk moved). Mark in-flight so concurrent prefetchers skip
        // it.
        {
          MutexLock lock(job.mu);
          job.inflight.insert(rec.container_id);
        }
        auto loaded = fetch_container(rec.container_id);
        if (loaded.ok()) {
          auto bytes = loaded.value().GetChunk(rec.fp);
          if (bytes.has_value()) found = std::string(*bytes);
        } else if (!loaded.status().IsNotFound()) {
          return loaded.status();
        }
      }
      if (!found.has_value()) {
        // Redirect: reverse dedup / SCC moved this chunk into a newer
        // container; the global index knows where (§VI-A).
        if (options_.global_index == nullptr) {
          return Status::Corruption(
              "chunk missing from container and no global index: " +
              rec.fp.ToHex());
        }
        auto redirect = options_.global_index->Get(rec.fp);
        if (!redirect.ok()) return redirect.status();
        {
          MutexLock lock(job.mu);
          ++job.stats.redirects;
          job.inflight.insert(redirect.value());
        }
        auto redirected = fetch_container(redirect.value());
        if (!redirected.ok()) return redirected.status();
        auto bytes = redirected.value().GetChunk(rec.fp);
        if (!bytes.has_value()) {
          return Status::Corruption("chunk missing after redirect: " +
                                    rec.fp.ToHex());
        }
        found = std::string(*bytes);
      }
      chunk_bytes = std::move(*found);
    }

    if (chunk_bytes.size() != rec.size) {
      return Status::Corruption("chunk size mismatch for " + rec.fp.ToHex());
    }
    SLIM_RETURN_IF_ERROR(sink(chunk_bytes));

    // Consumption bookkeeping: slide the LAW, decrement the CBF, drop
    // chunks that became useless, and prefetch the record entering the
    // window.
    {
      MutexLock lock(job.mu);
      ++job.stats.chunks_restored;
      auto lit = job.law.find(rec.fp);
      if (lit != job.law.end()) {
        if (--lit->second == 0) job.law.erase(lit);
      }
      job.cbf.Remove(rec.fp);
      if (StatusOfLocked(&job, rec.fp, job.cbf) == ChunkStatus::kUseless) {
        auto mit = job.mem.find(rec.fp);
        if (mit != job.mem.end()) {
          job.mem_bytes -= mit->second.size();
          job.mem.erase(mit);
        }
        auto dit = job.disk.find(rec.fp);
        if (dit != job.disk.end()) {
          job.disk_bytes -= dit->second.size();
          job.disk.erase(dit);
        }
      }
      size_t entering = i + law_size;
      if (entering < job.seq.size()) {
        ++job.law[job.seq[entering].fp];
        MaybePrefetchLocked(&job, pool.get(), spawn_fetch, entering);
      }
      if (!job.failure.ok()) return job.failure;
    }
  }

  if (pool != nullptr) pool->Shutdown();

  RestoreStats final_stats;
  {
    MutexLock lock(job.mu);
    if (!job.failure.ok()) return job.failure;
    job.stats.elapsed_seconds = total_watch.ElapsedSeconds();
    final_stats = job.stats;
  }

  reg.counter("restore.jobs").Inc();
  reg.counter("restore.chunks").Inc(final_stats.chunks_restored);
  reg.counter("restore.logical_bytes").Inc(final_stats.logical_bytes);
  reg.counter("restore.containers_fetched")
      .Inc(final_stats.containers_fetched);
  reg.counter("restore.bytes_fetched").Inc(final_stats.bytes_fetched);
  reg.counter("restore.cache.mem_hits").Inc(final_stats.cache_hits);
  reg.counter("restore.cache.disk_hits").Inc(final_stats.disk_hits);
  reg.counter("restore.cache.spills").Inc(final_stats.disk_spills);
  reg.counter("restore.redirects").Inc(final_stats.redirects);
  reg.histogram("restore.latency_ns")
      .Record(static_cast<uint64_t>(final_stats.elapsed_seconds * 1e9));

  if (stats != nullptr) *stats = final_stats;
  return Status::Ok();
}

}  // namespace slim::lnode
