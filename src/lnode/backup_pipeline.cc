#include "lnode/backup_pipeline.h"

#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "obs/trace.h"

namespace slim::lnode {

using format::ChunkRecord;
using format::ContainerBuilder;
using format::ContainerId;
using format::Recipe;
using format::SegmentRecipe;
using index::DedupCache;

/// Per-job working state. A fresh JobState per Backup() call is what
/// makes the L-node stateless across jobs.
struct BackupPipeline::JobState {
  StreamWindow* window = nullptr;

  std::optional<index::FileVersion> base;
  std::optional<format::RecipeIndex> base_index;
  std::unordered_set<uint32_t> fetched_segments;
  // Base segment ordinal <-> dedup-cache segment sequence, so the
  // skip-chunking chain can continue into the next base segment.
  std::unordered_map<uint32_t, uint64_t> ordinal_to_seq;
  std::unordered_map<uint64_t, uint32_t> seq_to_ordinal;
  DedupCache cache;

  BackupStats stats;

  Recipe recipe;
  SegmentRecipe current_segment;

  std::optional<ContainerBuilder> builder;

  // Pending run of consecutive duplicates eligible for chunk merging.
  struct PendingRun {
    size_t start_pos = 0;
    uint64_t bytes = 0;
    std::vector<ChunkRecord> records;
  } run;

  // Skip-chunking / superchunk continuation state.
  std::optional<DedupCache::Handle> last_match;

  // first-chunk fingerprint -> cached superchunk record.
  std::unordered_map<Fingerprint, DedupCache::Handle> super_first;

  // Constituents of cached superchunks: the small-chunk fallback when a
  // superchunk only partially matches the new version.
  std::unordered_map<Fingerprint, ChunkRecord> constituent_map;

  // Chunks stored earlier in this same job, so self-references within
  // the stream deduplicate online instead of being stored twice.
  std::unordered_map<Fingerprint, ChunkRecord> new_chunks;

  // Distinct referenced chunks per (pre-existing) container, for sparse
  // container identification.
  std::unordered_map<ContainerId, std::unordered_set<Fingerprint>>
      referenced;

  PhaseTimer t_chunking;
  PhaseTimer t_fingerprint;
  PhaseTimer t_index;

  explicit JobState(size_t cache_segments) : cache(cache_segments) {}
};

namespace {

/// One chunk of the input segment being assembled (phase 1 output).
struct BatchEntry {
  size_t pos = 0;
  uint32_t len = 0;
  Fingerprint fp;
  /// Resolved as duplicate during the boundary scan (skip chunking,
  /// superchunk match, or dedup-cache hit)?
  bool resolved = false;
  format::ChunkRecord base;  // The matched base record when resolved.
};

}  // namespace

BackupPipeline::BackupPipeline(format::ContainerStore* containers,
                               format::RecipeStore* recipes,
                               index::SimilarFileIndex* similar_files,
                               BackupOptions options)
    : containers_(containers),
      recipes_(recipes),
      similar_files_(similar_files),
      options_(options),
      chunker_(chunking::CreateChunker(options.chunker_type,
                                       options.chunker_params)) {}

uint64_t BackupPipeline::AllocateVersion(const std::string& file_id) const {
  auto latest = similar_files_->LatestVersion(file_id);
  return latest.has_value() ? *latest + 1 : 0;
}

std::optional<index::FileVersion> BackupPipeline::DetectBase(
    const std::string& file_id, JobState* job) {
  // Exact name match first: the latest historical version of this file.
  auto latest = similar_files_->LatestVersion(file_id);
  if (latest.has_value()) {
    job->stats.detection = BaseDetection::kByName;
    return index::FileVersion{file_id, *latest};
  }

  // Fallback: chunk and sample the file header, then consult the similar
  // file index (Broder sampling). For large files only the header is
  // examined ("the common solution for large files is to only sample the
  // header chunks").
  auto header_avail =
      job->window->Ensure(0, options_.similarity_header_bytes);
  if (!header_avail.ok()) return std::nullopt;
  size_t header = header_avail.value();
  std::vector<Fingerprint> samples;
  size_t pos = 0;
  while (pos < header) {
    std::string_view view = job->window->View(pos, header - pos);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(view.data());
    size_t len;
    {
      ScopedPhase phase(&job->t_chunking);
      len = chunker_->NextCut(p, view.size());
    }
    Fingerprint fp;
    {
      ScopedPhase phase(&job->t_fingerprint);
      fp = Sha1::Hash(p, len);
    }
    if (format::IsSampleFingerprint(fp, options_.sample_ratio)) {
      samples.push_back(fp);
    }
    pos += len;
  }
  std::optional<index::FileVersion> similar;
  {
    ScopedPhase phase(&job->t_index);
    similar =
        similar_files_->FindSimilar(samples, options_.min_similarity_samples);
  }
  if (similar.has_value()) {
    job->stats.detection = BaseDetection::kBySimilarity;
  }
  return similar;
}

std::optional<uint64_t> BackupPipeline::PrefetchSegmentOrdinal(
    uint32_t ordinal, JobState* job) {
  if (!job->base.has_value()) return std::nullopt;
  auto cached = job->ordinal_to_seq.find(ordinal);
  if (cached != job->ordinal_to_seq.end()) return cached->second;
  if (!job->fetched_segments.insert(ordinal).second) return std::nullopt;
  auto segment = recipes_->ReadSegment(job->base->file_id,
                                       job->base->version, ordinal);
  if (!segment.ok()) return std::nullopt;
  ++job->stats.segments_fetched;
  uint64_t seq = job->cache.AddSegment(std::move(segment).value());
  job->ordinal_to_seq[ordinal] = seq;
  job->seq_to_ordinal[seq] = ordinal;
  // Register superchunk first-chunk fingerprints for Algorithm 1.
  for (uint32_t i = 0;; ++i) {
    const ChunkRecord* rec = job->cache.TryRecord(DedupCache::Handle{seq, i});
    if (rec == nullptr) break;
    if (rec->is_superchunk) {
      job->super_first[rec->first_chunk_fp] = DedupCache::Handle{seq, i};
      if (rec->constituents != nullptr) {
        for (const ChunkRecord& constituent : *rec->constituents) {
          job->constituent_map.emplace(constituent.fp, constituent);
        }
      }
    }
  }
  return seq;
}

void BackupPipeline::PrefetchSegmentFor(const Fingerprint& fp,
                                        JobState* job) {
  if (!job->base_index.has_value()) return;
  auto it = job->base_index->sample_to_segment.find(fp);
  if (it == job->base_index->sample_to_segment.end()) return;
  PrefetchSegmentOrdinal(it->second, job);
}

void BackupPipeline::EmitRecord(const ChunkRecord& record, JobState* job) {
  job->current_segment.records.push_back(record);
}

// Attempts to match superchunk `sc` against the input at `pos`.
// Cheap pre-check first: the last constituent's fingerprint at its
// expected offset. Any insertion/deletion inside the span shifts it and
// any tail modification changes it, so most failed spans are rejected
// after hashing one small chunk instead of the whole span.
bool BackupPipeline::MatchSuperchunk(const ChunkRecord& sc, size_t pos,
                                     JobState* job) {
  if (!sc.is_superchunk) return false;
  auto avail = job->window->Ensure(pos, sc.size);
  if (!avail.ok() || avail.value() < sc.size) return false;
  if (sc.constituents != nullptr && !sc.constituents->empty()) {
    const ChunkRecord& last = sc.constituents->back();
    if (last.size <= sc.size) {
      std::string_view tail =
          job->window->View(pos + sc.size - last.size, last.size);
      Fingerprint fp;
      {
        ScopedPhase phase(&job->t_fingerprint);
        fp = Sha1::Hash(tail.data(), tail.size());
      }
      if (fp != last.fp) return false;
    }
  }
  std::string_view span = job->window->View(pos, sc.size);
  Fingerprint span_fp;
  {
    ScopedPhase phase(&job->t_fingerprint);
    span_fp = Sha1::Hash(span.data(), span.size());
  }
  return span_fp == sc.fp;
}

Status BackupPipeline::StoreNewChunk(const Fingerprint& fp,
                                     std::string_view bytes,
                                     ChunkRecord* record, JobState* job) {
  if (!job->builder.has_value()) {
    job->builder.emplace(containers_->AllocateId(),
                         options_.container_capacity);
  }
  if (!job->builder->Add(fp, bytes)) {
    SLIM_RETURN_IF_ERROR(FlushContainer(job));
    job->builder.emplace(containers_->AllocateId(),
                         options_.container_capacity);
    SLIM_CHECK(job->builder->Add(fp, bytes));
  }
  record->fp = fp;
  record->container_id = job->builder->id();
  record->size = static_cast<uint32_t>(bytes.size());
  record->duplicate_times = 0;
  job->stats.new_bytes += bytes.size();
  return Status::Ok();
}

Status BackupPipeline::FlushContainer(JobState* job) {
  if (!job->builder.has_value() || job->builder->empty()) return Status::Ok();
  ContainerId id = job->builder->id();
  SLIM_RETURN_IF_ERROR(containers_->Write(std::move(*job->builder)));
  job->builder.reset();
  job->stats.new_containers.push_back(id);
  return Status::Ok();
}

Status BackupPipeline::MaybeMergePendingRun(JobState* job, bool force) {
  (void)force;
  auto& run = job->run;
  if (run.records.empty()) return Status::Ok();
  if (options_.chunk_merging &&
      run.records.size() >= options_.min_merge_chunks) {
    // Merge the run into a *logical* superchunk: one record whose
    // fingerprint covers the whole span so future versions can match
    // the range with a single comparison. No data is re-stored — the
    // constituents' physical copies keep serving restores.
    std::string_view bytes =
        job->window->View(run.start_pos, static_cast<size_t>(run.bytes));
    ChunkRecord record;
    {
      ScopedPhase phase(&job->t_fingerprint);
      record.fp = Sha1::Hash(bytes.data(), bytes.size());
    }
    record.container_id = format::kInvalidContainerId;
    record.size = static_cast<uint32_t>(run.bytes);
    record.is_superchunk = true;
    record.first_chunk_fp = run.records.front().fp;
    record.duplicate_times = run.records.front().duplicate_times;
    record.constituents =
        std::make_shared<const std::vector<ChunkRecord>>(run.records);
    EmitRecord(record, job);
    job->stats.total_chunks += 1;
    job->stats.dup_chunks += 1;
    job->stats.dup_bytes += run.bytes;
    job->stats.superchunks_formed += 1;
    for (const ChunkRecord& constituent : run.records) {
      job->referenced[constituent.container_id].insert(constituent.fp);
    }
  } else {
    // Not worth merging: emit the duplicates individually.
    for (const ChunkRecord& record : run.records) {
      EmitRecord(record, job);
      job->stats.total_chunks += 1;
      job->stats.dup_chunks += 1;
      job->stats.dup_bytes += record.size;
      job->referenced[record.container_id].insert(record.fp);
    }
  }
  run.records.clear();
  run.bytes = 0;
  run.start_pos = 0;
  return Status::Ok();
}

Status BackupPipeline::EmitDuplicate(const ChunkRecord& base_record,
                                     bool increment_dup_times,
                                     size_t stream_pos, JobState* job) {
  // HAR baseline mode: a duplicate whose copy lives in a sparse
  // container (identified by the previous backup) is rewritten.
  if (options_.har_rewrite_containers != nullptr &&
      !base_record.is_superchunk &&
      options_.har_rewrite_containers->count(base_record.container_id) > 0) {
    SLIM_RETURN_IF_ERROR(MaybeMergePendingRun(job, true));
    ChunkRecord rewritten;
    SLIM_RETURN_IF_ERROR(StoreNewChunk(
        base_record.fp, job->window->View(stream_pos, base_record.size),
        &rewritten, job));
    rewritten.duplicate_times = base_record.duplicate_times;
    EmitRecord(rewritten, job);
    job->stats.total_chunks += 1;
    job->stats.rewritten_chunks += 1;
    job->new_chunks.emplace(rewritten.fp, rewritten);
    return Status::Ok();
  }
  ChunkRecord record = base_record;
  if (increment_dup_times) {
    record.duplicate_times = base_record.duplicate_times + 1;
  }
  if (record.is_superchunk) {
    ++job->stats.superchunks_matched;
  }
  // History-aware chunk merging: extend the pending duplicate run when
  // this chunk has been a duplicate long enough (§IV-C).
  if (options_.chunk_merging && !record.is_superchunk &&
      increment_dup_times &&
      record.duplicate_times >= options_.merge_threshold &&
      job->run.bytes + record.size <= options_.max_superchunk_bytes) {
    if (job->run.records.empty()) job->run.start_pos = stream_pos;
    job->run.records.push_back(record);
    job->run.bytes += record.size;
    return Status::Ok();
  }
  SLIM_RETURN_IF_ERROR(MaybeMergePendingRun(job, true));
  EmitRecord(record, job);
  job->stats.total_chunks += 1;
  job->stats.dup_chunks += 1;
  job->stats.dup_bytes += record.size;
  if (record.is_superchunk && record.constituents != nullptr) {
    for (const ChunkRecord& constituent : *record.constituents) {
      job->referenced[constituent.container_id].insert(constituent.fp);
    }
  } else {
    job->referenced[record.container_id].insert(record.fp);
  }
  return Status::Ok();
}

Result<BackupStats> BackupPipeline::Backup(const std::string& file_id,
                                           std::string_view data,
                                           uint64_t version) {
  StreamWindow window(data);
  return BackupFromWindow(file_id, &window, version);
}

Result<BackupStats> BackupPipeline::BackupStream(const std::string& file_id,
                                                 ByteSource* source,
                                                 uint64_t version) {
  StreamWindow window(source);
  return BackupFromWindow(file_id, &window, version);
}

Result<BackupStats> BackupPipeline::BackupFromWindow(
    const std::string& file_id, StreamWindow* window, uint64_t version) {
  Stopwatch total_watch;
  obs::Span backup_span("backup");
  JobState job(options_.dedup_cache_segments);
  job.window = window;
  job.stats.file_id = file_id;
  job.stats.version = version;
  job.recipe.file_id = file_id;
  job.recipe.version = version;

  // STEP 1: detect a historical version or similar file, fetch its
  // recipe index.
  {
    obs::Span span("backup.detect_base");
    job.base = DetectBase(file_id, &job);
    if (job.base.has_value()) {
      ScopedPhase phase(&job.t_index);
      auto base_index =
          recipes_->ReadIndex(job.base->file_id, job.base->version);
      if (base_index.ok()) {
        job.base_index = std::move(base_index).value();
      }
    }
  }

  // STEP 2: process the stream one input segment at a time. Each batch
  // runs three phases — (1) boundary scan with history-aware skip
  // chunking and superchunk matching, (2) similar-segment prefetch for
  // the batch's unresolved fingerprints, (3) in-order resolution — so
  // that every chunk of the batch benefits from segments prefetched by
  // any of its sampled neighbors (the paper's "a range of duplicate
  // chunks in the vicinity can be filtered").
  uint64_t pos = 0;
  std::vector<BatchEntry> entries;
  for (;;) {
    auto at_eof = window->AtEof(pos);
    if (!at_eof.ok()) return at_eof.status();
    if (at_eof.value()) break;
    // ---- Phase 1: boundary scan.
    entries.clear();
    uint64_t batch_bytes = 0;
    for (;;) {
      if (batch_bytes >= options_.segment_bytes ||
          entries.size() >= options_.segment_max_chunks) {
        break;
      }
      auto eof = window->AtEof(pos);
      if (!eof.ok()) return eof.status();
      if (eof.value()) break;

      // History-aware continuation from the last matched record.
      if (job.last_match.has_value()) {
        auto next = job.cache.Next(*job.last_match);
        if (!next.has_value()) {
          // Segment exhausted: by logical locality the stream most
          // likely continues into the next base segment — fetch it and
          // chain into its first record.
          auto oit = job.seq_to_ordinal.find(job.last_match->segment_seq);
          if (oit != job.seq_to_ordinal.end()) {
            ScopedPhase phase(&job.t_index);
            auto seq = PrefetchSegmentOrdinal(oit->second + 1, &job);
            if (seq.has_value()) next = DedupCache::Handle{*seq, 0};
          }
        }
        const ChunkRecord* expect =
            next.has_value() ? job.cache.TryRecord(*next) : nullptr;
        if (expect != nullptr && expect->is_superchunk &&
            options_.chunk_merging) {
          if (MatchSuperchunk(*expect, pos, &job)) {
            BatchEntry e;
            e.pos = pos;
            e.len = expect->size;
            e.fp = expect->fp;
            e.resolved = true;
            e.base = *expect;
            entries.push_back(e);
            batch_bytes += e.len;
            pos += e.len;
            job.last_match = next;
            continue;
          }
        } else if (expect != nullptr && !expect->is_superchunk &&
                   options_.skip_chunking && expect->size > 0 &&
                   [&] {
                     auto a = window->Ensure(pos, expect->size);
                     return a.ok() && a.value() >= expect->size;
                   }()) {
          // Skip chunking (§IV-B): jump |c_m^{n-1}| bytes; if the cut
          // condition holds there and the fingerprint matches, the
          // byte-by-byte scan was saved.
          std::string_view candidate = window->View(pos, expect->size);
          const uint8_t* cp =
              reinterpret_cast<const uint8_t*>(candidate.data());
          bool cut_ok;
          {
            ScopedPhase phase(&job.t_chunking);
            cut_ok = chunker_->VerifyCut(cp, expect->size);
          }
          if (cut_ok) {
            Fingerprint fp;
            {
              ScopedPhase phase(&job.t_fingerprint);
              fp = Sha1::Hash(cp, expect->size);
            }
            if (fp == expect->fp) {
              ++job.stats.skip_successes;
              BatchEntry e;
              e.pos = pos;
              e.len = expect->size;
              e.fp = fp;
              e.resolved = true;
              e.base = *expect;
              entries.push_back(e);
              batch_bytes += e.len;
              pos += e.len;
              job.last_match = next;
              continue;
            }
          }
          ++job.stats.skip_failures;
        }
        job.last_match.reset();
      }

      // Plain CDC boundary + fingerprint. The chunker never looks more
      // than max_size bytes ahead.
      auto scan_avail =
          window->Ensure(pos, options_.chunker_params.max_size);
      if (!scan_avail.ok()) return scan_avail.status();
      std::string_view scan = window->View(pos, scan_avail.value());
      const uint8_t* sp = reinterpret_cast<const uint8_t*>(scan.data());
      size_t len;
      {
        ScopedPhase phase(&job.t_chunking);
        len = chunker_->NextCut(sp, scan.size());
      }
      Fingerprint fp;
      {
        ScopedPhase phase(&job.t_fingerprint);
        fp = Sha1::Hash(sp, len);
      }

      // Dedup-cache lookup; on a miss, prefetch the similar segment
      // right away (STEP 2: each sampled chunk consults the recipe
      // index) and retry, so the rest of the segment — and the skip
      // chunking chain — engages immediately.
      std::optional<DedupCache::Handle> handle;
      {
        ScopedPhase phase(&job.t_index);
        handle = job.cache.Lookup(fp);
        if (!handle.has_value()) {
          PrefetchSegmentFor(fp, &job);
          handle = job.cache.Lookup(fp);
        }
      }

      // Superchunk match by first chunk (Algorithm 1) — checked after
      // the prefetch so a superchunk discovered by this very chunk
      // matches immediately and hooks up the continuation chain.
      if (options_.chunk_merging) {
        auto sit = job.super_first.find(fp);
        if (sit != job.super_first.end()) {
          const ChunkRecord* sc = job.cache.TryRecord(sit->second);
          if (sc != nullptr && sc->is_superchunk &&
              MatchSuperchunk(*sc, pos, &job)) {
            BatchEntry e;
            e.pos = pos;
            e.len = sc->size;
            e.fp = sc->fp;
            e.resolved = true;
            e.base = *sc;
            entries.push_back(e);
            batch_bytes += e.len;
            pos += e.len;
            job.last_match = sit->second;
            continue;
          }
        }
      }

      BatchEntry e;
      e.pos = pos;
      e.len = static_cast<uint32_t>(len);
      e.fp = fp;
      if (handle.has_value()) {
        const ChunkRecord* rec = job.cache.TryRecord(*handle);
        if (rec != nullptr) {
          e.resolved = true;
          e.base = *rec;
          job.last_match = handle;
        }
      }
      entries.push_back(e);
      batch_bytes += len;
      pos += len;
    }

    // ---- Phase 2: coalesce runs of unresolved entries into
    // superchunks that phase 2 just made visible (Algorithm 1 applied
    // retroactively to this batch: the CDC boundaries inside a
    // duplicate superchunk are reproducible, so the span aligns with a
    // whole number of entries).
    if (options_.chunk_merging && !job.super_first.empty()) {
      std::vector<BatchEntry> coalesced;
      coalesced.reserve(entries.size());
      size_t i = 0;
      while (i < entries.size()) {
        const BatchEntry& e = entries[i];
        if (!e.resolved) {
          auto sit = job.super_first.find(e.fp);
          if (sit != job.super_first.end()) {
            const ChunkRecord* sc = job.cache.TryRecord(sit->second);
            if (sc != nullptr && sc->is_superchunk) {
              // Does the superchunk span cover a whole run of entries?
              uint64_t span = 0;
              size_t j = i;
              while (j < entries.size() && span < sc->size) {
                span += entries[j].len;
                ++j;
              }
              if (span == sc->size && MatchSuperchunk(*sc, e.pos, &job)) {
                BatchEntry merged;
                merged.pos = e.pos;
                merged.len = sc->size;
                merged.fp = sc->fp;
                merged.resolved = true;
                merged.base = *sc;
                coalesced.push_back(merged);
                i = j;
                continue;
              }
            }
          }
        }
        coalesced.push_back(e);
        ++i;
      }
      entries = std::move(coalesced);
    }

    // ---- Phase 3: resolve in stream order and emit records.
    for (const BatchEntry& e : entries) {
      if (e.resolved) {
        SLIM_RETURN_IF_ERROR(EmitDuplicate(e.base, true, e.pos, &job));
        continue;
      }
      // Prefer the copy this job already stored over a historical copy:
      // referencing a single (fresh) container keeps the new version's
      // locality and avoids split references to the same chunk.
      auto self_it = job.new_chunks.find(e.fp);
      if (self_it != job.new_chunks.end()) {
        SLIM_RETURN_IF_ERROR(
            EmitDuplicate(self_it->second, false, e.pos, &job));
        continue;
      }
      std::optional<DedupCache::Handle> handle;
      {
        ScopedPhase phase(&job.t_index);
        handle = job.cache.Lookup(e.fp);
      }
      if (handle.has_value()) {
        const ChunkRecord* rec = job.cache.TryRecord(*handle);
        if (rec != nullptr) {
          SLIM_RETURN_IF_ERROR(EmitDuplicate(*rec, true, e.pos, &job));
          continue;
        }
      }
      // Superchunk fallback: the chunk is a constituent of a cached
      // superchunk whose full-span match failed — its original copy
      // still lives in an old container.
      auto cit = job.constituent_map.find(e.fp);
      if (cit != job.constituent_map.end()) {
        SLIM_RETURN_IF_ERROR(EmitDuplicate(cit->second, true, e.pos, &job));
        continue;
      }
      SLIM_RETURN_IF_ERROR(MaybeMergePendingRun(&job, true));
      ChunkRecord record;
      SLIM_RETURN_IF_ERROR(StoreNewChunk(
          e.fp, job.window->View(e.pos, e.len), &record, &job));
      EmitRecord(record, &job);
      job.stats.total_chunks += 1;
      job.new_chunks.emplace(e.fp, record);
    }

    // ---- Batch end: flush the pending run, close the recipe segment,
    // and release the batch's bytes (streaming memory stays bounded).
    SLIM_RETURN_IF_ERROR(MaybeMergePendingRun(&job, true));
    if (!job.current_segment.records.empty()) {
      job.recipe.segments.push_back(std::move(job.current_segment));
      job.current_segment = SegmentRecipe();
    }
    window->DiscardBefore(pos);
  }
  job.stats.logical_bytes = pos;
  job.stats.peak_stream_buffer_bytes = window->peak_buffer_bytes();

  // Mark phase input for version collection: all containers this
  // version's recipe references (superchunk constituents included).
  // Computed before STEP 3 so the pending record below can carry the
  // full G-node worklist.
  job.stats.referenced_containers =
      format::CollectReferencedContainers(job.recipe);

  // Sparse container identification (input to G-node SCC): utilization
  // of every pre-existing container referenced by this backup. The
  // final container is still in the builder (flushed in STEP 3), so its
  // id counts as "own" explicitly.
  std::unordered_set<ContainerId> own(job.stats.new_containers.begin(),
                                      job.stats.new_containers.end());
  if (job.builder.has_value()) own.insert(job.builder->id());
  for (const auto& [cid, fps] : job.referenced) {
    if (own.count(cid) > 0) continue;
    auto count = containers_->ChunkCount(cid);
    if (!count.ok()) continue;
    size_t total = count.value();
    if (total == 0) continue;
    double utilization =
        static_cast<double>(fps.size()) / static_cast<double>(total);
    if (utilization < options_.sparse_utilization_threshold) {
      job.stats.sparse_containers.push_back(cid);
    }
  }

  // STEP 3: persist containers, the pending G-node worklist, then the
  // recipe. The recipe stays the commit point: a pending record whose
  // recipe never landed is an orphan that Rebuild deletes.
  {
    obs::Span span("backup.persist");
    SLIM_RETURN_IF_ERROR(FlushContainer(&job));
    if (options_.pending_store != nullptr) {
      format::PendingRecord pending;
      pending.file_id = file_id;
      pending.version = version;
      pending.new_containers = job.stats.new_containers;
      pending.sparse_containers = job.stats.sparse_containers;
      SLIM_RETURN_IF_ERROR(options_.pending_store->Write(pending));
    }
    SLIM_RETURN_IF_ERROR(
        recipes_->WriteRecipe(job.recipe, options_.sample_ratio));
  }

  // Register this version in the similar file index.
  std::vector<Fingerprint> samples;
  for (const auto& segment : job.recipe.segments) {
    for (const auto& record : segment.records) {
      if (format::IsSampleFingerprint(record.fp, options_.sample_ratio)) {
        samples.push_back(record.fp);
      }
    }
  }
  similar_files_->AddFileVersion(file_id, version, samples);

  job.stats.elapsed_seconds = total_watch.ElapsedSeconds();
  job.stats.cpu.chunking_nanos = job.t_chunking.total_nanos();
  job.stats.cpu.fingerprint_nanos = job.t_fingerprint.total_nanos();
  job.stats.cpu.index_nanos = job.t_index.total_nanos();
  uint64_t accounted = job.stats.cpu.chunking_nanos +
                       job.stats.cpu.fingerprint_nanos +
                       job.stats.cpu.index_nanos;
  uint64_t total_nanos = total_watch.ElapsedNanos();
  job.stats.cpu.other_nanos =
      total_nanos > accounted ? total_nanos - accounted : 0;

  auto& reg = obs::MetricsRegistry::Get();
  reg.counter("backup.jobs").Inc();
  reg.counter("backup.logical_bytes").Inc(job.stats.logical_bytes);
  reg.counter("backup.dup_bytes").Inc(job.stats.dup_bytes);
  reg.counter("backup.new_bytes").Inc(job.stats.new_bytes);
  reg.counter("backup.chunks").Inc(job.stats.total_chunks);
  reg.counter("backup.dup_chunks").Inc(job.stats.dup_chunks);
  reg.counter("backup.rewritten_chunks").Inc(job.stats.rewritten_chunks);
  reg.counter("backup.superchunks.formed").Inc(job.stats.superchunks_formed);
  reg.counter("backup.superchunks.matched").Inc(job.stats.superchunks_matched);
  reg.counter("backup.skip.successes").Inc(job.stats.skip_successes);
  reg.counter("backup.skip.failures").Inc(job.stats.skip_failures);
  reg.counter("backup.segments_fetched").Inc(job.stats.segments_fetched);
  reg.histogram("backup.chunking_ns").Record(job.stats.cpu.chunking_nanos);
  reg.histogram("backup.fingerprint_ns")
      .Record(job.stats.cpu.fingerprint_nanos);
  reg.histogram("backup.index_ns").Record(job.stats.cpu.index_nanos);
  reg.histogram("backup.latency_ns").Record(total_nanos);

  return std::move(job.stats);
}

}  // namespace slim::lnode
