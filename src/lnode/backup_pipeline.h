#ifndef SLIMSTORE_LNODE_BACKUP_PIPELINE_H_
#define SLIMSTORE_LNODE_BACKUP_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "chunking/chunker.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "format/container.h"
#include "format/pending.h"
#include "format/recipe.h"
#include "index/dedup_cache.h"
#include "lnode/stream_window.h"
#include "index/similar_file_index.h"

namespace slim::lnode {

/// Tunables of the online deduplication workflow (paper §IV).
struct BackupOptions {
  chunking::ChunkerType chunker_type = chunking::ChunkerType::kFastCdc;
  chunking::ChunkerParams chunker_params =
      chunking::ChunkerParams::FromAverage(4096);

  /// History-aware skip chunking (§IV-B).
  bool skip_chunking = true;
  /// History-aware chunk merging / superchunks (§IV-C).
  bool chunk_merging = false;
  /// Merge a run of consecutive duplicates once each chunk's
  /// duplicateTimes reaches this threshold.
  uint32_t merge_threshold = 5;
  /// Runs shorter than this are not worth a superchunk.
  uint32_t min_merge_chunks = 4;
  /// Upper bound on superchunk size.
  size_t max_superchunk_bytes = 1 << 20;  // 1 MiB

  /// "mod R == 0" sampling ratio for recipe/similarity indexes.
  uint32_t sample_ratio = 32;
  /// Consecutive segment recipes fetched per OSS range read.
  uint32_t segment_prefetch_batch = 4;
  /// Segment boundary: whichever of bytes / chunk count trips first.
  size_t segment_bytes = 1 << 20;  // 1 MiB logical
  size_t segment_max_chunks = 1024;

  size_t container_capacity = 1 << 22;  // 4 MiB
  size_t dedup_cache_segments = 64;

  /// Containers whose utilization by this backup is below this threshold
  /// are reported as sparse (input to SCC, §V-B).
  double sparse_utilization_threshold = 0.30;
  /// Only containers older than the current backup's first new container
  /// can be sparse (fresh containers are still being filled).
  /// Header bytes chunked for similarity detection when the file name is
  /// unknown (STEP 1 fallback).
  size_t similarity_header_bytes = 4 << 20;
  /// Minimum shared samples to accept a similar file.
  size_t min_similarity_samples = 1;

  /// When set, each backup persists its G-node worklist (new + sparse
  /// containers) as a durable pending record just before the recipe
  /// commit, so a crash-restarted L-node can rebuild exactly which
  /// versions still owe a G-node pass. Non-owning; null disables.
  format::PendingStore* pending_store = nullptr;

  /// HAR-style rewriting (baseline mode, Fu et al. ATC'14): duplicate
  /// chunks that live in these containers — the sparse containers the
  /// *previous* backup identified — are stored again instead of
  /// referenced, trading dedup ratio for restore locality of the next
  /// version. Null disables rewriting (SlimStore itself uses SCC
  /// instead).
  std::shared_ptr<const std::unordered_set<format::ContainerId>>
      har_rewrite_containers;
};

/// How the historical base version was found.
enum class BaseDetection { kNone, kByName, kBySimilarity };

/// CPU time attribution (Fig 2 / Fig 5d).
struct CpuBreakdown {
  uint64_t chunking_nanos = 0;
  uint64_t fingerprint_nanos = 0;
  uint64_t index_nanos = 0;
  uint64_t other_nanos = 0;

  uint64_t total_nanos() const {
    return chunking_nanos + fingerprint_nanos + index_nanos + other_nanos;
  }
};

/// Everything a backup job reports.
struct BackupStats {
  std::string file_id;
  uint64_t version = 0;
  BaseDetection detection = BaseDetection::kNone;

  uint64_t logical_bytes = 0;   // Input size.
  uint64_t dup_bytes = 0;       // Removed as duplicates.
  uint64_t new_bytes = 0;       // Stored into containers.
  uint64_t total_chunks = 0;
  uint64_t dup_chunks = 0;
  uint64_t superchunks_formed = 0;
  uint64_t superchunks_matched = 0;
  uint64_t skip_successes = 0;
  uint64_t skip_failures = 0;
  uint64_t segments_fetched = 0;
  /// Duplicates stored again by HAR rewriting (baseline mode only).
  uint64_t rewritten_chunks = 0;

  CpuBreakdown cpu;
  double elapsed_seconds = 0;
  /// High-water mark of the streaming window buffer (0 for in-memory
  /// backups): proves streaming memory stays bounded.
  uint64_t peak_stream_buffer_bytes = 0;

  std::vector<format::ContainerId> new_containers;
  std::vector<format::ContainerId> sparse_containers;
  /// Every container the new recipe references (new + historical); used
  /// by version collection's mark phase (§VI-B).
  std::vector<format::ContainerId> referenced_containers;

  double DedupRatio() const {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(dup_bytes) /
                     static_cast<double>(logical_bytes);
  }
  double ThroughputMBps() const {
    return elapsed_seconds <= 0
               ? 0.0
               : (static_cast<double>(logical_bytes) / (1024.0 * 1024.0)) /
                     elapsed_seconds;
  }
  double MeanChunkBytes() const {
    return total_chunks == 0
               ? 0.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(total_chunks);
  }
};

/// Online deduplication on the L-node (paper §IV). Stateless between
/// jobs: everything needed is fetched from the storage layer during the
/// job, which is what lets L-nodes scale elastically.
class BackupPipeline {
 public:
  /// All pointers must outlive the pipeline; they are the OSS-resident
  /// storage layer plus the (shared, in-memory) similar file index.
  BackupPipeline(format::ContainerStore* containers,
                 format::RecipeStore* recipes,
                 index::SimilarFileIndex* similar_files,
                 BackupOptions options);

  /// Deduplicates one backup file and persists containers + recipe +
  /// indexes. `version` must be greater than any existing version of
  /// this file (use AllocateVersion for convenience).
  Result<BackupStats> Backup(const std::string& file_id,
                             std::string_view data, uint64_t version);

  /// Streaming variant: consumes `source` with O(segment + lookahead)
  /// memory instead of requiring the whole input in one buffer.
  Result<BackupStats> BackupStream(const std::string& file_id,
                                   ByteSource* source, uint64_t version);

  /// Next version number for the file (latest + 1, or 0).
  uint64_t AllocateVersion(const std::string& file_id) const;

  const BackupOptions& options() const { return options_; }

 private:
  struct JobState;

  /// Shared implementation behind Backup / BackupStream.
  Result<BackupStats> BackupFromWindow(const std::string& file_id,
                                       StreamWindow* window,
                                       uint64_t version);

  /// STEP 1: find the historical version or a similar file.
  std::optional<index::FileVersion> DetectBase(const std::string& file_id,
                                               JobState* job);

  /// If `fp` is a sampled fingerprint of the base version, fetches the
  /// matching segment recipe into the dedup cache (STEP 2 prefetch).
  void PrefetchSegmentFor(const Fingerprint& fp, JobState* job);
  /// Fetches base segment `ordinal` into the dedup cache (once);
  /// returns its cache sequence number.
  std::optional<uint64_t> PrefetchSegmentOrdinal(uint32_t ordinal,
                                                 JobState* job);

  /// True iff the superchunk record matches the input bytes at `pos`.
  bool MatchSuperchunk(const format::ChunkRecord& sc, size_t pos,
                       JobState* job);
  /// Emits a record to the current segment.
  void EmitRecord(const format::ChunkRecord& record, JobState* job);
  /// Emits a duplicate record (with history-aware merging bookkeeping).
  Status EmitDuplicate(const format::ChunkRecord& base_record,
                       bool increment_dup_times, size_t stream_pos,
                       JobState* job);
  /// Stores a unique chunk's bytes, flushing full containers.
  Status StoreNewChunk(const Fingerprint& fp, std::string_view bytes,
                       format::ChunkRecord* record, JobState* job);
  Status FlushContainer(JobState* job);
  /// Tries to merge the pending duplicate run into a superchunk.
  Status MaybeMergePendingRun(JobState* job, bool force);

  format::ContainerStore* containers_;
  format::RecipeStore* recipes_;
  index::SimilarFileIndex* similar_files_;
  BackupOptions options_;
  std::unique_ptr<chunking::Chunker> chunker_;
};

}  // namespace slim::lnode

#endif  // SLIMSTORE_LNODE_BACKUP_PIPELINE_H_
