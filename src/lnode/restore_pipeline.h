#ifndef SLIMSTORE_LNODE_RESTORE_PIPELINE_H_
#define SLIMSTORE_LNODE_RESTORE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "format/container.h"
#include "format/recipe.h"
#include "index/global_index.h"

namespace slim::lnode {

/// Tunables of the online restore path (paper §V-A).
struct RestoreOptions {
  /// Capacity of the in-memory chunk cache (Cache_m).
  size_t cache_bytes = 64 << 20;
  /// Capacity of the L-node local-disk spill cache (Cache_d).
  size_t disk_cache_bytes = 256 << 20;
  /// Look-ahead window length, in chunk records.
  size_t law_chunks = 2048;
  /// Number of background prefetch threads reading containers in the
  /// LAW. 0 disables prefetching (reads happen inline, Table II row 0).
  size_t prefetch_threads = 0;
  /// Used to chase chunks that reverse dedup / SCC moved out of the
  /// container the recipe references. May be null (no redirects then).
  index::GlobalIndex* global_index = nullptr;
};

/// Everything a restore job reports. Shared by the SlimStore restore
/// pipeline and all baseline cache policies so experiments compare like
/// for like.
struct RestoreStats {
  uint64_t logical_bytes = 0;
  uint64_t chunks_restored = 0;
  /// Container payload fetches from OSS (the paper's read-amplification
  /// metric is containers read per 100 MB restored).
  uint64_t containers_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t cache_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t disk_spills = 0;
  uint64_t redirects = 0;
  double elapsed_seconds = 0;

  double ThroughputMBps() const {
    return elapsed_seconds <= 0
               ? 0.0
               : (static_cast<double>(logical_bytes) / (1024.0 * 1024.0)) /
                     elapsed_seconds;
  }
  double ContainersPer100MB() const {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(containers_fetched) * 100.0 * 1024.0 *
                     1024.0 / static_cast<double>(logical_bytes);
  }
};

/// Online restore on the L-node (paper §V-A): walks the recipe's chunk
/// sequence, fetching containers from OSS through
///   * a full-vision chunk cache — a per-file counting bloom filter
///     tracks every future reference, chunks are classed S_I (in the
///     look-ahead window), S_L (referenced later), S_U (dead), and only
///     useful chunks occupy cache; S_L overflow spills to the local-disk
///     Cache_d instead of being dropped;
///   * optional LAW-based multi-threaded prefetching, which reads the
///     containers the window is about to need before the restore cursor
///     reaches them, hiding OSS latency entirely once prefetch outruns
///     restore (Table II).
class RestorePipeline {
 public:
  RestorePipeline(format::ContainerStore* containers,
                  format::RecipeStore* recipes, RestoreOptions options)
      : containers_(containers), recipes_(recipes), options_(options) {}

  /// Receives restored bytes in stream order. Returning a non-OK status
  /// aborts the restore.
  using Sink = std::function<Status(std::string_view)>;

  /// Restores the full content of (file, version). On success the
  /// returned string is byte-identical to the backed-up data.
  Result<std::string> Restore(const std::string& file_id, uint64_t version,
                              RestoreStats* stats);

  /// Streaming variant: chunks are pushed to `sink` as they are
  /// restored, so the whole file never has to fit in memory.
  Status RestoreToSink(const std::string& file_id, uint64_t version,
                       const Sink& sink, RestoreStats* stats);

  const RestoreOptions& options() const { return options_; }

 private:


  format::ContainerStore* containers_;
  format::RecipeStore* recipes_;
  RestoreOptions options_;
};

}  // namespace slim::lnode

#endif  // SLIMSTORE_LNODE_RESTORE_PIPELINE_H_
