#include "oss/simulated_oss.h"

#include <chrono>
#include <thread>

#include "common/macros.h"

namespace slim::oss {

Status SimulatedOss::MaybeInjectFailure(const char* op,
                                        const std::string& key) {
  if (injector_) return injector_(op, key);
  return Status::Ok();
}

void SimulatedOss::Charge(uint64_t cost_nanos) {
  sim_cost_nanos_.fetch_add(cost_nanos, std::memory_order_relaxed);
  if (model_.sleep_for_cost && cost_nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(cost_nanos));
  }
}

Status SimulatedOss::Put(const std::string& key, std::string value) {
  SLIM_RETURN_IF_ERROR(MaybeInjectFailure("put", key));
  put_requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(value.size(), std::memory_order_relaxed);
  Charge(model_.WriteCostNanos(value.size()));
  return inner_->Put(key, std::move(value));
}

Result<std::string> SimulatedOss::Get(const std::string& key) {
  {
    Status s = MaybeInjectFailure("get", key);
    if (!s.ok()) return s;
  }
  get_requests_.fetch_add(1, std::memory_order_relaxed);
  auto result = inner_->Get(key);
  if (result.ok()) {
    bytes_read_.fetch_add(result.value().size(), std::memory_order_relaxed);
    Charge(model_.ReadCostNanos(result.value().size()));
  } else {
    Charge(model_.request_latency_nanos);
  }
  return result;
}

Result<std::string> SimulatedOss::GetRange(const std::string& key,
                                           uint64_t offset, uint64_t len) {
  {
    Status s = MaybeInjectFailure("get", key);
    if (!s.ok()) return s;
  }
  get_requests_.fetch_add(1, std::memory_order_relaxed);
  auto result = inner_->GetRange(key, offset, len);
  if (result.ok()) {
    bytes_read_.fetch_add(result.value().size(), std::memory_order_relaxed);
    Charge(model_.ReadCostNanos(result.value().size()));
  } else {
    Charge(model_.request_latency_nanos);
  }
  return result;
}

Status SimulatedOss::Delete(const std::string& key) {
  SLIM_RETURN_IF_ERROR(MaybeInjectFailure("delete", key));
  delete_requests_.fetch_add(1, std::memory_order_relaxed);
  Charge(model_.request_latency_nanos);
  return inner_->Delete(key);
}

Result<bool> SimulatedOss::Exists(const std::string& key) {
  {
    Status s = MaybeInjectFailure("exists", key);
    if (!s.ok()) return s;
  }
  Charge(model_.request_latency_nanos);
  return inner_->Exists(key);
}

Result<uint64_t> SimulatedOss::Size(const std::string& key) {
  {
    Status s = MaybeInjectFailure("size", key);
    if (!s.ok()) return s;
  }
  Charge(model_.request_latency_nanos);
  return inner_->Size(key);
}

Result<std::vector<std::string>> SimulatedOss::List(
    const std::string& prefix) {
  {
    Status s = MaybeInjectFailure("list", prefix);
    if (!s.ok()) return s;
  }
  list_requests_.fetch_add(1, std::memory_order_relaxed);
  Charge(model_.request_latency_nanos);
  return inner_->List(prefix);
}

OssMetricsSnapshot SimulatedOss::metrics() const {
  OssMetricsSnapshot snap;
  snap.get_requests = get_requests_.load(std::memory_order_relaxed);
  snap.put_requests = put_requests_.load(std::memory_order_relaxed);
  snap.delete_requests = delete_requests_.load(std::memory_order_relaxed);
  snap.list_requests = list_requests_.load(std::memory_order_relaxed);
  snap.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  snap.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  snap.sim_cost_nanos = sim_cost_nanos_.load(std::memory_order_relaxed);
  return snap;
}

void SimulatedOss::ResetMetrics() {
  get_requests_ = 0;
  put_requests_ = 0;
  delete_requests_ = 0;
  list_requests_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  sim_cost_nanos_ = 0;
}

}  // namespace slim::oss
