#include "oss/simulated_oss.h"

#include <chrono>
#include <thread>

#include "common/lockdep.h"
#include "common/macros.h"

namespace slim::oss {

SimulatedOss::SimulatedOss(ObjectStore* inner, OssCostModel model)
    : inner_(inner), model_(model) {
  auto& reg = obs::MetricsRegistry::Get();
  auto op = [&reg](const char* name) {
    std::string base = std::string("oss.") + name;
    return OpMetrics{&reg.counter(base + ".requests"),
                     &reg.counter(base + ".bytes"),
                     &reg.histogram(base + ".latency_ns")};
  };
  m_get_ = op("get");
  m_getrange_ = op("getrange");
  m_put_ = op("put");
  m_delete_ = op("delete");
  m_list_ = op("list");
  m_exists_ = op("exists");
  m_size_ = op("size");
  m_errors_ = &reg.counter("oss.errors");
}

Status SimulatedOss::MaybeInjectFailure(const char* op,
                                        const std::string& key) {
  if (injector_) return injector_(op, key);
  return Status::Ok();
}

void SimulatedOss::Charge(uint64_t cost_nanos) {
  sim_cost_nanos_.fetch_add(cost_nanos, std::memory_order_relaxed);
  if (model_.sleep_for_cost && cost_nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(cost_nanos));
  }
}

Status SimulatedOss::Put(const std::string& key, std::string value) {
  lockdep::CheckBlockingCall("oss.put");
  SLIM_RETURN_IF_ERROR(MaybeInjectFailure("put", key));
  put_requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(value.size(), std::memory_order_relaxed);
  uint64_t cost = model_.WriteCostNanos(value.size());
  m_put_.requests->Inc();
  m_put_.bytes->Inc(value.size());
  m_put_.latency->Record(cost);
  Charge(cost);
  return inner_->Put(key, std::move(value));
}

Result<std::string> SimulatedOss::Get(const std::string& key) {
  lockdep::CheckBlockingCall("oss.get");
  {
    Status s = MaybeInjectFailure("get", key);
    if (!s.ok()) return s;
  }
  get_requests_.fetch_add(1, std::memory_order_relaxed);
  m_get_.requests->Inc();
  auto result = inner_->Get(key);
  if (result.ok()) {
    uint64_t cost = model_.ReadCostNanos(result.value().size());
    bytes_read_.fetch_add(result.value().size(), std::memory_order_relaxed);
    m_get_.bytes->Inc(result.value().size());
    m_get_.latency->Record(cost);
    Charge(cost);
  } else {
    m_errors_->Inc();
    m_get_.latency->Record(model_.request_latency_nanos);
    Charge(model_.request_latency_nanos);
  }
  return result;
}

Result<std::string> SimulatedOss::GetRange(const std::string& key,
                                           uint64_t offset, uint64_t len) {
  lockdep::CheckBlockingCall("oss.getrange");
  {
    Status s = MaybeInjectFailure("get", key);
    if (!s.ok()) return s;
  }
  getrange_requests_.fetch_add(1, std::memory_order_relaxed);
  m_getrange_.requests->Inc();
  auto result = inner_->GetRange(key, offset, len);
  if (result.ok()) {
    uint64_t cost = model_.ReadCostNanos(result.value().size());
    ranged_bytes_read_.fetch_add(result.value().size(),
                                 std::memory_order_relaxed);
    m_getrange_.bytes->Inc(result.value().size());
    m_getrange_.latency->Record(cost);
    Charge(cost);
  } else {
    m_errors_->Inc();
    m_getrange_.latency->Record(model_.request_latency_nanos);
    Charge(model_.request_latency_nanos);
  }
  return result;
}

Status SimulatedOss::Delete(const std::string& key) {
  lockdep::CheckBlockingCall("oss.delete");
  SLIM_RETURN_IF_ERROR(MaybeInjectFailure("delete", key));
  delete_requests_.fetch_add(1, std::memory_order_relaxed);
  m_delete_.requests->Inc();
  m_delete_.latency->Record(model_.request_latency_nanos);
  Charge(model_.request_latency_nanos);
  return inner_->Delete(key);
}

Result<bool> SimulatedOss::Exists(const std::string& key) {
  lockdep::CheckBlockingCall("oss.exists");
  {
    Status s = MaybeInjectFailure("exists", key);
    if (!s.ok()) return s;
  }
  exists_requests_.fetch_add(1, std::memory_order_relaxed);
  m_exists_.requests->Inc();
  m_exists_.latency->Record(model_.request_latency_nanos);
  Charge(model_.request_latency_nanos);
  return inner_->Exists(key);
}

Result<uint64_t> SimulatedOss::Size(const std::string& key) {
  lockdep::CheckBlockingCall("oss.size");
  {
    Status s = MaybeInjectFailure("size", key);
    if (!s.ok()) return s;
  }
  size_requests_.fetch_add(1, std::memory_order_relaxed);
  m_size_.requests->Inc();
  m_size_.latency->Record(model_.request_latency_nanos);
  Charge(model_.request_latency_nanos);
  return inner_->Size(key);
}

Result<std::vector<std::string>> SimulatedOss::List(
    const std::string& prefix) {
  lockdep::CheckBlockingCall("oss.list");
  {
    Status s = MaybeInjectFailure("list", prefix);
    if (!s.ok()) return s;
  }
  list_requests_.fetch_add(1, std::memory_order_relaxed);
  m_list_.requests->Inc();
  m_list_.latency->Record(model_.request_latency_nanos);
  Charge(model_.request_latency_nanos);
  return inner_->List(prefix);
}

OssMetricsSnapshot SimulatedOss::metrics() const {
  OssMetricsSnapshot snap;
  snap.get_requests = get_requests_.load(std::memory_order_relaxed);
  snap.getrange_requests =
      getrange_requests_.load(std::memory_order_relaxed);
  snap.put_requests = put_requests_.load(std::memory_order_relaxed);
  snap.delete_requests = delete_requests_.load(std::memory_order_relaxed);
  snap.list_requests = list_requests_.load(std::memory_order_relaxed);
  snap.exists_requests = exists_requests_.load(std::memory_order_relaxed);
  snap.size_requests = size_requests_.load(std::memory_order_relaxed);
  snap.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  snap.ranged_bytes_read =
      ranged_bytes_read_.load(std::memory_order_relaxed);
  snap.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  snap.sim_cost_nanos = sim_cost_nanos_.load(std::memory_order_relaxed);
  return snap;
}

void SimulatedOss::ResetMetrics() {
  get_requests_ = 0;
  getrange_requests_ = 0;
  put_requests_ = 0;
  delete_requests_ = 0;
  list_requests_ = 0;
  exists_requests_ = 0;
  size_requests_ = 0;
  bytes_read_ = 0;
  ranged_bytes_read_ = 0;
  bytes_written_ = 0;
  sim_cost_nanos_ = 0;
}

}  // namespace slim::oss
