#ifndef SLIMSTORE_OSS_SIMULATED_OSS_H_
#define SLIMSTORE_OSS_SIMULATED_OSS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "oss/object_store.h"

namespace slim::oss {

/// Cost model for remote object storage. Defaults approximate the
/// relationship the paper relies on: high per-request latency, modest
/// single-channel bandwidth, and linear scaling across parallel channels
/// (each calling thread is its own channel).
struct OssCostModel {
  /// Fixed cost charged per request (HTTP round trip).
  uint64_t request_latency_nanos = 200 * 1000;  // 200 us
  /// Transfer cost per byte read (1e9/bw_bytes_per_sec). Default
  /// ~200 MB/s single channel.
  double read_nanos_per_byte = 5.0;
  /// Transfer cost per byte written. Default ~200 MB/s.
  double write_nanos_per_byte = 5.0;
  /// If true, each request really sleeps for its cost, so multi-threaded
  /// prefetching measurably hides latency (Table II). If false, costs are
  /// only accounted, which is enough for counting experiments.
  bool sleep_for_cost = true;

  uint64_t ReadCostNanos(uint64_t bytes) const {
    return request_latency_nanos +
           static_cast<uint64_t>(read_nanos_per_byte * static_cast<double>(bytes));
  }
  uint64_t WriteCostNanos(uint64_t bytes) const {
    return request_latency_nanos +
           static_cast<uint64_t>(write_nanos_per_byte *
                                 static_cast<double>(bytes));
  }
};

/// Snapshot of accumulated I/O accounting. Every operation type is
/// counted separately: full Gets and ranged Gets are distinguished so
/// restore read-amplification (full container reads) is exact, and the
/// metadata probes Exists/Size are visible instead of free.
struct OssMetricsSnapshot {
  uint64_t get_requests = 0;       // Full-object Gets only.
  uint64_t getrange_requests = 0;  // Ranged reads (segment prefetch).
  uint64_t put_requests = 0;
  uint64_t delete_requests = 0;
  uint64_t list_requests = 0;
  uint64_t exists_requests = 0;
  uint64_t size_requests = 0;
  uint64_t bytes_read = 0;         // Full-Get payload bytes.
  uint64_t ranged_bytes_read = 0;  // GetRange payload bytes.
  uint64_t bytes_written = 0;
  /// Sum of per-request simulated costs. This is the single-channel
  /// (serialized) I/O time; dividing data volume by it gives the
  /// simulated single-channel throughput.
  uint64_t sim_cost_nanos = 0;

  uint64_t total_requests() const {
    return get_requests + getrange_requests + put_requests +
           delete_requests + list_requests + exists_requests + size_requests;
  }
  uint64_t total_bytes_read() const { return bytes_read + ranged_bytes_read; }

  OssMetricsSnapshot operator-(const OssMetricsSnapshot& rhs) const {
    OssMetricsSnapshot d;
    d.get_requests = get_requests - rhs.get_requests;
    d.getrange_requests = getrange_requests - rhs.getrange_requests;
    d.put_requests = put_requests - rhs.put_requests;
    d.delete_requests = delete_requests - rhs.delete_requests;
    d.list_requests = list_requests - rhs.list_requests;
    d.exists_requests = exists_requests - rhs.exists_requests;
    d.size_requests = size_requests - rhs.size_requests;
    d.bytes_read = bytes_read - rhs.bytes_read;
    d.ranged_bytes_read = ranged_bytes_read - rhs.ranged_bytes_read;
    d.bytes_written = bytes_written - rhs.bytes_written;
    d.sim_cost_nanos = sim_cost_nanos - rhs.sim_cost_nanos;
    return d;
  }
};

/// Hook for failure injection in tests: return a non-OK status to make
/// the operation fail without touching the inner store. `op` is one of
/// "get", "put", "delete", "list", "exists", "size".
using FailureInjector =
    std::function<Status(const std::string& op, const std::string& key)>;

/// Decorator that turns any ObjectStore into a "remote" one by charging
/// (and optionally sleeping for) per-request latency and per-byte
/// transfer costs, while recording full I/O metrics. All SlimStore
/// components talk to OSS through this class, so every experiment's
/// container-read counts and bandwidth figures are exact measurements.
///
/// Besides the per-instance snapshot, every operation feeds the
/// process-wide obs::MetricsRegistry ("oss.<op>.requests",
/// "oss.<op>.bytes", "oss.<op>.latency_ns"), which aggregates across
/// concurrent jobs and instances.
class SimulatedOss : public ObjectStore {
 public:
  /// Does not take ownership of `inner`.
  SimulatedOss(ObjectStore* inner, OssCostModel model);

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  OssMetricsSnapshot metrics() const;
  void ResetMetrics();

  const OssCostModel& cost_model() const { return model_; }
  void set_cost_model(const OssCostModel& model) { model_ = model; }

  /// Installs (or clears, with nullptr) a failure injector.
  void set_failure_injector(FailureInjector injector) {
    injector_ = std::move(injector);
  }

  ObjectStore* inner() { return inner_; }

 private:
  Status MaybeInjectFailure(const char* op, const std::string& key);
  void Charge(uint64_t cost_nanos);

  ObjectStore* inner_;
  OssCostModel model_;
  FailureInjector injector_;

  std::atomic<uint64_t> get_requests_{0};
  std::atomic<uint64_t> getrange_requests_{0};
  std::atomic<uint64_t> put_requests_{0};
  std::atomic<uint64_t> delete_requests_{0};
  std::atomic<uint64_t> list_requests_{0};
  std::atomic<uint64_t> exists_requests_{0};
  std::atomic<uint64_t> size_requests_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> ranged_bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> sim_cost_nanos_{0};

  // Registry handles, resolved once (hot-path updates are lock-free).
  struct OpMetrics {
    obs::Counter* requests;
    obs::Counter* bytes;
    obs::Histogram* latency;
  };
  OpMetrics m_get_;
  OpMetrics m_getrange_;
  OpMetrics m_put_;
  OpMetrics m_delete_;
  OpMetrics m_list_;
  OpMetrics m_exists_;
  OpMetrics m_size_;
  obs::Counter* m_errors_;
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_SIMULATED_OSS_H_
