#ifndef SLIMSTORE_OSS_MEMORY_OBJECT_STORE_H_
#define SLIMSTORE_OSS_MEMORY_OBJECT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "oss/object_store.h"

namespace slim::oss {

/// In-process ObjectStore backed by a sorted map. This is the substrate
/// under SimulatedOss in every test and benchmark: it provides correct,
/// thread-safe object semantics while SimulatedOss adds the cloud cost
/// model on top.
class MemoryObjectStore : public ObjectStore {
 public:
  MemoryObjectStore() = default;

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  /// Number of stored objects (test/diagnostic helper).
  size_t ObjectCount() const;

 private:
  mutable SharedMutex mu_{"oss.memory"};
  std::map<std::string, std::string> objects_ SLIM_GUARDED_BY(mu_);
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_MEMORY_OBJECT_STORE_H_
