#ifndef SLIMSTORE_OSS_RETRYING_OBJECT_STORE_H_
#define SLIMSTORE_OSS_RETRYING_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "oss/object_store.h"

namespace slim::oss {

/// Retry behaviour for RetryingObjectStore: capped exponential backoff
/// with deterministic jitter and a global retry budget.
struct RetryPolicy {
  /// Total attempts per operation (first try + retries). Must be >= 1.
  int max_attempts = 4;

  /// Backoff before retry k (1-based) is
  ///   min(initial * multiplier^(k-1), max) * (1 + jitter)
  /// with jitter drawn uniformly from [-jitter_fraction, +jitter_fraction]
  /// by a seeded Rng, so a single-threaded run replays identically.
  uint64_t initial_backoff_nanos = 1 * 1000 * 1000;   // 1 ms
  uint64_t max_backoff_nanos = 100 * 1000 * 1000;     // 100 ms
  double multiplier = 2.0;
  double jitter_fraction = 0.2;

  /// Upper bound on retries across the store's lifetime. Once spent, all
  /// further failures pass through on the first attempt — a circuit
  /// breaker against retry storms when the backend is hard down.
  uint64_t retry_budget = 1 << 20;

  /// If false (tests, simulations), backoff is computed and recorded in
  /// the oss.retry.backoff_ns histogram but not actually slept.
  bool sleep_on_backoff = false;

  /// Seed for the jitter Rng.
  uint64_t seed = 1;
};

/// Point-in-time view of a RetryingObjectStore's own counters (the
/// process-global oss.retry.* metrics aggregate across instances; tests
/// want per-instance numbers).
struct RetryStatsSnapshot {
  uint64_t retries = 0;             // Backoff-then-retry transitions.
  uint64_t successes_after_retry = 0;  // Ops that needed >= 1 retry, then passed.
  uint64_t exhausted = 0;           // Ops that failed all max_attempts tries.
  uint64_t permanent_errors = 0;    // Non-retryable failures passed through.
  uint64_t budget_exhausted = 0;    // Retries suppressed by the spent budget.
};

/// Decorator that retries transient failures (IsRetryableStatusCode:
/// Unavailable, DeadlineExceeded, ResourceExhausted) of the inner store
/// with capped exponential backoff and deterministic jitter. Permanent
/// errors (NotFound, InvalidArgument, Corruption, IoError, ...) pass
/// through untouched on the first attempt — retrying those only hides
/// bugs and burns budget.
///
/// Stacking order (see DESIGN.md "Failure model"): retries belong
/// OUTSIDE fault injection and OUTSIDE the cost model, i.e.
///   Retrying(FaultInjecting(SimulatedOss(backing)))
/// so each attempt is charged and each attempt re-rolls the injected
/// fault — exactly how a real client retries a real flaky store.
///
/// Safe only because ObjectStore ops are idempotent: Put is a full
/// overwrite, Delete of a missing key is OK, reads are pure.
///
/// Does not take ownership of the inner store. Thread-safe; the jitter
/// Rng is mutex-protected (its draw order — hence exact backoff values —
/// is deterministic when calls are single-threaded).
class RetryingObjectStore : public ObjectStore {
 public:
  RetryingObjectStore(ObjectStore* inner, RetryPolicy policy);

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  RetryStatsSnapshot stats() const;

  const RetryPolicy& policy() const { return policy_; }
  ObjectStore* inner() { return inner_; }

 private:
  static const Status& StatusOf(const Status& s) { return s; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& r) {
    return r.status();
  }

  /// Runs `fn(final_attempt)` under the retry loop. `fn` must be
  /// idempotent; `final_attempt` is true when no further retry can
  /// happen (lets Put move its value on the last try).
  template <typename Fn>
  auto RunWithRetry(Fn&& fn) -> decltype(fn(true)) {
    uint64_t backoff = policy_.initial_backoff_nanos;
    for (int attempt = 1;; ++attempt) {
      bool out_of_attempts = attempt >= policy_.max_attempts;
      bool out_of_budget =
          retries_.load(std::memory_order_relaxed) >= policy_.retry_budget;
      bool final_attempt = out_of_attempts || out_of_budget;

      auto result = fn(final_attempt);
      const Status& status = StatusOf(result);
      if (status.ok()) {
        if (attempt > 1) {
          successes_after_retry_.fetch_add(1, std::memory_order_relaxed);
          m_success_->Inc();
        }
        return result;
      }
      if (!status.IsRetryable()) {
        permanent_errors_.fetch_add(1, std::memory_order_relaxed);
        m_permanent_->Inc();
        return result;
      }
      if (out_of_attempts) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        m_exhausted_->Inc();
        return result;
      }
      if (out_of_budget) {
        budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
        m_budget_exhausted_->Inc();
        return result;
      }
      Backoff(&backoff);
    }
  }

  /// Sleeps (optionally) for the jittered current backoff and advances
  /// `*backoff` exponentially, capped at max_backoff_nanos.
  void Backoff(uint64_t* backoff) SLIM_EXCLUDES(mu_);

  // Not SLIM_PT_GUARDED_BY(mu_): mu_ only covers the jitter RNG; the
  // inner store locks for itself and retried calls must overlap.
  ObjectStore* inner_;
  const RetryPolicy policy_;

  mutable Mutex mu_{"oss.retry_stats"};
  Rng rng_ SLIM_GUARDED_BY(mu_);

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> successes_after_retry_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> permanent_errors_{0};
  std::atomic<uint64_t> budget_exhausted_{0};

  // Registry handles, resolved once in the constructor.
  obs::Counter* m_retries_;
  obs::Counter* m_success_;
  obs::Counter* m_exhausted_;
  obs::Counter* m_permanent_;
  obs::Counter* m_budget_exhausted_;
  obs::Histogram* m_backoff_;
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_RETRYING_OBJECT_STORE_H_
