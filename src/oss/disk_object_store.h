#ifndef SLIMSTORE_OSS_DISK_OBJECT_STORE_H_
#define SLIMSTORE_OSS_DISK_OBJECT_STORE_H_

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "oss/object_store.h"

namespace slim::oss {

/// Filesystem-backed ObjectStore: each object is a file under a root
/// directory, with the key percent-encoded into a flat file name (no
/// surprise directory trees from arbitrary keys). Suitable as a durable
/// local backend (the "ossfs" role) and for the CLI tool; swap in a real
/// cloud SDK binding by implementing ObjectStore against it.
///
/// Writes are atomic (temp file + rename), so a crashed writer never
/// leaves a torn object behind.
class DiskObjectStore : public ObjectStore {
 public:
  /// Creates `root` if needed.
  static Result<std::unique_ptr<DiskObjectStore>> Open(
      const std::string& root);

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  const std::string& root() const { return root_; }

 private:
  explicit DiskObjectStore(std::string root) : root_(std::move(root)) {}

  std::filesystem::path PathFor(const std::string& key) const;
  static std::string EncodeKey(const std::string& key);
  static std::string DecodeKey(const std::string& name);

  std::string root_;
  // Guards cross-file operations (List vs concurrent Put/Delete);
  // the protected state is the directory tree itself, not a member.
  mutable SharedMutex mu_{"oss.disk"};
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_DISK_OBJECT_STORE_H_
