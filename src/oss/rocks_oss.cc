#include "oss/rocks_oss.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/macros.h"
#include "durability/checksum.h"

namespace slim::oss {

namespace {

// Run object layout:
//   fixed64 entry_count
//   fixed32 bloom_hashes
//   fixed64 bloom_word_count, then bloom words
//   entry_count * { varint key_len, key, fixed32 flags(1=tombstone),
//                   varint value_len, value }
constexpr uint32_t kTombstoneFlag = 1;

void BloomAdd(std::vector<uint64_t>* bits, uint32_t hashes,
              const std::string& key) {
  if (bits->empty()) return;
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1);
  uint64_t nbits = bits->size() * 64;
  for (uint32_t i = 0; i < hashes; ++i) {
    uint64_t bit = (h1 + i * h2) % nbits;
    (*bits)[bit / 64] |= (uint64_t{1} << (bit % 64));
  }
}

bool BloomTest(const std::vector<uint64_t>& bits, uint32_t hashes,
               const std::string& key) {
  if (bits.empty()) return true;
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1);
  uint64_t nbits = bits.size() * 64;
  for (uint32_t i = 0; i < hashes; ++i) {
    uint64_t bit = (h1 + i * h2) % nbits;
    if ((bits[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace

RocksOss::RocksOss(ObjectStore* store, std::string name,
                   RocksOssOptions options)
    : store_(store), name_(std::move(name)), options_(options) {
  auto& reg = obs::MetricsRegistry::Get();
  metrics_.flushes = &reg.counter("rocksoss.memtable.flushes");
  metrics_.flush_bytes = &reg.counter("rocksoss.memtable.flush_bytes");
  metrics_.compactions = &reg.counter("rocksoss.compactions");
  metrics_.compaction_input_runs =
      &reg.counter("rocksoss.compaction.input_runs");
  metrics_.compaction_bytes = &reg.counter("rocksoss.compaction.bytes");
  metrics_.bloom_negatives = &reg.counter("rocksoss.bloom.negatives");
  metrics_.bloom_true_positives =
      &reg.counter("rocksoss.bloom.true_positives");
  metrics_.bloom_false_positives =
      &reg.counter("rocksoss.bloom.false_positives");
  metrics_.run_cache_hits = &reg.counter("rocksoss.run_cache.hits");
  metrics_.run_cache_misses = &reg.counter("rocksoss.run_cache.misses");
}

std::string RocksOss::RunObjectKey(uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(id));
  return name_ + "/run-" + buf;
}

Status RocksOss::Open() {
  MutexLock lock(mu_);
  auto keys = store_->List(name_ + "/run-");
  if (!keys.ok()) return keys.status();
  runs_.clear();
  for (const std::string& key : keys.value()) {
    auto data = durability::GetVerified(*store_, key,
                                        durability::Component::kIndexRun);
    if (!data.ok()) return data.status();
    Memtable entries;
    SLIM_RETURN_IF_ERROR(ParseRun(data.value(), &entries));
    Run run;
    run.key = key;
    // Recover id from the key suffix.
    run.id = std::stoull(key.substr(key.rfind('-') + 1));
    next_run_id_ = std::max(next_run_id_, run.id + 1);
    // Rebuild the bloom filter from entries.
    if (options_.bloom_bits_per_key > 0 && !entries.empty()) {
      uint64_t nbits =
          std::max<uint64_t>(64, entries.size() * options_.bloom_bits_per_key);
      run.bloom.assign((nbits + 63) / 64, 0);
      run.bloom_hashes = 6;
      for (const auto& [k, v] : entries) {
        BloomAdd(&run.bloom, run.bloom_hashes, k);
      }
    }
    run.entry_count = entries.size();
    runs_.push_back(std::move(run));
  }
  std::sort(runs_.begin(), runs_.end(),
            [](const Run& a, const Run& b) { return a.id < b.id; });
  return Status::Ok();
}

void RocksOss::DropLocalState() {
  MutexLock lock(mu_);
  memtable_.clear();
  memtable_bytes_ = 0;
  runs_.clear();
  next_run_id_ = 0;
  cache_lru_.clear();
  run_cache_.clear();
  bloom_skips_ = 0;
}

Status RocksOss::Put(const std::string& key, const std::string& value) {
  MutexLock lock(mu_);
  memtable_.insert_or_assign(key, value);
  memtable_bytes_ += key.size() + value.size() + 16;
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    return FlushLocked();
  }
  return Status::Ok();
}

Status RocksOss::Delete(const std::string& key) {
  MutexLock lock(mu_);
  memtable_.insert_or_assign(key, std::nullopt);
  memtable_bytes_ += key.size() + 16;
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    return FlushLocked();
  }
  return Status::Ok();
}

Result<std::string> RocksOss::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second.has_value()) return Status::NotFound("tombstoned: " + key);
    return *it->second;
  }
  // Newest run first. A bloom pass that the run then fails to satisfy
  // is a false positive (a wasted run read); a pass confirmed by the
  // run is a true positive.
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    if (!BloomMayContain(*rit, key)) {
      ++bloom_skips_;
      metrics_.bloom_negatives->Inc();
      continue;
    }
    auto entries = LoadRunLocked(*rit);
    if (!entries.ok()) return entries.status();
    auto eit = entries.value()->find(key);
    if (eit != entries.value()->end()) {
      metrics_.bloom_true_positives->Inc();
      if (!eit->second.has_value()) {
        return Status::NotFound("tombstoned: " + key);
      }
      return *eit->second;
    }
    metrics_.bloom_false_positives->Inc();
  }
  return Status::NotFound("key: " + key);
}

Result<std::vector<std::pair<std::string, std::string>>> RocksOss::Scan(
    const std::string& start, const std::string& end) {
  MutexLock lock(mu_);
  // Merge all sources; newer sources win. Apply oldest first and
  // overwrite, then strip tombstones.
  std::map<std::string, std::optional<std::string>> merged;
  auto in_range = [&](const std::string& k) {
    if (k < start) return false;
    if (!end.empty() && k >= end) return false;
    return true;
  };
  for (const Run& run : runs_) {
    auto entries = LoadRunLocked(run);
    if (!entries.ok()) return entries.status();
    for (const auto& [k, v] : *entries.value()) {
      if (in_range(k)) merged[k] = v;
    }
  }
  for (const auto& [k, v] : memtable_) {
    if (in_range(k)) merged[k] = v;
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (v.has_value()) out.emplace_back(k, std::move(*v));
  }
  return out;
}

Status RocksOss::Flush() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Status RocksOss::FlushLocked() {
  if (memtable_.empty()) return Status::Ok();
  Run run;
  run.id = next_run_id_++;
  run.key = RunObjectKey(run.id);
  std::string payload = SerializeRun(memtable_, options_, &run);
  metrics_.flushes->Inc();
  metrics_.flush_bytes->Inc(payload.size());
  SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
      *store_, run.key, std::move(payload), durability::Component::kIndexRun));
  // Cache the freshly flushed run: it is the most likely to be read.
  auto cached = std::make_shared<Memtable>(std::move(memtable_));
  run_cache_[run.id] = cached;
  cache_lru_.push_front(run.id);
  while (cache_lru_.size() > options_.run_cache_capacity) {
    run_cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  memtable_.clear();
  memtable_bytes_ = 0;
  runs_.push_back(std::move(run));
  if (options_.max_runs > 0 && runs_.size() >= options_.max_runs) {
    return CompactLocked();
  }
  return Status::Ok();
}

Status RocksOss::Compact() {
  MutexLock lock(mu_);
  return CompactLocked();
}

Status RocksOss::CompactLocked() {
  if (runs_.size() <= 1) return Status::Ok();
  metrics_.compactions->Inc();
  metrics_.compaction_input_runs->Inc(runs_.size());
  Memtable merged;
  for (const Run& run : runs_) {
    auto entries = LoadRunLocked(run);
    if (!entries.ok()) return entries.status();
    for (const auto& [k, v] : *entries.value()) merged[k] = v;
  }
  // Drop tombstones: after a full merge nothing older can resurrect.
  for (auto it = merged.begin(); it != merged.end();) {
    if (!it->second.has_value()) {
      it = merged.erase(it);
    } else {
      ++it;
    }
  }
  // Write the merged run BEFORE touching runs_: if the Put fails the
  // in-memory state (and the OSS) is exactly what it was, so reads keep
  // working and a retried Compact starts over cleanly.
  std::vector<Run> new_runs;
  if (!merged.empty()) {
    Run run;
    run.id = next_run_id_++;
    run.key = RunObjectKey(run.id);
    std::string payload = SerializeRun(merged, options_, &run);
    metrics_.compaction_bytes->Inc(payload.size());
    SLIM_RETURN_IF_ERROR(durability::PutWithFooter(
        *store_, run.key, std::move(payload),
        durability::Component::kIndexRun));
    run_cache_[run.id] = std::make_shared<Memtable>(std::move(merged));
    cache_lru_.push_front(run.id);
    new_runs.push_back(std::move(run));
  }
  std::vector<Run> old_runs = std::move(runs_);
  runs_ = std::move(new_runs);
  // Old run objects are now shadowed by the merged run (it holds every
  // live key, and tombstones in old runs only ever map to NotFound), so
  // a failed delete leaks space but can never corrupt reads — even
  // after a reopen that re-lists the leaked objects. Delete them all,
  // then report the first failure.
  Status delete_status;
  for (const Run& old : old_runs) {
    Status s = store_->Delete(old.key);
    if (!s.ok() && delete_status.ok()) delete_status = std::move(s);
    run_cache_.erase(old.id);
    cache_lru_.remove(old.id);
  }
  SLIM_RETURN_IF_ERROR(delete_status);
  while (cache_lru_.size() > options_.run_cache_capacity) {
    run_cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  return Status::Ok();
}

size_t RocksOss::run_count() const {
  MutexLock lock(mu_);
  return runs_.size();
}

std::string RocksOss::SerializeRun(const Memtable& entries,
                                   const RocksOssOptions& options, Run* run) {
  if (options.bloom_bits_per_key > 0 && !entries.empty()) {
    uint64_t nbits =
        std::max<uint64_t>(64, entries.size() * options.bloom_bits_per_key);
    run->bloom.assign((nbits + 63) / 64, 0);
    run->bloom_hashes = 6;
  }
  std::string out;
  PutFixed64(&out, entries.size());
  for (const auto& [key, value] : entries) {
    PutLengthPrefixed(&out, key);
    PutFixed32(&out, value.has_value() ? 0 : kTombstoneFlag);
    PutLengthPrefixed(&out, value.has_value() ? *value : "");
    if (!run->bloom.empty()) BloomAdd(&run->bloom, run->bloom_hashes, key);
  }
  run->entry_count = entries.size();
  return out;
}

Status RocksOss::ParseRun(const std::string& data, Memtable* entries) {
  Decoder dec(data);
  uint64_t count = 0;
  SLIM_RETURN_IF_ERROR(dec.ReadFixed64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key, value;
    uint32_t flags = 0;
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&key));
    SLIM_RETURN_IF_ERROR(dec.ReadFixed32(&flags));
    SLIM_RETURN_IF_ERROR(dec.ReadLengthPrefixed(&value));
    if (flags & kTombstoneFlag) {
      entries->emplace(std::string(key), std::nullopt);
    } else {
      entries->emplace(std::string(key), std::string(value));
    }
  }
  return Status::Ok();
}

bool RocksOss::BloomMayContain(const Run& run, const std::string& key) {
  return BloomTest(run.bloom, run.bloom_hashes, key);
}

Result<std::shared_ptr<RocksOss::Memtable>> RocksOss::LoadRunLocked(
    const Run& run) {
  auto it = run_cache_.find(run.id);
  if (it != run_cache_.end()) {
    metrics_.run_cache_hits->Inc();
    cache_lru_.remove(run.id);
    cache_lru_.push_front(run.id);
    return it->second;
  }
  metrics_.run_cache_misses->Inc();
  auto data = durability::GetVerified(*store_, run.key,
                                      durability::Component::kIndexRun);
  if (!data.ok()) return data.status();
  auto entries = std::make_shared<Memtable>();
  SLIM_RETURN_IF_ERROR(ParseRun(data.value(), entries.get()));
  run_cache_[run.id] = entries;
  cache_lru_.push_front(run.id);
  while (cache_lru_.size() > options_.run_cache_capacity) {
    run_cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  return entries;
}

}  // namespace slim::oss
