#include "oss/cost_accounting_object_store.h"

namespace slim::oss {

CostAccountingObjectStore::CostAccountingObjectStore(ObjectStore* inner,
                                                     obs::CostModel model)
    : inner_(inner), model_(model) {
  auto& reg = obs::MetricsRegistry::Get();
  billed_requests_ = &reg.counter("oss.cost.requests");
  billed_picodollars_ = &reg.counter("oss.cost.picodollars");
}

void CostAccountingObjectStore::Charge(obs::OssOp op, uint64_t bytes_read,
                                       uint64_t bytes_written) {
  uint64_t picodollars = obs::DollarsToPicodollars(
      model_.OperationDollars(op, bytes_read + bytes_written));
  obs::JobRegistry::Get().Charge(op, bytes_read, bytes_written, picodollars);
  billed_requests_->Inc();
  if (picodollars != 0) billed_picodollars_->Inc(picodollars);
}

Status CostAccountingObjectStore::Put(const std::string& key,
                                      std::string value) {
  // Billed up front: the provider charges the PUT attempt even if the
  // backend then fails it.
  Charge(obs::OssOp::kPut, 0, value.size());
  return inner_->Put(key, std::move(value));
}

Result<std::string> CostAccountingObjectStore::Get(const std::string& key) {
  auto result = inner_->Get(key);
  Charge(obs::OssOp::kGet, result.ok() ? result.value().size() : 0, 0);
  return result;
}

Result<std::string> CostAccountingObjectStore::GetRange(const std::string& key,
                                                        uint64_t offset,
                                                        uint64_t len) {
  auto result = inner_->GetRange(key, offset, len);
  Charge(obs::OssOp::kGetRange, result.ok() ? result.value().size() : 0, 0);
  return result;
}

Status CostAccountingObjectStore::Delete(const std::string& key) {
  Charge(obs::OssOp::kDelete, 0, 0);
  return inner_->Delete(key);
}

Result<bool> CostAccountingObjectStore::Exists(const std::string& key) {
  Charge(obs::OssOp::kExists, 0, 0);
  return inner_->Exists(key);
}

Result<uint64_t> CostAccountingObjectStore::Size(const std::string& key) {
  Charge(obs::OssOp::kSize, 0, 0);
  return inner_->Size(key);
}

Result<std::vector<std::string>> CostAccountingObjectStore::List(
    const std::string& prefix) {
  Charge(obs::OssOp::kList, 0, 0);
  return inner_->List(prefix);
}

}  // namespace slim::oss
