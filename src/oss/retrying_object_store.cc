#include "oss/retrying_object_store.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace slim::oss {

RetryingObjectStore::RetryingObjectStore(ObjectStore* inner,
                                         RetryPolicy policy)
    : inner_(inner), policy_(policy), rng_(policy.seed) {
  auto& registry = obs::MetricsRegistry::Get();
  m_retries_ = &registry.counter("oss.retry.attempts");
  m_success_ = &registry.counter("oss.retry.success");
  m_exhausted_ = &registry.counter("oss.retry.exhausted");
  m_permanent_ = &registry.counter("oss.retry.permanent");
  m_budget_exhausted_ = &registry.counter("oss.retry.budget_exhausted");
  m_backoff_ = &registry.histogram("oss.retry.backoff_ns");
}

RetryStatsSnapshot RetryingObjectStore::stats() const {
  RetryStatsSnapshot s;
  s.retries = retries_.load(std::memory_order_relaxed);
  s.successes_after_retry =
      successes_after_retry_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.permanent_errors = permanent_errors_.load(std::memory_order_relaxed);
  s.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
  return s;
}

void RetryingObjectStore::Backoff(uint64_t* backoff) {
  double jitter;
  {
    MutexLock lock(mu_);
    jitter = (rng_.NextDouble() * 2.0 - 1.0) * policy_.jitter_fraction;
  }
  double jittered = static_cast<double>(*backoff) * (1.0 + jitter);
  uint64_t delay_nanos =
      jittered <= 0.0 ? 0 : static_cast<uint64_t>(jittered);

  retries_.fetch_add(1, std::memory_order_relaxed);
  m_retries_->Inc();
  m_backoff_->Record(delay_nanos);

  if (policy_.sleep_on_backoff && delay_nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay_nanos));
  }

  double next = static_cast<double>(*backoff) * policy_.multiplier;
  *backoff = std::min(policy_.max_backoff_nanos,
                      next >= static_cast<double>(policy_.max_backoff_nanos)
                          ? policy_.max_backoff_nanos
                          : static_cast<uint64_t>(next));
}

Status RetryingObjectStore::Put(const std::string& key, std::string value) {
  return RunWithRetry([&](bool final_attempt) {
    // Each non-final attempt keeps `value` intact in case it must be
    // resent; only the last possible attempt gets to move it.
    return inner_->Put(key, final_attempt ? std::move(value) : value);
  });
}

Result<std::string> RetryingObjectStore::Get(const std::string& key) {
  return RunWithRetry([&](bool) { return inner_->Get(key); });
}

Result<std::string> RetryingObjectStore::GetRange(const std::string& key,
                                                  uint64_t offset,
                                                  uint64_t len) {
  return RunWithRetry(
      [&](bool) { return inner_->GetRange(key, offset, len); });
}

Status RetryingObjectStore::Delete(const std::string& key) {
  return RunWithRetry([&](bool) { return inner_->Delete(key); });
}

Result<bool> RetryingObjectStore::Exists(const std::string& key) {
  return RunWithRetry([&](bool) { return inner_->Exists(key); });
}

Result<uint64_t> RetryingObjectStore::Size(const std::string& key) {
  return RunWithRetry([&](bool) { return inner_->Size(key); });
}

Result<std::vector<std::string>> RetryingObjectStore::List(
    const std::string& prefix) {
  return RunWithRetry([&](bool) { return inner_->List(prefix); });
}

}  // namespace slim::oss
