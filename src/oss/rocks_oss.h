#ifndef SLIMSTORE_OSS_ROCKS_OSS_H_
#define SLIMSTORE_OSS_ROCKS_OSS_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "oss/object_store.h"

namespace slim::oss {

/// Options for RocksOss.
struct RocksOssOptions {
  /// Memtable is flushed to a sorted run on OSS once it holds this many
  /// bytes of keys+values.
  uint64_t memtable_limit_bytes = 1 << 20;  // 1 MiB
  /// Bloom filter budget per key in each run (0 disables blooms).
  uint32_t bloom_bits_per_key = 10;
  /// A full compaction is triggered automatically once this many runs
  /// exist. 0 disables auto-compaction.
  uint32_t max_runs = 8;
  /// How many run payloads to keep cached in L-node memory.
  uint32_t run_cache_capacity = 4;
};

/// "Rocks-OSS" (paper §III-B): a RocksDB-style LSM key-value store whose
/// persistent runs live on OSS. SlimStore's global fingerprint index is
/// stored here. The design mirrors an LSM at miniature scale:
///
///   * writes & deletes go to an in-memory memtable (tombstones included);
///   * the memtable flushes to an immutable sorted-run object on OSS;
///   * each run carries a bloom filter, kept in memory, so point lookups
///     skip runs that cannot contain the key;
///   * reads consult memtable, then runs newest -> oldest;
///   * compaction merges all runs into one, dropping tombstones.
///
/// Thread-safe (single mutex; the global index is G-node-only and never
/// on the online critical path).
class RocksOss {
 public:
  /// `store` must outlive this object. `name` prefixes all OSS keys
  /// ("<name>/run-<n>").
  RocksOss(ObjectStore* store, std::string name, RocksOssOptions options);

  /// Loads existing runs from OSS (crash recovery / reopen). Memtable
  /// contents that were never flushed are not recoverable, mirroring a
  /// WAL-less cache; SlimStore flushes after each G-node cycle.
  Status Open() SLIM_EXCLUDES(mu_);

  /// Rebuildable-state contract: discard the memtable, run metadata and
  /// caches, simulating process death. Unflushed writes are lost by
  /// design (WAL-less); Open() reloads the durable runs.
  void DropLocalState() SLIM_EXCLUDES(mu_);

  Status Put(const std::string& key, const std::string& value)
      SLIM_EXCLUDES(mu_);
  Status Delete(const std::string& key) SLIM_EXCLUDES(mu_);

  /// Point lookup. NotFound if the key is absent or tombstoned.
  Result<std::string> Get(const std::string& key) SLIM_EXCLUDES(mu_);

  /// All live (non-tombstoned) entries in [start, end). Pass "" as end
  /// for "to the last key".
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& start, const std::string& end) SLIM_EXCLUDES(mu_);

  /// Forces the memtable to a run on OSS.
  Status Flush() SLIM_EXCLUDES(mu_);

  /// Merges all runs into a single run, dropping tombstones and
  /// shadowed versions.
  Status Compact() SLIM_EXCLUDES(mu_);

  /// Number of persistent runs currently on OSS.
  size_t run_count() const SLIM_EXCLUDES(mu_);
  /// Bloom-filter negatives that skipped an OSS read (diagnostic).
  uint64_t bloom_skips() const SLIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bloom_skips_;
  }

 private:
  struct Run {
    uint64_t id = 0;
    std::string key;                // OSS object key.
    std::vector<uint64_t> bloom;    // Bit array.
    uint32_t bloom_hashes = 0;
    uint64_t entry_count = 0;
  };

  // Entry value: nullopt = tombstone.
  using Memtable = std::map<std::string, std::optional<std::string>>;

  std::string RunObjectKey(uint64_t id) const;
  static std::string SerializeRun(const Memtable& entries,
                                  const RocksOssOptions& options, Run* run);
  static Status ParseRun(const std::string& data, Memtable* entries);
  static bool BloomMayContain(const Run& run, const std::string& key);

  Status FlushLocked() SLIM_REQUIRES(mu_);
  Status CompactLocked() SLIM_REQUIRES(mu_);
  Result<std::shared_ptr<Memtable>> LoadRunLocked(const Run& run)
      SLIM_REQUIRES(mu_);

  // Every inner-store access happens inside a flush/compact/load
  // section, so the pointee rides under mu_ even though the pointer
  // itself is set once in the constructor.
  ObjectStore* store_ SLIM_PT_GUARDED_BY(mu_);
  const std::string name_;
  const RocksOssOptions options_;

  mutable Mutex mu_{"oss.rocks"};
  Memtable memtable_ SLIM_GUARDED_BY(mu_);
  uint64_t memtable_bytes_ SLIM_GUARDED_BY(mu_) = 0;
  std::vector<Run> runs_ SLIM_GUARDED_BY(mu_);  // Oldest first.
  uint64_t next_run_id_ SLIM_GUARDED_BY(mu_) = 0;

  // LRU cache of parsed run payloads keyed by run id.
  std::list<uint64_t> cache_lru_ SLIM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::shared_ptr<Memtable>> run_cache_
      SLIM_GUARDED_BY(mu_);

  uint64_t bloom_skips_ SLIM_GUARDED_BY(mu_) = 0;

  // Process-wide registry handles ("rocksoss.*"), shared across all
  // RocksOss instances.
  struct Metrics {
    obs::Counter* flushes;
    obs::Counter* flush_bytes;
    obs::Counter* compactions;
    obs::Counter* compaction_input_runs;
    obs::Counter* compaction_bytes;
    obs::Counter* bloom_negatives;
    obs::Counter* bloom_true_positives;
    obs::Counter* bloom_false_positives;
    obs::Counter* run_cache_hits;
    obs::Counter* run_cache_misses;
  };
  Metrics metrics_;
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_ROCKS_OSS_H_
