#ifndef SLIMSTORE_OSS_OBJECT_STORE_H_
#define SLIMSTORE_OSS_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace slim::oss {

/// Abstract cloud object storage (the paper's OSS: Alibaba OSS / Amazon
/// S3). Objects are immutable blobs addressed by string keys; the only
/// operations are whole/range reads, whole writes, deletes and prefix
/// listing — exactly the surface SlimStore's storage layer relies on.
///
/// Implementations must be thread-safe: L-nodes issue concurrent reads
/// (multi-channel parallel read is a core OSS property the paper's
/// LAW-prefetcher exploits).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Creates or replaces the object at `key`.
  virtual Status Put(const std::string& key, std::string value) = 0;

  /// Reads the whole object. NotFound if absent.
  virtual Result<std::string> Get(const std::string& key) = 0;

  /// Reads `len` bytes starting at `offset`. Reading past the end returns
  /// the available suffix (like HTTP range requests); offset beyond the
  /// object is InvalidArgument.
  virtual Result<std::string> GetRange(const std::string& key,
                                       uint64_t offset, uint64_t len) = 0;

  /// Removes the object. Deleting a missing key is OK (idempotent), to
  /// match real object stores.
  virtual Status Delete(const std::string& key) = 0;

  virtual Result<bool> Exists(const std::string& key) = 0;

  /// Object size in bytes. NotFound if absent.
  virtual Result<uint64_t> Size(const std::string& key) = 0;

  /// All keys with the given prefix, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;
};

/// Sums the sizes of all objects whose key starts with `prefix`. Used by
/// the space-cost experiments (Fig 9, Fig 10c).
Result<uint64_t> TotalBytesWithPrefix(ObjectStore& store,
                                      const std::string& prefix);

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_OBJECT_STORE_H_
