#ifndef SLIMSTORE_OSS_OBJECT_STORE_H_
#define SLIMSTORE_OSS_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace slim::oss {

/// Reserved key segment for journal-style observability state (node
/// metric snapshots). Like the '#tmp' staging suffix, '#' can never
/// appear in an encoded data key, so the segment cannot collide with
/// user data.
inline constexpr std::string_view kObsKeySegment = "obs#";

/// True when `key` lives under an "obs#" path segment that the List
/// prefix does not reach into. Such keys are invisible to shallow
/// listings (a backup enumerating "cluster/" must not sweep metric
/// snapshots as debris) but remain listable by pointing the prefix at
/// or past the segment, e.g. List("cluster/obs#/").
inline bool ObsKeyHiddenFromList(std::string_view key,
                                 std::string_view prefix) {
  size_t pos = key.find(kObsKeySegment);
  while (pos != std::string_view::npos &&
         !(pos == 0 || key[pos - 1] == '/')) {
    pos = key.find(kObsKeySegment, pos + 1);
  }
  if (pos == std::string_view::npos) return false;
  // Hidden unless the prefix itself extends into the segment.
  return prefix.size() <= pos;
}

/// Abstract cloud object storage (the paper's OSS: Alibaba OSS / Amazon
/// S3). Objects are immutable blobs addressed by string keys; the only
/// operations are whole/range reads, whole writes, deletes and prefix
/// listing — exactly the surface SlimStore's storage layer relies on.
///
/// Implementations must be thread-safe: L-nodes issue concurrent reads
/// (multi-channel parallel read is a core OSS property the paper's
/// LAW-prefetcher exploits).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Creates or replaces the object at `key`.
  virtual Status Put(const std::string& key, std::string value) = 0;

  /// Reads the whole object. NotFound if absent.
  virtual Result<std::string> Get(const std::string& key) = 0;

  /// Reads `len` bytes starting at `offset`. Reading past the end returns
  /// the available suffix (like HTTP range requests); offset beyond the
  /// object is InvalidArgument.
  virtual Result<std::string> GetRange(const std::string& key,
                                       uint64_t offset, uint64_t len) = 0;

  /// Removes the object. Deleting a missing key is OK (idempotent), to
  /// match real object stores.
  virtual Status Delete(const std::string& key) = 0;

  virtual Result<bool> Exists(const std::string& key) = 0;

  /// Object size in bytes. NotFound if absent.
  virtual Result<uint64_t> Size(const std::string& key) = 0;

  /// All keys with the given prefix, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;
};

/// Sums the sizes of all objects whose key starts with `prefix`. Used by
/// the space-cost experiments (Fig 9, Fig 10c).
Result<uint64_t> TotalBytesWithPrefix(ObjectStore& store,
                                      const std::string& prefix);

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_OBJECT_STORE_H_
