#ifndef SLIMSTORE_OSS_COST_ACCOUNTING_OBJECT_STORE_H_
#define SLIMSTORE_OSS_COST_ACCOUNTING_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/cost_model.h"
#include "obs/job_context.h"
#include "obs/metrics.h"
#include "oss/object_store.h"

namespace slim::oss {

/// Decorator that bills every operation that reaches it against the
/// job open on the calling thread (obs::JobRegistry), pricing requests
/// and payload bytes with an obs::CostModel.
///
/// Placement in the decorator stack defines the billing semantics, and
/// the CLI puts one of these at the very bottom, wrapping each physical
/// replica. That way the durability tax is visible exactly as a cloud
/// bill would show it:
///   * replication fan-out: k replicas => k billed PUTs per logical PUT;
///   * retries: every attempt that reaches the store bills again;
///   * injected faults that fire *above* this layer (the fault injector
///     rejects before delegating) are unbilled — matching providers,
///     which do not charge for requests their frontend refused.
///
/// Failed operations that do reach the store still bill their request
/// tariff (S3 bills a 404 GET) but no transfer bytes.
class CostAccountingObjectStore : public ObjectStore {
 public:
  /// Does not take ownership of `inner`.
  CostAccountingObjectStore(ObjectStore* inner, obs::CostModel model);

  Status Put(const std::string& key, std::string value) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t len) override;
  Status Delete(const std::string& key) override;
  Result<bool> Exists(const std::string& key) override;
  Result<uint64_t> Size(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  const obs::CostModel& cost_model() const { return model_; }

 private:
  /// `bytes` is the payload moved (0 for metadata ops / failed reads).
  void Charge(obs::OssOp op, uint64_t bytes_read, uint64_t bytes_written);

  ObjectStore* inner_;
  obs::CostModel model_;
  obs::Counter* billed_requests_;
  obs::Counter* billed_picodollars_;
};

}  // namespace slim::oss

#endif  // SLIMSTORE_OSS_COST_ACCOUNTING_OBJECT_STORE_H_
