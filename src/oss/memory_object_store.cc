#include "oss/memory_object_store.h"

namespace slim::oss {

Status MemoryObjectStore::Put(const std::string& key, std::string value) {
  WriterMutexLock lock(mu_);
  objects_[key] = std::move(value);
  return Status::Ok();
}

Result<std::string> MemoryObjectStore::Get(const std::string& key) {
  ReaderMutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("object: " + key);
  return it->second;
}

Result<std::string> MemoryObjectStore::GetRange(const std::string& key,
                                                uint64_t offset,
                                                uint64_t len) {
  ReaderMutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("object: " + key);
  const std::string& v = it->second;
  if (offset > v.size()) {
    return Status::InvalidArgument("range offset beyond object end: " + key);
  }
  return v.substr(offset, len);
}

Status MemoryObjectStore::Delete(const std::string& key) {
  WriterMutexLock lock(mu_);
  objects_.erase(key);
  return Status::Ok();
}

Result<bool> MemoryObjectStore::Exists(const std::string& key) {
  ReaderMutexLock lock(mu_);
  return objects_.count(key) > 0;
}

Result<uint64_t> MemoryObjectStore::Size(const std::string& key) {
  ReaderMutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("object: " + key);
  return static_cast<uint64_t>(it->second.size());
}

Result<std::vector<std::string>> MemoryObjectStore::List(
    const std::string& prefix) {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (ObsKeyHiddenFromList(it->first, prefix)) continue;
    keys.push_back(it->first);
  }
  return keys;
}

size_t MemoryObjectStore::ObjectCount() const {
  ReaderMutexLock lock(mu_);
  return objects_.size();
}

Result<uint64_t> TotalBytesWithPrefix(ObjectStore& store,
                                      const std::string& prefix) {
  auto keys = store.List(prefix);
  if (!keys.ok()) return keys.status();
  uint64_t total = 0;
  for (const auto& key : keys.value()) {
    auto size = store.Size(key);
    if (!size.ok()) {
      // NotFound means deleted concurrently — skip. Anything else
      // (Unavailable, IoError, ...) would silently under-report space
      // costs, so propagate it.
      if (size.status().IsNotFound()) continue;
      return size.status();
    }
    total += size.value();
  }
  return total;
}

}  // namespace slim::oss
